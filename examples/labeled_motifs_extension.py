"""Beyond edges: counting label-refined wedges and triangles (future work of the paper).

The paper closes by proposing to estimate other label-refined graph
properties such as wedges and triangles.  `repro.extensions` implements
that direction with the same random-walk machinery.  This script counts

* "brokerage" wedges  female - male - female  (a male user connecting two
  female users), and
* mixed triangles containing two female users and one male user

on the Facebook-like stand-in, comparing the random-walk estimates with
the exact counts.

Run with::

    python examples/labeled_motifs_extension.py
"""

from repro.datasets.registry import load_dataset
from repro.extensions import (
    LabeledTriangleEstimator,
    LabeledWedgeEstimator,
    count_target_triangles,
    count_target_wedges,
)
from repro.graph.api import RestrictedGraphAPI
from repro.walks.mixing import recommended_burn_in


def main() -> None:
    dataset = load_dataset("facebook", seed=21, scale=0.25)
    graph = dataset.graph
    female, male = 1, 2
    burn_in = recommended_burn_in(graph, rng=1)
    budget = int(0.10 * graph.num_nodes)

    true_wedges = count_target_wedges(graph, female, male, female)
    true_triangles = count_target_triangles(graph, female, female, male)
    print(f"graph: {graph.num_nodes} users, {graph.num_edges} friendships")
    print(f"true female-male-female wedges   : {true_wedges}")
    print(f"true female-female-male triangles: {true_triangles}")
    print()

    wedge_api = RestrictedGraphAPI(graph)
    wedge_result = LabeledWedgeEstimator(
        wedge_api, female, male, female, burn_in=burn_in, rng=7
    ).estimate(budget)
    print(f"wedge estimate   : {wedge_result.estimate:12.1f}  "
          f"(relative error {wedge_result.relative_error(true_wedges):.3f}, "
          f"{wedge_result.api_calls} API calls)")

    triangle_api = RestrictedGraphAPI(graph)
    triangle_result = LabeledTriangleEstimator(
        triangle_api, female, female, male, burn_in=burn_in, rng=7
    ).estimate(budget)
    print(f"triangle estimate: {triangle_result.estimate:12.1f}  "
          f"(relative error {triangle_result.relative_error(true_triangles):.3f}, "
          f"{triangle_result.api_calls} API calls)")


if __name__ == "__main__":
    main()
