"""Market sizing for a new Spanish course in Hong Kong (the paper's intro example).

The paper motivates the problem with an education institution deciding
whether to launch a Spanish course in Hong Kong: a good proxy for demand
is the number of friendships between users living in Hong Kong and users
living in Spain.  Those links are *rare* relative to the whole network,
which is exactly the regime where the paper's NeighborExploration
algorithm shines (§5.3).

This script builds a location-labeled OSN (Zipf-distributed locations,
like the Pokec stand-in), treats two mid-tail locations as "Hong Kong"
and "Spain", and estimates the number of cross-location friendships
under a tight API budget, comparing NeighborSample against
NeighborExploration.

Run with::

    python examples/spanish_course_market.py
"""

from repro.core.estimators import EdgeHansenHurwitzEstimator, NodeHansenHurwitzEstimator
from repro.core.samplers import NeighborExplorationSampler, NeighborSampleSampler
from repro.datasets.labeling import assign_zipf_labels
from repro.datasets.synthetic import powerlaw_cluster_osn
from repro.graph.api import RestrictedGraphAPI
from repro.graph.statistics import count_target_edges, label_histogram
from repro.walks.mixing import recommended_burn_in


def main() -> None:
    # --- build a synthetic OSN with location labels --------------------
    graph = powerlaw_cluster_osn(4000, 10, 0.3, rng=11)
    assign_zipf_labels(graph, num_labels=120, exponent=1.1, rng=12)

    histogram = label_histogram(graph)
    # Pick two mid-tail locations and pretend they are Hong Kong and Spain.
    by_popularity = sorted(histogram, key=histogram.get, reverse=True)
    hong_kong, spain = by_popularity[10], by_popularity[18]
    truth = count_target_edges(graph, hong_kong, spain)

    print("Scenario: how many Hong Kong <-> Spain friendships exist?")
    print(f"network size      : {graph.num_nodes} users, {graph.num_edges} friendships")
    print(f"'Hong Kong' users : {histogram[hong_kong]}   'Spain' users: {histogram[spain]}")
    print(f"true cross links  : {truth}  ({100 * truth / graph.num_edges:.3f}% of all friendships)")
    print()

    burn_in = recommended_burn_in(graph, rng=1)
    budget = int(0.05 * graph.num_nodes)  # 5% of |V| API calls, as in the paper

    # --- NeighborSample: uniform edge sampling -------------------------
    ns_api = RestrictedGraphAPI(graph)
    ns_samples = NeighborSampleSampler(
        ns_api, hong_kong, spain, burn_in=burn_in, rng=2024
    ).sample(budget)
    ns_result = EdgeHansenHurwitzEstimator().estimate(ns_samples)

    # --- NeighborExploration: explore neighbors of labeled users -------
    ne_api = RestrictedGraphAPI(graph)
    ne_samples = NeighborExplorationSampler(
        ne_api, hong_kong, spain, burn_in=burn_in, rng=2024
    ).sample(budget)
    ne_result = NodeHansenHurwitzEstimator().estimate(ne_samples)

    print(f"budget: k = {budget} walk samples (burn-in {burn_in} steps)")
    for name, result in (("NeighborSample-HH", ns_result), ("NeighborExploration-HH", ne_result)):
        if truth:
            error = abs(result.estimate - truth) / truth
            print(f"{name:>24}: estimate = {result.estimate:8.1f}   relative error = {error:.2f}")
        else:
            print(f"{name:>24}: estimate = {result.estimate:8.1f}")
    print()
    print("Because the target links are rare, NeighborSample rarely touches one, "
          "while NeighborExploration counts every target link around each sampled "
          "Hong Kong / Spain user — the paper's §5.3 recommendation.")


if __name__ == "__main__":
    main()
