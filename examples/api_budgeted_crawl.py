"""Crawling under a hard API budget, with |V| and |E| estimated on the fly.

The paper assumes |V| and |E| are known in advance; when they are not,
it points to random-walk size estimators.  This script shows the fully
self-contained workflow a practitioner would follow against a real OSN
API:

1. wrap the (here: synthetic) network in a :class:`RestrictedGraphAPI`
   with a hard call budget,
2. spend a first slice of the budget estimating |V| and |E| via the
   collision estimator,
3. feed those estimates as the prior knowledge of a fresh API wrapper,
4. spend the remaining budget estimating the labeled-edge count, and
5. report how far the final answer is from the (hidden) truth.

Run with::

    python examples/api_budgeted_crawl.py
"""

from repro.core.estimators import EdgeHansenHurwitzEstimator
from repro.core.samplers import NeighborSampleSampler
from repro.datasets.registry import load_dataset
from repro.graph.api import RestrictedGraphAPI
from repro.graph.statistics import count_target_edges
from repro.osn.size_estimation import estimate_graph_size
from repro.walks.mixing import recommended_burn_in


def main() -> None:
    dataset = load_dataset("googleplus", seed=3, scale=0.15)
    graph = dataset.graph
    t1, t2 = dataset.target_pairs[0]
    truth = count_target_edges(graph, t1, t2)

    total_budget = int(0.40 * graph.num_nodes)
    size_budget = total_budget // 3
    print(f"hidden graph: |V|={graph.num_nodes}, |E|={graph.num_edges}, true F={truth}")
    print(f"total API budget: {total_budget} calls "
          f"({size_budget} reserved for size estimation)")
    print()

    burn_in = recommended_burn_in(graph, rng=1)

    # Step 1-2: estimate |V| and |E| from a budgeted crawl.  The budget counts
    # distinct page downloads (the wrapper caches revisited pages), which is
    # how the paper accounts for API calls.
    size_api = RestrictedGraphAPI(graph, budget=size_budget)
    size = estimate_graph_size(size_api, sample_size=size_budget - burn_in, burn_in=burn_in, rng=7)
    print(f"estimated |V| = {size.num_nodes:,.0f}   (true {graph.num_nodes:,})")
    print(f"estimated |E| = {size.num_edges:,.0f}   (true {graph.num_edges:,})")
    print(f"collisions observed: {size.collisions}, API calls spent: {size.api_calls}")
    print()

    # Step 3-4: estimate the labeled-edge count using the estimated priors.
    # NeighborSample is the right tool here: the gender labels are abundant
    # (§5.3) and its API cost is one page per walk step, so it fits the
    # remaining budget comfortably.
    remaining = total_budget - size_api.api_calls
    estimate_api = RestrictedGraphAPI(
        graph,
        budget=remaining,
        known_num_nodes=int(size.num_nodes),
        known_num_edges=int(size.num_edges),
    )
    k = max(1, int(0.05 * size.num_nodes))
    sampler = NeighborSampleSampler(estimate_api, t1, t2, burn_in=burn_in, rng=11)
    result = EdgeHansenHurwitzEstimator().estimate(sampler.sample(k))

    error = abs(result.estimate - truth) / truth
    print(f"labeled-edge estimate with estimated priors: {result.estimate:,.1f}")
    print(f"true count: {truth:,}   relative error: {error:.3f}")
    print(f"API calls spent on estimation: {estimate_api.api_calls} (budget {remaining})")


if __name__ == "__main__":
    main()
