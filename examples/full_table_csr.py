"""The complete ten-algorithm NRMSE table, CSR-native, at 10^5 nodes.

The paper's headline artifact is the algorithm comparison: five
proposed configurations (NeighborSample / NeighborExploration with
HH/HT/RW estimators) against five EX-* baselines (Li et al.'s
node-counting walks run on the line graph).  This example reproduces
one such table end to end on a 10^5-node Chung–Lu stand-in without
ever materialising a dict graph:

* the graph is generated, cleaned and labeled array-natively;
* the EX-* oracle parameter (line-graph maximum degree) is computed
  vectorized;
* ``execution="fleet"`` runs each cell's repetitions as one vectorized
  walker fleet (NS/NE fleets for the proposed rows, implicit
  line-graph fleets for the EX-* rows);
* ``reuse="prefix"`` walks one max-budget fleet per algorithm and reads
  every smaller budget column off its trajectory prefixes.

See docs/algorithms.md for the full algorithm/flag matrix and
docs/scaling-guide.md for the knob-picking guide.

Run:  PYTHONPATH=src python examples/full_table_csr.py
(Environment: REPRO_EXAMPLE_NODES / REPRO_EXAMPLE_REPS shrink the run.)
"""

import os
import time

from repro.datasets.labeling import zipf_label_array
from repro.datasets.synthetic import chung_lu_edges, powerlaw_degree_sequence
from repro.experiments.algorithms import build_algorithm_suite
from repro.experiments.reporting import format_nrmse_table
from repro.experiments.runner import compare_algorithms
from repro.graph.cleaning import largest_connected_component_csr
from repro.graph.csr import CSRGraph

NUM_NODES = int(os.environ.get("REPRO_EXAMPLE_NODES", "100000"))
REPETITIONS = int(os.environ.get("REPRO_EXAMPLE_REPS", "25"))


def main() -> None:
    started = time.perf_counter()
    weights = powerlaw_degree_sequence(NUM_NODES, average_degree=12.0)
    graph = largest_connected_component_csr(
        CSRGraph.from_edge_array(chung_lu_edges(weights, rng=1), num_nodes=NUM_NODES)
    )
    graph = graph.with_labels(
        label_array=zipf_label_array(graph.num_nodes, num_labels=50, exponent=1.0, rng=2)
    )
    print(
        f"CSR-native Chung-Lu stand-in: |V|={graph.num_nodes:,} "
        f"|E|={graph.num_edges:,} ({time.perf_counter() - started:.1f}s)"
    )

    # Full ten-algorithm suite; the MD/GMD oracle parameter (line-graph
    # maximum degree) is computed vectorized from the CSR arrays.
    suite = build_algorithm_suite(graph)
    print(f"algorithms: {', '.join(suite)}")

    t0 = time.perf_counter()
    table = compare_algorithms(
        graph,
        1,
        2,
        sample_fractions=(0.005, 0.01, 0.03, 0.05),
        repetitions=REPETITIONS,
        algorithms=suite,
        burn_in=300,
        seed=2018,
        dataset_name=f"chung-lu-{graph.num_nodes}",
        execution="fleet",
        reuse="prefix",
    )
    elapsed = time.perf_counter() - t0
    print(format_nrmse_table(table, caption="Ten algorithms, CSR-native fleet + prefix reuse"))
    best_name, best_nrmse = table.best_algorithm()
    print(f"\nbest at 5%|V|: {best_name} (NRMSE {best_nrmse:.3f})")
    print(f"table wall-clock: {elapsed:.1f}s "
          f"({len(suite)} algorithms x {len(table.sample_sizes)} budgets "
          f"x {REPETITIONS} repetitions)")


if __name__ == "__main__":
    main()
