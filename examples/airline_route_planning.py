"""Airline route planning: China <-> Austria interaction volume vs API budget.

The paper's second motivating example: an airline wants to know how many
people from China and Austria interact with each other before deciding
on a new route.  This script estimates the China-Austria friendship
count with all five proposed algorithms across a range of API budgets
(0.5%-5% of |V|) and prints an NRMSE table over repeated runs — a
miniature version of the paper's Tables 6-9.

Run with::

    python examples/airline_route_planning.py
"""

from repro.datasets.labeling import assign_zipf_labels
from repro.datasets.synthetic import powerlaw_cluster_osn
from repro.experiments.algorithms import build_algorithm_suite
from repro.experiments.reporting import format_nrmse_table
from repro.experiments.runner import compare_algorithms
from repro.graph.statistics import count_target_edges, label_histogram


def main() -> None:
    graph = powerlaw_cluster_osn(3000, 8, 0.3, rng=5)
    assign_zipf_labels(graph, num_labels=80, exponent=1.1, rng=6)

    histogram = label_histogram(graph)
    by_popularity = sorted(histogram, key=histogram.get, reverse=True)
    china, austria = by_popularity[3], by_popularity[25]

    truth = count_target_edges(graph, china, austria)
    print("Scenario: should the airline open a China <-> Austria route?")
    print(f"'China' users: {histogram[china]}, 'Austria' users: {histogram[austria]}, "
          f"true cross links: {truth} ({100 * truth / graph.num_edges:.3f}% of |E|)")
    print()

    suite = build_algorithm_suite(graph, include_baselines=False)
    table = compare_algorithms(
        graph,
        china,
        austria,
        sample_fractions=[0.01, 0.03, 0.05],
        repetitions=15,
        algorithms=suite,
        seed=99,
        dataset_name="synthetic location OSN",
    )
    print(format_nrmse_table(table, caption="NRMSE of the China-Austria link count"))
    best, value = table.best_algorithm()
    print()
    print(f"Recommended algorithm at a 5%|V| budget: {best} (NRMSE {value:.3f})")


if __name__ == "__main__":
    main()
