"""Quickstart: estimate a labeled-edge count on a synthetic OSN.

Run with::

    python examples/quickstart.py

The script

1. generates a small synthetic social network with binary "gender"
   labels (the Facebook-like stand-in from the dataset registry),
2. estimates the number of female-male friendships with two of the
   paper's algorithms using only 5% of |V| API calls,
3. compares both estimates against the exact ground truth (which the
   estimators never see — they only use the restricted neighbor-list
   API),
4. repeats one estimation on the vectorized CSR walk backend
   (``backend="csr"``), which freezes the graph into numpy arrays and
   is the right choice for large graphs and repeated trials; the
   default ``backend="python"`` keeps the auditable dict-based engine,
   best for small graphs and API-call-trace debugging, and
5. runs a whole NRMSE table cell (many repetitions of one estimation)
   with ``execution="fleet"``: every repetition becomes one walker of a
   vectorized fleet sharing the frozen CSR arrays, with per-walker
   API-call ledgers — the fastest way to reproduce the paper's tables.
"""

import time

from repro import (
    RestrictedGraphAPI,
    count_target_edges,
    estimate_target_edge_count,
    load_dataset,
)
from repro.experiments.algorithms import build_algorithm_suite
from repro.experiments.runner import run_trials


def main() -> None:
    # A Facebook-like graph at 25% of the default reproduction scale
    # (about 1,000 users) so the script finishes in a couple of seconds.
    dataset = load_dataset("facebook", seed=7, scale=0.25)
    graph = dataset.graph
    female, male = 1, 2

    truth = count_target_edges(graph, female, male)
    print(f"graph: {graph.num_nodes} users, {graph.num_edges} friendships")
    print(f"exact number of female-male friendships (hidden from the estimators): {truth}")
    print()

    for algorithm in ("NeighborSample-HH", "NeighborExploration-HH"):
        result = estimate_target_edge_count(
            graph,
            female,
            male,
            algorithm=algorithm,
            budget_fraction=0.05,
            seed=42,
        )
        error = result.relative_error(truth)
        print(f"{algorithm:>24}: estimate = {result.estimate:9.1f}   "
              f"(k = {result.sample_size} samples, {result.api_calls} API calls, "
              f"relative error = {error:.3f})")

    # The same estimation on the vectorized CSR backend: identical
    # charged-API-call accounting, distributionally equivalent estimates,
    # several times faster per walk step.  Freezing the graph into CSR
    # arrays is a one-off cost, so the backend pays off on repeated
    # trials (tables, figures, sweeps) — which is how the experiment
    # harness uses it; a shared API wrapper amortises it here.
    print()
    trials = 10
    for backend in ("python", "csr"):
        api = RestrictedGraphAPI(graph)
        started = time.perf_counter()
        estimates = [
            estimate_target_edge_count(
                api,
                female,
                male,
                algorithm="NeighborSample-HH",
                sample_size=5000,
                burn_in=200,
                seed=42 + trial,
                backend=backend,
            ).estimate
            for trial in range(trials)
        ]
        elapsed = (time.perf_counter() - started) * 1000
        mean = sum(estimates) / trials
        print(f"backend={backend:<7}: mean of {trials} estimates = {mean:9.1f}   "
              f"(relative error = {abs(mean - truth) / truth:.3f}, "
              f"{elapsed / trials:6.1f} ms/trial)")

    # Finally, a whole NRMSE table cell — 200 independent repetitions of
    # one estimation, the paper's setting — run both ways.  Fleet mode
    # turns the cell into one vectorized walker fleet (one walker per
    # repetition), which is how `compare_algorithms` / the CLI's
    # `--execution fleet` reproduce Tables 4-17 in seconds.
    print()
    suite = build_algorithm_suite(graph, include_baselines=False)
    algorithm = "NeighborExploration-HH"
    for execution in ("sequential", "fleet"):
        started = time.perf_counter()
        outcome = run_trials(
            graph,
            female,
            male,
            suite[algorithm],
            algorithm,
            sample_size=max(1, graph.num_nodes // 20),  # 5% of |V|
            repetitions=200,
            burn_in=200,
            seed=42,
            backend="csr",
            execution=execution,
        )
        elapsed = (time.perf_counter() - started) * 1000
        print(f"execution={execution:<10}: cell of {outcome.repetitions} repetitions, "
              f"NRMSE = {outcome.nrmse:.3f}, mean estimate = {outcome.mean_estimate:8.1f} "
              f"({elapsed:7.1f} ms)")


if __name__ == "__main__":
    main()
