"""Quickstart: estimate a labeled-edge count on a synthetic OSN.

Run with::

    python examples/quickstart.py

The script

1. generates a small synthetic social network with binary "gender"
   labels (the Facebook-like stand-in from the dataset registry),
2. estimates the number of female-male friendships with two of the
   paper's algorithms using only 5% of |V| API calls, and
3. compares both estimates against the exact ground truth (which the
   estimators never see — they only use the restricted neighbor-list
   API).
"""

from repro import count_target_edges, estimate_target_edge_count, load_dataset


def main() -> None:
    # A Facebook-like graph at 25% of the default reproduction scale
    # (about 1,000 users) so the script finishes in a couple of seconds.
    dataset = load_dataset("facebook", seed=7, scale=0.25)
    graph = dataset.graph
    female, male = 1, 2

    truth = count_target_edges(graph, female, male)
    print(f"graph: {graph.num_nodes} users, {graph.num_edges} friendships")
    print(f"exact number of female-male friendships (hidden from the estimators): {truth}")
    print()

    for algorithm in ("NeighborSample-HH", "NeighborExploration-HH"):
        result = estimate_target_edge_count(
            graph,
            female,
            male,
            algorithm=algorithm,
            budget_fraction=0.05,
            seed=42,
        )
        error = result.relative_error(truth)
        print(f"{algorithm:>24}: estimate = {result.estimate:9.1f}   "
              f"(k = {result.sample_size} samples, {result.api_calls} API calls, "
              f"relative error = {error:.3f})")


if __name__ == "__main__":
    main()
