"""Letting the library pick the right algorithm (the paper's §5.3 rule, automated).

The paper's guidance: NeighborExploration when target edges are rare,
NeighborSample when they are abundant.  A practitioner does not know the
rarity in advance, so `repro.core.selector` spends a small pilot budget
on NeighborExploration, estimates the relative count, and then commits
the remaining budget to the recommended algorithm.

This script runs the adaptive strategy on one abundant-label setting
(gender labels) and one rare-label setting (tail locations) and shows
which algorithm was chosen in each case.

Run with::

    python examples/adaptive_selection.py
"""

from repro.core.selector import estimate_with_adaptive_selection
from repro.datasets.labeling import assign_zipf_labels
from repro.datasets.registry import load_dataset
from repro.datasets.synthetic import powerlaw_cluster_osn
from repro.graph.statistics import count_target_edges, label_histogram


def report(title, graph, t1, t2, seed):
    truth = count_target_edges(graph, t1, t2)
    outcome = estimate_with_adaptive_selection(graph, t1, t2, sample_size=400, seed=seed)
    print(title)
    print(f"  pilot estimate of F/|E|  : {outcome.pilot_relative_count:.4f} "
          f"(threshold {outcome.threshold})")
    print(f"  selected algorithm       : {outcome.selected_algorithm}")
    print(f"  final estimate           : {outcome.estimate:.1f}   (true F = {truth})")
    if truth:
        print(f"  relative error           : {abs(outcome.estimate - truth) / truth:.3f}")
    print()


def main() -> None:
    # Abundant target edges: gender labels on the Facebook-like stand-in.
    facebook = load_dataset("facebook", seed=13, scale=0.25).graph
    report("Abundant labels (female-male friendships):", facebook, 1, 2, seed=101)

    # Rare target edges: two tail locations on a location-labeled OSN.
    location_graph = powerlaw_cluster_osn(3000, 8, 0.3, rng=14)
    assign_zipf_labels(location_graph, num_labels=100, exponent=1.1, rng=15)
    histogram = label_histogram(location_graph)
    by_popularity = sorted(histogram, key=histogram.get, reverse=True)
    rare_a, rare_b = by_popularity[12], by_popularity[20]
    report(
        f"Rare labels (locations {rare_a} and {rare_b}):",
        location_graph,
        rare_a,
        rare_b,
        seed=102,
    )


if __name__ == "__main__":
    main()
