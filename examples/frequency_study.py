"""How estimation error depends on the rarity of the target edges (Figures 1-2).

This script runs a miniature version of the paper's Figure 1 study: it
takes the Orkut-like dataset, picks label pairs whose target-edge share
spans several orders of magnitude, measures the NRMSE of the five
proposed algorithms at a fixed 5%|V| budget, and prints the series
(optionally plotting it when matplotlib happens to be installed).

Run with::

    python examples/frequency_study.py
"""

from repro.datasets.registry import load_dataset, select_target_pairs
from repro.experiments.reporting import format_frequency_series
from repro.experiments.sweeps import frequency_sweep


def main() -> None:
    dataset = load_dataset("orkut", seed=9, scale=0.15)
    graph = dataset.graph
    pairs = select_target_pairs(graph, count=6, min_target_edges=15)

    print(f"dataset: Orkut stand-in, |V|={graph.num_nodes}, |E|={graph.num_edges}")
    print(f"evaluating {len(pairs)} label pairs at a 5%|V| budget ...")
    points = frequency_sweep(
        graph,
        pairs,
        budget_fraction=0.05,
        repetitions=10,
        seed=17,
    )
    print()
    print(format_frequency_series(points, caption="NRMSE vs relative target-edge count"))
    print()
    rare = points[0]
    frequent = points[-1]
    print("Reading the series:")
    print(f"  rarest pair {rare.target_pair}: F/|E| = {rare.relative_count:.5f}, "
          f"NeighborExploration-HH NRMSE = {rare.nrmse_by_algorithm['NeighborExploration-HH']:.3f}, "
          f"NeighborSample-HH NRMSE = {rare.nrmse_by_algorithm['NeighborSample-HH']:.3f}")
    print(f"  most frequent pair {frequent.target_pair}: F/|E| = {frequent.relative_count:.5f}, "
          f"NeighborExploration-HH NRMSE = {frequent.nrmse_by_algorithm['NeighborExploration-HH']:.3f}, "
          f"NeighborSample-HH NRMSE = {frequent.nrmse_by_algorithm['NeighborSample-HH']:.3f}")

    try:
        import matplotlib.pyplot as plt  # pragma: no cover - optional dependency
    except ImportError:
        print("\n(matplotlib not installed - skipping the plot, the table above is the result)")
        return

    for name in points[0].nrmse_by_algorithm:  # pragma: no cover - optional dependency
        xs = [p.relative_count for p in points]
        ys = [p.nrmse_by_algorithm[name] for p in points]
        plt.plot(xs, ys, marker="o", label=name)
    plt.xscale("log")
    plt.xlabel("relative count of target edges F/|E|")
    plt.ylabel("NRMSE (5%|V| API calls)")
    plt.legend()
    plt.savefig("frequency_study.png", dpi=150)
    print("\nwrote frequency_study.png")


if __name__ == "__main__":
    main()
