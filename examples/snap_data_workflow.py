"""Running the estimators on real SNAP-format data.

The reproduction ships with synthetic stand-ins, but the loaders accept
the exact file formats the paper's datasets are distributed in: a
whitespace-separated edge list (as published by SNAP / KONECT) plus a
``node label [label ...]`` profile file.  Point the two paths below at
real downloads (e.g. ``facebook_combined.txt`` and a gender file) to
rerun the paper's pipeline on the original data.

Without real files the script writes a tiny demonstration dataset to a
temporary directory first, so it always runs.

Run with::

    python examples/snap_data_workflow.py [edge_file] [label_file]
"""

import sys
import tempfile
from pathlib import Path

from repro.core.pipeline import estimate_target_edge_count
from repro.datasets.labeling import assign_binary_labels
from repro.datasets.synthetic import powerlaw_cluster_osn
from repro.graph.io import load_snap_dataset, save_labeled_graph
from repro.graph.statistics import count_target_edges, summarize_graph


def write_demo_files(directory: Path) -> tuple[Path, Path]:
    """Create a small SNAP-style edge list + label file for demonstration."""
    graph = powerlaw_cluster_osn(600, 5, 0.3, rng=3)
    assign_binary_labels(graph, 0.45, labels=(1, 2), rng=4)

    edge_path = directory / "demo_edges.txt"
    label_path = directory / "demo_labels.txt"
    with open(edge_path, "w", encoding="utf-8") as handle:
        handle.write("# demo SNAP-style edge list\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
    with open(label_path, "w", encoding="utf-8") as handle:
        for node in graph.nodes():
            labels = " ".join(str(label) for label in graph.labels_of(node))
            handle.write(f"{node} {labels}\n")
    # Also demonstrate the library's own TSV cache format.
    save_labeled_graph(graph, directory / "demo_graph.tsv")
    return edge_path, label_path


def main() -> None:
    if len(sys.argv) >= 3:
        edge_path, label_path = Path(sys.argv[1]), Path(sys.argv[2])
        print(f"loading real data: {edge_path} + {label_path}")
    else:
        tmp = Path(tempfile.mkdtemp(prefix="repro_snap_demo_"))
        edge_path, label_path = write_demo_files(tmp)
        print(f"no files given; wrote a demo dataset under {tmp}")

    graph = load_snap_dataset(edge_path, label_path)
    summary = summarize_graph(graph, name=edge_path.stem)
    print(f"loaded graph: |V|={summary.num_nodes}, |E|={summary.num_edges}, "
          f"max degree {summary.max_degree}, {summary.num_distinct_labels} labels")

    t1, t2 = 1, 2
    truth = count_target_edges(graph, t1, t2)
    result = estimate_target_edge_count(
        graph, t1, t2, algorithm="NeighborSample-HH", budget_fraction=0.05, seed=1
    )
    print(f"target labels ({t1}, {t2}): true F = {truth}, "
          f"estimated F = {result.estimate:.1f} using {result.api_calls} API calls")


if __name__ == "__main__":
    main()
