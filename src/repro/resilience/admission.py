"""Admission control: a bounded in-flight query counter.

The micro-batcher otherwise accepts unbounded work — under a load
spike every accepted query queues behind the executor and *all* of
them eventually time out.  Bounding admissions turns that into a fast
429 + ``Retry-After`` for the overflow (or a degraded cached answer,
when one matches), while admitted queries keep their latency.

The controller is a counter, not a queue: slots are acquired at submit
and released when the query resolves (answer, error, or
cancellation).  ``Retry-After`` is estimated as one batching window —
the soonest a freed slot could plausibly exist.
"""

from __future__ import annotations

import threading

from repro.exceptions import ConfigurationError, ServiceOverloadedError


class AdmissionController:
    """Bounded in-flight slot counter (thread-safe)."""

    def __init__(self, limit: int, retry_after_seconds: float = 0.25) -> None:
        if limit < 1:
            raise ConfigurationError(f"limit must be >= 1, got {limit}")
        if retry_after_seconds < 0:
            raise ConfigurationError(
                f"retry_after_seconds must be >= 0, got {retry_after_seconds}"
            )
        self.limit = int(limit)
        self.retry_after_seconds = float(retry_after_seconds)
        self._lock = threading.Lock()
        self._in_flight = 0
        self.rejections = 0  # lifetime overflow count, for /stats

    @property
    def depth(self) -> int:
        """Queries currently holding a slot (for ``/healthz``)."""
        with self._lock:
            return self._in_flight

    def try_acquire(self) -> bool:
        """Take a slot if one is free; never blocks."""
        with self._lock:
            if self._in_flight >= self.limit:
                self.rejections += 1
                return False
            self._in_flight += 1
            return True

    def acquire(self) -> None:
        """Take a slot or raise :class:`ServiceOverloadedError` (429)."""
        if not self.try_acquire():
            raise ServiceOverloadedError(
                depth=self.limit,
                limit=self.limit,
                retry_after=self.retry_after_seconds,
            )

    def release(self) -> None:
        """Return a slot.  Must pair with a successful acquire."""
        with self._lock:
            if self._in_flight <= 0:
                raise AssertionError("admission release without acquire")
            self._in_flight -= 1


__all__ = ["AdmissionController"]
