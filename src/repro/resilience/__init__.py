"""Failure policies and deterministic fault injection.

The serving layer (PR 6) made the estimator long-lived; this package
makes it *survivable*.  It contributes two things:

* **Policies** — :class:`Retry` (decorrelated-jitter backoff for
  transient store attaches), :class:`CircuitBreaker` /
  :class:`BreakerBoard` (per-algorithm trip + half-open probing),
  :class:`Deadline` (per-query budgets with cooperative cancellation
  at plan boundaries), and :class:`AdmissionController` (bounded
  in-flight queries → fast 429s).
* **Deterministic chaos** — :class:`FaultPlan` / :class:`FaultInjector`
  and the :func:`fire` hook, which let tests and the CI chaos smoke
  inject delays, errors, and worker kills at named sites with a fully
  reproducible fault trace.

See ``docs/operations.md`` for the runbook view (failure modes, knobs,
client guidance).
"""

from repro.resilience.admission import AdmissionController
from repro.resilience.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerBoard,
    CircuitBreaker,
)
from repro.resilience.deadline import Deadline
from repro.resilience.faults import (
    FAULT_ACTIONS,
    FAULT_SITES,
    FAULTS_ENV,
    FAULTS_STATE_ENV,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    active_injector,
    fire,
    install_injector,
)
from repro.resilience.retry import Retry, is_retryable

__all__ = [
    "AdmissionController",
    "BreakerBoard",
    "CircuitBreaker",
    "Deadline",
    "FAULT_ACTIONS",
    "FAULT_SITES",
    "FAULTS_ENV",
    "FAULTS_STATE_ENV",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "Retry",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "active_injector",
    "fire",
    "install_injector",
    "is_retryable",
]
