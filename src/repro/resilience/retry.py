"""Retry with decorrelated-jitter backoff for transient failures.

Used around CSR store attaches (service install and pool-worker init)
and spill writes: the usual failure there is a short race — a publisher
mid-rewrite, a sidecar being replaced — so a couple of spaced retries
almost always succeed, and correlated retry storms are avoided by the
decorrelated-jitter schedule (each sleep is drawn uniformly from
``[base, 3 * previous]``, capped), the policy AWS popularized in
"Exponential Backoff And Jitter".

Only *retryable* errors are retried: an exception qualifies when its
class carries a truthy ``retryable`` attribute (see
:class:`repro.exceptions.StoreAttachError`).  Everything else —
including deliberate rejections like deadline or breaker errors, which
set ``retryable = False`` — propagates on the first throw.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, List, Optional, TypeVar

from repro.exceptions import ConfigurationError

T = TypeVar("T")


def is_retryable(exc: BaseException) -> bool:
    """Whether a policy may retry after *exc* (opt-in via ``retryable``)."""
    return bool(getattr(exc, "retryable", False))


class Retry:
    """Bounded retry with decorrelated-jitter backoff.

    *attempts* counts total tries (so ``attempts=3`` means at most two
    sleeps).  *base_seconds* seeds the schedule and *cap_seconds* bounds
    every individual sleep.  *sleep*, *rng* are injectable so the tests
    pin exact schedules against a frozen clock; *seed* makes the jitter
    reproducible without threading an RNG through callers.

    Thread-safe: each :meth:`call` uses local schedule state, and the
    shared RNG draw is taken under a lock.
    """

    def __init__(
        self,
        attempts: int = 3,
        base_seconds: float = 0.05,
        cap_seconds: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
        seed: Optional[int] = None,
    ) -> None:
        if attempts < 1:
            raise ConfigurationError(f"attempts must be >= 1, got {attempts}")
        if base_seconds < 0 or cap_seconds < base_seconds:
            raise ConfigurationError(
                f"need 0 <= base_seconds <= cap_seconds, got "
                f"base={base_seconds}, cap={cap_seconds}"
            )
        self.attempts = int(attempts)
        self.base_seconds = float(base_seconds)
        self.cap_seconds = float(cap_seconds)
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random(seed)
        self._rng_lock = threading.Lock()

    def _uniform(self, low: float, high: float) -> float:
        with self._rng_lock:
            return self._rng.uniform(low, high)

    def schedule(self) -> "List[float]":
        """A fresh realization of the sleep schedule (for tests/docs).

        Consumes RNG draws exactly like :meth:`call` does, so a
        seeded :class:`Retry` yields the same schedule both ways.
        """
        sleeps: List[float] = []
        previous = self.base_seconds
        for _ in range(self.attempts - 1):
            previous = min(
                self.cap_seconds, self._uniform(self.base_seconds, previous * 3)
            )
            sleeps.append(previous)
        return sleeps

    def call(self, fn: Callable[[], T], describe: str = "operation") -> T:
        """Run *fn*, retrying retryable errors with backoff.

        The final failure is re-raised unchanged (so the caller still
        sees the typed store error, now post-backoff), and earlier
        failures are attached via ``__context__`` by the re-raise in
        the usual way.
        """
        previous = self.base_seconds
        for attempt in range(1, self.attempts + 1):
            try:
                return fn()
            except BaseException as exc:
                if attempt >= self.attempts or not is_retryable(exc):
                    raise
                previous = min(
                    self.cap_seconds,
                    self._uniform(self.base_seconds, previous * 3),
                )
                self._sleep(previous)
        raise AssertionError(f"unreachable: {describe} fell out of retry loop")


__all__ = ["Retry", "is_retryable"]
