"""Per-algorithm circuit breaker over fleet execution.

The service runs one breaker per sampling algorithm: repeated fleet
failures for an algorithm (a buggy kernel, a poisoned store) should not
keep burning walk budget — and latency — for every caller of that
algorithm while the rest of the service stays healthy.

Classic three-state machine:

``closed``
    Normal operation.  *threshold* **consecutive** failures trip it.
``open``
    Calls are rejected fast (:class:`~repro.exceptions.CircuitOpenError`
    unless the caller degrades to a cached answer) until
    *cooldown_seconds* have elapsed on the injectable monotonic clock.
``half_open``
    After cooldown, exactly one caller is admitted as a probe; its
    success closes the breaker, its failure re-opens it for another
    full cooldown.  Concurrent callers during the probe are rejected.

Callers wrap the protected section with :meth:`admit` /
:meth:`record_success` / :meth:`record_failure` rather than a context
manager so the degraded-serving path can consult breaker state without
executing anything.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.exceptions import ConfigurationError

#: The three breaker states, as reported by ``/healthz`` and ``/stats``.
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing (thread-safe)."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ConfigurationError(f"threshold must be >= 1, got {threshold}")
        if cooldown_seconds < 0:
            raise ConfigurationError(
                f"cooldown_seconds must be >= 0, got {cooldown_seconds}"
            )
        self.threshold = int(threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.trips = 0  # lifetime open transitions, for /stats

    @property
    def state(self) -> str:
        """Current state, refreshing open → half_open on cooldown expiry."""
        with self._lock:
            self._refresh_locked()
            return self._state

    def _refresh_locked(self) -> None:
        if self._state == STATE_OPEN and (
            self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._state = STATE_HALF_OPEN
            self._probe_in_flight = False

    def retry_after(self) -> float:
        """Seconds until the breaker half-opens (0 when not open)."""
        with self._lock:
            self._refresh_locked()
            if self._state != STATE_OPEN:
                return 0.0
            return max(
                0.0, self.cooldown_seconds - (self._clock() - self._opened_at)
            )

    def admit(self) -> bool:
        """Whether the caller may execute now.

        Closed admits everyone; open admits no one; half-open admits
        exactly one probe (the first caller after cooldown) and rejects
        the rest until that probe reports back.
        """
        with self._lock:
            self._refresh_locked()
            if self._state == STATE_CLOSED:
                return True
            if self._state == STATE_HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        """An admitted call succeeded; close (or stay closed)."""
        with self._lock:
            self._state = STATE_CLOSED
            self._consecutive_failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        """An admitted call failed; count toward tripping, or re-open."""
        with self._lock:
            self._refresh_locked()
            if self._state == STATE_HALF_OPEN:
                self._trip_locked()
                return
            self._consecutive_failures += 1
            if (
                self._state == STATE_CLOSED
                and self._consecutive_failures >= self.threshold
            ):
                self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = STATE_OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probe_in_flight = False
        self.trips += 1


class BreakerBoard:
    """The service's per-algorithm breakers, created lazily (thread-safe)."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._threshold = threshold
        self._cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, algorithm: str) -> CircuitBreaker:
        key = str(algorithm)
        with self._lock:
            found = self._breakers.get(key)
            if found is None:
                found = CircuitBreaker(
                    self._threshold, self._cooldown_seconds, self._clock
                )
                self._breakers[key] = found
            return found

    def get(self, algorithm: str) -> Optional[CircuitBreaker]:
        """The breaker for *algorithm* if one exists, without creating it."""
        with self._lock:
            return self._breakers.get(str(algorithm))

    def open_algorithms(self) -> "list[str]":
        """Algorithms whose breaker is currently open (for ``/healthz``)."""
        with self._lock:
            items = list(self._breakers.items())
        return sorted(
            name for name, breaker in items if breaker.state == STATE_OPEN
        )

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-algorithm state + lifetime trip counts (for ``/stats``)."""
        with self._lock:
            items = list(self._breakers.items())
        return {
            name: {"state": breaker.state, "trips": breaker.trips}
            for name, breaker in sorted(items)
        }


__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
]
