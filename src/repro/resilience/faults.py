"""Deterministic fault injection: declarative chaos at named sites.

Every resilience policy in this repo — retries, breakers, deadlines,
worker-pool respawn — is tested against *injected* failures rather than
mocks, so the failure paths exercised in tests are the literal
production code paths.  The layer has three pieces:

* :class:`FaultSpec` — one declarative fault: *where* (a named site),
  *what* (``delay`` / ``error`` / ``kill``), and *when* (``after`` /
  ``count`` / ``probability`` windows over that site's invocation
  sequence).
* :class:`FaultPlan` — an ordered set of specs plus a seed, parsed from
  the ``REPRO_FAULTS`` environment variable (or
  ``ServiceConfig.faults``).  The textual form is
  ``site=action[,key=value...]`` entries joined by ``;``::

      REPRO_FAULTS="seed=7;store.attach=error,count=1;worker.cell=kill,count=1"

* :class:`FaultInjector` — the runtime: library code calls
  :func:`fire` at each site and the injector decides — deterministically
  — whether to sleep, raise, or kill the process.  The decision for
  invocation *i* of a site depends only on ``(plan seed, site, i)``, so
  the same plan against the same workload produces the same fault
  trace, every run (pinned by the injector-determinism tests).

Sites currently wired (grep for ``fire(`` to audit):

========================= ====================================================
``store.attach``          :func:`repro.graph.store.attach_csr`
``fleet.run``             per-plan fleet execution in
                          :class:`repro.service.core.EstimationService`
``batcher.flush``         :class:`repro.service.batcher.MicroBatcher` flushes
``worker.cell``           :func:`repro.experiments.runner` pool workers, per cell
``artifact.verify``       :func:`repro.durability.verify_artifact` manifest
                          checks on every checksummed-``.npz`` open
``journal.append``        :class:`repro.durability.ExperimentJournal` WAL
                          appends, per completed cell
``snapshot.write``        :func:`repro.durability.write_blob` — the answer-cache
                          snapshot path in :mod:`repro.service.core`
========================= ====================================================

Cross-process fire budgets
--------------------------

``count=N`` limits a spec to N fires.  Within one process that is a
counter; across processes (a killed-and-respawned pool worker would
otherwise re-read the env and kill itself again, forever) the budget is
claimed through ``O_CREAT|O_EXCL`` token files under the directory
named by ``REPRO_FAULTS_STATE`` — the first N claimants win, everyone
else passes through.  Chaos runs that spawn workers must set that
variable to a fresh directory (the chaos smoke does).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import (
    ArtifactCorruptError,
    ConfigurationError,
    StoreAttachError,
)
from repro.utils.rng import derive_seed

#: The named injection points library code exposes.
FAULT_SITES: Tuple[str, ...] = (
    "store.attach",
    "fleet.run",
    "batcher.flush",
    "worker.cell",
    "artifact.verify",
    "journal.append",
    "snapshot.write",
)

#: What a spec can do when it fires.
FAULT_ACTIONS: Tuple[str, ...] = ("delay", "error", "kill")

#: Environment variables the ambient injector reads.
FAULTS_ENV = "REPRO_FAULTS"
FAULTS_STATE_ENV = "REPRO_FAULTS_STATE"


class InjectedFaultError(RuntimeError):
    """An ``error`` fault fired.

    Deliberately **not** a :class:`~repro.exceptions.ReproError`: an
    injected error stands in for arbitrary infrastructure failure
    (a crashed kernel, a torn buffer), so it must travel the
    unexpected-exception paths — the HTTP 500 contract, breaker
    accounting — not the validated-input 400 path.
    """


#: Exception classes an ``error`` spec may name via ``exc=``.
_ERROR_TYPES: Dict[str, type] = {
    "InjectedFaultError": InjectedFaultError,
    "StoreAttachError": StoreAttachError,
    "ArtifactCorruptError": ArtifactCorruptError,
    "TimeoutError": TimeoutError,
    "OSError": OSError,
}

#: Default exception per site when ``exc=`` is omitted: attach faults
#: must be *retryable* store errors and verification faults must be
#: *retryable* corruption errors (those are the policies under test);
#: everywhere else simulates an unexpected crash.
_DEFAULT_EXC = {
    "store.attach": "StoreAttachError",
    "artifact.verify": "ArtifactCorruptError",
}


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault at one site.

    The *when* knobs compose over the site's 0-based invocation index
    ``i``: the spec is eligible for ``after <= i`` and fires at most
    ``count`` times (``None`` = unlimited), each eligible invocation
    firing with ``probability`` (decided by the plan's seeded stream,
    not wall-clock randomness).
    """

    site: str
    action: str
    count: Optional[int] = None
    after: int = 0
    probability: float = 1.0
    seconds: float = 0.05
    exc: Optional[str] = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; available: "
                f"{', '.join(FAULT_SITES)}"
            )
        if self.action not in FAULT_ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; available: "
                f"{', '.join(FAULT_ACTIONS)}"
            )
        if self.count is not None and int(self.count) < 0:
            raise ConfigurationError(f"count must be >= 0, got {self.count}")
        if int(self.after) < 0:
            raise ConfigurationError(f"after must be >= 0, got {self.after}")
        if not (0.0 <= float(self.probability) <= 1.0):
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if float(self.seconds) < 0:
            raise ConfigurationError(f"seconds must be >= 0, got {self.seconds}")
        if self.exc is not None and self.exc not in _ERROR_TYPES:
            raise ConfigurationError(
                f"unknown fault exception {self.exc!r}; available: "
                f"{', '.join(_ERROR_TYPES)}"
            )

    def exception_type(self) -> type:
        """The exception class an ``error`` fire raises."""
        name = self.exc or _DEFAULT_EXC.get(self.site, "InjectedFaultError")
        return _ERROR_TYPES[name]


@dataclass(frozen=True)
class FaultEvent:
    """One recorded fire: which spec acted at which site invocation."""

    site: str
    invocation: int
    action: str
    spec_index: int


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`FaultSpec`\\ s plus the decision seed."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` textual form (see module docstring).

        Entries are ``;``-separated.  ``seed=N`` sets the plan seed;
        every other entry is ``site=action`` followed by optional
        ``,key=value`` knobs (``count``, ``after``, ``probability``,
        ``seconds``, ``exc``).  Repeating a site adds another spec —
        all matching specs are evaluated, in plan order, at every
        invocation of that site.
        """
        specs: List[FaultSpec] = []
        seed = 0
        for raw_entry in text.split(";"):
            entry = raw_entry.strip()
            if not entry:
                continue
            head, _, tail = entry.partition("=")
            head = head.strip()
            if head == "seed":
                try:
                    seed = int(tail)
                except ValueError:
                    raise ConfigurationError(f"bad fault-plan seed {tail!r}")
                continue
            parts = [part.strip() for part in tail.split(",")]
            if not parts or not parts[0]:
                raise ConfigurationError(
                    f"bad fault entry {entry!r}; expected site=action[,key=value...]"
                )
            knobs: Dict[str, object] = {"site": head, "action": parts[0]}
            for knob in parts[1:]:
                key, eq, value = knob.partition("=")
                key = key.strip()
                if not eq or key not in (
                    "count", "after", "probability", "seconds", "exc",
                ):
                    raise ConfigurationError(
                        f"bad fault knob {knob!r} in entry {entry!r}"
                    )
                if key == "exc":
                    knobs[key] = value.strip()
                elif key in ("count", "after"):
                    knobs[key] = int(value)
                else:
                    knobs[key] = float(value)
            specs.append(FaultSpec(**knobs))  # type: ignore[arg-type]
        return cls(tuple(specs), seed)

    def describe(self) -> str:
        """Human-readable one-line summary (for logs and ``/stats``)."""
        if not self.specs:
            return "no faults"
        parts = []
        for spec in self.specs:
            windows = []
            if spec.after:
                windows.append(f"after={spec.after}")
            if spec.count is not None:
                windows.append(f"count={spec.count}")
            if spec.probability < 1.0:
                windows.append(f"p={spec.probability}")
            suffix = f" ({', '.join(windows)})" if windows else ""
            parts.append(f"{spec.site}:{spec.action}{suffix}")
        return "; ".join(parts)


class FaultInjector:
    """Runtime that applies a :class:`FaultPlan` at :func:`fire` sites.

    Deterministic: whether invocation *i* of a site fires depends only
    on ``derive_seed(plan.seed, site, i)``, never on wall-clock
    randomness, so the same plan over the same call sequence yields the
    same :attr:`trace`.  Thread-safe (one lock around the counters; the
    actions themselves — sleeping, raising — happen outside it).

    *state_dir* enables cross-process ``count`` budgets (token files,
    see module docstring).  *sleep* and *kill* are injectable for
    tests; the real ``kill`` SIGKILLs the calling process, which is how
    the ``worker.cell`` site turns into a :class:`BrokenProcessPool`
    in the parent.
    """

    def __init__(
        self,
        plan: FaultPlan,
        state_dir: Optional[str] = None,
        sleep: Callable[[float], None] = time.sleep,
        kill: Optional[Callable[[], None]] = None,
    ) -> None:
        self.plan = plan
        self.state_dir = state_dir
        self._sleep = sleep
        self._kill = kill if kill is not None else self._kill_self
        self._lock = threading.Lock()
        self._invocations: Dict[str, int] = {}
        self._fires: Dict[int, int] = {}
        self._events: List[FaultEvent] = []

    @staticmethod
    def _kill_self() -> None:  # pragma: no cover - exercised via subprocess
        os.kill(os.getpid(), signal.SIGKILL)

    @property
    def trace(self) -> Tuple[FaultEvent, ...]:
        """Every fire so far, in order (the determinism probe)."""
        with self._lock:
            return tuple(self._events)

    def invocations(self, site: str) -> int:
        """How many times *site* has been reached in this process."""
        with self._lock:
            return self._invocations.get(site, 0)

    def _chance(self, site: str, invocation: int) -> float:
        """The seeded uniform draw deciding probabilistic fires."""
        return derive_seed(self.plan.seed, site, invocation) / float(2 ** 31)

    def _claim_budget(self, spec_index: int, spec: FaultSpec) -> bool:
        """Claim one fire of *spec*'s ``count`` budget (maybe cross-process)."""
        if spec.count is None:
            return True
        if spec.count == 0:
            return False
        if self.state_dir is not None:
            os.makedirs(self.state_dir, exist_ok=True)
            for slot in range(spec.count):
                token = os.path.join(
                    self.state_dir, f"fault-{spec_index}-{slot}.token"
                )
                try:
                    fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    continue
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.close(fd)
                return True
            return False
        fired = self._fires.get(spec_index, 0)
        if fired >= spec.count:
            return False
        self._fires[spec_index] = fired + 1
        return True

    def fire(self, site: str, **context: object) -> None:
        """Evaluate every matching spec for one invocation of *site*.

        Non-terminal actions (``delay``) apply and evaluation
        continues; terminal ones (``error``, ``kill``) stop it.  The
        *context* kwargs only decorate error messages.
        """
        terminal: Optional[Tuple[FaultSpec, int, int]] = None
        delays: List[float] = []
        with self._lock:
            invocation = self._invocations.get(site, 0)
            self._invocations[site] = invocation + 1
            for spec_index, spec in enumerate(self.plan.specs):
                if spec.site != site or invocation < spec.after:
                    continue
                if spec.probability < 1.0 and (
                    self._chance(site, invocation) >= spec.probability
                ):
                    continue
                if not self._claim_budget(spec_index, spec):
                    continue
                self._events.append(
                    FaultEvent(site, invocation, spec.action, spec_index)
                )
                if spec.action == "delay":
                    delays.append(spec.seconds)
                else:
                    terminal = (spec, spec_index, invocation)
                    break
        for seconds in delays:
            self._sleep(seconds)
        if terminal is None:
            return
        spec, spec_index, invocation = terminal
        if spec.action == "kill":
            self._kill()
            return  # pragma: no cover - only injectable kills return
        detail = "".join(f", {key}={value!r}" for key, value in context.items())
        message = (
            f"injected fault at {site} (invocation {invocation}, "
            f"spec {spec_index}{detail})"
        )
        exc_type = spec.exception_type()
        if exc_type in (StoreAttachError, ArtifactCorruptError):
            raise exc_type(message, location=context.get("location"))
        raise exc_type(message)


# ----------------------------------------------------------------------
# the ambient injector: explicit install beats the environment
# ----------------------------------------------------------------------
_AMBIENT_LOCK = threading.Lock()
_INSTALLED: Optional[FaultInjector] = None
_ENV_CACHE: Tuple[Optional[str], Optional[str], Optional[FaultInjector]] = (
    None, None, None,
)


def install_injector(injector: Optional[FaultInjector]) -> Optional[FaultInjector]:
    """Install *injector* as the process-wide ambient one; returns the old.

    Passing ``None`` uninstalls, after which :func:`active_injector`
    falls back to the ``REPRO_FAULTS`` environment again.
    """
    global _INSTALLED
    with _AMBIENT_LOCK:
        previous = _INSTALLED
        _INSTALLED = injector
        return previous


def active_injector(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[FaultInjector]:
    """The injector :func:`fire` consults, or ``None``.

    An explicitly installed injector wins; otherwise ``REPRO_FAULTS``
    is parsed (and the resulting injector cached until the variable's
    value changes, so counters survive across calls).  Pool workers
    inherit the environment, which is how a single plan string reaches
    every process of a chaos run.
    """
    global _ENV_CACHE
    with _AMBIENT_LOCK:
        if _INSTALLED is not None:
            return _INSTALLED
        env = os.environ if environ is None else environ
        text = env.get(FAULTS_ENV) or None
        state = env.get(FAULTS_STATE_ENV) or None
        cached_text, cached_state, cached = _ENV_CACHE
        if (text, state) != (cached_text, cached_state):
            cached = (
                FaultInjector(FaultPlan.parse(text), state_dir=state)
                if text is not None
                else None
            )
            _ENV_CACHE = (text, state, cached)
        return cached


def fire(site: str, **context: object) -> None:
    """Fire *site* on the ambient injector; a no-op when none is active.

    This is the one-line hook library code places at injection sites —
    zero overhead beyond a dict lookup in fault-free runs.
    """
    injector = active_injector()
    if injector is not None:
        injector.fire(site, **context)


__all__ = [
    "FAULT_ACTIONS",
    "FAULT_SITES",
    "FAULTS_ENV",
    "FAULTS_STATE_ENV",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "active_injector",
    "fire",
    "install_injector",
]
