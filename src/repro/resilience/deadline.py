"""Per-query deadlines with cooperative cancellation.

A :class:`Deadline` is an absolute point on the (injectable) monotonic
clock.  It travels alongside a query from the HTTP layer through the
:class:`~repro.service.batcher.MicroBatcher` into
:meth:`EstimationService.estimate_many`, where the engine *checks* it
at plan boundaries — an expired query is dropped before its walks are
spent rather than interrupted mid-walk (walk kernels are tight numba
loops; cooperative checks at plan granularity keep them signal-free).

Two layers of enforcement:

* the event loop gives up waiting at the deadline and answers 504
  immediately (the caller never waits on a slow fleet), and
* the executor-side check stops charging walk budget to a caller who
  has already been answered.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.exceptions import ConfigurationError, DeadlineExceededError


class Deadline:
    """An absolute monotonic-clock deadline (immutable once created)."""

    __slots__ = ("_expires_at", "_clock", "budget_seconds")

    def __init__(
        self,
        budget_seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_seconds <= 0:
            raise ConfigurationError(
                f"deadline budget must be > 0 seconds, got {budget_seconds}"
            )
        self.budget_seconds = float(budget_seconds)
        self._clock = clock
        self._expires_at = clock() + self.budget_seconds

    def remaining(self) -> float:
        """Seconds left, clamped at zero."""
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def check(self, what: str = "query") -> None:
        """Raise :class:`DeadlineExceededError` if the deadline passed."""
        if self.expired():
            raise DeadlineExceededError(
                f"{what} missed its {self.budget_seconds * 1000.0:.0f} ms "
                f"deadline",
                deadline_seconds=self.budget_seconds,
            )

    @classmethod
    def after_ms(
        cls,
        milliseconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        return cls(milliseconds / 1000.0, clock=clock)

    @classmethod
    def from_optional_ms(
        cls,
        milliseconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> Optional["Deadline"]:
        """``None``-propagating constructor for optional request knobs."""
        if milliseconds is None:
            return None
        return cls.after_ms(milliseconds, clock=clock)


__all__ = ["Deadline"]
