"""Dataset registry: scaled stand-ins for the paper's five OSN crawls.

Each entry of :data:`DATASET_SPECS` describes how to synthesise a graph
whose shape mirrors one of the paper's datasets (Table 1) at laptop
scale, which label model it uses, and which target-label pairs its
experiments evaluate.  :func:`load_dataset` builds (and caches) the
graph, applies the labels and selects the target pairs.

The paper's exact node/edge counts are recorded in the spec
(``paper_num_nodes`` / ``paper_num_edges``) so reports can show the
original scale next to the reproduced one.  To run on the real data
instead, load it with :mod:`repro.graph.io` and bypass this registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import DatasetError
from repro.graph.labeled_graph import Label, LabeledGraph
from repro.graph.statistics import (
    count_target_edges,
    edge_label_histogram,
    summarize_graph,
    GraphSummary,
)
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import check_positive

from repro.datasets.labeling import (
    assign_binary_labels,
    assign_degree_bucket_labels,
    assign_zipf_labels,
    binary_fraction_for_cross_edge_share,
)
from repro.datasets.synthetic import powerlaw_cluster_osn


@dataclass(frozen=True)
class DatasetSpec:
    """How to synthesise one dataset stand-in.

    Attributes
    ----------
    name:
        Registry key (``"facebook"``, ``"googleplus"``, ...).
    paper_name:
        Name used in the paper's Table 1.
    paper_num_nodes / paper_num_edges:
        The original crawl's size, for reporting.
    paper_mixing_time:
        The mixing time the paper measured at ε = 1e-3, for EXPERIMENTS.md.
    num_nodes / edges_per_node / triangle_probability:
        Parameters of the Holme–Kim generator at scale 1.0.
    label_model:
        ``"gender"``, ``"location"`` or ``"degree"``.
    label_params:
        Parameters of the label model (e.g. ``cross_share`` for gender,
        ``num_labels`` and ``exponent`` for locations).
    num_target_pairs:
        How many target-label pairs the paper evaluates on this dataset.
    """

    name: str
    paper_name: str
    paper_num_nodes: int
    paper_num_edges: int
    paper_mixing_time: int
    num_nodes: int
    edges_per_node: int
    triangle_probability: float
    label_model: str
    label_params: Dict[str, float] = field(default_factory=dict)
    num_target_pairs: int = 1
    description: str = ""


@dataclass
class Dataset:
    """A generated dataset: graph + labels + selected target pairs."""

    spec: DatasetSpec
    graph: LabeledGraph
    target_pairs: List[Tuple[Label, Label]]
    target_counts: Dict[Tuple[Label, Label], int]
    seed: int
    scale: float

    @property
    def name(self) -> str:
        """Registry name of the underlying spec."""
        return self.spec.name

    def summary(self) -> GraphSummary:
        """Table 1-style summary of the generated graph."""
        return summarize_graph(self.graph, name=self.spec.paper_name)

    def fraction(self, pair: Tuple[Label, Label]) -> float:
        """Relative target-edge count ``F/|E|`` for *pair*."""
        return self.target_counts[pair] / self.graph.num_edges


DATASET_SPECS: Dict[str, DatasetSpec] = {
    "facebook": DatasetSpec(
        name="facebook",
        paper_name="Facebook",
        paper_num_nodes=4_000,
        paper_num_edges=88_200,
        paper_mixing_time=3_200,
        num_nodes=4_000,
        edges_per_node=22,
        triangle_probability=0.5,
        label_model="gender",
        label_params={"cross_share": 0.424},
        num_target_pairs=1,
        description="Gender labels; abundant target edges (42.4% of all edges).",
    ),
    "googleplus": DatasetSpec(
        name="googleplus",
        paper_name="Google+",
        paper_num_nodes=108_000,
        paper_num_edges=12_200_000,
        paper_mixing_time=200,
        num_nodes=12_000,
        edges_per_node=40,
        triangle_probability=0.3,
        label_model="gender",
        label_params={"cross_share": 0.2689},
        num_target_pairs=1,
        description="Gender labels; abundant target edges (26.9% of all edges).",
    ),
    "pokec": DatasetSpec(
        name="pokec",
        paper_name="Pokec",
        paper_num_nodes=1_600_000,
        paper_num_edges=22_300_000,
        paper_mixing_time=100,
        num_nodes=20_000,
        edges_per_node=14,
        triangle_probability=0.2,
        label_model="location",
        label_params={"num_labels": 150, "exponent": 1.1},
        num_target_pairs=4,
        description="Zipf location labels; very rare target edges (Tables 6-9).",
    ),
    "orkut": DatasetSpec(
        name="orkut",
        paper_name="Orkut",
        paper_num_nodes=3_080_000,
        paper_num_edges=117_000_000,
        paper_mixing_time=800,
        num_nodes=24_000,
        edges_per_node=19,
        triangle_probability=0.2,
        label_model="degree",
        label_params={},
        num_target_pairs=4,
        description="Degree-bucket labels; frequencies span 0.001%-0.7% (Tables 10-13).",
    ),
    "livejournal": DatasetSpec(
        name="livejournal",
        paper_name="Livejournal",
        paper_num_nodes=4_800_000,
        paper_num_edges=42_800_000,
        paper_mixing_time=900,
        num_nodes=24_000,
        edges_per_node=9,
        triangle_probability=0.25,
        label_model="degree",
        label_params={},
        num_target_pairs=4,
        description="Degree-bucket labels; frequencies span 0.001%-4.1% (Tables 14-17).",
    ),
}


def dataset_names() -> List[str]:
    """Registry keys in Table 1 order."""
    return list(DATASET_SPECS)


def _apply_labels(graph: LabeledGraph, spec: DatasetSpec, rng) -> None:
    if spec.label_model == "gender":
        cross_share = spec.label_params.get("cross_share", 0.42)
        probability = binary_fraction_for_cross_edge_share(cross_share)
        homophily = float(spec.label_params.get("homophily", 0.0))
        assign_binary_labels(
            graph, probability, labels=(1, 2), rng=rng, homophily=homophily
        )
    elif spec.label_model == "location":
        assign_zipf_labels(
            graph,
            num_labels=int(spec.label_params.get("num_labels", 150)),
            exponent=float(spec.label_params.get("exponent", 1.1)),
            rng=rng,
        )
    elif spec.label_model == "degree":
        assign_degree_bucket_labels(graph)
    else:
        raise DatasetError(f"unknown label model {spec.label_model!r}")


def select_target_pairs(
    graph: LabeledGraph,
    count: int = 4,
    min_target_edges: int = 20,
    exclude_same_label: bool = True,
) -> List[Tuple[Label, Label]]:
    """Pick *count* label pairs spanning the frequency range (paper §5.2).

    The paper orders all edge labels by target-edge count, splits them
    into ``count`` equal parts and picks one label pair per part.  We do
    the same, deterministically (the median entry of each part), after
    discarding pairs with fewer than *min_target_edges* target edges —
    at the reproduced scale an NRMSE over pairs with a handful of edges
    would be pure noise.
    """
    histogram = [
        (pair, edge_count)
        for pair, edge_count in edge_label_histogram(graph).items()
        if edge_count >= min_target_edges and (not exclude_same_label or pair[0] != pair[1])
    ]
    if not histogram:
        raise DatasetError(
            "no label pair has enough target edges; lower min_target_edges "
            "or enlarge the graph"
        )
    histogram.sort(key=lambda item: (item[1], repr(item[0])))
    if len(histogram) <= count:
        return [pair for pair, _ in histogram]
    pairs: List[Tuple[Label, Label]] = []
    part_size = len(histogram) / count
    for part in range(count):
        start = int(part * part_size)
        end = max(start + 1, int((part + 1) * part_size))
        if part == 0:
            # Take the rarest qualifying pair so the sweep reaches the
            # low-frequency regime the paper studies (Tables 6, 10, 14).
            position = start
        elif part == count - 1:
            # And the most frequent pair at the other end (Tables 9, 13, 17).
            position = end - 1
        else:
            position = (start + end - 1) // 2
        pairs.append(histogram[position][0])
    return pairs


_CACHE: Dict[Tuple[str, int, float], Dataset] = {}


def load_dataset(
    name: str,
    seed: int = 0,
    scale: float = 1.0,
    use_cache: bool = True,
) -> Dataset:
    """Generate (or fetch from cache) one dataset stand-in.

    Parameters
    ----------
    name:
        One of :func:`dataset_names`.
    seed:
        Seed controlling both the topology and the label assignment.
    scale:
        Multiplier on the spec's node count; 1.0 reproduces the default
        laptop-scale size, smaller values speed up tests.
    use_cache:
        Datasets are deterministic in ``(name, seed, scale)``, so they
        are cached in-process by default.
    """
    if name not in DATASET_SPECS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_SPECS)}"
        )
    check_positive(scale, "scale")
    key = (name, int(seed), float(scale))
    if use_cache and key in _CACHE:
        return _CACHE[key]

    spec = DATASET_SPECS[name]
    rng = ensure_rng(seed)
    num_nodes = max(64, int(round(spec.num_nodes * scale)))
    edges_per_node = min(spec.edges_per_node, max(2, num_nodes // 4))
    graph = powerlaw_cluster_osn(
        num_nodes, edges_per_node, spec.triangle_probability, rng=rng
    )
    _apply_labels(graph, spec, rng)

    if spec.label_model == "gender":
        pairs: List[Tuple[Label, Label]] = [(1, 2)]
    else:
        pairs = select_target_pairs(graph, count=spec.num_target_pairs)
    counts = {pair: count_target_edges(graph, pair[0], pair[1]) for pair in pairs}

    dataset = Dataset(
        spec=spec,
        graph=graph,
        target_pairs=pairs,
        target_counts=counts,
        seed=int(seed),
        scale=float(scale),
    )
    if use_cache:
        _CACHE[key] = dataset
    return dataset


def clear_dataset_cache() -> None:
    """Drop all cached datasets (used by tests that tweak specs)."""
    _CACHE.clear()


__all__ = [
    "DatasetSpec",
    "Dataset",
    "DATASET_SPECS",
    "dataset_names",
    "select_target_pairs",
    "load_dataset",
    "clear_dataset_cache",
]
