"""Dataset registry: scaled stand-ins for the paper's five OSN crawls.

Each entry of :data:`DATASET_SPECS` describes how to synthesise a graph
whose shape mirrors one of the paper's datasets (Table 1) at laptop
scale, which label model it uses, and which target-label pairs its
experiments evaluate.  :func:`load_dataset` builds (and caches) the
graph, applies the labels and selects the target pairs.

The paper's exact node/edge counts are recorded in the spec
(``paper_num_nodes`` / ``paper_num_edges``) so reports can show the
original scale next to the reproduced one.  To run on the real data
instead, load it with :mod:`repro.graph.io` and bypass this registry.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import DatasetError
from repro.graph.csr import CSRGraph
from repro.graph.labeled_graph import Label, LabeledGraph
from repro.graph.store import (
    GRAPH_STORES,
    SpillOwnership,
    default_mmap_dir,
    spill_csr_to_mmap,
    track_spill,
    validate_graph_store,
)
from repro.graph.statistics import (
    count_target_edges,
    edge_label_histogram,
    summarize_graph,
    GraphSummary,
)
from repro.utils.rng import RandomSource, derive_seed, ensure_numpy_rng, ensure_rng
from repro.utils.validation import check_positive

from repro.datasets.labeling import (
    assign_binary_labels,
    assign_degree_bucket_labels,
    assign_zipf_labels,
    binary_fraction_for_cross_edge_share,
    binary_label_array,
    degree_bucket_label_array,
    zipf_label_array,
)
from repro.datasets.synthetic import (
    chung_lu_csr,
    powerlaw_cluster_osn,
    powerlaw_degree_sequence,
)

#: Graph substrates :func:`load_dataset` can synthesise.
REPRESENTATIONS: Tuple[str, ...] = ("dict", "csr")


@dataclass(frozen=True)
class DatasetSpec:
    """How to synthesise one dataset stand-in.

    Attributes
    ----------
    name:
        Registry key (``"facebook"``, ``"googleplus"``, ...).
    paper_name:
        Name used in the paper's Table 1.
    paper_num_nodes / paper_num_edges:
        The original crawl's size, for reporting.
    paper_mixing_time:
        The mixing time the paper measured at ε = 1e-3, for EXPERIMENTS.md.
    num_nodes / edges_per_node / triangle_probability:
        Parameters of the Holme–Kim generator at scale 1.0.
    label_model:
        ``"gender"``, ``"location"`` or ``"degree"``.
    label_params:
        Parameters of the label model (e.g. ``cross_share`` for gender,
        ``num_labels`` and ``exponent`` for locations).
    num_target_pairs:
        How many target-label pairs the paper evaluates on this dataset.
    """

    name: str
    paper_name: str
    paper_num_nodes: int
    paper_num_edges: int
    paper_mixing_time: int
    num_nodes: int
    edges_per_node: int
    triangle_probability: float
    label_model: str
    label_params: Dict[str, float] = field(default_factory=dict)
    num_target_pairs: int = 1
    description: str = ""


@dataclass
class Dataset:
    """A generated dataset: graph + labels + selected target pairs.

    ``graph`` is either the dict :class:`LabeledGraph`
    (``representation="dict"``, the reference substrate) or an
    array-native :class:`CSRGraph` (``representation="csr"``, the
    million-node scale path, which never materialises per-node Python
    objects).  :meth:`to_labeled_graph` is the lazy escape hatch from
    the latter back to the former.
    """

    spec: DatasetSpec
    graph: Union[LabeledGraph, CSRGraph]
    target_pairs: List[Tuple[Label, Label]]
    target_counts: Dict[Tuple[Label, Label], int]
    seed: int
    scale: float
    _labeled: Optional[LabeledGraph] = field(default=None, repr=False, compare=False)
    _spill: Optional[SpillOwnership] = field(default=None, repr=False, compare=False)

    @property
    def name(self) -> str:
        """Registry name of the underlying spec."""
        return self.spec.name

    def release(self) -> None:
        """Reclaim any spilled sidecar this dataset owns (idempotent).

        Only meaningful for ``graph_store="mmap"`` datasets; the
        in-process cache calls this from
        :func:`clear_dataset_cache`, and ``use_cache=False`` callers
        own the release themselves (a dropped, unreleased spill warns
        :class:`ResourceWarning`, mirroring the shm publication
        discipline).
        """
        if self._spill is not None:
            self._spill.release()

    @property
    def representation(self) -> str:
        """Which substrate :attr:`graph` uses (``"dict"`` or ``"csr"``)."""
        return "csr" if isinstance(self.graph, CSRGraph) else "dict"

    def to_labeled_graph(self) -> LabeledGraph:
        """The dict-of-sets view of this dataset's graph (lazy, cached).

        For a dict dataset this is :attr:`graph` itself; a CSR dataset
        is converted once (a Python ``O(|V| + |E|)`` loop) and the
        result cached, so the ``backend="python"`` equivalence suites
        can audit the same topology and labels the CSR arrays encode.
        """
        if isinstance(self.graph, LabeledGraph):
            return self.graph
        if self._labeled is None:
            self._labeled = self.graph.to_labeled_graph()
        return self._labeled

    def summary(self) -> GraphSummary:
        """Table 1-style summary of the generated graph."""
        return summarize_graph(self.graph, name=self.spec.paper_name)

    def fraction(self, pair: Tuple[Label, Label]) -> float:
        """Relative target-edge count ``F/|E|`` for *pair*."""
        return self.target_counts[pair] / self.graph.num_edges


DATASET_SPECS: Dict[str, DatasetSpec] = {
    "facebook": DatasetSpec(
        name="facebook",
        paper_name="Facebook",
        paper_num_nodes=4_000,
        paper_num_edges=88_200,
        paper_mixing_time=3_200,
        num_nodes=4_000,
        edges_per_node=22,
        triangle_probability=0.5,
        label_model="gender",
        label_params={"cross_share": 0.424},
        num_target_pairs=1,
        description="Gender labels; abundant target edges (42.4% of all edges).",
    ),
    "googleplus": DatasetSpec(
        name="googleplus",
        paper_name="Google+",
        paper_num_nodes=108_000,
        paper_num_edges=12_200_000,
        paper_mixing_time=200,
        num_nodes=12_000,
        edges_per_node=40,
        triangle_probability=0.3,
        label_model="gender",
        label_params={"cross_share": 0.2689},
        num_target_pairs=1,
        description="Gender labels; abundant target edges (26.9% of all edges).",
    ),
    "pokec": DatasetSpec(
        name="pokec",
        paper_name="Pokec",
        paper_num_nodes=1_600_000,
        paper_num_edges=22_300_000,
        paper_mixing_time=100,
        num_nodes=20_000,
        edges_per_node=14,
        triangle_probability=0.2,
        label_model="location",
        label_params={"num_labels": 150, "exponent": 1.1},
        num_target_pairs=4,
        description="Zipf location labels; very rare target edges (Tables 6-9).",
    ),
    "orkut": DatasetSpec(
        name="orkut",
        paper_name="Orkut",
        paper_num_nodes=3_080_000,
        paper_num_edges=117_000_000,
        paper_mixing_time=800,
        num_nodes=24_000,
        edges_per_node=19,
        triangle_probability=0.2,
        label_model="degree",
        label_params={},
        num_target_pairs=4,
        description="Degree-bucket labels; frequencies span 0.001%-0.7% (Tables 10-13).",
    ),
    "livejournal": DatasetSpec(
        name="livejournal",
        paper_name="Livejournal",
        paper_num_nodes=4_800_000,
        paper_num_edges=42_800_000,
        paper_mixing_time=900,
        num_nodes=24_000,
        edges_per_node=9,
        triangle_probability=0.25,
        label_model="degree",
        label_params={},
        num_target_pairs=4,
        description="Degree-bucket labels; frequencies span 0.001%-4.1% (Tables 14-17).",
    ),
}


def dataset_names() -> List[str]:
    """Registry keys in Table 1 order."""
    return list(DATASET_SPECS)


def _apply_labels(graph: LabeledGraph, spec: DatasetSpec, rng) -> None:
    if spec.label_model == "gender":
        cross_share = spec.label_params.get("cross_share", 0.42)
        probability = binary_fraction_for_cross_edge_share(cross_share)
        homophily = float(spec.label_params.get("homophily", 0.0))
        assign_binary_labels(
            graph, probability, labels=(1, 2), rng=rng, homophily=homophily
        )
    elif spec.label_model == "location":
        assign_zipf_labels(
            graph,
            num_labels=int(spec.label_params.get("num_labels", 150)),
            exponent=float(spec.label_params.get("exponent", 1.1)),
            rng=rng,
        )
    elif spec.label_model == "degree":
        assign_degree_bucket_labels(graph)
    else:
        raise DatasetError(f"unknown label model {spec.label_model!r}")


def select_target_pairs(
    graph: LabeledGraph,
    count: int = 4,
    min_target_edges: int = 20,
    exclude_same_label: bool = True,
) -> List[Tuple[Label, Label]]:
    """Pick *count* label pairs spanning the frequency range (paper §5.2).

    The paper orders all edge labels by target-edge count, splits them
    into ``count`` equal parts and picks one label pair per part.  We do
    the same, deterministically (the median entry of each part), after
    discarding pairs with fewer than *min_target_edges* target edges —
    at the reproduced scale an NRMSE over pairs with a handful of edges
    would be pure noise.
    """
    histogram = [
        (pair, edge_count)
        for pair, edge_count in edge_label_histogram(graph).items()
        if edge_count >= min_target_edges and (not exclude_same_label or pair[0] != pair[1])
    ]
    if not histogram:
        raise DatasetError(
            "no label pair has enough target edges; lower min_target_edges "
            "or enlarge the graph"
        )
    histogram.sort(key=lambda item: (item[1], repr(item[0])))
    if len(histogram) <= count:
        return [pair for pair, _ in histogram]
    pairs: List[Tuple[Label, Label]] = []
    part_size = len(histogram) / count
    for part in range(count):
        start = int(part * part_size)
        end = max(start + 1, int((part + 1) * part_size))
        if part == 0:
            # Take the rarest qualifying pair so the sweep reaches the
            # low-frequency regime the paper studies (Tables 6, 10, 14).
            position = start
        elif part == count - 1:
            # And the most frequent pair at the other end (Tables 9, 13, 17).
            position = end - 1
        else:
            position = (start + end - 1) // 2
        pairs.append(histogram[position][0])
    return pairs


#: Keyed by (name, seed, scale, representation, graph_store) — the store
#: mode is part of the key so a memory-mapped open never aliases (or is
#: aliased by) an in-RAM cache entry for the same dataset.
_CACHE: Dict[Tuple[str, int, float, str, str], Dataset] = {}


def _synthesize_csr(spec: DatasetSpec, seed: int, num_nodes: int, edges_per_node: int) -> CSRGraph:
    """CSR-native synthesis of one dataset stand-in (no dict graph).

    Topology is a Chung–Lu graph over a power-law expected-degree
    sequence with the spec's average degree — the vectorized stand-in
    for the Holme–Kim generator of the dict path (same heavy-tailed
    degree law; no tunable clustering, which none of the estimators
    read).  Labels come from the array labelers.
    """
    nprng = ensure_numpy_rng(derive_seed(seed, spec.name, "csr-topology"))
    weights = powerlaw_degree_sequence(num_nodes, 2.0 * edges_per_node)
    graph = chung_lu_csr(weights, rng=nprng)

    label_rng = ensure_numpy_rng(derive_seed(seed, spec.name, "csr-labels"))
    if spec.label_model == "gender":
        if float(spec.label_params.get("homophily", 0.0)):
            raise DatasetError(
                "the homophilous gender model is sequential; use "
                "representation='dict' for specs with homophily > 0"
            )
        cross_share = spec.label_params.get("cross_share", 0.42)
        probability = binary_fraction_for_cross_edge_share(cross_share)
        labels = binary_label_array(graph.num_nodes, probability, rng=label_rng)
    elif spec.label_model == "location":
        labels = zipf_label_array(
            graph.num_nodes,
            num_labels=int(spec.label_params.get("num_labels", 150)),
            exponent=float(spec.label_params.get("exponent", 1.1)),
            rng=label_rng,
        )
    elif spec.label_model == "degree":
        labels = degree_bucket_label_array(np.asarray(graph.degrees))
    else:
        raise DatasetError(f"unknown label model {spec.label_model!r}")
    return graph.with_labels(label_array=labels)


def load_dataset(
    name: str,
    seed: int = 0,
    scale: float = 1.0,
    use_cache: bool = True,
    representation: str = "dict",
    graph_store: str = "ram",
) -> Dataset:
    """Generate (or fetch from cache) one dataset stand-in.

    Parameters
    ----------
    name:
        One of :func:`dataset_names`.
    seed:
        Seed controlling both the topology and the label assignment.
    scale:
        Multiplier on the spec's node count; 1.0 reproduces the default
        laptop-scale size, smaller values speed up tests.
    use_cache:
        Datasets are deterministic in ``(name, seed, scale,
        representation)``, so they are cached in-process by default.
    representation:
        ``"dict"`` (default) builds the reference :class:`LabeledGraph`
        via networkx; ``"csr"`` assembles a :class:`CSRGraph` with the
        vectorized generator/labeler pipeline — orders of magnitude
        faster and the only practical substrate at paper scale
        (``scale`` large enough for ≥10⁶ nodes).  The two substrates
        sample the same dataset *shape* (degree law, label model,
        target-pair selection) but draw from different random streams,
        so their graphs are statistically, not bitwise, alike.
    graph_store:
        Which buffer store backs a CSR dataset.  ``"ram"`` (default)
        and ``"shm"`` keep the arrays in process RAM (``"shm"``
        publication happens later, at the ``n_jobs`` plane);
        ``"mmap"`` spills the synthesised arrays to an ``.npz`` sidecar
        under :func:`repro.graph.store.default_mmap_dir` and reopens
        them memory-mapped — the graph's adjacency pages in on demand
        and the dataset pickles as an O(1) handle.  The spilled arrays
        are bit-identical to the in-RAM ones (same synthesis streams),
        so experiments agree exactly across stores.  The in-process
        cache is keyed by the store mode, so a memory-mapped open never
        aliases an in-RAM entry.
    """
    if name not in DATASET_SPECS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_SPECS)}"
        )
    if representation not in REPRESENTATIONS:
        raise DatasetError(
            f"unknown representation {representation!r}; "
            f"available: {', '.join(REPRESENTATIONS)}"
        )
    validate_graph_store(graph_store)
    if graph_store != "ram" and representation != "csr":
        raise DatasetError(
            f"graph_store={graph_store!r} needs the array-native substrate; "
            "pass representation='csr'"
        )
    check_positive(scale, "scale")
    key = (name, int(seed), float(scale), representation, graph_store)
    if use_cache and key in _CACHE:
        return _CACHE[key]

    spec = DATASET_SPECS[name]
    num_nodes = max(64, int(round(spec.num_nodes * scale)))
    edges_per_node = min(spec.edges_per_node, max(2, num_nodes // 4))
    graph: Union[LabeledGraph, CSRGraph]
    spill: Optional[SpillOwnership] = None
    if representation == "csr":
        graph = _synthesize_csr(spec, int(seed), num_nodes, edges_per_node)
        if graph_store == "mmap":
            # Spill-and-reattach: synthesis is deterministic in (name,
            # seed, scale), but specs are test-tweakable, so the sidecar
            # is rewritten (atomically, with a blake2b manifest footer
            # that attach verifies per REPRO_VERIFY_ARTIFACTS) rather
            # than trusted when present.  The pid in the name keeps
            # concurrent processes off each other's files and lets
            # sweep_orphan_spills identify files whose spilling process
            # died without releasing them.
            sidecar = default_mmap_dir() / (
                f"{name}-seed{int(seed)}-scale{float(scale)}-pid{os.getpid()}.npz"
            )
            graph = spill_csr_to_mmap(graph, sidecar)
            spill = track_spill(sidecar)
    else:
        rng = ensure_rng(seed)
        graph = powerlaw_cluster_osn(
            num_nodes, edges_per_node, spec.triangle_probability, rng=rng
        )
        _apply_labels(graph, spec, rng)

    if spec.label_model == "gender":
        pairs: List[Tuple[Label, Label]] = [(1, 2)]
    else:
        pairs = select_target_pairs(graph, count=spec.num_target_pairs)
    counts = {pair: count_target_edges(graph, pair[0], pair[1]) for pair in pairs}

    dataset = Dataset(
        spec=spec,
        graph=graph,
        target_pairs=pairs,
        target_counts=counts,
        seed=int(seed),
        scale=float(scale),
        _spill=spill,
    )
    if use_cache:
        _CACHE[key] = dataset
    return dataset


def clear_dataset_cache() -> None:
    """Drop all cached datasets and reclaim their spilled sidecars.

    Used by tests that tweak specs, and by anyone cycling through many
    mmap datasets in one process: releasing each cached dataset deletes
    its ``$REPRO_MMAP_DIR`` spill file (live memmap views stay valid
    until unmapped, POSIX unlink semantics)."""
    for dataset in _CACHE.values():
        dataset.release()
    _CACHE.clear()


__all__ = [
    "DatasetSpec",
    "Dataset",
    "DATASET_SPECS",
    "REPRESENTATIONS",
    "dataset_names",
    "select_target_pairs",
    "load_dataset",
    "clear_dataset_cache",
]
