"""Synthetic OSN topology generators.

The paper's datasets are real crawls (Facebook, Google+, Pokec, Orkut,
LiveJournal).  Without network access we substitute synthetic graphs
whose *relevant* properties match what drives the estimators' accuracy:

* heavy-tailed degree distributions (power-law-ish),
* a single connected component,
* non-trivial clustering (so the line-graph baselines face realistic
  local structure),
* fast-mixing simple random walks.

:func:`powerlaw_cluster_osn` (Holme–Kim) is the default; BA, small-world
and Erdős–Rényi variants exist for tests and sensitivity studies.  All
generators return cleaned :class:`LabeledGraph` instances (largest
connected component, no self-loops or multi-edges) with empty label
sets — labels are layered on by :mod:`repro.datasets.labeling`.
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import ConfigurationError, DatasetError
from repro.graph.cleaning import largest_connected_component
from repro.graph.labeled_graph import LabeledGraph
from repro.utils.rng import RandomSource, ensure_numpy_rng, ensure_rng
from repro.utils.validation import check_positive_int, check_probability


def _from_networkx_cleaned(graph: nx.Graph) -> LabeledGraph:
    """Convert an nx graph and keep the largest connected component."""
    labeled = LabeledGraph()
    for node in graph.nodes():
        labeled.add_node(node)
    for u, v in graph.edges():
        if u != v and not labeled.has_edge(u, v):
            labeled.add_edge(u, v)
    if labeled.num_nodes == 0:
        raise DatasetError("generator produced an empty graph")
    return largest_connected_component(labeled)


def powerlaw_cluster_osn(
    num_nodes: int,
    edges_per_node: int,
    triangle_probability: float = 0.3,
    rng: RandomSource = None,
) -> LabeledGraph:
    """Holme–Kim power-law graph with tunable clustering (the default OSN model)."""
    check_positive_int(num_nodes, "num_nodes")
    check_positive_int(edges_per_node, "edges_per_node")
    check_probability(triangle_probability, "triangle_probability")
    if edges_per_node >= num_nodes:
        raise ConfigurationError("edges_per_node must be smaller than num_nodes")
    seed = ensure_rng(rng).getrandbits(32)
    graph = nx.powerlaw_cluster_graph(
        num_nodes, edges_per_node, triangle_probability, seed=seed
    )
    return _from_networkx_cleaned(graph)


def barabasi_albert_osn(
    num_nodes: int, edges_per_node: int, rng: RandomSource = None
) -> LabeledGraph:
    """Barabási–Albert preferential-attachment graph."""
    check_positive_int(num_nodes, "num_nodes")
    check_positive_int(edges_per_node, "edges_per_node")
    if edges_per_node >= num_nodes:
        raise ConfigurationError("edges_per_node must be smaller than num_nodes")
    seed = ensure_rng(rng).getrandbits(32)
    graph = nx.barabasi_albert_graph(num_nodes, edges_per_node, seed=seed)
    return _from_networkx_cleaned(graph)


def erdos_renyi_osn(
    num_nodes: int, edge_probability: float, rng: RandomSource = None
) -> LabeledGraph:
    """Erdős–Rényi graph (used in tests; not OSN-like but fast and simple)."""
    check_positive_int(num_nodes, "num_nodes")
    check_probability(edge_probability, "edge_probability")
    seed = ensure_rng(rng).getrandbits(32)
    graph = nx.gnp_random_graph(num_nodes, edge_probability, seed=seed)
    return _from_networkx_cleaned(graph)


def small_world_osn(
    num_nodes: int,
    nearest_neighbors: int,
    rewiring_probability: float = 0.1,
    rng: RandomSource = None,
) -> LabeledGraph:
    """Newman–Watts small-world graph (slow-mixing; for burn-in ablations)."""
    check_positive_int(num_nodes, "num_nodes")
    check_positive_int(nearest_neighbors, "nearest_neighbors")
    check_probability(rewiring_probability, "rewiring_probability")
    seed = ensure_rng(rng).getrandbits(32)
    graph = nx.newman_watts_strogatz_graph(
        num_nodes, nearest_neighbors, rewiring_probability, seed=seed
    )
    return _from_networkx_cleaned(graph)


def chung_lu_osn(
    degree_sequence, rng: RandomSource = None
) -> LabeledGraph:
    """Chung–Lu expected-degree graph for matching an observed degree sequence."""
    if not degree_sequence:
        raise ConfigurationError("degree_sequence must be non-empty")
    seed = ensure_rng(rng).getrandbits(32)
    graph = nx.expected_degree_graph(list(degree_sequence), seed=seed, selfloops=False)
    return _from_networkx_cleaned(graph)


__all__ = [
    "powerlaw_cluster_osn",
    "barabasi_albert_osn",
    "erdos_renyi_osn",
    "small_world_osn",
    "chung_lu_osn",
]
