"""Synthetic OSN topology generators.

The paper's datasets are real crawls (Facebook, Google+, Pokec, Orkut,
LiveJournal).  Without network access we substitute synthetic graphs
whose *relevant* properties match what drives the estimators' accuracy:

* heavy-tailed degree distributions (power-law-ish),
* a single connected component,
* non-trivial clustering (so the line-graph baselines face realistic
  local structure),
* fast-mixing simple random walks.

:func:`powerlaw_cluster_osn` (Holme–Kim) is the default; BA, small-world
and Erdős–Rényi variants exist for tests and sensitivity studies.  All
generators return cleaned :class:`LabeledGraph` instances (largest
connected component, no self-loops or multi-edges) with empty label
sets — labels are layered on by :mod:`repro.datasets.labeling`.

The ``*_csr`` twins (:func:`chung_lu_csr`, :func:`barabasi_albert_csr`,
:func:`erdos_renyi_csr`) are the million-node scale path: they emit
numpy edge arrays (:func:`chung_lu_edges` and friends) and assemble a
:class:`~repro.graph.csr.CSRGraph` directly — no networkx object, no
dict graph, no per-node Python loop — then keep the largest component
with the CSR-native cleaner.  They sample the same random-graph *laws*
as their networkx counterparts (enforced statistically by the
degree-distribution KS suite) but draw from a numpy generator, so the
two paths are not bit-identical.
"""

from __future__ import annotations

import numpy as np

import networkx as nx

from repro.exceptions import ConfigurationError, DatasetError
from repro.graph.cleaning import largest_connected_component, largest_connected_component_csr
from repro.graph.csr import CSRGraph
from repro.graph.labeled_graph import LabeledGraph
from repro.utils.rng import RandomSource, ensure_numpy_rng, ensure_rng
from repro.utils.validation import check_positive, check_positive_int, check_probability


def _from_networkx_cleaned(graph: nx.Graph) -> LabeledGraph:
    """Convert an nx graph and keep the largest connected component."""
    labeled = LabeledGraph()
    for node in graph.nodes():
        labeled.add_node(node)
    for u, v in graph.edges():
        if u != v and not labeled.has_edge(u, v):
            labeled.add_edge(u, v)
    if labeled.num_nodes == 0:
        raise DatasetError("generator produced an empty graph")
    return largest_connected_component(labeled)


def powerlaw_cluster_osn(
    num_nodes: int,
    edges_per_node: int,
    triangle_probability: float = 0.3,
    rng: RandomSource = None,
) -> LabeledGraph:
    """Holme–Kim power-law graph with tunable clustering (the default OSN model)."""
    check_positive_int(num_nodes, "num_nodes")
    check_positive_int(edges_per_node, "edges_per_node")
    check_probability(triangle_probability, "triangle_probability")
    if edges_per_node >= num_nodes:
        raise ConfigurationError("edges_per_node must be smaller than num_nodes")
    seed = ensure_rng(rng).getrandbits(32)
    graph = nx.powerlaw_cluster_graph(
        num_nodes, edges_per_node, triangle_probability, seed=seed
    )
    return _from_networkx_cleaned(graph)


def barabasi_albert_osn(
    num_nodes: int, edges_per_node: int, rng: RandomSource = None
) -> LabeledGraph:
    """Barabási–Albert preferential-attachment graph."""
    check_positive_int(num_nodes, "num_nodes")
    check_positive_int(edges_per_node, "edges_per_node")
    if edges_per_node >= num_nodes:
        raise ConfigurationError("edges_per_node must be smaller than num_nodes")
    seed = ensure_rng(rng).getrandbits(32)
    graph = nx.barabasi_albert_graph(num_nodes, edges_per_node, seed=seed)
    return _from_networkx_cleaned(graph)


def erdos_renyi_osn(
    num_nodes: int, edge_probability: float, rng: RandomSource = None
) -> LabeledGraph:
    """Erdős–Rényi graph (used in tests; not OSN-like but fast and simple)."""
    check_positive_int(num_nodes, "num_nodes")
    check_probability(edge_probability, "edge_probability")
    seed = ensure_rng(rng).getrandbits(32)
    graph = nx.gnp_random_graph(num_nodes, edge_probability, seed=seed)
    return _from_networkx_cleaned(graph)


def small_world_osn(
    num_nodes: int,
    nearest_neighbors: int,
    rewiring_probability: float = 0.1,
    rng: RandomSource = None,
) -> LabeledGraph:
    """Newman–Watts small-world graph (slow-mixing; for burn-in ablations)."""
    check_positive_int(num_nodes, "num_nodes")
    check_positive_int(nearest_neighbors, "nearest_neighbors")
    check_probability(rewiring_probability, "rewiring_probability")
    seed = ensure_rng(rng).getrandbits(32)
    graph = nx.newman_watts_strogatz_graph(
        num_nodes, nearest_neighbors, rewiring_probability, seed=seed
    )
    return _from_networkx_cleaned(graph)


def chung_lu_osn(
    degree_sequence, rng: RandomSource = None
) -> LabeledGraph:
    """Chung–Lu expected-degree graph for matching an observed degree sequence."""
    if not degree_sequence:
        raise ConfigurationError("degree_sequence must be non-empty")
    seed = ensure_rng(rng).getrandbits(32)
    graph = nx.expected_degree_graph(list(degree_sequence), seed=seed, selfloops=False)
    return _from_networkx_cleaned(graph)


# ----------------------------------------------------------------------
# CSR-native vectorized generators (the million-node scale path)
# ----------------------------------------------------------------------
def powerlaw_degree_sequence(
    num_nodes: int,
    average_degree: float,
    exponent: float = 2.5,
    max_degree: int | None = None,
) -> np.ndarray:
    """Deterministic power-law expected-degree sequence for Chung–Lu.

    Weights follow ``w_i ∝ (i + i₀)^(−1/(γ−1))`` — the standard
    construction whose realised degree distribution has tail exponent
    ``γ`` — rescaled so the mean equals *average_degree* and capped at
    *max_degree* (default ``√(n·avg)``, the classic cap that keeps
    Chung–Lu edge probabilities below one).  Deterministic by design:
    the randomness of a Chung–Lu graph lives in the edge draws, not the
    weights, so two seeds share the same expected-degree profile.
    """
    check_positive_int(num_nodes, "num_nodes")
    check_positive(average_degree, "average_degree")
    if exponent <= 2.0:
        raise ConfigurationError(
            f"exponent must exceed 2 for a finite mean degree, got {exponent}"
        )
    ranks = np.arange(num_nodes, dtype=np.float64)
    weights = (ranks + 1.0) ** (-1.0 / (exponent - 1.0))
    weights *= average_degree * num_nodes / weights.sum()
    cap = float(max_degree) if max_degree is not None else np.sqrt(average_degree * num_nodes)
    np.minimum(weights, cap, out=weights)
    # Re-normalise after the cap so the mean degree stays on target.
    weights *= average_degree * num_nodes / weights.sum()
    return weights


def chung_lu_edges(degree_sequence, rng: RandomSource = None) -> np.ndarray:
    """Numpy edge array of a Chung–Lu expected-degree graph.

    The Norros–Reittu sampling form: ``S/2`` candidate edges whose
    endpoints are drawn independently proportionally to the weights
    (one ``searchsorted`` over the cumulative weights — no Python
    loop).  Self-loops and duplicates survive here and are collapsed by
    :meth:`CSRGraph.from_edge_array`, exactly like the reference
    ``nx.expected_degree_graph`` path collapses them in the dict
    cleaner.
    """
    weights = np.asarray(list(degree_sequence), dtype=np.float64)
    if weights.size == 0:
        raise ConfigurationError("degree_sequence must be non-empty")
    if (weights < 0).any():
        raise ConfigurationError("degree_sequence entries must be non-negative")
    total = float(weights.sum())
    if total <= 0:
        raise ConfigurationError("degree_sequence must have positive total weight")
    nprng = ensure_numpy_rng(rng)
    num_edges = int(round(total / 2.0))
    cumulative = np.cumsum(weights)
    endpoints = np.searchsorted(
        cumulative, nprng.random(2 * num_edges) * total, side="right"
    )
    # cumsum (sequential) can land a hair below sum() (pairwise); a draw
    # in that float gap would index one past the end.
    np.minimum(endpoints, weights.size - 1, out=endpoints)
    return endpoints.reshape(num_edges, 2).astype(np.int64)


def chung_lu_csr(
    degree_sequence,
    rng: RandomSource = None,
    keep_largest_component: bool = True,
) -> CSRGraph:
    """Chung–Lu graph assembled directly into a :class:`CSRGraph`.

    The CSR-native twin of :func:`chung_lu_osn`: edge endpoints are
    drawn in one vectorized pass, the adjacency is assembled with array
    sorts, and the largest component is kept by the CSR BFS cleaner —
    the whole pipeline allocates no per-node Python objects, which is
    what makes the ≥10⁶-node rungs of the scale ladder runnable.
    """
    weights = np.asarray(list(degree_sequence), dtype=np.float64)
    edges = chung_lu_edges(weights, rng=rng)
    csr = CSRGraph.from_edge_array(edges, num_nodes=int(weights.size))
    return largest_connected_component_csr(csr) if keep_largest_component else csr


def barabasi_albert_edges(
    num_nodes: int, edges_per_node: int, rng: RandomSource = None
) -> np.ndarray:
    """Numpy edge array of a Barabási–Albert preferential-attachment graph.

    Vectorized Batagelj–Brandes: edge ``e`` attaches node ``m + e // m``
    to a uniform draw from the endpoint multiset of all earlier edges —
    which is exactly preferential attachment.  Because every *source*
    endpoint is known in closed form, the uniform draws become pointer
    chains into the edge list that are resolved by repeated numpy
    indexing (expected O(log) rounds), so no Python-level edge loop is
    needed.  Draws are with replacement; the rare duplicate edge is
    collapsed by :meth:`CSRGraph.from_edge_array`, mirroring the dict
    cleaner on the networkx path.
    """
    check_positive_int(num_nodes, "num_nodes")
    check_positive_int(edges_per_node, "edges_per_node")
    if edges_per_node >= num_nodes:
        raise ConfigurationError("edges_per_node must be smaller than num_nodes")
    nprng = ensure_numpy_rng(rng)
    m = edges_per_node
    total_edges = m * (num_nodes - m)
    # Sources in closed form: node m starts with a star over 0..m-1,
    # every later node t contributes m edges with source t.
    edge_index = np.arange(total_edges, dtype=np.int64)
    sources = m + edge_index // m
    dests = np.empty(total_edges, dtype=np.int64)
    dests[:m] = np.arange(m)  # the seed star
    if total_edges > m:
        # Edge e >= m picks position r_e uniform over the endpoints of
        # all *completed* nodes' edges (M[2i] = source_i, M[2i+1] =
        # dest_i, i < m·⌊e/m⌋) — the reference generator also extends
        # its repeated-nodes pool only after a node's batch, which keeps
        # targets strictly below the attaching node (no self-loops).
        pool = 2 * m * (edge_index[m:] // m)
        pointers = (nprng.random(total_edges - m) * pool).astype(np.int64)
        np.minimum(pointers, pool - 1, out=pointers)
        unresolved = edge_index[m:]
        position = pointers
        while unresolved.size:
            is_source = (position & 1) == 0
            referenced = position >> 1
            dests[unresolved[is_source]] = m + referenced[is_source] // m
            # Odd positions reference an earlier *destination*; the seed
            # star's destinations are known, later ones chain onward.
            chased_idx = unresolved[~is_source]
            chased_ref = referenced[~is_source]
            in_star = chased_ref < m
            dests[chased_idx[in_star]] = chased_ref[in_star]
            unresolved = chased_idx[~in_star]
            position = pointers[chased_ref[~in_star] - m]
    return np.stack([sources, dests], axis=1)


def barabasi_albert_csr(
    num_nodes: int,
    edges_per_node: int,
    rng: RandomSource = None,
    keep_largest_component: bool = True,
) -> CSRGraph:
    """Barabási–Albert graph assembled directly into a :class:`CSRGraph`."""
    edges = barabasi_albert_edges(num_nodes, edges_per_node, rng=rng)
    csr = CSRGraph.from_edge_array(edges, num_nodes=num_nodes)
    return largest_connected_component_csr(csr) if keep_largest_component else csr


def erdos_renyi_edges(
    num_nodes: int, edge_probability: float, rng: RandomSource = None
) -> np.ndarray:
    """Numpy edge array of a sparse Erdős–Rényi ``G(n, p)`` graph.

    Draws ``Binomial(n(n−1)/2, p)`` candidate edges as uniform ordered
    pairs with distinct endpoints (each unordered pair is hit with the
    correct uniform probability); the vanishing fraction of duplicate
    pairs is collapsed downstream.  Intended for the sparse regime the
    tests and benches use — dense ``p`` would be quadratic anyway.
    """
    check_positive_int(num_nodes, "num_nodes")
    check_probability(edge_probability, "edge_probability")
    nprng = ensure_numpy_rng(rng)
    possible = num_nodes * (num_nodes - 1) // 2
    count = int(nprng.binomial(possible, edge_probability)) if possible else 0
    u = nprng.integers(0, num_nodes, size=count, dtype=np.int64)
    v = nprng.integers(0, num_nodes - 1, size=count, dtype=np.int64)
    v += v >= u  # uniform over the n−1 endpoints distinct from u
    return np.stack([u, v], axis=1)


def erdos_renyi_csr(
    num_nodes: int,
    edge_probability: float,
    rng: RandomSource = None,
    keep_largest_component: bool = True,
) -> CSRGraph:
    """Erdős–Rényi graph assembled directly into a :class:`CSRGraph`."""
    edges = erdos_renyi_edges(num_nodes, edge_probability, rng=rng)
    csr = CSRGraph.from_edge_array(edges, num_nodes=num_nodes)
    return largest_connected_component_csr(csr) if keep_largest_component else csr


__all__ = [
    "powerlaw_cluster_osn",
    "barabasi_albert_osn",
    "erdos_renyi_osn",
    "small_world_osn",
    "chung_lu_osn",
    "powerlaw_degree_sequence",
    "chung_lu_edges",
    "chung_lu_csr",
    "barabasi_albert_edges",
    "barabasi_albert_csr",
    "erdos_renyi_edges",
    "erdos_renyi_csr",
]
