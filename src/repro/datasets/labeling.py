"""Label-assignment models mirroring the paper's three label types.

The paper uses three kinds of node labels (§5.1):

* **gender** (Facebook, Google+) — essentially binary, with the
  male–female edge share at 42.4% (Facebook) and 26.9% (Google+),
* **location** (Pokec) — hundreds of locations with a heavy-tailed
  popularity distribution; pairs of locations give very rare target
  edges (0.001%–0.03% of all edges),
* **degree bucket** (Orkut, LiveJournal) — the node's degree is used as
  its label because those datasets ship without profiles.

The three functions below reproduce those models on synthetic graphs.
All labels are integers, as in the paper.

Each in-place dict labeler has a vectorized twin
(:func:`binary_label_array`, :func:`zipf_label_array`,
:func:`degree_bucket_label_array`) that draws labels for *all* nodes in
one numpy pass and returns the one-label-per-node array a
:class:`~repro.graph.csr.CSRGraph` carries — the labeling path of the
million-node CSR data plane.  The degree-bucket twin is bit-for-bit
identical to the dict labeler (it is deterministic); the random models
match in distribution (same laws, numpy instead of stdlib draws).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graph.labeled_graph import LabeledGraph, Node
from repro.utils.rng import RandomSource, ensure_numpy_rng, ensure_rng
from repro.utils.validation import check_fraction, check_positive, check_positive_int

#: A synthetic stand-in for the paper's Table 3 (label id -> Slovak location).
#: Only the first few ids carry names; the rest are generated on demand.
POKEC_LOCATIONS: Dict[int, str] = {
    2: "zilinsky kraj, kysucke nove mesto",
    13: "zahranicie, zahranicie - australia",
    20: "kosicky kraj, michalovce",
    24: "trnavsky kraj, trnava",
    51: "trnavsky kraj, skalica",
    86: "bratislavsky kraj, bratislava - nove mesto",
    122: "kosicky kraj, kosice - ostatne",
    135: "banskobystricky kraj, dudince",
}


def binary_fraction_for_cross_edge_share(cross_share: float) -> float:
    """Solve ``2 p (1 − p) = cross_share`` for the smaller root ``p``.

    Under independent binary label assignment with probability ``p`` for
    label 1, the expected share of edges joining a label-1 node to a
    label-2 node is ``2 p (1 − p)``.  This inverts that relationship so
    a synthetic graph can be tuned to the paper's observed edge shares
    (42.4% for Facebook, 26.9% for Google+).
    """
    check_fraction(cross_share, "cross_share")
    if cross_share > 0.5:
        raise ConfigurationError(
            f"cross_share cannot exceed 0.5 under independent assignment, got {cross_share}"
        )
    discriminant = math.sqrt(1.0 - 2.0 * cross_share)
    return (1.0 - discriminant) / 2.0


def assign_binary_labels(
    graph: LabeledGraph,
    label_one_probability: float = 0.5,
    labels: Tuple[int, int] = (1, 2),
    rng: RandomSource = None,
    homophily: float = 0.0,
) -> None:
    """Assign each node one of two labels (gender model), in place.

    Parameters
    ----------
    label_one_probability:
        Probability of assigning ``labels[0]`` when drawing independently.
    labels:
        The two label values; the paper uses ``1`` (female) and ``2``
        (male).
    homophily:
        Probability that a node copies the label of an already-labeled
        neighbor instead of drawing independently.  Real OSN attributes
        are assortative, which matters for the estimators: clustering of
        labels makes ``T(u)/d(u)`` vary across nodes and brings the
        relative behaviour of NeighborSample vs NeighborExploration on
        abundant labels in line with the paper's Facebook/Google+
        tables.  ``0.0`` gives fully independent labels.
    """
    check_fraction(label_one_probability, "label_one_probability")
    if not 0.0 <= homophily < 1.0:
        raise ConfigurationError(f"homophily must be in [0, 1), got {homophily}")
    generator = ensure_rng(rng)
    first, second = labels
    nodes = list(graph.nodes())
    generator.shuffle(nodes)
    assigned: Dict[Node, int] = {}
    for node in nodes:
        chosen: Optional[int] = None
        if homophily and generator.random() < homophily:
            labeled_neighbors = [n for n in graph.neighbors(node) if n in assigned]
            if labeled_neighbors:
                chosen = assigned[generator.choice(labeled_neighbors)]
        if chosen is None:
            chosen = first if generator.random() < label_one_probability else second
        assigned[node] = chosen
        graph.set_labels(node, (chosen,))


def zipf_weights(num_labels: int, exponent: float) -> List[float]:
    """Unnormalised Zipf weights ``1/r^exponent`` for ranks ``1..num_labels``."""
    check_positive_int(num_labels, "num_labels")
    check_positive(exponent, "exponent")
    return [1.0 / (rank**exponent) for rank in range(1, num_labels + 1)]


def assign_zipf_labels(
    graph: LabeledGraph,
    num_labels: int = 200,
    exponent: float = 1.2,
    rng: RandomSource = None,
    label_offset: int = 1,
) -> None:
    """Assign each node one of *num_labels* integer labels with Zipf popularity.

    This is the location model (Pokec): a few labels dominate while the
    tail contains many rare locations, so pairs of tail labels give the
    tiny target-edge fractions the paper evaluates (Tables 6–9).
    Labels are ``label_offset .. label_offset + num_labels − 1``, ordered
    by decreasing popularity.
    """
    generator = ensure_rng(rng)
    weights = zipf_weights(num_labels, exponent)
    total = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)

    def draw() -> int:
        threshold = generator.random()
        # Binary search over the cumulative distribution.
        low, high = 0, len(cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < threshold:
                low = mid + 1
            else:
                high = mid
        return label_offset + low

    for node in graph.nodes():
        graph.set_labels(node, (draw(),))


def default_degree_thresholds(max_degree: int) -> List[int]:
    """Power-of-two bucket boundaries ``1, 2, 4, ...`` up to *max_degree*."""
    thresholds: List[int] = []
    boundary = 1
    while boundary <= max_degree:
        thresholds.append(boundary)
        boundary *= 2
    return thresholds


def assign_degree_bucket_labels(
    graph: LabeledGraph,
    thresholds: Optional[Sequence[int]] = None,
) -> None:
    """Label each node with its degree bucket (Orkut / LiveJournal model).

    The paper uses the node degree itself as the label; bucketing by
    powers of two keeps the number of distinct labels manageable on the
    scaled synthetic graphs while preserving the property that label
    frequency varies over orders of magnitude.  Bucket ``b`` contains
    degrees in ``[thresholds[b], thresholds[b+1])``.
    """
    if thresholds is None:
        thresholds = default_degree_thresholds(max(1, graph.max_degree()))
    thresholds = sorted(set(int(t) for t in thresholds))
    if not thresholds or thresholds[0] < 1:
        raise ConfigurationError("degree thresholds must start at 1 or above")

    def bucket(degree: int) -> int:
        label = 0
        for index, boundary in enumerate(thresholds):
            if degree >= boundary:
                label = index
            else:
                break
        return label

    for node in graph.nodes():
        graph.set_labels(node, (bucket(graph.degree(node)),))


def location_name(label: int) -> str:
    """Human-readable name for a location label (synthetic Table 3)."""
    return POKEC_LOCATIONS.get(label, f"synthetic kraj, okres {label}")


# ----------------------------------------------------------------------
# vectorized array labelers (the CSR-native data plane)
# ----------------------------------------------------------------------
def binary_label_array(
    num_nodes: int,
    label_one_probability: float = 0.5,
    labels: Tuple[int, int] = (1, 2),
    rng: RandomSource = None,
) -> np.ndarray:
    """Gender model for a whole graph in one draw: an ``(n,)`` label array.

    The vectorized twin of :func:`assign_binary_labels` with independent
    assignment (``homophily=0``); the homophilous variant is inherently
    sequential (each node may copy an already-labeled neighbor) and
    stays on the dict path.
    """
    check_positive_int(num_nodes, "num_nodes")
    check_fraction(label_one_probability, "label_one_probability")
    generator = ensure_numpy_rng(rng)
    first, second = labels
    return np.where(
        generator.random(num_nodes) < label_one_probability, first, second
    ).astype(np.int64)


def zipf_label_array(
    num_nodes: int,
    num_labels: int = 200,
    exponent: float = 1.2,
    rng: RandomSource = None,
    label_offset: int = 1,
) -> np.ndarray:
    """Location model for a whole graph in one draw: an ``(n,)`` label array.

    The vectorized twin of :func:`assign_zipf_labels`: one uniform draw
    per node, inverted through the cumulative Zipf weights with a single
    ``searchsorted`` (the dict path's per-node binary search, batched).
    """
    check_positive_int(num_nodes, "num_nodes")
    generator = ensure_numpy_rng(rng)
    weights = np.asarray(zipf_weights(num_labels, exponent))
    cumulative = np.cumsum(weights / weights.sum())
    drawn = np.searchsorted(cumulative, generator.random(num_nodes), side="left")
    np.minimum(drawn, num_labels - 1, out=drawn)  # guard float rounding at 1.0
    return (drawn + label_offset).astype(np.int64)


def degree_bucket_label_array(
    degrees: np.ndarray,
    thresholds: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Degree-bucket model on a degree array: an ``(n,)`` label array.

    Bit-for-bit identical to :func:`assign_degree_bucket_labels` (the
    model is deterministic): bucket ``b`` holds degrees in
    ``[thresholds[b], thresholds[b+1])``, computed for all nodes with
    one ``searchsorted``.  Degrees below every threshold get bucket 0,
    like the dict labeler.
    """
    degrees = np.asarray(degrees)
    if thresholds is None:
        max_degree = int(degrees.max()) if degrees.size else 1
        thresholds = default_degree_thresholds(max(1, max_degree))
    thresholds = sorted(set(int(t) for t in thresholds))
    if not thresholds or thresholds[0] < 1:
        raise ConfigurationError("degree thresholds must start at 1 or above")
    buckets = np.searchsorted(np.asarray(thresholds), degrees, side="right") - 1
    return np.maximum(buckets, 0).astype(np.int64)


__all__ = [
    "POKEC_LOCATIONS",
    "binary_fraction_for_cross_edge_share",
    "assign_binary_labels",
    "binary_label_array",
    "zipf_weights",
    "assign_zipf_labels",
    "zipf_label_array",
    "default_degree_thresholds",
    "assign_degree_bucket_labels",
    "degree_bucket_label_array",
    "location_name",
]
