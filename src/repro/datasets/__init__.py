"""Synthetic OSN datasets standing in for the paper's SNAP/KONECT graphs."""

from repro.datasets.labeling import (
    assign_binary_labels,
    assign_zipf_labels,
    assign_degree_bucket_labels,
    binary_fraction_for_cross_edge_share,
    POKEC_LOCATIONS,
)
from repro.datasets.synthetic import (
    powerlaw_cluster_osn,
    barabasi_albert_osn,
    erdos_renyi_osn,
    small_world_osn,
)
from repro.datasets.registry import (
    Dataset,
    DatasetSpec,
    DATASET_SPECS,
    dataset_names,
    load_dataset,
    select_target_pairs,
)

__all__ = [
    "assign_binary_labels",
    "assign_zipf_labels",
    "assign_degree_bucket_labels",
    "binary_fraction_for_cross_edge_share",
    "POKEC_LOCATIONS",
    "powerlaw_cluster_osn",
    "barabasi_albert_osn",
    "erdos_renyi_osn",
    "small_world_osn",
    "Dataset",
    "DatasetSpec",
    "DATASET_SPECS",
    "dataset_names",
    "load_dataset",
    "select_target_pairs",
]
