"""Exporting experiment results to CSV / JSON.

The reporting module renders human-readable tables; this module writes
machine-readable artifacts so results can be re-plotted or diffed across
runs (the benchmark harness stores text tables, downstream notebooks
usually want CSV).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Union

from repro.experiments.runner import NRMSETable
from repro.experiments.sweeps import FrequencyPoint

PathLike = Union[str, Path]


def nrmse_table_to_rows(table: NRMSETable) -> list:
    """Flatten an :class:`NRMSETable` into one dict per (algorithm, budget) cell."""
    rows = []
    for algorithm, outcomes in table.cells.items():
        for fraction, sample_size, outcome in zip(
            table.sample_fractions, table.sample_sizes, outcomes
        ):
            rows.append(
                {
                    "dataset": table.dataset,
                    "target_pair": str(table.target_pair),
                    "true_count": table.true_count,
                    "algorithm": algorithm,
                    "sample_fraction": fraction,
                    "sample_size": sample_size,
                    "repetitions": outcome.repetitions,
                    "nrmse": outcome.nrmse,
                    "mean_estimate": outcome.mean_estimate,
                    "mean_api_calls": outcome.mean_api_calls,
                }
            )
    return rows


def write_nrmse_table_csv(table: NRMSETable, path: PathLike) -> Path:
    """Write one CSV row per (algorithm, budget) cell of *table*."""
    rows = nrmse_table_to_rows(table)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_nrmse_table_json(table: NRMSETable, path: PathLike) -> Path:
    """Write the table (cells plus metadata) as a JSON document."""
    payload = {
        "dataset": table.dataset,
        "target_pair": list(table.target_pair),
        "true_count": table.true_count,
        "sample_fractions": list(table.sample_fractions),
        "sample_sizes": list(table.sample_sizes),
        "cells": nrmse_table_to_rows(table),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    return path


def frequency_points_to_rows(points: Iterable[FrequencyPoint]) -> list:
    """Flatten Figure 1/2-style points into one dict per (pair, algorithm)."""
    rows = []
    for point in points:
        for algorithm, value in point.nrmse_by_algorithm.items():
            rows.append(
                {
                    "target_pair": str(point.target_pair),
                    "true_count": point.true_count,
                    "relative_count": point.relative_count,
                    "algorithm": algorithm,
                    "nrmse": value,
                }
            )
    return rows


def write_frequency_series_csv(points: Iterable[FrequencyPoint], path: PathLike) -> Path:
    """Write a Figure 1/2 data series as CSV."""
    rows = frequency_points_to_rows(points)
    if not rows:
        raise ValueError("cannot export an empty frequency series")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return path


__all__ = [
    "nrmse_table_to_rows",
    "write_nrmse_table_csv",
    "write_nrmse_table_json",
    "frequency_points_to_rows",
    "write_frequency_series_csv",
]
