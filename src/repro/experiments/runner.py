"""Running repeated estimation trials and collecting NRMSE tables.

Two entry points:

* :func:`run_trials` — one (algorithm, budget) cell: repeat the
  estimation over fresh API wrappers / random streams and summarise.
* :func:`compare_algorithms` — a whole table: every algorithm × every
  budget, returning an :class:`NRMSETable` whose rows mirror Tables 4–17
  of the paper.

Three orthogonal performance knobs:

* ``execution="fleet"`` runs *all repetitions of a cell at once* as one
  vectorized walker fleet over the shared CSR arrays (one walker per
  repetition, per-walker budget ledgers, array-native estimators).
  Every registry algorithm vectorizes: the proposed algorithms through
  the NS/NE fleet samplers, the EX-* baselines through the implicit
  line-graph fleet (:mod:`repro.baselines.fleet`); only hand-written
  runner callables fall back to the sequential loop.
* ``reuse="prefix"`` exploits that a budget-``b₁`` crawl from a given
  seed is a literal prefix of a budget-``b₂ > b₁`` crawl from the same
  seed: one max-budget fleet per (pair, algorithm) and every smaller
  budget column is classified and estimated off trajectory/ledger
  prefixes (:func:`run_trials_prefix`) — sweep walking cost drops from
  O(Σ budgets) to O(max budget).  Applies to the proposed algorithms
  *and* the EX-* baselines (whose prefixes keep the rejected-proposal
  probes in the ledgers); hand-written runners keep fresh walks per
  cell.
* ``n_jobs > 1`` distributes whole cells across worker processes.
  Per-cell seeds are derived with :func:`derive_seed` before
  submission, so the resulting table is identical for any worker count
  and scheduling order.  ``graph_store`` controls how the graph reaches
  the workers: ``"ram"`` pickles it once per worker (the only option
  for dict graphs), while ``"shm"`` / ``"mmap"`` publish the CSR
  buffers once (shared-memory segment / memory-mapped sidecar) and ship
  an O(1) :class:`~repro.graph.store.CSRHandle` that workers reattach
  zero-copy — at the 10⁶-node rung the serialization this avoids dwarfs
  the cell work itself.  The store never touches any random stream, so
  tables are bit-identical across all three stores.

One durability knob: ``journal=`` names an append-only JSONL WAL
(:class:`repro.durability.ExperimentJournal`) that records every
completed cell the moment it finishes, keyed by a suite fingerprint.
``resume=True`` replays the finished cells out of it and re-runs only
the missing ones — bit-identical to an uninterrupted run, because each
cell's seed is pre-derived.
"""

from __future__ import annotations

import math
import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.durability import ExperimentJournal, suite_fingerprint

from repro.baselines.fleet import (
    classify_line_fleet,
    reweighted_estimates,
    run_baseline_fleet,
)
from repro.core.pipeline import ProposedRunner
from repro.core.samplers.csr_backend import (
    explore_nodes_fleet,
    fleet_engine,
    sample_edges_fleet,
    validate_backend,
    validate_execution,
    validate_reuse,
)
from repro.exceptions import ConfigurationError, ExperimentError
from repro.graph.api import RestrictedGraphAPI
from repro.graph.csr import CSRGraph, csr_view, ensure_same_graph
from repro.graph.store import CSRHandle, attach_csr, publish_csr, validate_graph_store
from repro.graph.labeled_graph import Label, LabeledGraph
from repro.graph.statistics import count_target_edges
from repro.resilience.faults import fire
from repro.resilience.retry import Retry
from repro.utils.rng import RandomSource, derive_seed, ensure_numpy_rng, spawn_rngs
from repro.utils.validation import check_positive_int
from repro.walks.mixing import recommended_burn_in

from repro.experiments.algorithms import (
    AlgorithmRunner,
    BaselineRunner,
    build_algorithm_suite,
)
from repro.experiments.metrics import nrmse
from repro.experiments.planner import FleetSpec, PrefixFleet


@dataclass
class TrialOutcome:
    """Summary of repeated estimation runs for one algorithm at one budget."""

    algorithm: str
    sample_size: int
    true_count: int
    estimates: List[float] = field(default_factory=list)
    api_calls: List[int] = field(default_factory=list)

    @property
    def repetitions(self) -> int:
        """Number of independent simulations aggregated."""
        return len(self.estimates)

    @property
    def nrmse(self) -> float:
        """NRMSE of the estimates against the true count."""
        return nrmse(self.estimates, self.true_count)

    @property
    def mean_estimate(self) -> float:
        """Average estimate across repetitions."""
        if not self.estimates:
            raise ExperimentError("no estimates recorded")
        return sum(self.estimates) / len(self.estimates)

    @property
    def mean_api_calls(self) -> float:
        """Average charged API calls per repetition (0 when not recorded)."""
        if not self.api_calls:
            return 0.0
        return sum(self.api_calls) / len(self.api_calls)


@dataclass
class NRMSETable:
    """A reproduced NRMSE table: algorithms × sample sizes.

    ``cells[algorithm][i]`` is the :class:`TrialOutcome` at
    ``sample_sizes[i]``.
    """

    dataset: str
    target_pair: Tuple[Label, Label]
    true_count: int
    sample_sizes: List[int]
    sample_fractions: List[float]
    cells: Dict[str, List[TrialOutcome]] = field(default_factory=dict)

    def nrmse_row(self, algorithm: str) -> List[float]:
        """The NRMSE values of one algorithm across all budgets."""
        return [outcome.nrmse for outcome in self.cells[algorithm]]

    def algorithms(self) -> List[str]:
        """Algorithm names in insertion (paper table) order."""
        return list(self.cells)

    def best_algorithm(self, column: int = -1) -> Tuple[str, float]:
        """The winner (lowest NRMSE) at one budget column; default: the largest."""
        best_name: Optional[str] = None
        best_value = math.inf
        for name, outcomes in self.cells.items():
            value = outcomes[column].nrmse
            if value < best_value:
                best_name, best_value = name, value
        if best_name is None:
            raise ExperimentError("the table has no cells")
        return best_name, best_value


def run_trials(
    graph: LabeledGraph,
    t1: Label,
    t2: Label,
    runner: AlgorithmRunner,
    algorithm_name: str,
    sample_size: int,
    repetitions: int,
    burn_in: int,
    seed: RandomSource = None,
    true_count: Optional[int] = None,
    backend: str = "python",
    csr: Optional[CSRGraph] = None,
    execution: str = "sequential",
) -> TrialOutcome:
    """Repeat one estimation *repetitions* times and summarise.

    With ``execution="sequential"`` (default) every repetition gets a
    fresh :class:`RestrictedGraphAPI` (so API calls and caches do not
    leak across repetitions) and an independent random stream derived
    from *seed*.  With ``backend="csr"`` the CSR arrays are frozen once
    and shared by every repetition (the walks stay independent; only the
    read-only adjacency is reused); callers looping over many cells
    should freeze once and pass *csr* down, as
    :func:`compare_algorithms` does.

    With ``execution="fleet"`` all *repetitions* run as **one**
    vectorized walker fleet over the shared CSR arrays: one walker per
    repetition (each with its own distinct-page ledger, matching the
    fresh wrapper it stands for), vectorized burn-in, and array-native
    ``estimate_batch`` estimators instead of per-sample Python loops.
    Fleet estimates are distributionally equivalent to sequential ones
    (enforced by the KS equivalence suite) but not bit-identical — the
    random streams are consumed walker-by-step instead of
    trial-by-trial.  Any :class:`ProposedRunner` vectorizes through the
    NS/NE fleet samplers — its own sampler kind and estimator
    configuration are honored, custom or registry alike.  Any
    :class:`~repro.experiments.algorithms.BaselineRunner` (the EX-*
    rows) vectorizes through the implicit line-graph fleet
    (:mod:`repro.baselines.fleet`) with its own ``alpha`` / ``delta`` /
    line-max-degree knobs.  Only hand-written runner callables fall
    back to the sequential loop, exactly like ``backend="csr"``.

    Support matrix (``execution`` × walk reuse × graph representation)
    — ``reuse`` lives on :func:`run_trials_prefix` /
    :func:`compare_algorithms`, but the combinations are decided here:

    ========== ========== ============== =================================
    execution  reuse      representation behavior
    ========== ========== ============== =================================
    sequential none       dict           reference path, all runners
    sequential none       csr            **raises** ``ConfigurationError``
                                         (no dict graph to simulate the
                                         restricted API over)
    sequential prefix     dict / csr     registry runners go through
                                         :func:`run_trials_prefix`
                                         fleets; hand-written runners
                                         keep sequential cells (dict
                                         only — csr raises for them)
    fleet      none       dict / csr     registry runners vectorize
                                         (NS/NE fleet or line fleet);
                                         hand-written runners fall back
                                         to sequential (csr raises)
    fleet      prefix     dict / csr     prefix fleets for registry
                                         runners; remaining cells as
                                         ``fleet``/``none``
    ========== ========== ============== =================================

    ``backend`` is orthogonal: it selects the per-walk engine of the
    *sequential* proposed algorithms (``"csr"`` still requires the dict
    graph for the wrapper) and, under ``execution="fleet"``, the fleet
    tier — ``"compiled"`` runs the numba kernels, bit-identical to the
    numpy fleets from the same seed.  :class:`ExperimentConfig`
    enforces the same matrix eagerly for whole experiment runs.
    """
    check_positive_int(sample_size, "sample_size")
    check_positive_int(repetitions, "repetitions")
    validate_backend(backend)
    validate_execution(execution)
    if true_count is None:
        true_count = count_target_edges(graph, t1, t2)
    if true_count <= 0:
        raise ExperimentError(
            f"the target pair ({t1!r}, {t2!r}) has no target edges; NRMSE is undefined"
        )
    if execution == "fleet" and isinstance(runner, ProposedRunner):
        return _run_trials_fleet(
            graph,
            t1,
            t2,
            runner,
            algorithm_name,
            sample_size,
            repetitions,
            burn_in,
            seed,
            true_count,
            csr,
            backend,
        )
    if execution == "fleet" and isinstance(runner, BaselineRunner):
        return _run_trials_fleet_baseline(
            graph,
            t1,
            t2,
            runner,
            algorithm_name,
            sample_size,
            repetitions,
            burn_in,
            seed,
            true_count,
            csr,
            backend,
        )
    if isinstance(graph, CSRGraph):
        raise ConfigurationError(
            "the sequential execution path simulates the restricted API over "
            "the dict graph; pass graph.to_labeled_graph() (or a dict-"
            "representation dataset), or run a registry algorithm with "
            "execution='fleet'"
        )
    outcome = TrialOutcome(
        algorithm=algorithm_name, sample_size=sample_size, true_count=true_count
    )
    # Only pass backend through when non-default, so hand-written runners
    # with the historical 6-argument signature keep working.
    extra = {} if backend == "python" else {"backend": backend}
    shared_csr = csr
    if backend in ("csr", "compiled") and shared_csr is None:
        shared_csr = csr_view(graph)
    for rng in spawn_rngs(seed, repetitions):
        api = RestrictedGraphAPI(graph)
        if shared_csr is not None:
            api.adopt_csr(shared_csr)
        result = runner(api, t1, t2, sample_size, burn_in, rng, **extra)
        outcome.estimates.append(result.estimate)
        outcome.api_calls.append(api.api_calls)
    return outcome


def _run_trials_fleet(
    graph: LabeledGraph,
    t1: Label,
    t2: Label,
    runner: ProposedRunner,
    algorithm_name: str,
    sample_size: int,
    repetitions: int,
    burn_in: int,
    seed: RandomSource,
    true_count: int,
    csr: Optional[CSRGraph],
    backend: str = "python",
) -> TrialOutcome:
    """One (algorithm, budget) cell as a single vectorized walker fleet.

    The sampler kind and estimator come off the *runner* itself, so a
    custom :class:`ProposedRunner` (e.g. a thinning ablation) vectorizes
    with its own configuration rather than a registry lookup's.
    ``backend="compiled"`` drives the fleet with the numba kernels
    (bit-identical to the numpy engine from the same seed).
    """
    shared_csr = ensure_same_graph(csr, graph) if csr is not None else csr_view(graph)
    sampler = sample_edges_fleet if runner.sampler == "edge" else explore_nodes_fleet
    batch = sampler(
        shared_csr,
        t1,
        t2,
        sample_size,
        repetitions,
        burn_in=burn_in,
        rng=ensure_numpy_rng(seed),
        engine=fleet_engine(backend),
    )
    estimates = runner.estimator_factory().estimate_batch(batch)
    return TrialOutcome(
        algorithm=algorithm_name,
        sample_size=sample_size,
        true_count=true_count,
        estimates=[float(value) for value in estimates],
        api_calls=[int(calls) for calls in batch.api_calls],
    )


def _run_trials_fleet_baseline(
    graph: LabeledGraph,
    t1: Label,
    t2: Label,
    runner: BaselineRunner,
    algorithm_name: str,
    sample_size: int,
    repetitions: int,
    burn_in: int,
    seed: RandomSource,
    true_count: int,
    csr: Optional[CSRGraph],
    backend: str = "python",
) -> TrialOutcome:
    """One EX-* (algorithm, budget) cell as a single line-graph fleet.

    The kernel spec — ``alpha`` / ``delta`` / line-max-degree included —
    comes off the wrapped baseline instance, so tuned suites vectorize
    with their own configuration.  Estimates and per-trial ledgers are
    distributionally equivalent to the sequential
    :meth:`LineGraphBaseline.estimate` loop (KS-enforced).
    ``backend="compiled"`` drives the fleet with the numba kernels.
    """
    shared_csr = ensure_same_graph(csr, graph) if csr is not None else csr_view(graph)
    baseline = runner.baseline
    fleet = run_baseline_fleet(
        shared_csr,
        baseline,
        sample_size,
        repetitions,
        burn_in=burn_in,
        rng=ensure_numpy_rng(seed),
        engine=fleet_engine(backend),
    )
    batch = classify_line_fleet(shared_csr, fleet, t1, t2)
    estimates = reweighted_estimates(batch)
    return TrialOutcome(
        algorithm=algorithm_name,
        sample_size=sample_size,
        true_count=true_count,
        estimates=[float(value) for value in estimates],
        api_calls=[int(calls) for calls in batch.api_calls],
    )


def run_trials_prefix(
    graph: LabeledGraph,
    t1: Label,
    t2: Label,
    runner: AlgorithmRunner,
    algorithm_name: str,
    sample_sizes: Sequence[int],
    repetitions: int,
    burn_in: int,
    seed: RandomSource = None,
    true_count: Optional[int] = None,
    csr: Optional[CSRGraph] = None,
    backend: str = "csr",
) -> List[TrialOutcome]:
    """Every budget column of one algorithm from a single max-budget fleet.

    The prefix-reuse engine: a budget-``b`` crawl from a given seed *is*
    the first ``b`` collected steps of a longer crawl from the same
    seed, so one fleet at ``max(sample_sizes)`` steps serves every
    column — smaller budgets are read off trajectory prefixes
    (:meth:`FleetWalkResult.prefix`), classified against the label masks
    and pushed through the estimator's ``estimate_batch``, with the
    per-walker distinct-page ledgers recomputed per prefix so the
    charged-call accounting matches a fleet run to exactly that budget.
    Walk cost is O(max budget) instead of O(Σ budgets).

    Within one call the columns are nested (the budget-``b₁`` estimates
    are computed from a prefix of the budget-``b₂`` walks), exactly as
    if one crawler kept crawling and re-estimated at checkpoints;
    per-column estimate *distributions* are unchanged (KS-checked
    against ``reuse="none"``), only the across-column correlation
    differs from independently re-walked cells.

    Both registry runner kinds vectorize this way:
    :class:`ProposedRunner` cells come off one NS/NE fleet,
    :class:`~repro.experiments.algorithms.BaselineRunner` (EX-*) cells
    off one implicit line-graph fleet — whose prefixes keep the
    rejected-proposal probes in the per-trial ledgers, so a truncated
    MH-family crawl charges exactly what a fresh crawl to that budget
    would.  Hand-written runner callables raise
    :class:`ConfigurationError` (the harness falls back to per-cell
    walks for those).

    The fleet mechanics live in
    :class:`repro.experiments.planner.PrefixFleet`, which is shared
    with the frequency sweeps and the :mod:`repro.service`
    micro-batcher; this function is the table-shaped wrapper (one pair,
    many budgets, :class:`TrialOutcome` rows).

    *backend* selects the fleet execution tier (``"csr"`` numpy,
    ``"compiled"`` numba); the engines are bit-identical from the same
    seed, so every prefix slice — estimates and ledgers — comes out the
    same either way (pinned by the differential suite).
    """
    if not sample_sizes:
        raise ConfigurationError("sample_sizes must not be empty")
    for sample_size in sample_sizes:
        check_positive_int(sample_size, "sample_size")
    validate_backend(backend)
    if true_count is None:
        true_count = count_target_edges(graph, t1, t2)
    if true_count <= 0:
        raise ExperimentError(
            f"the target pair ({t1!r}, {t2!r}) has no target edges; NRMSE is undefined"
        )
    shared_csr = ensure_same_graph(csr, graph) if csr is not None else csr_view(graph)
    fleet = PrefixFleet(
        shared_csr,
        runner,
        FleetSpec(algorithm_name, seed, repetitions, burn_in),
        max(sample_sizes),
        engine=fleet_engine(backend),
    )
    outcomes: List[TrialOutcome] = []
    for sample_size in sample_sizes:
        estimates, api_calls = fleet.estimate(t1, t2, sample_size)
        outcomes.append(
            TrialOutcome(
                algorithm=algorithm_name,
                sample_size=sample_size,
                true_count=true_count,
                estimates=estimates,
                api_calls=api_calls,
            )
        )
    return outcomes


def compare_algorithms(
    graph: LabeledGraph,
    t1: Label,
    t2: Label,
    sample_fractions: Sequence[float],
    repetitions: int,
    algorithms: Optional[Mapping[str, AlgorithmRunner]] = None,
    burn_in: Optional[int] = None,
    seed: RandomSource = 2018,
    dataset_name: str = "dataset",
    progress: Optional[Callable[[str, int, float], None]] = None,
    backend: str = "python",
    execution: str = "sequential",
    n_jobs: int = 1,
    reuse: str = "none",
    graph_store: str = "ram",
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
) -> NRMSETable:
    """Reproduce one NRMSE table: every algorithm at every budget.

    Parameters
    ----------
    graph:
        The labeled graph (full access is needed for the ground truth
        and, if *burn_in* is omitted, the mixing-time-based burn-in).
    t1, t2:
        The target-label pair of the table.
    sample_fractions:
        Budgets as fractions of ``|V|`` (the paper: 0.5%–5%).
    repetitions:
        Independent simulations per cell (the paper: 200).
    algorithms:
        Mapping name -> runner; defaults to the full ten-algorithm suite.
    burn_in:
        Walk burn-in; derived from the graph's mixing time when omitted.
    seed:
        Master seed; cells get deterministic derived streams.
    progress:
        Optional callback ``(algorithm, sample_size, fraction_done)``.
    backend:
        Walk backend: ``"python"``, ``"csr"``, or ``"compiled"``.  For
        the *sequential* proposed algorithms it selects the per-walk
        engine (``"compiled"`` behaves like ``"csr"`` there — the numba
        kernels accelerate fleets only).  Under ``execution="fleet"`` /
        ``reuse="prefix"`` the fleets themselves run on the selected
        tier; ``"compiled"`` is bit-identical to ``"csr"`` from the
        same seed.  The EX-* baselines sequentially run the reference
        line-graph engine regardless, and vectorize on the selected
        tier under fleet/prefix execution.
    execution:
        ``"sequential"`` (one repetition at a time) or ``"fleet"`` (all
        repetitions of a cell as one vectorized walker fleet — NS/NE
        fleets for the proposed algorithms, line-graph fleets for the
        EX-* baselines; see :func:`run_trials`).
    n_jobs:
        Number of worker processes for cell-level parallelism.  Every
        cell's seed is derived with :func:`derive_seed` *before*
        submission, so the table is identical for any worker count and
        scheduling order.  ``n_jobs > 1`` ships the actual runner
        objects to the workers, so it requires picklable runners —
        registry suites (tuned or not) qualify; hand-written closures
        do not and must run with ``n_jobs=1`` (a clear
        :class:`ConfigurationError` is raised otherwise).
    reuse:
        ``"none"`` (default) walks every cell fresh; ``"prefix"`` runs
        one max-budget fleet per registry algorithm — proposed and
        EX-* alike — and reads all smaller budget columns off
        trajectory prefixes (:func:`run_trials_prefix`) — O(max
        budget) walking for the whole row.  Hand-written runners keep
        fresh per-cell walks (and the ``n_jobs`` pool) either way.
    graph_store:
        How ``n_jobs > 1`` workers receive the graph: ``"ram"``
        (default) pickles it once per worker; ``"shm"`` / ``"mmap"``
        publish the CSR buffers once (shared-memory segment /
        memory-mapped sidecar) and ship an O(1) reattach handle — the
        cheap-parallelism path at million-node scale.  Requires a
        :class:`CSRGraph`; irrelevant (and ignored) at ``n_jobs=1``.
        Tables are bit-identical across stores: the store moves bytes,
        never random draws.
    journal:
        Optional path to an append-only experiment journal (WAL).  Every
        completed cell is made durable the moment it finishes (fsync'd
        JSONL, self-checking lines), keyed by a fingerprint of the graph
        content and every run-shaping parameter.  A run that dies
        mid-table leaves the journal behind as resume state.
    resume:
        With *journal*, replay the cells a previous (crashed) run
        already finished and execute only the missing ones.  Because
        cell and fleet seeds are pre-derived, the resumed table is
        bit-identical to an uninterrupted run.  Raises
        :class:`ExperimentError` if the journal belongs to a different
        suite (fingerprint mismatch).
    """
    check_positive_int(n_jobs, "n_jobs")
    validate_backend(backend)
    validate_execution(execution)
    validate_reuse(reuse)
    validate_graph_store(graph_store)
    if algorithms is None:
        if isinstance(graph, CSRGraph) and execution != "fleet" and reuse != "prefix":
            # Without a vectorized execution mode a CSR-native run has
            # no engine for the baselines' line-graph walks.
            algorithms = build_algorithm_suite(include_baselines=False)
        else:
            algorithms = build_algorithm_suite(graph)
    if burn_in is None:
        burn_in = recommended_burn_in(graph, rng=seed)
    true_count = count_target_edges(graph, t1, t2)
    # Freeze the CSR arrays once for the whole table, not once per cell.
    needs_csr = backend in ("csr", "compiled") or execution == "fleet" or reuse == "prefix"
    shared_csr = csr_view(graph) if needs_csr else None

    sample_sizes = [max(1, math.ceil(fraction * graph.num_nodes)) for fraction in sample_fractions]
    table = NRMSETable(
        dataset=dataset_name,
        target_pair=(t1, t2),
        true_count=true_count,
        sample_sizes=sample_sizes,
        sample_fractions=list(sample_fractions),
    )
    outcomes: Dict[Tuple[str, int], TrialOutcome] = {}
    if resume and journal is None:
        raise ConfigurationError("resume=True needs a journal path to replay")
    active_journal: Optional[ExperimentJournal] = None
    if journal is not None:
        # The fingerprint covers the graph content and every parameter
        # that shapes a cell, so a journal can never replay into a run
        # it does not belong to.
        fingerprint = suite_fingerprint(
            graph,
            kind="nrmse-table",
            dataset=dataset_name,
            target_pair=[t1, t2],
            sample_sizes=sample_sizes,
            repetitions=repetitions,
            seed=seed,
            burn_in=burn_in,
            backend=backend,
            execution=execution,
            reuse=reuse,
            algorithms=list(algorithms),
        )
        active_journal = ExperimentJournal(journal, fingerprint, resume=resume)
        for (name, column), record in active_journal.completed_cells().items():
            if (
                name in algorithms
                and isinstance(column, int)
                and 0 <= column < len(sample_sizes)
            ):
                outcomes[(name, column)] = _outcome_from_record(record)

    def record_cell(cell: CellTask, outcome: TrialOutcome) -> None:
        if active_journal is not None:
            active_journal.append_cell(
                outcome.algorithm,
                cell.column,
                outcome.sample_size,
                outcome.true_count,
                outcome.estimates,
                outcome.api_calls,
            )

    prefix_names = [
        name
        for name in algorithms
        if reuse == "prefix"
        and isinstance(algorithms[name], (ProposedRunner, BaselineRunner))
    ]
    total_cells = len(algorithms) * len(sample_sizes)
    done = len(outcomes)
    try:
        for name in prefix_names:
            if all(
                (name, column) in outcomes
                for column in range(len(sample_sizes))
            ):
                continue  # every column of this fleet was replayed
            # A partially journaled fleet re-runs whole: the fleet seed
            # is pre-derived, so recomputed columns are bit-identical to
            # the journaled ones they overwrite.
            row = run_trials_prefix(
                graph,
                t1,
                t2,
                algorithms[name],
                name,
                sample_sizes,
                repetitions,
                burn_in,
                seed=_derive_group_seed(seed, name),
                true_count=true_count,
                csr=shared_csr,
                backend=backend if backend != "python" else "csr",
            )
            for column, outcome in enumerate(row):
                fresh = (name, column) not in outcomes
                outcomes[(name, column)] = outcome
                if fresh:
                    if active_journal is not None:
                        active_journal.append_cell(
                            name,
                            column,
                            outcome.sample_size,
                            outcome.true_count,
                            outcome.estimates,
                            outcome.api_calls,
                        )
                    done += 1
                    if progress is not None:
                        progress(name, outcome.sample_size, done / total_cells)

        cells = [
            CellTask(
                algorithm=name,
                column=column,
                sample_size=sample_size,
                seed=_derive_cell_seed(seed, name, column),
                t1=t1,
                t2=t2,
                repetitions=repetitions,
                burn_in=burn_in,
                true_count=true_count,
                backend=backend,
                execution=execution,
            )
            for name in algorithms
            if name not in prefix_names
            for column, sample_size in enumerate(sample_sizes)
            if (name, column) not in outcomes
        ]
        if cells and n_jobs > 1:

            def pool_progress(
                algorithm: str, sample_size: int, _fraction: float
            ) -> None:
                nonlocal done
                done += 1
                if progress is not None:
                    progress(algorithm, sample_size, done / total_cells)

            outcomes.update(
                run_cells_parallel(
                    graph, algorithms, cells, n_jobs,
                    pool_progress if progress is not None else None,
                    graph_store=graph_store,
                    on_cell=record_cell,
                )
            )
        else:
            for cell in cells:
                outcome = run_cell(
                    graph, algorithms[cell.algorithm], cell, shared_csr
                )
                outcomes[(cell.algorithm, cell.column)] = outcome
                record_cell(cell, outcome)
                done += 1
                if progress is not None:
                    progress(cell.algorithm, cell.sample_size, done / total_cells)
        for name in algorithms:
            table.cells[name] = [
                outcomes[(name, column)] for column in range(len(sample_sizes))
            ]
        if active_journal is not None:
            active_journal.commit(total_cells)
    finally:
        # On failure the journal stays uncommitted — that *is* the
        # resume state a crashed run leaves behind.
        if active_journal is not None:
            active_journal.close()
    return table


def _outcome_from_record(record: Mapping[str, object]) -> TrialOutcome:
    """Rebuild a :class:`TrialOutcome` from a journal ``cell`` record.

    JSON floats round-trip exactly (shortest-repr), so a replayed cell
    is bit-identical to the one the crashed run computed.
    """
    return TrialOutcome(
        algorithm=str(record["algorithm"]),
        sample_size=int(record["sample_size"]),  # type: ignore[arg-type]
        true_count=int(record["true_count"]),  # type: ignore[arg-type]
        estimates=[float(value) for value in record["estimates"]],  # type: ignore[union-attr]
        api_calls=[int(value) for value in record["api_calls"]],  # type: ignore[union-attr]
    )


def _derive_cell_seed(seed: RandomSource, algorithm: str, column: int) -> int:
    """Deterministic per-cell seed so tables are reproducible cell-by-cell."""
    return derive_seed(seed, algorithm, column)


def _derive_group_seed(seed: RandomSource, algorithm: str) -> int:
    """Deterministic seed for one algorithm's whole prefix-reuse fleet."""
    return derive_seed(seed, algorithm, "prefix")


# ----------------------------------------------------------------------
# cell-level process parallelism
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellTask:
    """Everything one worker needs to run one (algorithm, budget) cell.

    Only scalars and labels — the graph and the suite live in per-worker
    globals (:func:`_init_cell_worker`), so submitting a task ships a
    few bytes, not the adjacency.  Shared harness plumbing: both
    :func:`compare_algorithms` and
    :func:`repro.experiments.sweeps.frequency_sweep` build their cells
    with it (deliberately not in ``__all__`` — it is not part of the
    user-facing API).
    """

    algorithm: str
    column: int
    sample_size: int
    seed: int
    t1: Label
    t2: Label
    repetitions: int
    burn_in: int
    true_count: int
    backend: str
    execution: str


def run_cell(
    graph: LabeledGraph,
    runner: AlgorithmRunner,
    cell: CellTask,
    csr: Optional[CSRGraph],
) -> TrialOutcome:
    """Run one :class:`CellTask` through :func:`run_trials`.

    The single unpacking of a cell into a trial run, shared by the
    serial loops (tables and sweeps) and the process-pool workers.
    """
    return run_trials(
        graph,
        cell.t1,
        cell.t2,
        runner,
        cell.algorithm,
        cell.sample_size,
        cell.repetitions,
        cell.burn_in,
        seed=cell.seed,
        true_count=cell.true_count,
        backend=cell.backend,
        csr=csr,
        execution=cell.execution,
    )


#: Per-worker state: the shared graph, its frozen CSR view and the suite.
_WORKER_STATE: Dict[str, object] = {}


def _init_cell_worker(
    graph_ref: Union[LabeledGraph, CSRGraph, CSRHandle],
    suite_blob: bytes,
    needs_csr: bool,
    cache_payload: Optional[Dict] = None,
) -> None:
    """Materialise the per-worker state from what the parent shipped.

    *graph_ref* is either the graph itself (``graph_store="ram"``, one
    pickle per worker) or an O(1) :class:`CSRHandle` that reattaches
    the published buffers zero-copy.  *suite_blob* is the suite pickled
    **once** in the parent — the same bytes serve both the eager
    picklability check and the transfer, so the suite is never
    serialized twice.  *cache_payload* carries the parent's derived
    label caches when the handle could not (a re-published graph keeps
    its pre-existing handle), so workers never repeat the parent's
    O(|E|) classification passes.
    """
    if isinstance(graph_ref, CSRHandle):
        # Attach with backoff: the publisher may be racing a re-publish
        # (sidecar mid-rewrite) and StoreAttachError is retryable.
        handle = graph_ref
        graph_ref = Retry(attempts=3, base_seconds=0.05).call(
            lambda: attach_csr(handle), describe="worker store attach"
        )
        if cache_payload is not None:
            graph_ref.adopt_label_caches(cache_payload)
    _WORKER_STATE["graph"] = graph_ref
    _WORKER_STATE["suite"] = pickle.loads(suite_blob)
    _WORKER_STATE["csr"] = csr_view(graph_ref) if needs_csr else None


def _run_cell_in_worker(cell: CellTask) -> TrialOutcome:
    fire("worker.cell", algorithm=cell.algorithm, column=cell.column)
    suite: Mapping[str, AlgorithmRunner] = _WORKER_STATE["suite"]  # type: ignore[assignment]
    return run_cell(
        _WORKER_STATE["graph"],  # type: ignore[arg-type]
        suite[cell.algorithm],
        cell,
        _WORKER_STATE["csr"],  # type: ignore[arg-type]
    )


def run_cells_parallel(
    graph: LabeledGraph,
    algorithms: Mapping[str, AlgorithmRunner],
    cells: Sequence[CellTask],
    n_jobs: int,
    progress: Optional[Callable[[str, int, float], None]],
    graph_store: str = "ram",
    max_pool_respawns: int = 2,
    on_cell: Optional[Callable[[CellTask, TrialOutcome], None]] = None,
) -> Dict[Tuple[str, int], TrialOutcome]:
    """Run cells across a process pool; results keyed (algorithm, column).

    The workers receive the graph and the *actual* suite — runner
    objects, tuning knobs included — through the pool initializer (one
    transfer per worker, not per cell), so a tuned suite behaves
    identically at any worker count.  Because every cell carries its own
    pre-derived seed, scheduling order cannot change any result, only
    the completion order of the progress callback.  The suite is pickled
    exactly once: the resulting bytes double as the eager picklability
    check (hand-written closure runners fail with a clear error on every
    platform — under ``fork`` they would silently work, under ``spawn``
    they would crash mid-pool) and as the per-worker transfer payload.

    *graph_store* selects the graph transport.  ``"ram"`` pickles the
    graph into each worker (dict graphs have no other option).  For a
    :class:`CSRGraph`, ``"shm"`` publishes the buffers once into a
    shared-memory segment and ``"mmap"`` into a memory-mapped sidecar
    (a graph already mmap-backed re-uses its existing handle for free);
    workers then reattach zero-copy from an O(1) handle.  The published
    resource is released in a ``finally`` block, so a worker crash or a
    raising cell cannot leak a segment.

    A **killed worker** (OOM reaper, SIGKILL, a segfaulting kernel)
    breaks the whole :class:`ProcessPoolExecutor`, which historically
    aborted the table.  Now the break is contained: results that
    completed before the crash are kept, the pool is respawned, and
    only the still-missing cells are resubmitted — at most
    *max_pool_respawns* times before giving up with
    :class:`ExperimentError`.  Because every cell carries its own
    pre-derived seed, a cell re-run after a crash produces bit-identical
    results to an uninterrupted run — recovery cannot change the table
    (pinned by the recovery integration tests).  Exceptions *raised by*
    a cell (as opposed to a dead worker) still propagate immediately;
    they are deterministic and a retry would just repeat them.

    *on_cell* is invoked **in the parent** as each cell's result is
    retained (the experiment-journal hook): it sees every completed
    cell exactly once, including cells that finished before a pool
    break, and never sees a cell that died with its worker.
    """
    validate_graph_store(graph_store)
    suite = dict(algorithms)
    try:
        suite_blob = pickle.dumps(suite)
    except Exception as error:
        raise ConfigurationError(
            "n_jobs > 1 ships the algorithm suite to worker processes, which "
            f"requires picklable runners ({error}); run custom closure-based "
            "suites with n_jobs=1"
        ) from error
    needs_csr = any(
        cell.backend in ("csr", "compiled") or cell.execution == "fleet"
        for cell in cells
    )
    publication = None
    graph_ref: Union[LabeledGraph, CSRGraph, CSRHandle] = graph
    cache_payload: Optional[Dict] = None
    if graph_store != "ram":
        if not isinstance(graph, CSRGraph):
            raise ConfigurationError(
                f"graph_store={graph_store!r} publishes CSR buffers; the dict "
                "graph has none — use representation='csr' (or graph_store='ram')"
            )
        publication = publish_csr(graph, graph_store)
        graph_ref = publication.handle
        if not publication.owns_resource:
            # The graph was already externally backed, so its pre-existing
            # handle was reused — any caches computed *since* it was
            # written are not in it; ship them by value (O(|V|), vs the
            # O(|E|) recompute every worker would otherwise pay).
            exported = graph.export_label_caches()
            if any(exported.values()):
                cache_payload = exported
    outcomes: Dict[Tuple[str, int], TrialOutcome] = {}
    respawns = 0
    try:
        while True:
            pending = [
                cell
                for cell in cells
                if (cell.algorithm, cell.column) not in outcomes
            ]
            if not pending:
                break
            pool_broken = False
            with ProcessPoolExecutor(
                max_workers=n_jobs,
                initializer=_init_cell_worker,
                initargs=(graph_ref, suite_blob, needs_csr, cache_payload),
            ) as pool:
                futures = {
                    pool.submit(_run_cell_in_worker, cell): cell
                    for cell in pending
                }
                for future in as_completed(futures):
                    cell = futures[future]
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        # A worker died (kill/OOM/segfault); every pending
                        # future fails this way.  Keep draining so cells
                        # that finished *before* the break are retained.
                        pool_broken = True
                        continue
                    outcomes[(cell.algorithm, cell.column)] = outcome
                    if on_cell is not None:
                        on_cell(cell, outcome)
                    if progress is not None:
                        progress(
                            cell.algorithm,
                            cell.sample_size,
                            len(outcomes) / len(cells),
                        )
            if pool_broken:
                respawns += 1
                if respawns > max_pool_respawns:
                    missing = len(cells) - len(outcomes)
                    raise ExperimentError(
                        f"worker pool broke {respawns} times running the "
                        f"table ({missing} of {len(cells)} cells still "
                        f"missing); giving up after {max_pool_respawns} "
                        f"respawns"
                    )
    finally:
        if publication is not None:
            publication.close()
            publication.unlink()
    return outcomes


__all__ = [
    "TrialOutcome",
    "NRMSETable",
    "run_trials",
    "run_trials_prefix",
    "compare_algorithms",
]
