"""Running repeated estimation trials and collecting NRMSE tables.

Two entry points:

* :func:`run_trials` — one (algorithm, budget) cell: repeat the
  estimation over fresh API wrappers / random streams and summarise.
* :func:`compare_algorithms` — a whole table: every algorithm × every
  budget, returning an :class:`NRMSETable` whose rows mirror Tables 4–17
  of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ExperimentError
from repro.graph.api import RestrictedGraphAPI
from repro.graph.csr import CSRGraph
from repro.graph.labeled_graph import Label, LabeledGraph
from repro.graph.statistics import count_target_edges
from repro.utils.rng import RandomSource, derive_seed, spawn_rngs
from repro.utils.validation import check_positive_int
from repro.walks.mixing import recommended_burn_in

from repro.experiments.algorithms import AlgorithmRunner, build_algorithm_suite
from repro.experiments.metrics import nrmse


@dataclass
class TrialOutcome:
    """Summary of repeated estimation runs for one algorithm at one budget."""

    algorithm: str
    sample_size: int
    true_count: int
    estimates: List[float] = field(default_factory=list)
    api_calls: List[int] = field(default_factory=list)

    @property
    def repetitions(self) -> int:
        """Number of independent simulations aggregated."""
        return len(self.estimates)

    @property
    def nrmse(self) -> float:
        """NRMSE of the estimates against the true count."""
        return nrmse(self.estimates, self.true_count)

    @property
    def mean_estimate(self) -> float:
        """Average estimate across repetitions."""
        if not self.estimates:
            raise ExperimentError("no estimates recorded")
        return sum(self.estimates) / len(self.estimates)

    @property
    def mean_api_calls(self) -> float:
        """Average charged API calls per repetition (0 when not recorded)."""
        if not self.api_calls:
            return 0.0
        return sum(self.api_calls) / len(self.api_calls)


@dataclass
class NRMSETable:
    """A reproduced NRMSE table: algorithms × sample sizes.

    ``cells[algorithm][i]`` is the :class:`TrialOutcome` at
    ``sample_sizes[i]``.
    """

    dataset: str
    target_pair: Tuple[Label, Label]
    true_count: int
    sample_sizes: List[int]
    sample_fractions: List[float]
    cells: Dict[str, List[TrialOutcome]] = field(default_factory=dict)

    def nrmse_row(self, algorithm: str) -> List[float]:
        """The NRMSE values of one algorithm across all budgets."""
        return [outcome.nrmse for outcome in self.cells[algorithm]]

    def algorithms(self) -> List[str]:
        """Algorithm names in insertion (paper table) order."""
        return list(self.cells)

    def best_algorithm(self, column: int = -1) -> Tuple[str, float]:
        """The winner (lowest NRMSE) at one budget column; default: the largest."""
        best_name: Optional[str] = None
        best_value = math.inf
        for name, outcomes in self.cells.items():
            value = outcomes[column].nrmse
            if value < best_value:
                best_name, best_value = name, value
        if best_name is None:
            raise ExperimentError("the table has no cells")
        return best_name, best_value


def run_trials(
    graph: LabeledGraph,
    t1: Label,
    t2: Label,
    runner: AlgorithmRunner,
    algorithm_name: str,
    sample_size: int,
    repetitions: int,
    burn_in: int,
    seed: RandomSource = None,
    true_count: Optional[int] = None,
    backend: str = "python",
    csr: Optional[CSRGraph] = None,
) -> TrialOutcome:
    """Repeat one estimation *repetitions* times and summarise.

    Every repetition gets a fresh :class:`RestrictedGraphAPI` (so API
    calls and caches do not leak across repetitions) and an independent
    random stream derived from *seed*.  With ``backend="csr"`` the CSR
    arrays are frozen once and shared by every repetition (the walks
    stay independent; only the read-only adjacency is reused); callers
    looping over many cells should freeze once and pass *csr* down, as
    :func:`compare_algorithms` does.
    """
    check_positive_int(sample_size, "sample_size")
    check_positive_int(repetitions, "repetitions")
    if true_count is None:
        true_count = count_target_edges(graph, t1, t2)
    if true_count <= 0:
        raise ExperimentError(
            f"the target pair ({t1!r}, {t2!r}) has no target edges; NRMSE is undefined"
        )
    outcome = TrialOutcome(
        algorithm=algorithm_name, sample_size=sample_size, true_count=true_count
    )
    # Only pass backend through when non-default, so hand-written runners
    # with the historical 6-argument signature keep working.
    extra = {} if backend == "python" else {"backend": backend}
    shared_csr = csr
    if backend == "csr" and shared_csr is None:
        shared_csr = CSRGraph.from_labeled_graph(graph)
    for rng in spawn_rngs(seed, repetitions):
        api = RestrictedGraphAPI(graph)
        if shared_csr is not None:
            api.adopt_csr(shared_csr)
        result = runner(api, t1, t2, sample_size, burn_in, rng, **extra)
        outcome.estimates.append(result.estimate)
        outcome.api_calls.append(api.api_calls)
    return outcome


def compare_algorithms(
    graph: LabeledGraph,
    t1: Label,
    t2: Label,
    sample_fractions: Sequence[float],
    repetitions: int,
    algorithms: Optional[Mapping[str, AlgorithmRunner]] = None,
    burn_in: Optional[int] = None,
    seed: RandomSource = 2018,
    dataset_name: str = "dataset",
    progress: Optional[Callable[[str, int, float], None]] = None,
    backend: str = "python",
) -> NRMSETable:
    """Reproduce one NRMSE table: every algorithm at every budget.

    Parameters
    ----------
    graph:
        The labeled graph (full access is needed for the ground truth
        and, if *burn_in* is omitted, the mixing-time-based burn-in).
    t1, t2:
        The target-label pair of the table.
    sample_fractions:
        Budgets as fractions of ``|V|`` (the paper: 0.5%–5%).
    repetitions:
        Independent simulations per cell (the paper: 200).
    algorithms:
        Mapping name -> runner; defaults to the full ten-algorithm suite.
    burn_in:
        Walk burn-in; derived from the graph's mixing time when omitted.
    seed:
        Master seed; cells get deterministic derived streams.
    progress:
        Optional callback ``(algorithm, sample_size, fraction_done)``.
    backend:
        Walk backend for the proposed algorithms (``"python"`` or
        ``"csr"``).  The EX-* baselines always run the reference engine
        (their MH/MD kernels are not vectorized) and simply ignore the
        selector.
    """
    if algorithms is None:
        algorithms = build_algorithm_suite(graph)
    if burn_in is None:
        burn_in = recommended_burn_in(graph, rng=seed)
    true_count = count_target_edges(graph, t1, t2)
    # Freeze the CSR arrays once for the whole table, not once per cell.
    shared_csr = CSRGraph.from_labeled_graph(graph) if backend == "csr" else None

    sample_sizes = [max(1, math.ceil(fraction * graph.num_nodes)) for fraction in sample_fractions]
    table = NRMSETable(
        dataset=dataset_name,
        target_pair=(t1, t2),
        true_count=true_count,
        sample_sizes=sample_sizes,
        sample_fractions=list(sample_fractions),
    )
    total_cells = len(algorithms) * len(sample_sizes)
    done = 0
    for name, runner in algorithms.items():
        outcomes: List[TrialOutcome] = []
        for column, sample_size in enumerate(sample_sizes):
            cell_seed = _derive_cell_seed(seed, name, column)
            outcomes.append(
                run_trials(
                    graph,
                    t1,
                    t2,
                    runner,
                    name,
                    sample_size,
                    repetitions,
                    burn_in,
                    seed=cell_seed,
                    true_count=true_count,
                    backend=backend,
                    csr=shared_csr,
                )
            )
            done += 1
            if progress is not None:
                progress(name, sample_size, done / total_cells)
        table.cells[name] = outcomes
    return table


def _derive_cell_seed(seed: RandomSource, algorithm: str, column: int) -> int:
    """Deterministic per-cell seed so tables are reproducible cell-by-cell."""
    return derive_seed(seed, algorithm, column)


__all__ = ["TrialOutcome", "NRMSETable", "run_trials", "compare_algorithms"]
