"""Experiment harness: NRMSE measurement, sweeps, paper tables and figures."""

from repro.experiments.metrics import (
    nrmse,
    nrmse_from_estimates,
    bias,
    relative_bias,
    empirical_variance,
    bootstrap_confidence_interval,
)
from repro.experiments.cost import CostProfile, profile_api_costs, format_cost_table
from repro.experiments.export import (
    write_nrmse_table_csv,
    write_nrmse_table_json,
    write_frequency_series_csv,
)
from repro.experiments.algorithms import (
    PAPER_ALGORITHM_ORDER,
    ALL_ALGORITHM_ORDER,
    build_algorithm_suite,
)
from repro.experiments.config import ExperimentConfig, DEFAULT_SAMPLE_FRACTIONS
from repro.experiments.runner import TrialOutcome, NRMSETable, run_trials, compare_algorithms
from repro.experiments.sweeps import sample_size_sweep, frequency_sweep, FrequencyPoint
from repro.experiments.reporting import (
    format_nrmse_table,
    format_summary_table,
    best_algorithms,
)
from repro.experiments.tables import TABLE_DEFINITIONS, run_paper_table, PaperTableResult
from repro.experiments.figures import FIGURE_DEFINITIONS, run_paper_figure, PaperFigureResult

__all__ = [
    "nrmse",
    "nrmse_from_estimates",
    "bias",
    "relative_bias",
    "empirical_variance",
    "bootstrap_confidence_interval",
    "CostProfile",
    "profile_api_costs",
    "format_cost_table",
    "write_nrmse_table_csv",
    "write_nrmse_table_json",
    "write_frequency_series_csv",
    "PAPER_ALGORITHM_ORDER",
    "ALL_ALGORITHM_ORDER",
    "build_algorithm_suite",
    "ExperimentConfig",
    "DEFAULT_SAMPLE_FRACTIONS",
    "TrialOutcome",
    "NRMSETable",
    "run_trials",
    "compare_algorithms",
    "sample_size_sweep",
    "frequency_sweep",
    "FrequencyPoint",
    "format_nrmse_table",
    "format_summary_table",
    "best_algorithms",
    "TABLE_DEFINITIONS",
    "run_paper_table",
    "PaperTableResult",
    "FIGURE_DEFINITIONS",
    "run_paper_figure",
    "PaperFigureResult",
]
