"""API-cost profiling: what a sample budget actually costs in page downloads.

The paper's budget axis equates one walk sample with one API call, which
is exact for NeighborSample but optimistic for NeighborExploration (each
explored node also downloads the profile pages of its neighbors) and for
the line-graph baselines (one ``G'`` step reads two friend lists).  This
module measures the *charged* API calls of every algorithm at a given
sample budget, so the trade-off accuracy-vs-crawl-cost can be reported
explicitly (the `bench_api_cost` benchmark and EXPERIMENTS.md use it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.experiments.algorithms import AlgorithmRunner, build_algorithm_suite
from repro.graph.api import RestrictedGraphAPI
from repro.graph.labeled_graph import Label, LabeledGraph
from repro.utils.rng import RandomSource, spawn_rngs
from repro.utils.validation import check_positive_int
from repro.walks.mixing import recommended_burn_in


@dataclass(frozen=True)
class CostProfile:
    """Charged API calls of one algorithm at one sample budget."""

    algorithm: str
    sample_size: int
    mean_api_calls: float
    calls_per_sample: float
    mean_estimate: float


def profile_api_costs(
    graph: LabeledGraph,
    t1: Label,
    t2: Label,
    sample_size: int,
    repetitions: int = 3,
    algorithms: Optional[Mapping[str, AlgorithmRunner]] = None,
    burn_in: Optional[int] = None,
    seed: RandomSource = 7,
) -> Dict[str, CostProfile]:
    """Measure charged API calls per algorithm for a fixed sample budget.

    Every repetition uses a fresh, caching API wrapper (distinct page
    downloads are charged once, as in the paper's accounting).
    """
    check_positive_int(sample_size, "sample_size")
    check_positive_int(repetitions, "repetitions")
    if algorithms is None:
        algorithms = build_algorithm_suite(graph)
    if burn_in is None:
        burn_in = recommended_burn_in(graph, rng=seed)

    profiles: Dict[str, CostProfile] = {}
    for name, runner in algorithms.items():
        calls = []
        estimates = []
        for rng in spawn_rngs(seed, repetitions):
            api = RestrictedGraphAPI(graph)
            result = runner(api, t1, t2, sample_size, burn_in, rng)
            calls.append(api.api_calls)
            estimates.append(result.estimate)
        mean_calls = sum(calls) / len(calls)
        profiles[name] = CostProfile(
            algorithm=name,
            sample_size=sample_size,
            mean_api_calls=mean_calls,
            calls_per_sample=mean_calls / sample_size,
            mean_estimate=sum(estimates) / len(estimates),
        )
    return profiles


def format_cost_table(profiles: Mapping[str, CostProfile]) -> str:
    """Render cost profiles as a fixed-width text table."""
    lines = [
        f"{'Algorithm':<26}{'k':>8}{'mean API calls':>18}{'calls per sample':>20}",
    ]
    for profile in profiles.values():
        lines.append(
            f"{profile.algorithm:<26}{profile.sample_size:>8}"
            f"{profile.mean_api_calls:>18.1f}{profile.calls_per_sample:>20.2f}"
        )
    return "\n".join(lines)


__all__ = ["CostProfile", "profile_api_costs", "format_cost_table"]
