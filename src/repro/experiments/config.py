"""Experiment configuration shared by the tables, figures and the CLI.

The defaults mirror the paper's set-up: sample sizes from 0.5% to 5% of
``|V|`` in steps of 0.5%, NRMSE averaged over 200 independent
simulations.  200 repetitions over 10 budgets and 10 algorithms is a lot
of walking, so the benchmark harness and the CLI expose lighter presets;
``ExperimentConfig.paper_faithful()`` restores the full setting.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.core.samplers.csr_backend import validate_backend
from repro.exceptions import ConfigurationError
from repro.utils.validation import check_fraction, check_positive_int

#: 0.5% .. 5.0% of |V|, the x-axis of every NRMSE table in the paper.
DEFAULT_SAMPLE_FRACTIONS: Tuple[float, ...] = tuple(
    round(0.005 * step, 4) for step in range(1, 11)
)

#: Environment variables that let CI / benches shrink the workload
#: without editing code.
ENV_REPETITIONS = "REPRO_REPETITIONS"
ENV_SCALE = "REPRO_DATASET_SCALE"


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one table/figure reproduction run.

    Attributes
    ----------
    dataset:
        Registry name of the dataset stand-in (``repro.datasets``).
    target_pair_index:
        Which of the dataset's selected target pairs to use (the paper
        evaluates up to four per dataset).
    sample_fractions:
        Budgets as fractions of ``|V|``.
    repetitions:
        Independent simulations per (algorithm, budget) cell.
    seed:
        Master seed; each repetition derives its own stream.
    scale:
        Dataset scale multiplier (1.0 = the registry default).
    algorithms:
        Optional subset of algorithm names; ``None`` means all ten.
    include_baselines:
        Whether the EX-* baselines are part of the run.
    burn_in:
        Explicit walk burn-in; ``None`` derives it from the graph's
        mixing time.
    backend:
        Walk backend for the proposed algorithms: ``"python"`` (the
        dict-based reference engine) or ``"csr"`` (the vectorized numpy
        backend; the EX-* baselines keep the reference engine either
        way).
    """

    dataset: str
    target_pair_index: int = 0
    sample_fractions: Sequence[float] = DEFAULT_SAMPLE_FRACTIONS
    repetitions: int = 200
    seed: int = 2018
    scale: float = 1.0
    algorithms: Optional[Tuple[str, ...]] = None
    include_baselines: bool = True
    burn_in: Optional[int] = None
    backend: str = "python"

    def __post_init__(self) -> None:
        check_positive_int(self.repetitions, "repetitions")
        validate_backend(self.backend)
        if not self.sample_fractions:
            raise ConfigurationError("sample_fractions must not be empty")
        for fraction in self.sample_fractions:
            check_fraction(fraction, "sample_fractions entry")
        if self.target_pair_index < 0:
            raise ConfigurationError("target_pair_index must be non-negative")

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def paper_faithful(cls, dataset: str, target_pair_index: int = 0) -> "ExperimentConfig":
        """The paper's full setting: 10 budgets × 200 repetitions."""
        return cls(dataset=dataset, target_pair_index=target_pair_index)

    @classmethod
    def quick(cls, dataset: str, target_pair_index: int = 0) -> "ExperimentConfig":
        """A CI-friendly setting: 3 budgets × 10 repetitions, 25% scale."""
        return cls(
            dataset=dataset,
            target_pair_index=target_pair_index,
            sample_fractions=(0.01, 0.03, 0.05),
            repetitions=10,
            scale=0.25,
        )

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    def apply_environment(self) -> "ExperimentConfig":
        """Apply ``REPRO_REPETITIONS`` / ``REPRO_DATASET_SCALE`` overrides."""
        updates = {}
        repetitions = os.environ.get(ENV_REPETITIONS)
        if repetitions:
            updates["repetitions"] = int(repetitions)
        scale = os.environ.get(ENV_SCALE)
        if scale:
            updates["scale"] = float(scale)
        return self.with_overrides(**updates) if updates else self


__all__ = [
    "ExperimentConfig",
    "DEFAULT_SAMPLE_FRACTIONS",
    "ENV_REPETITIONS",
    "ENV_SCALE",
]
