"""Experiment configuration shared by the tables, figures and the CLI.

The defaults mirror the paper's set-up: sample sizes from 0.5% to 5% of
``|V|`` in steps of 0.5%, NRMSE averaged over 200 independent
simulations.  200 repetitions over 10 budgets and 10 algorithms is a lot
of walking, so the benchmark harness and the CLI expose lighter presets;
``ExperimentConfig.paper_faithful()`` restores the full setting.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.core.samplers.csr_backend import (
    validate_backend,
    validate_execution,
    validate_reuse,
)
from repro.exceptions import ConfigurationError
from repro.graph.store import validate_graph_store
from repro.utils.validation import check_fraction, check_positive_int

#: 0.5% .. 5.0% of |V|, the x-axis of every NRMSE table in the paper.
DEFAULT_SAMPLE_FRACTIONS: Tuple[float, ...] = tuple(
    round(0.005 * step, 4) for step in range(1, 11)
)

#: Environment variables that let CI / benches shrink the workload
#: without editing code.
ENV_REPETITIONS = "REPRO_REPETITIONS"
ENV_SCALE = "REPRO_DATASET_SCALE"
ENV_JOBS = "REPRO_JOBS"


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one table/figure reproduction run.

    Attributes
    ----------
    dataset:
        Registry name of the dataset stand-in (``repro.datasets``).
    target_pair_index:
        Which of the dataset's selected target pairs to use (the paper
        evaluates up to four per dataset).
    sample_fractions:
        Budgets as fractions of ``|V|``.
    repetitions:
        Independent simulations per (algorithm, budget) cell.
    seed:
        Master seed; each repetition derives its own stream.
    scale:
        Dataset scale multiplier (1.0 = the registry default).
    algorithms:
        Optional subset of algorithm names; ``None`` means all ten.
    include_baselines:
        Whether the EX-* baselines are part of the run.
    burn_in:
        Explicit walk burn-in; ``None`` derives it from the graph's
        mixing time.
    backend:
        Walk backend: ``"python"`` (the dict-based reference engine),
        ``"csr"`` (the vectorized numpy backend), or ``"compiled"``
        (the CSR data plane driven by numba-njit fleet kernels —
        bit-identical to ``"csr"`` from the same seed, falling back to
        it with a typed warning when numba is absent).  The EX-*
        baselines ignore the selector sequentially — they run the
        reference line-graph engine; under ``execution="fleet"`` /
        ``reuse="prefix"`` they run vectorized line-graph fleets on the
        selected tier.
    execution:
        Trial execution: ``"sequential"`` (one repetition at a time
        through a fresh API wrapper) or ``"fleet"`` (all repetitions of
        a table cell as one vectorized walker fleet — NS/NE fleets for
        the proposed algorithms, implicit line-graph fleets for the
        EX-* baselines, so all ten rows vectorize).
    reuse:
        Sweep walk reuse: ``"none"`` (fresh walks per cell) or
        ``"prefix"`` (one max-budget fleet per registry algorithm,
        proposed and EX-* alike; smaller budget columns and — in
        frequency sweeps — other target pairs are classified off its
        trajectory prefixes, rejection probes included in the EX-*
        ledgers).
    representation:
        Dataset substrate: ``"dict"`` (reference networkx/dict
        synthesis) or ``"csr"`` (array-native synthesis, the only
        practical choice at paper scale).  ``"csr"`` needs
        ``execution="fleet"`` or ``reuse="prefix"`` — the sequential
        loop simulates the restricted API over the dict substrate —
        and then reproduces the full ten-algorithm tables.
    graph_store:
        Which buffer store backs the CSR graph and carries it to
        ``n_jobs`` workers: ``"ram"`` (default, process-private arrays;
        workers get a pickle each), ``"shm"`` (one shared-memory
        segment, workers reattach an O(1) handle — cheap multi-process
        tables at ≥10⁶ nodes), or ``"mmap"`` (the dataset itself is
        memory-mapped from an ``.npz`` sidecar — out-of-core, peak RSS
        well under the in-RAM footprint, and workers map the same
        file).  Non-``"ram"`` stores require ``representation="csr"``;
        results are bit-identical across all three stores.
    n_jobs:
        Worker processes for cell-level parallelism; per-cell seeds are
        pre-derived so any worker count reproduces the same tables.
    journal:
        Optional path to an append-only experiment journal (WAL): every
        completed cell is made durable as it finishes, so a crashed run
        leaves resume state behind (``.journal.jsonl`` is appended to
        the name if missing).
    resume:
        With :attr:`journal`, replay the finished cells of a previous
        run and execute only the missing ones (bit-identical — cell
        seeds are pre-derived).  Requires :attr:`journal`.
    pinned:
        Field names whose values were set explicitly (e.g. CLI flags)
        and must not be changed by :meth:`apply_environment` — an
        exported ``REPRO_JOBS`` should fill defaults, not silently beat
        an explicit ``--jobs``.
    """

    dataset: str
    target_pair_index: int = 0
    sample_fractions: Sequence[float] = DEFAULT_SAMPLE_FRACTIONS
    repetitions: int = 200
    seed: int = 2018
    scale: float = 1.0
    algorithms: Optional[Tuple[str, ...]] = None
    include_baselines: bool = True
    burn_in: Optional[int] = None
    backend: str = "python"
    execution: str = "sequential"
    reuse: str = "none"
    representation: str = "dict"
    graph_store: str = "ram"
    n_jobs: int = 1
    journal: Optional[str] = None
    resume: bool = False
    pinned: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        check_positive_int(self.repetitions, "repetitions")
        check_positive_int(self.n_jobs, "n_jobs")
        validate_backend(self.backend)
        validate_execution(self.execution)
        validate_reuse(self.reuse)
        validate_graph_store(self.graph_store)
        if self.graph_store != "ram" and self.representation != "csr":
            raise ConfigurationError(
                f"graph_store={self.graph_store!r} stores CSR buffers "
                "externally; the dict representation has none — combine it "
                "with representation='csr'"
            )
        if self.representation not in ("dict", "csr"):
            raise ConfigurationError(
                f"unknown representation {self.representation!r}; "
                "available: dict, csr"
            )
        if (
            self.representation == "csr"
            and self.execution != "fleet"
            and self.reuse != "prefix"
        ):
            raise ConfigurationError(
                "representation='csr' has no dict graph for the sequential "
                "restricted-API loop; combine it with execution='fleet' or "
                "reuse='prefix'"
            )
        if not self.sample_fractions:
            raise ConfigurationError("sample_fractions must not be empty")
        for fraction in self.sample_fractions:
            check_fraction(fraction, "sample_fractions entry")
        if self.target_pair_index < 0:
            raise ConfigurationError("target_pair_index must be non-negative")
        if self.resume and self.journal is None:
            raise ConfigurationError(
                "resume=True replays a journal; pass journal= (--journal) "
                "with the path the crashed run was writing"
            )

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def paper_faithful(cls, dataset: str, target_pair_index: int = 0) -> "ExperimentConfig":
        """The paper's full setting: 10 budgets × 200 repetitions."""
        return cls(dataset=dataset, target_pair_index=target_pair_index)

    @classmethod
    def quick(cls, dataset: str, target_pair_index: int = 0) -> "ExperimentConfig":
        """A CI-friendly setting: 3 budgets × 10 repetitions, 25% scale."""
        return cls(
            dataset=dataset,
            target_pair_index=target_pair_index,
            sample_fractions=(0.01, 0.03, 0.05),
            repetitions=10,
            scale=0.25,
        )

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    def apply_environment(self) -> "ExperimentConfig":
        """Apply ``REPRO_REPETITIONS`` / ``REPRO_DATASET_SCALE`` /
        ``REPRO_JOBS`` overrides, skipping :attr:`pinned` fields."""
        updates = {}
        repetitions = os.environ.get(ENV_REPETITIONS)
        if repetitions and "repetitions" not in self.pinned:
            updates["repetitions"] = int(repetitions)
        scale = os.environ.get(ENV_SCALE)
        if scale and "scale" not in self.pinned:
            updates["scale"] = float(scale)
        jobs = os.environ.get(ENV_JOBS)
        if jobs and "n_jobs" not in self.pinned:
            updates["n_jobs"] = int(jobs)
        return self.with_overrides(**updates) if updates else self


__all__ = [
    "ExperimentConfig",
    "DEFAULT_SAMPLE_FRACTIONS",
    "ENV_REPETITIONS",
    "ENV_SCALE",
    "ENV_JOBS",
]
