"""Rendering NRMSE tables and summaries as plain text / Markdown.

These helpers print the reproduced tables in the same layout as the
paper: one row per algorithm, one column per budget, the best value per
column marked.  They are used by the benchmark harness, the CLI and the
EXPERIMENTS.md generation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.runner import NRMSETable
from repro.experiments.sweeps import FrequencyPoint


def _format_fraction(fraction: float) -> str:
    return f"{fraction * 100:.1f}%|V|"


def format_nrmse_table(
    table: NRMSETable,
    caption: Optional[str] = None,
    mark_best: bool = True,
    precision: int = 3,
) -> str:
    """Render an :class:`NRMSETable` as a fixed-width text table."""
    header = ["Algorithm"] + [_format_fraction(f) for f in table.sample_fractions]
    rows: List[List[str]] = []
    best_per_column = _best_per_column(table)
    for name in table.algorithms():
        row = [name]
        for column, outcome in enumerate(table.cells[name]):
            value = f"{outcome.nrmse:.{precision}f}"
            if mark_best and best_per_column[column] == name:
                value = f"*{value}*"
            row.append(value)
        rows.append(row)

    lines = []
    if caption is None:
        caption = (
            f"{table.dataset}, target label={table.target_pair}, "
            f"number of target edges={table.true_count}"
        )
    lines.append(caption)
    lines.extend(_render_fixed_width([header] + rows))
    return "\n".join(lines)


def format_markdown_table(table: NRMSETable, caption: Optional[str] = None) -> str:
    """Render an :class:`NRMSETable` as GitHub-flavoured Markdown."""
    header = ["Algorithm"] + [_format_fraction(f) for f in table.sample_fractions]
    lines = []
    if caption:
        lines.append(f"**{caption}**")
        lines.append("")
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    best_per_column = _best_per_column(table)
    for name in table.algorithms():
        cells = [name]
        for column, outcome in enumerate(table.cells[name]):
            value = f"{outcome.nrmse:.3f}"
            if best_per_column[column] == name:
                value = f"**{value}**"
            cells.append(value)
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def best_algorithms(table: NRMSETable, column: int = -1) -> Tuple[str, float]:
    """The best algorithm and its NRMSE at one budget (default: the largest)."""
    return table.best_algorithm(column)


def format_summary_table(
    entries: Sequence[Tuple[str, Tuple, str, float]],
    caption: str = "Best algorithm per label using 5%|V| API calls",
) -> str:
    """Render a Tables 23–26 style summary.

    *entries* are ``(dataset, target_pair, best_algorithm, nrmse)`` rows.
    """
    header = ["Dataset", "Label", "Best algorithm", "NRMSE"]
    rows = [
        [dataset, str(pair), algorithm, f"{value:.3f}"]
        for dataset, pair, algorithm, value in entries
    ]
    lines = [caption]
    lines.extend(_render_fixed_width([header] + rows))
    return "\n".join(lines)


def format_frequency_series(
    points: Iterable[FrequencyPoint],
    caption: str = "NRMSE vs. relative count of target edges",
) -> str:
    """Render a Figure 1/2 data series as a text table (one row per pair)."""
    points = list(points)
    algorithms: List[str] = []
    for point in points:
        for name in point.nrmse_by_algorithm:
            if name not in algorithms:
                algorithms.append(name)
    header = ["Label pair", "F", "F/|E|"] + algorithms
    rows: List[List[str]] = []
    for point in points:
        row = [
            str(point.target_pair),
            str(point.true_count),
            f"{point.relative_count:.6f}",
        ]
        for name in algorithms:
            value = point.nrmse_by_algorithm.get(name)
            row.append("-" if value is None else f"{value:.3f}")
        rows.append(row)
    lines = [caption]
    lines.extend(_render_fixed_width([header] + rows))
    return "\n".join(lines)


def _best_per_column(table: NRMSETable) -> Dict[int, str]:
    best: Dict[int, str] = {}
    for column in range(len(table.sample_fractions)):
        name, _ = table.best_algorithm(column)
        best[column] = name
    return best


def _render_fixed_width(rows: Sequence[Sequence[str]]) -> List[str]:
    widths = [0] * max(len(row) for row in rows)
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    for row_number, row in enumerate(rows):
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(row)]
        lines.append("  ".join(padded).rstrip())
        if row_number == 0:
            lines.append("  ".join("-" * width for width in widths))
    return lines


__all__ = [
    "format_nrmse_table",
    "format_markdown_table",
    "best_algorithms",
    "format_summary_table",
    "format_frequency_series",
]
