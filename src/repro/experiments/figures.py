"""Definitions and runners for the paper's figures.

Figures 1 and 2 plot NRMSE against the relative count of target edges
(``F/|E|``) at a fixed 5%·|V| budget, for Orkut and LiveJournal
respectively, using only the five proposed algorithms.
:func:`run_paper_figure` reproduces the underlying data series; plotting
is left to the caller (the benchmark harness prints the series, and
``examples/frequency_study.py`` shows how to turn it into a chart with
matplotlib if available).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.datasets.registry import load_dataset, select_target_pairs
from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import FrequencyPoint, frequency_sweep


@dataclass(frozen=True)
class FigureDefinition:
    """What one paper figure evaluates."""

    figure_number: int
    dataset: str
    budget_fraction: float
    num_pairs: int
    paper_observation: str


FIGURE_DEFINITIONS: Dict[int, FigureDefinition] = {
    1: FigureDefinition(
        figure_number=1,
        dataset="orkut",
        budget_fraction=0.05,
        num_pairs=8,
        paper_observation=(
            "NRMSE decreases as F/|E| grows; NeighborExploration dominates for rare "
            "labels, the two families converge for frequent labels."
        ),
    ),
    2: FigureDefinition(
        figure_number=2,
        dataset="livejournal",
        budget_fraction=0.05,
        num_pairs=8,
        paper_observation=(
            "Same trend as Orkut: the estimation error shrinks with the relative "
            "target-edge count and NeighborExploration wins at the rare end."
        ),
    ),
}


@dataclass
class PaperFigureResult:
    """A reproduced figure data series next to its definition."""

    definition: FigureDefinition
    points: List[FrequencyPoint]
    config: ExperimentConfig

    def series(self, algorithm: str) -> List[Tuple[float, float]]:
        """The ``(F/|E|, NRMSE)`` series of one algorithm, sorted by frequency."""
        return [
            (point.relative_count, point.nrmse_by_algorithm[algorithm])
            for point in self.points
            if algorithm in point.nrmse_by_algorithm
        ]

    def monotone_trend(self, algorithm: str) -> float:
        """Spearman-style sign statistic of NRMSE vs frequency.

        Returns a value in [-1, 1]; negative means the error tends to
        decrease as the relative target-edge count grows — the paper's
        finding (1) for both figures.
        """
        series = self.series(algorithm)
        if len(series) < 2:
            raise ExperimentError("need at least two points to measure a trend")
        concordant = 0
        discordant = 0
        for i in range(len(series)):
            for j in range(i + 1, len(series)):
                delta = (series[j][0] - series[i][0]) * (series[j][1] - series[i][1])
                if delta > 0:
                    concordant += 1
                elif delta < 0:
                    discordant += 1
        total = concordant + discordant
        return 0.0 if total == 0 else (concordant - discordant) / total


def run_paper_figure(
    figure_number: int,
    config: Optional[ExperimentConfig] = None,
    repetitions: Optional[int] = None,
) -> PaperFigureResult:
    """Reproduce the data series behind Figure 1 or Figure 2."""
    if figure_number not in FIGURE_DEFINITIONS:
        raise ExperimentError(
            f"unknown figure {figure_number}; available: {sorted(FIGURE_DEFINITIONS)}"
        )
    definition = FIGURE_DEFINITIONS[figure_number]
    if config is None:
        config = ExperimentConfig.quick(definition.dataset)
    config = config.apply_environment()
    if repetitions is None:
        repetitions = config.repetitions

    dataset = load_dataset(
        definition.dataset,
        seed=config.seed,
        scale=config.scale,
        representation=config.representation,
        graph_store=config.graph_store,
    )
    pairs = select_target_pairs(dataset.graph, count=definition.num_pairs)
    points = frequency_sweep(
        dataset.graph,
        pairs,
        budget_fraction=definition.budget_fraction,
        repetitions=repetitions,
        burn_in=config.burn_in,
        seed=config.seed,
        backend=config.backend,
        execution=config.execution,
        n_jobs=config.n_jobs,
        reuse=config.reuse,
        graph_store=config.graph_store,
        journal=config.journal,
        resume=config.resume,
    )
    return PaperFigureResult(definition=definition, points=points, config=config)


__all__ = [
    "FigureDefinition",
    "FIGURE_DEFINITIONS",
    "PaperFigureResult",
    "run_paper_figure",
]
