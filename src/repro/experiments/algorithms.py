"""The full suite of ten algorithms evaluated in the paper's tables.

:func:`build_algorithm_suite` returns, for a given graph, a mapping from
Table 2 abbreviation to a runner with the uniform signature

    ``run(api, t1, t2, k, burn_in, rng) -> EstimateResult``

The five proposed algorithms come straight from
:data:`repro.core.pipeline.ALGORITHMS`; the five EX-* baselines need the
graph because the MD/GMD walks require the maximum degree of the line
graph ``G'`` (an oracle parameter, granted to the baselines as in the
paper's favourable setting).  Both substrates work: on a
:class:`~repro.graph.csr.CSRGraph` the oracle parameter is computed
vectorized, so full ten-algorithm suites build at million-node scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.baselines import (
    BASELINE_NAMES,
    line_graph_max_degree,
    make_baseline,
)
from repro.core.estimators.base import EstimateResult
from repro.core.pipeline import ALGORITHMS
from repro.exceptions import ConfigurationError
from repro.graph.labeled_graph import LabeledGraph

AlgorithmRunner = Callable[..., EstimateResult]

#: The paper's proposed algorithms, in Table 2 order.
PAPER_ALGORITHM_ORDER: List[str] = [
    "NeighborSample-HH",
    "NeighborSample-HT",
    "NeighborExploration-HH",
    "NeighborExploration-HT",
    "NeighborExploration-RW",
]

#: All ten algorithms, in the row order of Tables 4–17.
ALL_ALGORITHM_ORDER: List[str] = PAPER_ALGORITHM_ORDER + [
    "EX-MDRW",
    "EX-MHRW",
    "EX-RW",
    "EX-RCMH",
    "EX-GMD",
]


@dataclass(frozen=True)
class BaselineRunner:
    """Picklable runner wrapping one EX-* baseline instance.

    Called directly (the sequential path) it runs the reference
    line-graph engine and accepts the backend selector only for
    harness uniformity.  Under ``execution="fleet"`` /
    ``reuse="prefix"`` the harness reads the wrapped baseline off this
    runner and vectorizes it as an implicit line-graph fleet
    (:mod:`repro.baselines.fleet`).  Carrying the baseline object
    (tuning knobs included) keeps tuned suites intact across the
    ``n_jobs`` process boundary and lets the fleet path honor the same
    ``alpha`` / ``delta`` / line-max-degree configuration.
    """

    baseline: object

    def __call__(self, api, t1, t2, k, burn_in, rng, backend: str = "python") -> EstimateResult:
        return self.baseline.estimate(api, t1, t2, k, burn_in=burn_in, rng=rng)


def _baseline_runner(baseline) -> AlgorithmRunner:
    return BaselineRunner(baseline)


def build_algorithm_suite(
    graph: Optional[LabeledGraph] = None,
    include_baselines: bool = True,
    algorithms: Optional[Iterable[str]] = None,
    rcmh_alpha: float = 0.2,
    gmd_delta: float = 0.5,
) -> Dict[str, AlgorithmRunner]:
    """Build the name -> runner mapping for an experiment.

    Parameters
    ----------
    graph:
        The full graph — dict :class:`LabeledGraph` or array-native
        :class:`~repro.graph.csr.CSRGraph`; required when
        *include_baselines* is true (the MD/GMD baselines need the
        exact line-graph maximum degree, computed vectorized on CSR).
    include_baselines:
        Include the EX-* adaptations alongside the proposed algorithms.
    algorithms:
        Optional subset of names to keep (order preserved from
        :data:`ALL_ALGORITHM_ORDER`).
    rcmh_alpha / gmd_delta:
        The baselines' tuning knobs; the paper sweeps ``α ∈ [0, 0.3]``
        and ``δ ∈ [0.3, 0.7]`` and reports the best setting.
    """
    suite: Dict[str, AlgorithmRunner] = {}
    for name in PAPER_ALGORITHM_ORDER:
        suite[name] = ALGORITHMS[name].run

    if include_baselines:
        if graph is None:
            raise ConfigurationError(
                "building the EX-* baselines requires the full graph (line-graph "
                "maximum degree); pass graph= or set include_baselines=False"
            )
        max_degree = max(1, line_graph_max_degree(graph))
        for name in BASELINE_NAMES:
            baseline = make_baseline(
                name,
                line_max_degree=max_degree,
                rcmh_alpha=rcmh_alpha,
                gmd_delta=gmd_delta,
            )
            suite[name] = _baseline_runner(baseline)

    if algorithms is not None:
        requested = list(algorithms)
        unknown = [name for name in requested if name not in suite]
        if unknown:
            raise ConfigurationError(
                f"unknown algorithm(s): {', '.join(unknown)}; "
                f"available: {', '.join(suite)}"
            )
        suite = {name: suite[name] for name in ALL_ALGORITHM_ORDER if name in requested}
    return suite


__all__ = [
    "AlgorithmRunner",
    "BaselineRunner",
    "PAPER_ALGORITHM_ORDER",
    "ALL_ALGORITHM_ORDER",
    "build_algorithm_suite",
]
