"""Definitions and runners for every NRMSE table of the paper.

:data:`TABLE_DEFINITIONS` maps a paper table number to the dataset and
target-pair index it evaluates; :func:`run_paper_table` executes the
corresponding experiment and returns both the reproduced
:class:`~repro.experiments.runner.NRMSETable` and the paper's reference
values (who won and by how much), so EXPERIMENTS.md can juxtapose them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.datasets.registry import load_dataset
from repro.exceptions import ExperimentError
from repro.experiments.algorithms import build_algorithm_suite
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import NRMSETable, compare_algorithms


@dataclass(frozen=True)
class TableDefinition:
    """What one paper table evaluates."""

    table_number: int
    dataset: str
    target_pair_index: int
    paper_target_label: str
    paper_target_count: int
    paper_percentage: float
    paper_best_algorithm: str
    paper_best_nrmse: float


#: Paper tables 4–17: dataset, label pair, and the paper's 5%|V| winner.
TABLE_DEFINITIONS: Dict[int, TableDefinition] = {
    4: TableDefinition(4, "facebook", 0, "(1,2)", 37_400, 42.4, "NeighborSample-HT", 0.104),
    5: TableDefinition(5, "googleplus", 0, "(1,2)", 3_280_000, 26.89, "NeighborSample-HH", 0.029),
    6: TableDefinition(6, "pokec", 0, "(86,135)", 295, 0.001, "NeighborExploration-HH", 0.209),
    7: TableDefinition(7, "pokec", 1, "(2,51)", 1_163, 0.005, "NeighborExploration-HH", 0.124),
    8: TableDefinition(8, "pokec", 2, "(13,20)", 2_134, 0.01, "NeighborExploration-HT", 0.104),
    9: TableDefinition(9, "pokec", 3, "(24,122)", 5_784, 0.03, "NeighborExploration-HT", 0.093),
    10: TableDefinition(10, "orkut", 0, "(48,45)", 5_627, 0.001, "NeighborExploration-HH", 0.089),
    11: TableDefinition(11, "orkut", 1, "(11,0)", 49_879, 0.043, "NeighborExploration-RW", 0.124),
    12: TableDefinition(12, "orkut", 2, "(1,0)", 128_501, 0.11, "NeighborSample-HT", 0.063),
    13: TableDefinition(13, "orkut", 3, "(6,5)", 769_188, 0.657, "NeighborExploration-RW", 0.029),
    14: TableDefinition(14, "livejournal", 0, "(34,12)", 5_168, 0.001, "NeighborExploration-HT", 0.074),
    15: TableDefinition(15, "livejournal", 1, "(19,16)", 15_442, 0.04, "NeighborExploration-HH", 0.105),
    16: TableDefinition(16, "livejournal", 2, "(8,4)", 203_945, 0.48, "NeighborExploration-RW", 0.039),
    17: TableDefinition(17, "livejournal", 3, "(1,0)", 1_753_000, 4.1, "NeighborExploration-RW", 0.02),
}


@dataclass
class PaperTableResult:
    """A reproduced table next to its paper reference."""

    definition: TableDefinition
    table: NRMSETable
    config: ExperimentConfig

    def reproduced_best(self) -> Tuple[str, float]:
        """Best algorithm and NRMSE at the largest budget in this run."""
        return self.table.best_algorithm(-1)

    def paper_best(self) -> Tuple[str, float]:
        """The paper's best algorithm and NRMSE at 5%|V|."""
        return (self.definition.paper_best_algorithm, self.definition.paper_best_nrmse)

    def agreement(self) -> Dict[str, bool]:
        """Coarse shape checks against the paper (family-level agreement).

        ``family_match`` compares only the sampling-process family
        (NeighborSample vs NeighborExploration vs EX baseline) of the
        winners, which is the level at which a scaled synthetic stand-in
        can be expected to agree with the original crawl.
        ``proposed_wins`` checks the paper's headline claim that one of
        the proposed algorithms beats every EX-* baseline.
        """
        reproduced_name, _ = self.reproduced_best()
        paper_name, _ = self.paper_best()
        return {
            "family_match": _family(reproduced_name) == _family(paper_name),
            "proposed_wins": not reproduced_name.startswith("EX-"),
        }


def _family(algorithm_name: str) -> str:
    if algorithm_name.startswith("NeighborSample"):
        return "NeighborSample"
    if algorithm_name.startswith("NeighborExploration"):
        return "NeighborExploration"
    return "EX"


def run_paper_table(
    table_number: int,
    config: Optional[ExperimentConfig] = None,
) -> PaperTableResult:
    """Reproduce one of Tables 4–17.

    Parameters
    ----------
    table_number:
        4–17 (see :data:`TABLE_DEFINITIONS`).
    config:
        Overrides for repetitions, budgets, scale, algorithm subset and
        seed.  Defaults to a moderate setting
        (:meth:`ExperimentConfig.quick` with the definition's dataset);
        pass :meth:`ExperimentConfig.paper_faithful` for the full run.
    """
    if table_number not in TABLE_DEFINITIONS:
        raise ExperimentError(
            f"table {table_number} is not an NRMSE table; available: "
            f"{sorted(TABLE_DEFINITIONS)}"
        )
    definition = TABLE_DEFINITIONS[table_number]
    if config is None:
        config = ExperimentConfig.quick(definition.dataset, definition.target_pair_index)
    else:
        config = config.with_overrides(
            dataset=definition.dataset, target_pair_index=definition.target_pair_index
        )
    config = config.apply_environment()

    dataset = load_dataset(
        definition.dataset,
        seed=config.seed,
        scale=config.scale,
        representation=config.representation,
        graph_store=config.graph_store,
    )
    if config.target_pair_index >= len(dataset.target_pairs):
        raise ExperimentError(
            f"dataset {definition.dataset!r} produced only "
            f"{len(dataset.target_pairs)} target pairs; "
            f"index {config.target_pair_index} is out of range"
        )
    t1, t2 = dataset.target_pairs[config.target_pair_index]
    # All ten rows reproduce on either substrate: the baselines' oracle
    # parameter (line-graph maximum degree) is computed vectorized on
    # CSR graphs, and their walks run as line-graph fleets there
    # (representation="csr" implies execution="fleet" or reuse="prefix").
    include_baselines = config.include_baselines
    suite = build_algorithm_suite(
        dataset.graph if include_baselines else None,
        include_baselines=include_baselines,
        algorithms=config.algorithms,
    )
    table = compare_algorithms(
        dataset.graph,
        t1,
        t2,
        sample_fractions=config.sample_fractions,
        repetitions=config.repetitions,
        algorithms=suite,
        burn_in=config.burn_in,
        seed=config.seed,
        dataset_name=dataset.spec.paper_name,
        backend=config.backend,
        execution=config.execution,
        n_jobs=config.n_jobs,
        reuse=config.reuse,
        graph_store=config.graph_store,
        journal=config.journal,
        resume=config.resume,
    )
    return PaperTableResult(definition=definition, table=table, config=config)


def list_tables() -> List[int]:
    """The NRMSE table numbers, in paper order."""
    return sorted(TABLE_DEFINITIONS)


__all__ = [
    "TableDefinition",
    "TABLE_DEFINITIONS",
    "PaperTableResult",
    "run_paper_table",
    "list_tables",
]
