"""Accuracy metrics used in the evaluation (paper §5.1, "Measurements").

The paper's headline metric is the normalised root mean square error

.. math::

   NRMSE(F̂) = \\frac{\\sqrt{E[(F̂ − F)^2]}}{F}
            = \\frac{\\sqrt{Var[F̂] + (F − E[F̂])^2}}{F}

estimated over repeated independent simulations.  NRMSE captures both
the variance and the bias of an estimator.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.exceptions import ExperimentError


def _validate(estimates: Sequence[float], true_value: float) -> Sequence[float]:
    if not estimates:
        raise ExperimentError("cannot compute a metric from zero estimates")
    if true_value <= 0:
        raise ExperimentError(
            f"the normalised metrics require a positive true value, got {true_value}"
        )
    return estimates


def nrmse(estimates: Sequence[float], true_value: float) -> float:
    """Normalised root mean square error over repeated estimates."""
    estimates = _validate(estimates, true_value)
    mean_square_error = sum((value - true_value) ** 2 for value in estimates) / len(estimates)
    return math.sqrt(mean_square_error) / true_value


#: Alias emphasising that the input is a collection of simulation outputs.
nrmse_from_estimates = nrmse


def bias(estimates: Sequence[float], true_value: float) -> float:
    """``E[F̂] − F`` over repeated estimates."""
    estimates = _validate(estimates, true_value)
    return sum(estimates) / len(estimates) - true_value


def relative_bias(estimates: Sequence[float], true_value: float) -> float:
    """``(E[F̂] − F) / F`` over repeated estimates."""
    return bias(estimates, true_value) / true_value


def empirical_variance(estimates: Sequence[float]) -> float:
    """Population variance of the estimates (the ``Var[F̂]`` term of NRMSE)."""
    if not estimates:
        raise ExperimentError("cannot compute a variance from zero estimates")
    mean = sum(estimates) / len(estimates)
    return sum((value - mean) ** 2 for value in estimates) / len(estimates)


def bootstrap_confidence_interval(
    estimates: Sequence[float],
    level: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> tuple:
    """Percentile-bootstrap confidence interval for the mean estimate.

    Repeated simulations give a sample of estimates; this resamples them
    with replacement to bracket the mean.  Useful for reporting "F̂ ±
    interval" instead of a bare point estimate when several independent
    walks are affordable.
    """
    import random

    if not estimates:
        raise ExperimentError("cannot bootstrap from zero estimates")
    if not 0.0 < level < 1.0:
        raise ExperimentError(f"confidence level must be in (0, 1), got {level}")
    if resamples <= 0:
        raise ExperimentError(f"resamples must be positive, got {resamples}")
    rng = random.Random(seed)
    size = len(estimates)
    means = []
    for _ in range(resamples):
        resample = [estimates[rng.randrange(size)] for _ in range(size)]
        means.append(sum(resample) / size)
    means.sort()
    lower_index = int((1.0 - level) / 2.0 * (resamples - 1))
    upper_index = int((1.0 + level) / 2.0 * (resamples - 1))
    return (means[lower_index], means[upper_index])


def nrmse_decomposition(estimates: Sequence[float], true_value: float) -> dict:
    """Split NRMSE² into its variance and squared-bias components."""
    estimates = _validate(estimates, true_value)
    variance = empirical_variance(estimates)
    squared_bias = bias(estimates, true_value) ** 2
    return {
        "nrmse": math.sqrt(variance + squared_bias) / true_value,
        "variance_share": variance / (variance + squared_bias) if variance + squared_bias else 0.0,
        "bias_share": squared_bias / (variance + squared_bias) if variance + squared_bias else 0.0,
    }


__all__ = [
    "nrmse",
    "nrmse_from_estimates",
    "bias",
    "relative_bias",
    "empirical_variance",
    "bootstrap_confidence_interval",
    "nrmse_decomposition",
]
