"""Parameter sweeps: sample-size sweeps (tables) and frequency sweeps (figures).

The frequency sweep reproduces Figures 1 and 2 of the paper: for a
fixed budget (5% of ``|V|``), measure the NRMSE of each proposed
algorithm across target-label pairs whose relative count ``F/|E|``
spans several orders of magnitude.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.durability import ExperimentJournal, suite_fingerprint

from repro.core.pipeline import ProposedRunner
from repro.core.samplers.csr_backend import (
    fleet_engine,
    validate_backend,
    validate_execution,
    validate_reuse,
)
from repro.exceptions import ConfigurationError
from repro.graph.csr import csr_view
from repro.graph.labeled_graph import Label, LabeledGraph
from repro.graph.store import validate_graph_store
from repro.graph.statistics import count_target_edges
from repro.utils.rng import RandomSource, derive_seed
from repro.utils.validation import check_positive_int
from repro.walks.mixing import recommended_burn_in

from repro.experiments.algorithms import (
    AlgorithmRunner,
    BaselineRunner,
    build_algorithm_suite,
    PAPER_ALGORITHM_ORDER,
)
from repro.experiments.planner import FleetSpec, PrefixFleet
from repro.experiments.runner import (
    CellTask,
    NRMSETable,
    TrialOutcome,
    _outcome_from_record,
    compare_algorithms,
    run_cell,
    run_cells_parallel,
)


def sample_size_sweep(
    graph: LabeledGraph,
    t1: Label,
    t2: Label,
    sample_fractions: Sequence[float],
    repetitions: int,
    algorithms: Optional[Mapping[str, AlgorithmRunner]] = None,
    burn_in: Optional[int] = None,
    seed: RandomSource = 2018,
    dataset_name: str = "dataset",
    backend: str = "python",
    execution: str = "sequential",
    n_jobs: int = 1,
    reuse: str = "none",
    graph_store: str = "ram",
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
) -> NRMSETable:
    """NRMSE of every algorithm as the budget grows — one paper table.

    Thin wrapper over :func:`repro.experiments.runner.compare_algorithms`
    kept for symmetry with :func:`frequency_sweep`.  ``reuse="prefix"``
    walks one max-budget fleet per proposed algorithm and reads every
    smaller budget off its prefixes.  *journal* / *resume* thread
    through to the experiment WAL (see ``compare_algorithms``).
    """
    return compare_algorithms(
        graph,
        t1,
        t2,
        sample_fractions=sample_fractions,
        repetitions=repetitions,
        algorithms=algorithms,
        burn_in=burn_in,
        seed=seed,
        dataset_name=dataset_name,
        backend=backend,
        execution=execution,
        n_jobs=n_jobs,
        reuse=reuse,
        graph_store=graph_store,
        journal=journal,
        resume=resume,
    )


@dataclass
class FrequencyPoint:
    """One point of a Figure 1/2 series: a label pair and its NRMSE values."""

    target_pair: Tuple[Label, Label]
    true_count: int
    relative_count: float
    nrmse_by_algorithm: Dict[str, float] = field(default_factory=dict)


def frequency_sweep(
    graph: LabeledGraph,
    target_pairs: Sequence[Tuple[Label, Label]],
    budget_fraction: float = 0.05,
    repetitions: int = 50,
    algorithms: Optional[Mapping[str, AlgorithmRunner]] = None,
    burn_in: Optional[int] = None,
    seed: RandomSource = 2018,
    backend: str = "python",
    execution: str = "sequential",
    n_jobs: int = 1,
    reuse: str = "none",
    graph_store: str = "ram",
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
) -> List[FrequencyPoint]:
    """NRMSE vs relative target-edge count at a fixed budget (Figures 1–2).

    Parameters
    ----------
    graph:
        The labeled graph — dict :class:`LabeledGraph` or array-native
        :class:`~repro.graph.csr.CSRGraph` (the latter requires
        ``execution="fleet"`` or ``reuse="prefix"``).
    target_pairs:
        The label pairs to evaluate; Figures 1–2 use many pairs spanning
        the frequency range (see
        :func:`repro.datasets.registry.select_target_pairs`).
    budget_fraction:
        The fixed budget; the paper uses 5% of ``|V|``.
    repetitions:
        Independent simulations per point.
    algorithms:
        Defaults to the paper's five proposed algorithms only — the
        figures omit the baselines, having already shown them to be far
        behind in the tables.
    execution:
        ``"sequential"`` or ``"fleet"`` (all repetitions of a sweep
        point as one vectorized walker fleet; see
        :func:`repro.experiments.runner.run_trials`).
    n_jobs:
        Worker processes for (pair, algorithm) cell parallelism.  Seeds
        are pre-derived per cell, so any worker count produces the same
        series.
    reuse:
        ``"none"`` (default) walks every (pair, algorithm) point fresh.
        ``"prefix"`` exploits that the walk is label-agnostic: one
        max-budget fleet per registry algorithm serves *every* target
        pair of the sweep (classification against the label masks is
        all that differs per pair), so the sweep's walking cost is
        O(budget) instead of O(pairs × budget).  This covers the EX-*
        baselines too — their line-graph fleet is equally
        label-agnostic, only the target-node classification reads the
        masks.  Per-point estimate distributions are unchanged
        (KS-checked); points of one algorithm become correlated across
        pairs, which NRMSE — a per-point statistic — never reads.
    graph_store:
        Graph transport for the ``n_jobs`` pool: ``"ram"`` pickles the
        graph per worker; ``"shm"`` / ``"mmap"`` publish the CSR
        buffers once and ship O(1) reattach handles (see
        :func:`repro.experiments.runner.run_cells_parallel`).  The
        series is bit-identical across stores.
    journal / resume:
        The experiment WAL, keyed ``(algorithm, pair_index)`` here: with
        *journal* every completed point is made durable as it finishes;
        *resume* replays the finished points of a crashed sweep and
        re-runs only the missing ones, bit-identically (point seeds are
        pre-derived; a partially journaled prefix fleet re-runs whole
        from its pre-derived fleet seed).
    """
    check_positive_int(n_jobs, "n_jobs")
    validate_backend(backend)
    validate_execution(execution)
    validate_reuse(reuse)
    validate_graph_store(graph_store)
    if algorithms is None:
        suite = build_algorithm_suite(include_baselines=False)
        algorithms = {name: suite[name] for name in PAPER_ALGORITHM_ORDER}
    if burn_in is None:
        burn_in = recommended_burn_in(graph, rng=seed)
    sample_size = max(1, math.ceil(budget_fraction * graph.num_nodes))
    # Freeze the CSR arrays once for the whole sweep, not once per point.
    needs_csr = backend in ("csr", "compiled") or execution == "fleet" or reuse == "prefix"
    shared_csr = csr_view(graph) if needs_csr else None

    # Ground truths up front: they define which pairs are plottable and
    # the per-cell tasks; count_target_edges caches per (graph, pair).
    plottable: List[Tuple[int, Tuple[Label, Label], int]] = []
    for pair_index, (t1, t2) in enumerate(target_pairs):
        true_count = count_target_edges(graph, t1, t2)
        if true_count == 0:
            # A pair with no target edges has undefined NRMSE; skip it
            # (the paper only plots pairs that exist in the graph).
            continue
        plottable.append((pair_index, (t1, t2), true_count))

    outcomes: Dict[Tuple[str, int], TrialOutcome] = {}
    if resume and journal is None:
        raise ConfigurationError("resume=True needs a journal path to replay")
    active_journal: Optional[ExperimentJournal] = None
    if journal is not None:
        plottable_indices = {pair_index for pair_index, _, _ in plottable}
        fingerprint = suite_fingerprint(
            graph,
            kind="frequency-sweep",
            target_pairs=[list(pair) for pair in target_pairs],
            budget_fraction=budget_fraction,
            sample_size=sample_size,
            repetitions=repetitions,
            seed=seed,
            burn_in=burn_in,
            backend=backend,
            execution=execution,
            reuse=reuse,
            algorithms=list(algorithms),
        )
        active_journal = ExperimentJournal(journal, fingerprint, resume=resume)
        for (name, column), record in active_journal.completed_cells().items():
            if (
                name in algorithms
                and isinstance(column, int)
                and column in plottable_indices
            ):
                outcomes[(name, column)] = _outcome_from_record(record)

    def record_point(name: str, pair_index: int, outcome: TrialOutcome) -> None:
        if active_journal is not None:
            active_journal.append_cell(
                name,
                pair_index,
                outcome.sample_size,
                outcome.true_count,
                outcome.estimates,
                outcome.api_calls,
            )

    prefix_names = [
        name
        for name in algorithms
        if reuse == "prefix"
        and isinstance(algorithms[name], (ProposedRunner, BaselineRunner))
    ]
    try:
        for name in prefix_names:
            if all(
                (name, pair_index) in outcomes
                for pair_index, _, _ in plottable
            ):
                continue  # the whole fleet's points were replayed
            # One label-agnostic fleet per algorithm; every target pair of
            # the sweep is classified off the same walk (PrefixFleet is the
            # shared planner — budget sweeps and the serving layer reuse it).
            fleet = PrefixFleet(
                shared_csr,
                algorithms[name],
                FleetSpec(
                    name, derive_seed(seed, name, "prefix-frequency"), repetitions, burn_in
                ),
                sample_size,
                engine=fleet_engine(backend),
            )
            for pair_index, (t1, t2), true_count in plottable:
                fresh = (name, pair_index) not in outcomes
                estimates, api_calls = fleet.estimate(t1, t2, sample_size)
                outcomes[(name, pair_index)] = TrialOutcome(
                    algorithm=name,
                    sample_size=sample_size,
                    true_count=true_count,
                    estimates=estimates,
                    api_calls=api_calls,
                )
                if fresh:
                    record_point(name, pair_index, outcomes[(name, pair_index)])

        cells = [
            CellTask(
                algorithm=name,
                column=pair_index,
                sample_size=sample_size,
                seed=_derive_point_seed(seed, name, pair_index),
                t1=t1,
                t2=t2,
                repetitions=repetitions,
                burn_in=burn_in,
                true_count=true_count,
                backend=backend,
                execution=execution,
            )
            for pair_index, (t1, t2), true_count in plottable
            for name in algorithms
            if name not in prefix_names and (name, pair_index) not in outcomes
        ]
        if cells and n_jobs > 1:
            outcomes.update(
                run_cells_parallel(
                    graph, algorithms, cells, n_jobs, None,
                    graph_store=graph_store,
                    on_cell=lambda cell, outcome: record_point(
                        cell.algorithm, cell.column, outcome
                    ),
                )
            )
        else:
            for cell in cells:
                outcome = run_cell(
                    graph, algorithms[cell.algorithm], cell, shared_csr
                )
                outcomes[(cell.algorithm, cell.column)] = outcome
                record_point(cell.algorithm, cell.column, outcome)
        if active_journal is not None:
            active_journal.commit(len(algorithms) * len(plottable))
    finally:
        if active_journal is not None:
            active_journal.close()

    points: List[FrequencyPoint] = []
    for pair_index, pair, true_count in plottable:
        point = FrequencyPoint(
            target_pair=pair,
            true_count=true_count,
            relative_count=true_count / graph.num_edges,
        )
        for name in algorithms:
            point.nrmse_by_algorithm[name] = outcomes[(name, pair_index)].nrmse
        points.append(point)
    points.sort(key=lambda item: item.relative_count)
    return points


def _derive_point_seed(seed: RandomSource, algorithm: str, pair_index: int) -> int:
    return derive_seed(seed, algorithm, "frequency", pair_index)


__all__ = ["sample_size_sweep", "FrequencyPoint", "frequency_sweep"]
