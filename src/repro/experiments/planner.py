"""Prefix-fleet planning: one max-budget fleet answers many queries.

The prefix-reuse engine (PR 3) established the load-bearing exactness
property this module packages: a budget-``b`` crawl from a given seed
*is* the first ``b`` collected steps of a longer crawl from the same
seed, for the NS/NE walker fleets **and** the EX-* implicit line-graph
fleets alike.  Classification is the only label-dependent step, so one
fleet also answers *every* target pair.  Historically that logic lived
inline in :func:`repro.experiments.runner.run_trials_prefix` (budget
sweeps) and :func:`repro.experiments.sweeps.frequency_sweep` (pair
sweeps); this module factors it into a first-class planner object so a
third caller — the :mod:`repro.service` micro-batcher, which coalesces
concurrent (pair, budget) queries from many clients — can share the
same walks without duplicating the classify/estimate dispatch.

The exactness contract callers rely on:

* :meth:`PrefixFleet.estimate` at budget ``b`` is **bit-identical** to
  building a fresh fleet of exactly ``b`` steps from the same
  :class:`FleetSpec` and estimating off that (pinned by
  ``tests/service/test_planner.py``), because the fleet engines consume
  their random streams step-by-step across all walkers;
* two queries differing only in target pair and/or budget are served
  from the *same* walk, so coalescing them changes no estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.baselines.fleet import (
    classify_line_fleet,
    reweighted_estimates,
    run_baseline_fleet,
)
from repro.core.pipeline import ProposedRunner
from repro.core.samplers.csr_backend import (
    classify_edge_fleet,
    classify_node_fleet,
    run_fleet_walk,
)
from repro.exceptions import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.utils.rng import RandomSource, ensure_numpy_rng
from repro.utils.validation import check_positive_int

from repro.experiments.algorithms import AlgorithmRunner, BaselineRunner


@dataclass(frozen=True)
class FleetSpec:
    """Everything that pins one fleet's walk bit-for-bit.

    Two queries can share a fleet exactly when their specs are equal:
    the *seed* fixes the random streams, *repetitions* the walker count,
    *burn_in* the discarded prefix, and *algorithm* selects the runner
    (NS/NE walker fleet vs EX-* line-graph fleet and, downstream, the
    estimator).  Target pair and budget are deliberately **not** here —
    they are classification-time parameters served off prefixes.
    """

    algorithm: str
    seed: RandomSource
    repetitions: int
    burn_in: int


class PrefixFleet:
    """One max-budget walker fleet, answering any (pair, budget ≤ max).

    Wraps the two vectorized fleet families behind one query surface:

    * :class:`~repro.core.pipeline.ProposedRunner` → one NS/NE fleet
      (:func:`run_fleet_walk`); the runner's own sampler kind selects
      edge- vs node-classification and its estimator factory the
      batch estimator.
    * :class:`~repro.experiments.algorithms.BaselineRunner` (EX-*) →
      one implicit line-graph fleet (:func:`run_baseline_fleet`) with
      the wrapped baseline's ``alpha`` / ``delta`` / line-max-degree
      knobs; prefixes keep the rejected-proposal probes in the
      per-trial ledgers.

    Hand-written runner callables cannot vectorize and raise
    :class:`ConfigurationError`, exactly like the historical inline
    check in ``run_trials_prefix``.

    *engine* selects the fleet execution tier (``"numpy"`` default,
    ``"compiled"`` for the numba kernels).  It is deliberately **not**
    part of :class:`FleetSpec`: the engines are bit-identical from the
    same seed, so a fleet walked by either engine answers the same
    queries with the same bits — answer caches and fleet sharing stay
    engine-agnostic.
    """

    def __init__(
        self,
        csr: CSRGraph,
        runner: AlgorithmRunner,
        spec: FleetSpec,
        max_budget: int,
        engine: str = "numpy",
    ) -> None:
        if not isinstance(runner, (ProposedRunner, BaselineRunner)):
            raise ConfigurationError(
                f"prefix reuse needs a vectorizable registry runner "
                f"(ProposedRunner or BaselineRunner); {spec.algorithm!r} is "
                "not one — run it with reuse='none'"
            )
        check_positive_int(max_budget, "max_budget")
        check_positive_int(spec.repetitions, "repetitions")
        self.csr = csr
        self.runner = runner
        self.spec = spec
        self.max_budget = int(max_budget)
        rng = ensure_numpy_rng(spec.seed)
        if isinstance(runner, BaselineRunner):
            self._fleet = run_baseline_fleet(
                csr,
                runner.baseline,
                self.max_budget,
                spec.repetitions,
                burn_in=spec.burn_in,
                rng=rng,
                engine=engine,
            )
        else:
            self._fleet = run_fleet_walk(
                csr,
                self.max_budget,
                spec.repetitions,
                spec.burn_in,
                rng,
                "simple",
                engine=engine,
            )

    @property
    def algorithm(self) -> str:
        """Registry name of the runner this fleet walks for."""
        return self.spec.algorithm

    @property
    def steps_walked(self) -> int:
        """Total transitions this fleet advanced (burn-in included).

        The serving layer's throughput accounting: every walker took
        ``burn_in + max_budget`` transitions regardless of how many
        budgets/pairs are later read off prefixes.
        """
        return self.spec.repetitions * (self.spec.burn_in + self.max_budget)

    def estimate(self, t1, t2, budget: int) -> Tuple[List[float], List[int]]:
        """Per-repetition estimates and charged-call ledgers at *budget*.

        Classifies the fleet's first *budget* collected steps against
        the (*t1*, *t2*) label masks and pushes them through the
        runner's batch estimator.  Bit-identical to a fresh fleet of
        exactly *budget* steps from the same spec; the per-walker
        ledgers are recomputed over the truncated trajectories
        (rejection probes included), so the charged-call accounting
        matches a crawl stopped at exactly that budget.
        """
        check_positive_int(budget, "budget")
        if budget > self.max_budget:
            raise ConfigurationError(
                f"budget {budget} exceeds this fleet's max budget "
                f"{self.max_budget}"
            )
        prefix = self._fleet.prefix(budget)
        if isinstance(self.runner, BaselineRunner):
            batch = classify_line_fleet(self.csr, prefix, t1, t2)
            estimates = reweighted_estimates(batch)
        else:
            classify = (
                classify_edge_fleet
                if self.runner.sampler == "edge"
                else classify_node_fleet
            )
            batch = classify(self.csr, prefix, t1, t2)
            estimates = self.runner.estimator_factory().estimate_batch(batch)
        return (
            [float(value) for value in estimates],
            [int(calls) for calls in batch.api_calls],
        )


__all__ = ["FleetSpec", "PrefixFleet"]
