"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.  The
sub-classes map onto the major subsystems (graph substrate, restricted
API access, random-walk machinery, estimation, experiment harness).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Errors related to building or querying a labeled graph."""


class NodeNotFoundError(GraphError):
    """A node id was requested that does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not present in the graph")
        self.node = node


class EdgeNotFoundError(GraphError):
    """An edge was requested that does not exist in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not present in the graph")
        self.u = u
        self.v = v


class LabelError(GraphError):
    """Errors related to node labels or target-edge labels."""


class EmptyGraphError(GraphError):
    """An operation that needs a non-empty graph was called on an empty one."""


class DisconnectedGraphError(GraphError):
    """An operation requires a connected graph but the input is not connected."""


class APIError(ReproError):
    """Errors raised by the restricted OSN API wrapper."""


class APIBudgetExceededError(APIError):
    """The caller used more API calls than the configured budget allows."""

    def __init__(self, budget: int, used: int) -> None:
        super().__init__(
            f"API budget exceeded: budget={budget} calls, attempted call #{used}"
        )
        self.budget = budget
        self.used = used


class WalkError(ReproError):
    """Errors raised by the random-walk engines."""


class MixingTimeError(WalkError):
    """The mixing-time computation could not complete (e.g. no convergence)."""


class EstimationError(ReproError):
    """Errors raised while constructing estimators or estimates."""


class InsufficientSamplesError(EstimationError):
    """An estimator was asked to produce an estimate from an empty sample."""


class ExperimentError(ReproError):
    """Errors raised by the experiment harness."""


class DatasetError(ReproError):
    """Errors raised by dataset generation or loading."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""
