"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.  The
sub-classes map onto the major subsystems (graph substrate, restricted
API access, random-walk machinery, estimation, experiment harness).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Errors related to building or querying a labeled graph."""


class NodeNotFoundError(GraphError):
    """A node id was requested that does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not present in the graph")
        self.node = node


class EdgeNotFoundError(GraphError):
    """An edge was requested that does not exist in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not present in the graph")
        self.u = u
        self.v = v


class LabelError(GraphError):
    """Errors related to node labels or target-edge labels."""


class EmptyGraphError(GraphError):
    """An operation that needs a non-empty graph was called on an empty one."""


class DisconnectedGraphError(GraphError):
    """An operation requires a connected graph but the input is not connected."""


class APIError(ReproError):
    """Errors raised by the restricted OSN API wrapper."""


class APIBudgetExceededError(APIError):
    """The caller used more API calls than the configured budget allows."""

    def __init__(self, budget: int, used: int) -> None:
        super().__init__(
            f"API budget exceeded: budget={budget} calls, attempted call #{used}"
        )
        self.budget = budget
        self.used = used


class WalkError(ReproError):
    """Errors raised by the random-walk engines."""


class MixingTimeError(WalkError):
    """The mixing-time computation could not complete (e.g. no convergence)."""


class EstimationError(ReproError):
    """Errors raised while constructing estimators or estimates."""


class InsufficientSamplesError(EstimationError):
    """An estimator was asked to produce an estimate from an empty sample."""


class ExperimentError(ReproError):
    """Errors raised by the experiment harness."""


class DatasetError(ReproError):
    """Errors raised by dataset generation or loading."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class StoreAttachError(GraphError):
    """A published CSR buffer store could not be (re)attached.

    Raised instead of a leaked :class:`FileNotFoundError` when a
    shared-memory segment has been unlinked or an ``.npz`` sidecar
    deleted out from under an attach — the message always names the
    segment or path.  Marked :attr:`retryable` because the usual causes
    (a publisher racing its own unlink, a sidecar mid-rewrite) are
    transient: :class:`repro.resilience.Retry` re-attaches with
    decorrelated-jitter backoff wherever the service or the worker
    plane attaches.
    """

    #: Attach failures are transient by default; retry policies key off this.
    retryable = True

    def __init__(self, message: str, location: object = None) -> None:
        super().__init__(message)
        self.location = location


class ArtifactCorruptError(GraphError):
    """A durable artifact failed its integrity check.

    Raised by the durability layer (:mod:`repro.durability`) when a
    checksummed ``.npz`` sidecar, spill, snapshot, or checkpoint does
    not match its blake2b manifest — a torn write, a bit flip, a
    truncation — and by :meth:`repro.graph.csr.CSRGraph.validate_invariants`
    when the CSR structure itself is inconsistent.  The attach paths
    raise this *instead of* memory-mapping garbage, so a corrupt file
    can never silently walk.

    Marked :attr:`retryable` because the most common cause in practice
    is not media corruption but a reader racing a writer's atomic
    rewrite (the ``os.replace`` has not landed yet): a retry typically
    observes the completed artifact.  Genuinely corrupt files keep
    failing, which the retry policy surfaces after its budget.
    """

    #: A racing rewrite looks identical to corruption; retry once cheaply.
    retryable = True

    def __init__(self, message: str, location: object = None) -> None:
        super().__init__(message)
        self.location = location


class ResilienceError(ReproError):
    """Base class for failure-policy rejections in the serving layer.

    These are *deliberate* fast-failures — a deadline enforced, a
    breaker held open, a queue bounded — not engine bugs; the HTTP
    layer maps each subclass to its own status code (504/503/429).
    """


class DeadlineExceededError(ResilienceError):
    """A query's deadline elapsed before its answer was produced."""

    retryable = False

    def __init__(self, message: str, deadline_seconds: float = 0.0) -> None:
        super().__init__(message)
        self.deadline_seconds = deadline_seconds


class CircuitOpenError(ResilienceError):
    """An algorithm's circuit breaker is open and no cached fallback exists."""

    def __init__(self, algorithm: object, retry_after: float = 0.0) -> None:
        super().__init__(
            f"circuit breaker for algorithm {algorithm!r} is open after repeated "
            f"fleet failures; retry in {retry_after:.1f}s or query a cached pair"
        )
        self.algorithm = algorithm
        self.retry_after = retry_after


class ServiceOverloadedError(ResilienceError):
    """The admission queue is full and no cached fallback exists."""

    def __init__(self, depth: int, limit: int, retry_after: float = 0.0) -> None:
        super().__init__(
            f"service overloaded: {depth} queries in flight (limit {limit}); "
            f"retry in {retry_after:.1f}s"
        )
        self.depth = depth
        self.limit = limit
        self.retry_after = retry_after
