"""Blake2b content manifests for ``.npz`` artifacts, stored in-band.

A checksummed ``.npz`` is a plain zip whose **end-of-central-directory
comment** carries a JSON manifest: per-member sizes, a whole-member
blake2b digest, and per-page digests (:data:`PAGE_BYTES` pages).  The
comment is the one zip field that lives *after* all member data, so it
is a literal manifest footer: attaching it never moves the raw byte
offsets that :func:`repro.graph.store.npz_array_specs` memory-maps, and
``np.load`` keeps working unchanged (readers locate the central
directory by scanning backwards past the comment).

Writes go through :func:`write_npz` — scratch file, ``np.savez``,
manifest attach, fsync, ``os.replace`` (see
:mod:`repro.durability.atomic`) — so an artifact is only ever reachable
under its real name *with* a manifest that matches its bytes.  Opens go
through :func:`verify_artifact`, which checks the manifest in one of
three modes and raises :class:`~repro.exceptions.ArtifactCorruptError`
on any mismatch instead of letting a torn or bit-flipped file be
walked:

``full``
    every member streamed end to end against its whole-member digest —
    the fsck / CI mode;
``sampled``
    member sizes plus up to :data:`SAMPLE_PAGES` evenly spaced page
    digests per member — O(pages) I/O, the big-mmap-graph mode (it
    catches truncation and localized damage without paging in a
    multi-GB spill that ``MADV_RANDOM`` was trying to keep cold);
``off``
    presence only (escape hatch).

The default mode is ``full``; set :data:`VERIFY_ENV`
(``REPRO_VERIFY_ARTIFACTS``) to ``sampled`` or ``off`` to relax it
process-wide.  Artifacts written before manifests existed verify as
``"unchecked"`` rather than failing — every *new* write carries one.
Process-wide verified/failed/skipped counters feed the service's
``/stats`` durability block.
"""

from __future__ import annotations

import json
import os
import threading
import zipfile
from hashlib import blake2b
from pathlib import Path
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.durability.atomic import PathLike, atomic_write
from repro.exceptions import ArtifactCorruptError, ConfigurationError
from repro.resilience.faults import fire

#: Environment variable selecting the process-wide verification mode.
VERIFY_ENV = "REPRO_VERIFY_ARTIFACTS"

#: The verification modes :func:`verify_artifact` accepts.
VERIFY_MODES = ("full", "sampled", "off")

#: Page granularity of the per-page digests (1 MiB).
PAGE_BYTES = 1 << 20

#: Pages checked per member in ``sampled`` mode (first and last always).
SAMPLE_PAGES = 8

_MANIFEST_MAGIC = b"repro-manifest:"
_DIGEST_SIZE = 16

_COUNTER_LOCK = threading.Lock()
_COUNTERS = {"verified": 0, "failed": 0, "skipped": 0}


def artifact_counters() -> Dict[str, int]:
    """Process-wide verification counters (for ``/stats``)."""
    with _COUNTER_LOCK:
        return dict(_COUNTERS)


def reset_artifact_counters() -> None:
    """Zero the counters (test isolation)."""
    with _COUNTER_LOCK:
        for key in _COUNTERS:
            _COUNTERS[key] = 0


def _count(key: str) -> None:
    with _COUNTER_LOCK:
        _COUNTERS[key] += 1


def _digest(data: bytes) -> str:
    return blake2b(data, digest_size=_DIGEST_SIZE).hexdigest()


def resolve_verify_mode(
    mode: Optional[str] = None, environ: Optional[Mapping[str, str]] = None
) -> str:
    """*mode* if given, else :data:`VERIFY_ENV`, else ``full``."""
    if mode is None:
        env = os.environ if environ is None else environ
        mode = env.get(VERIFY_ENV) or "full"
    if mode not in VERIFY_MODES:
        raise ConfigurationError(
            f"unknown artifact verification mode {mode!r}; "
            f"available: {', '.join(VERIFY_MODES)}"
        )
    return mode


def attach_manifest(path: PathLike) -> Dict[str, object]:
    """Compute and attach the manifest comment to a finished zip at *path*.

    Intended for the scratch file inside an atomic write (the public
    entry point is :func:`write_npz`); returns the manifest dict.
    """
    members: Dict[str, Dict[str, object]] = {}
    with zipfile.ZipFile(path, "r") as archive:
        for info in archive.infolist():
            whole = blake2b(digest_size=_DIGEST_SIZE)
            pages: List[str] = []
            with archive.open(info) as member:
                while True:
                    chunk = member.read(PAGE_BYTES)
                    if not chunk:
                        break
                    whole.update(chunk)
                    pages.append(_digest(chunk))
            members[info.filename] = {
                "size": info.file_size,
                "digest": whole.hexdigest(),
                "pages": pages,
            }
    manifest: Dict[str, object] = {
        "format": 1,
        "algorithm": "blake2b",
        "digest_size": _DIGEST_SIZE,
        "page_bytes": PAGE_BYTES,
        "members": members,
    }
    comment = _MANIFEST_MAGIC + json.dumps(
        manifest, sort_keys=True, separators=(",", ":")
    ).encode("ascii")
    with zipfile.ZipFile(path, "a") as archive:
        archive.comment = comment
    return manifest


def read_manifest(path: PathLike) -> Optional[Dict[str, object]]:
    """The manifest attached to the zip at *path*, or ``None``.

    Raises :class:`~repro.exceptions.ArtifactCorruptError` when the
    file is not a readable zip at all (a torn in-place write from a
    pre-durability version) or the manifest JSON itself is mangled.
    """
    try:
        with zipfile.ZipFile(path, "r") as archive:
            comment = archive.comment
    except FileNotFoundError:
        # A missing artifact is an attach race (publisher mid-rewrite,
        # raced deletion), not corruption — callers own that contract.
        raise
    except (zipfile.BadZipFile, OSError) as exc:
        raise ArtifactCorruptError(
            f"artifact {path} is not a readable zip ({exc}); it was likely "
            "torn by a crashed writer — delete it and regenerate",
            location=str(path),
        ) from exc
    if not comment.startswith(_MANIFEST_MAGIC):
        return None
    try:
        manifest = json.loads(comment[len(_MANIFEST_MAGIC):].decode("ascii"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ArtifactCorruptError(
            f"artifact {path} carries an unreadable manifest footer ({exc})",
            location=str(path),
        ) from exc
    return manifest


def _sample_indices(num_pages: int) -> List[int]:
    """First, last, and evenly spaced interior pages (≤ SAMPLE_PAGES)."""
    if num_pages <= SAMPLE_PAGES:
        return list(range(num_pages))
    step = (num_pages - 1) / (SAMPLE_PAGES - 1)
    return sorted({round(index * step) for index in range(SAMPLE_PAGES)})


def _fail(path: PathLike, detail: str) -> None:
    _count("failed")
    raise ArtifactCorruptError(
        f"artifact {path} failed integrity verification: {detail}; "
        "refusing to open it (see docs/operations.md, 'Durability & "
        "recovery', for the corrupt-artifact runbook)",
        location=str(path),
    )


def verify_artifact(path: PathLike, mode: Optional[str] = None) -> str:
    """Verify the artifact at *path* against its manifest footer.

    Returns ``"verified"``, ``"sampled"``, ``"skipped"`` (mode off) or
    ``"unchecked"`` (legacy artifact with no manifest); raises
    :class:`~repro.exceptions.ArtifactCorruptError` on any mismatch.
    This is also the ``artifact.verify`` fault site.
    """
    mode = resolve_verify_mode(mode)
    fire("artifact.verify", location=str(path), mode=mode)
    if mode == "off":
        _count("skipped")
        return "skipped"
    manifest = read_manifest(path)
    if manifest is None:
        _count("skipped")
        return "unchecked"
    members = manifest.get("members", {})
    page_bytes = int(manifest.get("page_bytes", PAGE_BYTES))
    try:
        with zipfile.ZipFile(path, "r") as archive:
            names = archive.namelist()
            if sorted(names) != sorted(members):
                _fail(path, "member list does not match the manifest")
            for info in archive.infolist():
                expected = members[info.filename]
                if info.file_size != expected["size"]:
                    _fail(
                        path,
                        f"member {info.filename!r} is {info.file_size} bytes, "
                        f"manifest says {expected['size']}",
                    )
                if mode == "full":
                    whole = blake2b(digest_size=_DIGEST_SIZE)
                    with archive.open(info) as member:
                        while True:
                            chunk = member.read(PAGE_BYTES)
                            if not chunk:
                                break
                            whole.update(chunk)
                    if whole.hexdigest() != expected["digest"]:
                        _fail(path, f"member {info.filename!r} digest mismatch")
                else:  # sampled
                    pages: List[str] = expected["pages"]  # type: ignore[assignment]
                    with archive.open(info) as member:
                        for index in _sample_indices(len(pages)):
                            member.seek(index * page_bytes)
                            chunk = member.read(page_bytes)
                            if _digest(chunk) != pages[index]:
                                _fail(
                                    path,
                                    f"member {info.filename!r} page {index} "
                                    "digest mismatch",
                                )
    except (zipfile.BadZipFile, OSError) as exc:
        # A bit flip can surface as zipfile's own CRC check or a read
        # error before our digest comparison runs — same verdict.
        _fail(path, f"zip-level read failure ({exc})")
    _count("verified")
    return "verified" if mode == "full" else "sampled"


def write_npz(path: PathLike, payload: Mapping[str, np.ndarray]) -> Path:
    """Atomically write a checksummed, uncompressed ``.npz`` at *path*.

    The single write path for every durable ``.npz`` this repo produces
    (io sidecars, mmap spills, published-store spills): scratch file in
    the same directory, ``np.savez``, manifest footer, fsync, rename.
    A crash at any point leaves the previous *path* (if any) intact.
    """

    def writer(scratch: Path) -> None:
        with open(scratch, "wb") as sink:
            np.savez(sink, **payload)
        attach_manifest(scratch)

    return atomic_write(path, writer)


__all__ = [
    "PAGE_BYTES",
    "SAMPLE_PAGES",
    "VERIFY_ENV",
    "VERIFY_MODES",
    "artifact_counters",
    "attach_manifest",
    "read_manifest",
    "reset_artifact_counters",
    "resolve_verify_mode",
    "verify_artifact",
    "write_npz",
]
