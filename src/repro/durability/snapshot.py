"""Checksummed pickle blobs: the answer-cache snapshot format.

A warm restart needs one durable object — the service's
:class:`~repro.service.cache.AnswerCache` contents plus the graph
fingerprint they were computed against.  :func:`write_blob` pickles the
payload behind a small header (magic, format version, payload length,
blake2b digest) and lands it through the atomic-write protocol, so a
crash mid-snapshot leaves the previous snapshot intact;
:func:`read_blob` verifies the digest before unpickling and raises
:class:`~repro.exceptions.ArtifactCorruptError` on any mismatch — a
corrupt snapshot costs a cold cache, never a poisoned one.

``write_blob`` is the ``snapshot.write`` fault site.
"""

from __future__ import annotations

import pickle
import struct
from hashlib import blake2b
from pathlib import Path

from repro.durability.atomic import PathLike, atomic_write_bytes
from repro.exceptions import ArtifactCorruptError
from repro.resilience.faults import fire

_MAGIC = b"repro-snap"
_FORMAT = 1
_DIGEST_SIZE = 16
_HEADER = struct.Struct(f">{len(_MAGIC)}sBQ{_DIGEST_SIZE}s")


def write_blob(path: PathLike, payload: object) -> Path:
    """Atomically write *payload* as a checksummed pickle blob at *path*."""
    fire("snapshot.write", location=str(path))
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    digest = blake2b(body, digest_size=_DIGEST_SIZE).digest()
    header = _HEADER.pack(_MAGIC, _FORMAT, len(body), digest)
    return atomic_write_bytes(path, header + body)


def read_blob(path: PathLike) -> object:
    """Read and verify a :func:`write_blob` artifact; raise on corruption."""
    try:
        raw = Path(path).read_bytes()
    except OSError as exc:
        raise ArtifactCorruptError(
            f"snapshot {path} is unreadable ({exc})", location=str(path)
        ) from exc
    if len(raw) < _HEADER.size:
        raise ArtifactCorruptError(
            f"snapshot {path} is truncated ({len(raw)} bytes)",
            location=str(path),
        )
    magic, fmt, length, digest = _HEADER.unpack(raw[: _HEADER.size])
    body = raw[_HEADER.size:]
    if magic != _MAGIC or fmt != _FORMAT:
        raise ArtifactCorruptError(
            f"snapshot {path} has an unknown header", location=str(path)
        )
    if len(body) != length:
        raise ArtifactCorruptError(
            f"snapshot {path} is {len(body)} payload bytes, header says "
            f"{length}",
            location=str(path),
        )
    if blake2b(body, digest_size=_DIGEST_SIZE).digest() != digest:
        raise ArtifactCorruptError(
            f"snapshot {path} failed its blake2b integrity check",
            location=str(path),
        )
    return pickle.loads(body)


__all__ = ["read_blob", "write_blob"]
