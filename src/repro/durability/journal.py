"""The experiment journal: an append-only JSONL WAL for long sweeps.

A ``--jobs 8`` ten-algorithm table over a 10⁶-node graph that dies at
cell 47/60 should not restart from zero.  The journal makes every
completed cell durable the moment it finishes: one fsync'd JSON line
per cell, appended by :func:`repro.experiments.runner.compare_algorithms`
(and the sweeps built on it), keyed by a **suite fingerprint** — a
blake2b over the experiment parameters, the seed, and a content probe
of the graph — so a journal can never replay into a run it does not
belong to.  ``--resume`` then replays finished cells from the journal
and re-runs only the missing ones; because cell seeds are pre-derived
(:func:`repro.utils.rng.derive_seed`), the resumed table is
bit-identical to an uninterrupted run.

Records are self-checking: each line carries a blake2b digest of its
payload, so a line torn by a crash mid-append (the only torn shape an
append-then-fsync protocol can produce) is detected and skipped on
replay rather than poisoning it.  The record vocabulary:

``begin``
    journal header — format version, suite fingerprint, writer pid;
``cell``
    one completed (algorithm, column) cell with its estimates and
    per-trial API-call counts — everything
    :class:`~repro.experiments.runner.TrialOutcome` needs to be rebuilt
    exactly;
``commit``
    the suite completed.  A committed journal is garbage (its table was
    delivered) and :func:`repro.graph.store.sweep_orphan_spills`
    reclaims it; an *uncommitted* journal is resume state and is always
    left alone.

Journal appends are deliberately non-fatal: a full disk should degrade
resumability, not kill a half-finished sweep.  Failed appends are
counted (and rehearsed via the ``journal.append`` fault site).
"""

from __future__ import annotations

import json
import os
from hashlib import blake2b
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.durability.atomic import PathLike, fsync_directory
from repro.exceptions import ExperimentError
from repro.resilience.faults import fire

JOURNAL_FORMAT = 1

#: File suffix all experiment journals carry (the sweep keys off it).
JOURNAL_SUFFIX = ".journal.jsonl"

CellKey = Tuple[str, object]


def _jsonable(value: object) -> object:
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)


def _dumps(payload: object) -> str:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_jsonable
    )


def _check(record: Dict[str, object]) -> str:
    return blake2b(_dumps(record).encode("utf-8"), digest_size=8).hexdigest()


def graph_fingerprint(graph: object) -> str:
    """A cheap content fingerprint of a graph (CSR or dict substrate).

    For CSR graphs this probes the head and tail of ``indptr`` /
    ``indices`` (and ``label_array`` when present) on top of the node
    and edge counts — O(1) I/O even on a memory-mapped graph, yet any
    regeneration with different parameters changes it.  Dict graphs
    hash only their counts and type (they are never the resume target
    at the scale where resume matters).
    """
    digest = blake2b(digest_size=16)
    digest.update(type(graph).__name__.encode("ascii"))
    digest.update(
        f"|V|={graph.num_nodes},|E|={graph.num_edges}".encode("ascii")
    )
    indptr = getattr(graph, "indptr", None)
    if indptr is not None:
        # CSRGraph exposes label_array as a zero-arg accessor, not an
        # attribute; other substrates may expose it as a plain array.
        labels = getattr(graph, "label_array", None)
        if callable(labels):
            labels = labels()
        for array in (indptr, graph.indices, labels):
            if array is None:
                continue
            probe = np.asarray(array)
            digest.update(np.ascontiguousarray(probe[:256]).tobytes())
            digest.update(np.ascontiguousarray(probe[-256:]).tobytes())
    return digest.hexdigest()


def suite_fingerprint(graph: object, **params: object) -> str:
    """The journal key: graph content probe + every run-shaping parameter."""
    digest = blake2b(digest_size=16)
    digest.update(graph_fingerprint(graph).encode("ascii"))
    digest.update(_dumps(params).encode("utf-8"))
    return digest.hexdigest()


def read_records(path: PathLike) -> List[Dict[str, object]]:
    """Every intact record in the journal at *path*, in append order.

    Torn or mangled lines (a crash mid-append, a checksum mismatch) are
    skipped, not fatal — that is the WAL contract.
    """
    records: List[Dict[str, object]] = []
    try:
        with open(path, "r", encoding="utf-8") as source:
            lines = source.readlines()
    except OSError:
        return records
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            envelope = json.loads(line)
            record = envelope["record"]
        except (ValueError, TypeError, KeyError):
            continue
        if not isinstance(record, dict):
            continue
        if envelope.get("check") != _check(record):
            continue
        records.append(record)
    return records


def journal_is_committed(path: PathLike) -> bool:
    """Whether the journal at *path* recorded a completed run."""
    return any(
        record.get("type") == "commit" for record in read_records(path)
    )


class ExperimentJournal:
    """One suite's WAL: open (fresh or resuming), append cells, commit."""

    def __init__(
        self, path: PathLike, fingerprint: str, resume: bool = False
    ) -> None:
        self.path = Path(path)
        if not str(self.path).endswith(JOURNAL_SUFFIX):
            # Normalize so sweep_orphan_spills can recognise journals.
            self.path = self.path.with_name(self.path.name + JOURNAL_SUFFIX)
        self.fingerprint = fingerprint
        self.append_failures = 0
        self.appended = 0
        self._committed = False
        self._replayed: Dict[CellKey, Dict[str, object]] = {}
        existing = read_records(self.path) if resume else []
        if resume and existing:
            header = existing[0]
            if (
                header.get("type") != "begin"
                or header.get("fingerprint") != fingerprint
            ):
                raise ExperimentError(
                    f"journal {self.path} belongs to a different suite "
                    f"(fingerprint {header.get('fingerprint')!r} != "
                    f"{fingerprint!r}); delete it or point --journal at a "
                    "fresh path"
                )
            for record in existing:
                if record.get("type") == "cell":
                    key = (str(record["algorithm"]), record["column"])
                    self._replayed[key] = record
                elif record.get("type") == "commit":
                    self._committed = True
            self._handle = open(self.path, "a", encoding="utf-8")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w", encoding="utf-8")
            self._append(
                {
                    "type": "begin",
                    "format": JOURNAL_FORMAT,
                    "fingerprint": fingerprint,
                }
            )

    @property
    def committed(self) -> bool:
        return self._committed

    def completed_cells(self) -> Dict[CellKey, Dict[str, object]]:
        """Replayed ``(algorithm, column) -> cell record`` from a resume."""
        return dict(self._replayed)

    def _append(self, record: Dict[str, object]) -> None:
        record = dict(record, pid=os.getpid())
        line = _dumps({"check": _check(record), "record": record})
        try:
            fire("journal.append", location=str(self.path))
            self._handle.write(line + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except Exception:
            # Durability must degrade, never kill the run: a failed
            # append costs resumability of this cell, nothing else.
            self.append_failures += 1
        else:
            self.appended += 1

    def append_cell(
        self,
        algorithm: str,
        column: object,
        sample_size: int,
        true_count: int,
        estimates: List[float],
        api_calls: List[int],
    ) -> None:
        """Make one finished cell durable."""
        self._append(
            {
                "type": "cell",
                "algorithm": algorithm,
                "column": column,
                "sample_size": int(sample_size),
                "true_count": int(true_count),
                "estimates": [float(value) for value in estimates],
                "api_calls": [int(value) for value in api_calls],
            }
        )

    def commit(self, cells: int) -> None:
        """Mark the suite complete (a committed journal is reclaimable)."""
        if not self._committed:
            self._append({"type": "commit", "cells": int(cells)})
            self._committed = True

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            fsync_directory(self.path.parent)

    def __enter__(self) -> "ExperimentJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_SUFFIX",
    "ExperimentJournal",
    "graph_fingerprint",
    "journal_is_committed",
    "read_records",
    "suite_fingerprint",
]
