"""Crash-consistent durability: atomic writes, manifests, WALs, snapshots.

Everything this repo persists survives crash-stop faults through three
legs, each a module here:

* :mod:`~repro.durability.atomic` + :mod:`~repro.durability.manifest` —
  every durable write is scratch-file + fsync + ``os.replace``, and
  every ``.npz`` carries a blake2b manifest footer the attach paths
  verify before memory-mapping a byte (full / sampled / off, via
  ``REPRO_VERIFY_ARTIFACTS``);
* :mod:`~repro.durability.journal` — long sweeps WAL each completed
  cell, fingerprint-keyed, so ``--resume`` replays the finished work
  bit-identically;
* :mod:`~repro.durability.snapshot` — the serving layer checkpoints its
  answer cache for warm restarts.

The runbook lives in docs/operations.md ("Durability & recovery").
"""

from repro.durability.atomic import (
    SCRATCH_PATTERN,
    atomic_write,
    atomic_write_bytes,
    commit_scratch,
    fsync_directory,
    scratch_path,
)
from repro.durability.journal import (
    JOURNAL_SUFFIX,
    ExperimentJournal,
    graph_fingerprint,
    journal_is_committed,
    read_records,
    suite_fingerprint,
)
from repro.durability.manifest import (
    PAGE_BYTES,
    VERIFY_ENV,
    VERIFY_MODES,
    artifact_counters,
    attach_manifest,
    read_manifest,
    reset_artifact_counters,
    resolve_verify_mode,
    verify_artifact,
    write_npz,
)
from repro.durability.snapshot import read_blob, write_blob

__all__ = [
    "JOURNAL_SUFFIX",
    "PAGE_BYTES",
    "SCRATCH_PATTERN",
    "VERIFY_ENV",
    "VERIFY_MODES",
    "ExperimentJournal",
    "artifact_counters",
    "atomic_write",
    "atomic_write_bytes",
    "attach_manifest",
    "commit_scratch",
    "fsync_directory",
    "graph_fingerprint",
    "journal_is_committed",
    "read_blob",
    "read_manifest",
    "read_records",
    "reset_artifact_counters",
    "resolve_verify_mode",
    "scratch_path",
    "suite_fingerprint",
    "verify_artifact",
    "write_blob",
    "write_npz",
]
