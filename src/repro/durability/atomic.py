"""Crash-consistent file writes: same-directory scratch + fsync + replace.

Every durable artifact this repo writes — ``.npz`` sidecars, mmap
spills, experiment journals, answer-cache snapshots — goes through one
of these helpers, so a writer killed at *any* instruction leaves either
the old file (intact) or the new file (complete), never a torn hybrid:

1. the payload is written to a hidden scratch file **in the same
   directory** as the target (``os.replace`` must not cross
   filesystems);
2. the scratch is flushed and ``fsync``\\ ed, so its bytes are durable
   before it becomes reachable under the real name;
3. ``os.replace`` swaps it in atomically (POSIX rename semantics);
4. the directory entry is ``fsync``\\ ed, so the rename itself survives
   power loss.

Scratch names embed the writer's pid
(``.{name}.pid{pid}.{uuid}.tmp``), which is what lets
:func:`repro.graph.store.sweep_orphan_spills` reclaim scratch files
whose writer died between steps 1 and 3 — the only garbage this
protocol can leave behind.
"""

from __future__ import annotations

import os
import re
import uuid
from pathlib import Path
from typing import Callable, Union

PathLike = Union[str, os.PathLike]

#: Scratch files produced by :func:`scratch_path`; group 1 is the pid.
SCRATCH_PATTERN = re.compile(r"^\..+\.pid(?P<pid>\d+)\.[0-9a-f]+\.tmp$")


def scratch_path(target: PathLike) -> Path:
    """A fresh pid-stamped scratch name next to *target*."""
    target = Path(target)
    return target.with_name(
        f".{target.name}.pid{os.getpid()}.{uuid.uuid4().hex}.tmp"
    )


def fsync_directory(directory: PathLike) -> None:
    """Flush a directory entry table (best effort off-POSIX)."""
    try:
        fd = os.open(os.fspath(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. Windows directories
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def commit_scratch(scratch: PathLike, target: PathLike) -> None:
    """Durably promote a finished *scratch* file to *target* (steps 2-4)."""
    scratch, target = Path(scratch), Path(target)
    fd = os.open(scratch, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(scratch, target)
    fsync_directory(target.parent)


def atomic_write(
    target: PathLike, writer: Callable[[Path], None]
) -> Path:
    """Run *writer(scratch)* then atomically promote the scratch to *target*.

    *writer* receives the scratch :class:`~pathlib.Path` and must leave
    the complete payload there.  On any failure the scratch is removed
    and *target* is untouched.
    """
    target = Path(target)
    scratch = scratch_path(target)
    try:
        writer(scratch)
        commit_scratch(scratch, target)
    finally:
        scratch.unlink(missing_ok=True)
    return target


def atomic_write_bytes(target: PathLike, payload: bytes) -> Path:
    """Atomically (re)write *target* with *payload*."""

    def writer(scratch: Path) -> None:
        with open(scratch, "wb") as sink:
            sink.write(payload)
            sink.flush()

    return atomic_write(target, writer)


__all__ = [
    "SCRATCH_PATTERN",
    "atomic_write",
    "atomic_write_bytes",
    "commit_scratch",
    "fsync_directory",
    "scratch_path",
]
