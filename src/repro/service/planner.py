"""Query planning: coalesce concurrent queries into shared fleets.

The micro-batcher hands over everything that arrived in one window;
this module decides how few walks can answer all of it.  The grouping
rule falls straight out of the prefix-reuse exactness property
(:mod:`repro.experiments.planner`): queries whose walks are pinned by
the same :class:`~repro.experiments.planner.FleetSpec` — same
algorithm, same derived fleet seed, same repetitions and burn-in —
share one fleet at the **maximum** of their budgets, and every member
query reads its answer off a prefix, bit-identical to a standalone run
at its own budget.  Target pairs never enter the grouping key at all:
walks are label-agnostic, classification is per-query.

Seed derivation mirrors the batch path exactly:
:func:`repro.experiments.runner.run_trials_prefix` walks its fleet at
``derive_seed(seed, algorithm, "prefix")``, so a served answer for
``(pair, budget, seed)`` is bit-identical to the batch CLI answer at
the same user-facing seed — the acceptance property of the serving
layer, pinned by ``tests/service/test_service_integration.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.experiments.planner import FleetSpec
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class EstimateQuery:
    """One client question: how many (*t1*, *t2*) edges, at what cost.

    *seed* is the user-facing experiment seed (the same value the batch
    CLI takes); the fleet seed is derived from it per algorithm, never
    used raw.  Frozen and hashable so identical queries coalesce in
    cache keys and batch maps.
    """

    algorithm: str
    t1: Hashable
    t2: Hashable
    budget: int
    seed: int = 2018
    repetitions: int = 20
    burn_in: int = 0

    def fleet_seed(self) -> int:
        """The derived seed this query's fleet walks at.

        Identical to ``_derive_group_seed`` in the batch harness, which
        is what makes served answers bit-compatible with
        ``run_trials_prefix`` at the same user seed.
        """
        return derive_seed(self.seed, self.algorithm, "prefix")

    def spec(self) -> FleetSpec:
        """The fleet specification this query must be answered from."""
        return FleetSpec(
            self.algorithm, self.fleet_seed(), self.repetitions, self.burn_in
        )

    def cache_key(self, graph_version: int) -> Tuple[Hashable, ...]:
        """The answer-cache key for this query against *graph_version*."""
        return (
            int(graph_version),
            self.algorithm,
            self.t1,
            self.t2,
            int(self.budget),
            int(self.seed),
            int(self.repetitions),
            int(self.burn_in),
        )


@dataclass
class FleetPlan:
    """One walk serving many queries: a spec plus the coalesced demand.

    ``max_budget`` is the largest budget over :attr:`queries`; the
    executor builds a single
    :class:`~repro.experiments.planner.PrefixFleet` at that budget and
    answers each member query from a prefix.
    """

    spec: FleetSpec
    max_budget: int = 0
    queries: List[EstimateQuery] = field(default_factory=list)

    def add(self, query: EstimateQuery) -> None:
        self.queries.append(query)
        self.max_budget = max(self.max_budget, int(query.budget))

    @property
    def num_queries(self) -> int:
        return len(self.queries)


def plan_queries(queries: Sequence[EstimateQuery]) -> List[FleetPlan]:
    """Group *queries* into the fewest exactness-preserving fleet plans.

    Two queries land in the same plan iff their :meth:`EstimateQuery.spec`
    values are equal — the necessary and sufficient condition for one
    walk to serve both bit-identically.  Plan order follows first
    appearance, and queries keep their arrival order within a plan, so
    planning is deterministic in the batch contents.
    """
    plans: Dict[FleetSpec, FleetPlan] = {}
    for query in queries:
        spec = query.spec()
        plan = plans.get(spec)
        if plan is None:
            plan = plans[spec] = FleetPlan(spec=spec)
        plan.add(query)
    return list(plans.values())


__all__ = ["EstimateQuery", "FleetPlan", "plan_queries"]
