"""Validated configuration for ``repro-osn serve``.

Mirrors :class:`repro.experiments.config.ExperimentConfig`'s style: a
frozen-ish dataclass that validates eagerly in ``__post_init__`` so a
bad flag combination fails at argument-parsing time, not after the
graph has been synthesised and published.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.samplers.csr_backend import validate_backend
from repro.datasets.registry import DATASET_SPECS
from repro.exceptions import ConfigurationError
from repro.graph.store import validate_graph_store
from repro.utils.validation import (
    check_non_negative_int,
    check_positive,
    check_positive_int,
)

TRANSPORTS = ("auto", "fastapi", "stdlib")


@dataclass
class ServiceConfig:
    """Everything ``repro-osn serve`` needs to boot a server.

    ``graph_store="shm"`` serves from a shared-memory publication
    (fits-in-RAM graphs, fastest); ``"mmap"`` serves from a
    memory-mapped sidecar (out-of-core graphs); ``"ram"`` skips
    publication entirely (single-process dev server).  See
    ``docs/scaling-guide.md`` for the trade-off.

    ``backend`` selects the fleet tier the server walks with:
    ``"csr"`` (default, vectorized numpy) or ``"compiled"`` (numba-njit
    kernels, falling back to numpy with a typed warning when numba is
    absent).  The tiers are bit-identical from the same seed, so
    answers — and the answer cache — are backend-agnostic.
    ``"python"`` has no fleet engine and is rejected.

    The resilience knobs (``docs/operations.md`` is the runbook):

    * ``deadline_ms`` — default per-query deadline (504 at expiry);
      ``None`` disables.  Requests may override via ``deadline_ms`` in
      the ``/estimate`` body.
    * ``max_in_flight`` — admission bound on queries simultaneously
      awaiting answers; overflow is shed to stale cache or 429'd.
    * ``breaker_threshold`` / ``breaker_cooldown_ms`` — per-algorithm
      circuit breakers: consecutive fleet failures to trip, and how
      long an open breaker waits before half-opening on a probe.
    * ``faults`` — a :class:`repro.resilience.FaultPlan` string
      (validated eagerly) installed at startup for chaos runs; the
      ``REPRO_FAULTS`` environment variable is the env-only equivalent.

    The durability knobs:

    * ``snapshot_path`` — where the answer cache is checkpointed for
      warm restarts (atomic, checksummed; loaded back at boot when the
      graph fingerprint matches).  ``None`` disables snapshots.
    * ``snapshot_interval_ms`` — the periodic snapshot timer (the
      SIGKILL-survival story; graceful SIGTERM snapshots regardless).
    """

    dataset: str = "facebook"
    scale: float = 0.25
    seed: int = 0
    graph_store: str = "shm"
    backend: str = "csr"
    host: str = "127.0.0.1"
    port: int = 8000
    batch_window_ms: float = 5.0
    cache_size: int = 1024
    repetitions: int = 20
    burn_in: Optional[int] = None
    transport: str = "auto"
    include_baselines: bool = True
    deadline_ms: Optional[float] = None
    max_in_flight: Optional[int] = None
    breaker_threshold: int = 3
    breaker_cooldown_ms: float = 5000.0
    faults: Optional[str] = None
    snapshot_path: Optional[str] = None
    snapshot_interval_ms: float = 30000.0

    def __post_init__(self) -> None:
        if self.dataset not in DATASET_SPECS:
            raise ConfigurationError(
                f"unknown dataset {self.dataset!r}; "
                f"available: {', '.join(DATASET_SPECS)}"
            )
        check_positive(self.scale, "scale")
        validate_graph_store(self.graph_store)
        validate_backend(self.backend)
        if self.backend == "python":
            raise ConfigurationError(
                "the estimation service walks vectorized fleets; "
                "backend must be 'csr' or 'compiled'"
            )
        if not (0 <= int(self.port) <= 65535):
            raise ConfigurationError(f"port must be in [0, 65535], got {self.port}")
        if self.batch_window_ms < 0:
            raise ConfigurationError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )
        check_non_negative_int(self.cache_size, "cache_size")
        check_positive_int(self.repetitions, "repetitions")
        if self.burn_in is not None:
            check_non_negative_int(self.burn_in, "burn_in")
        if self.transport not in TRANSPORTS:
            raise ConfigurationError(
                f"unknown transport {self.transport!r}; "
                f"choose one of {', '.join(TRANSPORTS)}"
            )
        if self.deadline_ms is not None:
            check_positive(self.deadline_ms, "deadline_ms")
        if self.max_in_flight is not None:
            check_positive_int(self.max_in_flight, "max_in_flight")
        check_positive_int(self.breaker_threshold, "breaker_threshold")
        if self.breaker_cooldown_ms < 0:
            raise ConfigurationError(
                f"breaker_cooldown_ms must be >= 0, got {self.breaker_cooldown_ms}"
            )
        check_positive(self.snapshot_interval_ms, "snapshot_interval_ms")
        if self.faults is not None:
            # Parse eagerly: a typo'd fault plan should fail at flag
            # time, not after the graph has been built and published.
            from repro.resilience.faults import FaultPlan

            FaultPlan.parse(self.faults)

    @property
    def window_seconds(self) -> float:
        return self.batch_window_ms / 1000.0

    @property
    def breaker_cooldown_seconds(self) -> float:
        return self.breaker_cooldown_ms / 1000.0

    @property
    def snapshot_interval_seconds(self) -> float:
        return self.snapshot_interval_ms / 1000.0


__all__ = ["ServiceConfig", "TRANSPORTS"]
