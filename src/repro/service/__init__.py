"""Estimation-as-a-service: a long-lived query server over one graph.

The paper's setting is an analyst issuing repeated target-edge-count
queries against a restricted social-network API; the batch CLI answers
them one experiment at a time.  This package is the serving layer the
ROADMAP asks for: publish a graph **once** into the shm/mmap store at
startup, then answer many concurrent (label-pair, budget, algorithm)
queries from micro-batched prefix fleets.

Layering (each piece is independently testable):

* :mod:`repro.service.cache` — :class:`AnswerCache`, an LRU keyed by
  ``(graph version, algorithm, pair, budget, seed, repetitions,
  burn_in)`` with explicit invalidation on graph swap.
* :mod:`repro.service.planner` — :func:`plan_queries` groups coalesced
  queries into shared max-budget :class:`FleetPlan`\\ s (one
  :class:`~repro.experiments.planner.PrefixFleet` per plan answers
  every member query bit-identically to a standalone run).
* :mod:`repro.service.core` — :class:`EstimationService`, the
  synchronous engine: graph publication + read-only enforcement,
  cache, plan execution, throughput stats.
* :mod:`repro.service.batcher` — :class:`MicroBatcher`, the asyncio
  front: collects in-flight requests over a short window and hands the
  batch to the service off the event loop.
* :mod:`repro.service.http` — transports: a dependency-free asyncio
  HTTP server (always available) and a FastAPI app factory (gated on
  the optional dependency).
* :mod:`repro.service.config` — :class:`ServiceConfig`, the validated
  knob set behind ``repro-osn serve``.

Failure policies — per-query deadlines, per-algorithm circuit
breakers, admission control, degraded-mode stale-cache serving — are
provided by :mod:`repro.resilience` and threaded through the engine
and the batcher; ``docs/operations.md`` is the runbook.
"""

from repro.service.batcher import MicroBatcher
from repro.service.cache import AnswerCache
from repro.service.config import ServiceConfig
from repro.service.core import EstimateAnswer, EstimateQuery, EstimationService
from repro.service.http import ServiceHTTPServer, create_fastapi_app, run_server
from repro.service.planner import FleetPlan, plan_queries

__all__ = [
    "AnswerCache",
    "EstimateAnswer",
    "EstimateQuery",
    "EstimationService",
    "FleetPlan",
    "MicroBatcher",
    "ServiceConfig",
    "ServiceHTTPServer",
    "create_fastapi_app",
    "plan_queries",
    "run_server",
]
