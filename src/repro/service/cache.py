"""The serving layer's answer cache: version-keyed, LRU, swap-safe.

Estimates are deterministic in ``(graph version, algorithm, pair,
budget, seed, repetitions, burn_in)`` — the walk consumes a seeded
stream over frozen CSR buffers — so a repeated query against an
unchanged graph can be served without walking at all.  The graph
version in the key is what makes this safe: the service bumps its
version (and calls :meth:`AnswerCache.invalidate`) on every graph
swap, and the read-only enforcement in the graph layer
(:meth:`repro.graph.labeled_graph.LabeledGraph.freeze`,
:meth:`repro.graph.csr.CSRGraph.seal_buffers`) guarantees a published
graph cannot mutate *without* a swap, so a cached answer can never
outlive the buffers it was computed from.

The cache is internally locked: the engine reads and writes it under
the execution lock from a worker thread, while the degraded-serving
path (:meth:`find_stale`) reads it straight from the event loop —
deliberately *without* the execution lock, so an open breaker or a full
admission queue can be answered from cache even while a slow fleet
holds the engine.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Tuple

from repro.utils.validation import check_non_negative_int

CacheKey = Tuple[Hashable, ...]

#: Positions inside a cache key (see ``EstimateQuery.cache_key``).
_VERSION, _ALGORITHM, _T1, _T2, _BUDGET = range(5)


class AnswerCache:
    """A small LRU mapping query keys to finished answers.

    ``max_size=0`` disables caching (every :meth:`get` misses, nothing
    is stored) — useful for load tests that must walk every query.
    The counters feed the ``/stats`` endpoint; *hit_rate* over a
    repeated identical query is the acceptance probe for the serving
    layer ("> 0 when the same query repeats against an unchanged graph
    version").
    """

    def __init__(self, max_size: int = 1024) -> None:
        check_non_negative_int(max_size, "max_size")
        self.max_size = int(max_size)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.stale_hits = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> Optional[object]:
        """The cached answer for *key*, refreshing its recency; None on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def find_stale(
        self,
        graph_version: int,
        algorithm: str,
        t1: Hashable,
        t2: Hashable,
    ) -> Optional[object]:
        """The best degraded-mode fallback for (*algorithm*, *t1*, *t2*).

        Scans for entries computed against the **same graph version**
        for the same algorithm and pair — any budget, seed, repetitions
        or burn-in — and returns the one walked at the largest budget
        (the most accurate estimate on hand).  "Stale" therefore never
        means "from an older graph": a version mismatch is a topology
        change and such answers are unusable by construction; it means
        "not the exact (budget, seed) the client asked for".  Returns
        ``None`` when nothing matches; the caller decides between
        serving the fallback flagged ``degraded: true`` or failing
        fast.  Recency is deliberately not refreshed — a degraded read
        should not keep shedding-window entries pinned over real hits.
        """
        best: Optional[object] = None
        best_budget = -1
        with self._lock:
            for key, entry in self._entries.items():
                if len(key) <= _BUDGET:
                    continue
                if (
                    key[_VERSION] == int(graph_version)
                    and key[_ALGORITHM] == algorithm
                    and key[_T1] == t1
                    and key[_T2] == t2
                    and int(key[_BUDGET]) > best_budget
                ):
                    best = entry
                    best_budget = int(key[_BUDGET])
            if best is not None:
                self.stale_hits += 1
        return best

    def put(self, key: CacheKey, value: object) -> None:
        """Store *value* under *key*, evicting least-recently-used overflow."""
        if self.max_size == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self.evictions += 1

    def export_entries(self) -> List[Tuple[CacheKey, object]]:
        """Every entry in LRU order (oldest first) — the snapshot payload.

        A consistent point-in-time copy under the cache lock; replaying
        it through :meth:`load_entries` reproduces both the contents
        and the eviction order.
        """
        with self._lock:
            return list(self._entries.items())

    def load_entries(self, entries: List[Tuple[CacheKey, object]]) -> int:
        """Repopulate from a snapshot; returns how many entries landed.

        Entries are inserted in the given (oldest-first) order so LRU
        recency survives the restart; overflow beyond ``max_size`` is
        evicted exactly as live puts would.  Counters are untouched —
        a warm restart starts its hit-rate accounting fresh.
        """
        loaded = 0
        for key, value in entries:
            self.put(tuple(key), value)
            loaded += 1
        return loaded

    def invalidate(self) -> int:
        """Drop every entry (graph swap); returns how many were dropped.

        Version-keyed entries from the old graph could never be *read*
        again (their keys embed the retired version), but they would
        pin the old answers in memory until LRU churn pushed them out —
        a swap empties the cache eagerly instead.
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += 1
            return dropped

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def stats(self) -> Dict[str, object]:
        """Counter snapshot for the ``/stats`` endpoint."""
        with self._lock:
            size = len(self._entries)
        return {
            "size": size,
            "max_size": self.max_size,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "stale_hits": self.stale_hits,
        }


__all__ = ["AnswerCache", "CacheKey"]
