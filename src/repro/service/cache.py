"""The serving layer's answer cache: version-keyed, LRU, swap-safe.

Estimates are deterministic in ``(graph version, algorithm, pair,
budget, seed, repetitions, burn_in)`` — the walk consumes a seeded
stream over frozen CSR buffers — so a repeated query against an
unchanged graph can be served without walking at all.  The graph
version in the key is what makes this safe: the service bumps its
version (and calls :meth:`AnswerCache.invalidate`) on every graph
swap, and the read-only enforcement in the graph layer
(:meth:`repro.graph.labeled_graph.LabeledGraph.freeze`,
:meth:`repro.graph.csr.CSRGraph.seal_buffers`) guarantees a published
graph cannot mutate *without* a swap, so a cached answer can never
outlive the buffers it was computed from.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from repro.utils.validation import check_non_negative_int

CacheKey = Tuple[Hashable, ...]


class AnswerCache:
    """A small LRU mapping query keys to finished answers.

    ``max_size=0`` disables caching (every :meth:`get` misses, nothing
    is stored) — useful for load tests that must walk every query.
    The counters feed the ``/stats`` endpoint; *hit_rate* over a
    repeated identical query is the acceptance probe for the serving
    layer ("> 0 when the same query repeats against an unchanged graph
    version").
    """

    def __init__(self, max_size: int = 1024) -> None:
        check_non_negative_int(max_size, "max_size")
        self.max_size = int(max_size)
        self._entries: "OrderedDict[CacheKey, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> Optional[object]:
        """The cached answer for *key*, refreshing its recency; None on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: CacheKey, value: object) -> None:
        """Store *value* under *key*, evicting least-recently-used overflow."""
        if self.max_size == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_size:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self) -> int:
        """Drop every entry (graph swap); returns how many were dropped.

        Version-keyed entries from the old graph could never be *read*
        again (their keys embed the retired version), but they would
        pin the old answers in memory until LRU churn pushed them out —
        a swap empties the cache eagerly instead.
        """
        dropped = len(self._entries)
        self._entries.clear()
        self.invalidations += 1
        return dropped

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def stats(self) -> Dict[str, object]:
        """Counter snapshot for the ``/stats`` endpoint."""
        return {
            "size": len(self._entries),
            "max_size": self.max_size,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


__all__ = ["AnswerCache", "CacheKey"]
