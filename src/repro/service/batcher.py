"""The asyncio micro-batcher: collect a window, walk once, fan out.

Many concurrent clients asking for estimates at the same instant is
the serving layer's whole reason to exist: their walks are almost
always shareable (same algorithm and seed, different pairs/budgets),
but only if someone *holds* the requests long enough to notice.
:class:`MicroBatcher` does exactly that — each submitted query parks on
a future, the first submission of an idle period arms a flush timer,
and when the window closes the whole batch goes to
:meth:`EstimationService.estimate_many
<repro.service.core.EstimationService.estimate_many>` **off the event
loop** (a worker thread), where cache hits are peeled off and the
misses coalesce into shared max-budget fleets.

Failure isolation is per-future:

* a query that fails (unknown algorithm, zero-target pair) resolves
  *its* future with the exception; batch-mates are untouched;
* a client that disappears mid-batch (cancelled ``await``, dropped
  HTTP connection) leaves a cancelled future behind — the flush simply
  skips it (``future.done()``), the shared fleet result still serves
  everyone else, and nothing leaks;
* an executor-level crash resolves every still-pending future with the
  error, so no client ever hangs on a dead batch.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.service.core import EstimateAnswer, EstimationService
from repro.service.planner import EstimateQuery

QueryLike = Union[EstimateQuery, Mapping[str, object]]


class MicroBatcher:
    """Window-based request coalescing in front of an :class:`EstimationService`.

    Parameters
    ----------
    service:
        The synchronous engine that executes batches.
    window_seconds:
        How long the first request of a batch waits for company.  The
        window trades a bounded latency floor for fleet sharing; 5 ms
        is generous next to a walk and invisible next to network RTT.
    """

    def __init__(
        self, service: EstimationService, window_seconds: float = 0.005
    ) -> None:
        if window_seconds < 0:
            raise ValueError("window_seconds must be >= 0")
        self.service = service
        self.window_seconds = float(window_seconds)
        self._pending: List[Tuple[QueryLike, "asyncio.Future[EstimateAnswer]"]] = []
        self._flush_task: Optional["asyncio.Task[None]"] = None
        # accounting for /stats
        self.batches_flushed = 0
        self.queries_submitted = 0
        self.queries_dropped = 0
        self.peak_batch_size = 0

    @property
    def in_flight(self) -> int:
        """Queries parked in the current (un-flushed) window."""
        return len(self._pending)

    async def submit(self, query: QueryLike) -> EstimateAnswer:
        """Queue *query* for the next flush and await its answer.

        Cancelling the returned awaitable abandons only this caller's
        slot; the batch (and any fleet it shares) proceeds for the
        remaining clients.
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[EstimateAnswer]" = loop.create_future()
        self._pending.append((query, future))
        self.queries_submitted += 1
        self.peak_batch_size = max(self.peak_batch_size, len(self._pending))
        if self._flush_task is None or self._flush_task.done():
            self._flush_task = loop.create_task(self._flush_after_window())
        return await future

    async def drain(self) -> None:
        """Flush anything still pending immediately (shutdown path)."""
        if self._flush_task is not None and not self._flush_task.done():
            self._flush_task.cancel()
            try:
                await self._flush_task
            except asyncio.CancelledError:
                pass
            self._flush_task = None
        if self._pending:
            await self._flush()

    async def _flush_after_window(self) -> None:
        if self.window_seconds > 0:
            await asyncio.sleep(self.window_seconds)
        await self._flush()

    async def _flush(self) -> None:
        batch, self._pending = self._pending, []
        self._flush_task = None
        if not batch:
            return
        self.batches_flushed += 1
        queries = [query for query, _ in batch]
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                None, self.service.estimate_many, queries
            )
        except Exception as exc:  # engine-level failure: fail the whole batch
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(batch, results):
            if future.done():
                # Client disconnected / cancelled mid-batch; the shared
                # fleet already served everyone else.
                self.queries_dropped += 1
                continue
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(result)

    def stats(self) -> Dict[str, object]:
        """Batching counters for the ``/stats`` endpoint."""
        return {
            "window_seconds": self.window_seconds,
            "in_flight": self.in_flight,
            "batches_flushed": self.batches_flushed,
            "queries_submitted": self.queries_submitted,
            "queries_dropped": self.queries_dropped,
            "peak_batch_size": self.peak_batch_size,
        }


__all__ = ["MicroBatcher"]
