"""The asyncio micro-batcher: collect a window, walk once, fan out.

Many concurrent clients asking for estimates at the same instant is
the serving layer's whole reason to exist: their walks are almost
always shareable (same algorithm and seed, different pairs/budgets),
but only if someone *holds* the requests long enough to notice.
:class:`MicroBatcher` does exactly that — each submitted query parks on
a future, the first submission of an idle period arms a flush timer,
and when the window closes the whole batch goes to
:meth:`EstimationService.estimate_many
<repro.service.core.EstimationService.estimate_many>` **off the event
loop** (a worker thread), where cache hits are peeled off and the
misses coalesce into shared max-budget fleets.

Failure isolation is per-future:

* a query that fails (unknown algorithm, zero-target pair) resolves
  *its* future with the exception; batch-mates are untouched;
* a client that disappears mid-batch (cancelled ``await``, dropped
  HTTP connection) leaves a cancelled future behind — a future already
  done at flush time is dropped *before* the batch executes, and one
  cancelled mid-execute is skipped at delivery; the shared fleet
  result still serves everyone else.  The flush itself runs under
  :func:`asyncio.shield`, so even cancelling the *flush task*
  mid-execute (shutdown racing a walk) finishes delivering to the
  surviving siblings before the cancellation propagates;
* an executor-level crash resolves every still-pending future with the
  error, so no client ever hangs on a dead batch.

Two failure policies live at this seam (see :mod:`repro.resilience`):

* **Admission control** — with *max_in_flight* set, a query arriving
  while that many are already awaiting answers is shed immediately:
  served a version-matched stale cache answer flagged
  ``degraded: true`` when one exists, rejected with
  :class:`~repro.exceptions.ServiceOverloadedError` (HTTP 429 +
  ``Retry-After``) otherwise.  Shed queries never park, so overload
  cannot grow the queue.
* **Deadlines** — a per-query (or default) deadline bounds the await:
  at expiry the caller gets
  :class:`~repro.exceptions.DeadlineExceededError` (HTTP 504)
  immediately and the slot's future is cancelled, which both drops it
  from an unflushed batch and lets the engine skip it at the next plan
  boundary (cooperative cancellation; the walk is never interrupted
  mid-kernel).
"""

from __future__ import annotations

import asyncio
from functools import partial
from typing import Dict, List, Mapping, Optional, Set, Tuple, Union

from repro.exceptions import DeadlineExceededError, ServiceOverloadedError
from repro.resilience.admission import AdmissionController
from repro.resilience.deadline import Deadline
from repro.resilience.faults import fire
from repro.service.core import EstimateAnswer, EstimationService
from repro.service.planner import EstimateQuery

QueryLike = Union[EstimateQuery, Mapping[str, object]]

#: One parked slot: the query, its future, and its (optional) deadline.
_Slot = Tuple[QueryLike, "asyncio.Future[EstimateAnswer]", Optional[Deadline]]


class MicroBatcher:
    """Window-based request coalescing in front of an :class:`EstimationService`.

    Parameters
    ----------
    service:
        The synchronous engine that executes batches.
    window_seconds:
        How long the first request of a batch waits for company.  The
        window trades a bounded latency floor for fleet sharing; 5 ms
        is generous next to a walk and invisible next to network RTT.
    max_in_flight:
        Admission bound: queries simultaneously awaiting answers.
        ``None`` (default) disables admission control.
    default_deadline_seconds:
        Deadline applied to queries that do not carry their own;
        ``None`` (default) means no deadline.
    """

    def __init__(
        self,
        service: EstimationService,
        window_seconds: float = 0.005,
        max_in_flight: Optional[int] = None,
        default_deadline_seconds: Optional[float] = None,
    ) -> None:
        if window_seconds < 0:
            raise ValueError("window_seconds must be >= 0")
        self.service = service
        self.window_seconds = float(window_seconds)
        self.admission: Optional[AdmissionController] = (
            AdmissionController(
                max_in_flight,
                retry_after_seconds=max(self.window_seconds * 2, 0.05),
            )
            if max_in_flight is not None
            else None
        )
        self.default_deadline_seconds = default_deadline_seconds
        self._pending: List[_Slot] = []
        self._flush_task: Optional["asyncio.Task[None]"] = None
        self._active_flushes: "Set[asyncio.Task[None]]" = set()
        # accounting for /stats
        self.batches_flushed = 0
        self.queries_submitted = 0
        self.queries_dropped = 0
        self.queries_shed = 0
        self.deadline_timeouts = 0
        self.peak_batch_size = 0

    @property
    def in_flight(self) -> int:
        """Queries parked in the current (un-flushed) window."""
        return len(self._pending)

    async def submit(
        self,
        query: QueryLike,
        deadline_seconds: Optional[float] = None,
    ) -> EstimateAnswer:
        """Queue *query* for the next flush and await its answer.

        Cancelling the returned awaitable abandons only this caller's
        slot; the batch (and any fleet it shares) proceeds for the
        remaining clients.  *deadline_seconds* overrides the batcher's
        default deadline for this query.
        """
        budget = (
            deadline_seconds
            if deadline_seconds is not None
            else self.default_deadline_seconds
        )
        deadline = Deadline(budget) if budget is not None else None
        if self.admission is not None and not self.admission.try_acquire():
            # Full queue: shed without parking — stale cache or fast 429.
            fallback = self.service.degraded_answer(query)
            if fallback is not None:
                self.queries_shed += 1
                return fallback
            raise ServiceOverloadedError(
                depth=self.admission.limit,
                limit=self.admission.limit,
                retry_after=self.admission.retry_after_seconds,
            )
        try:
            loop = asyncio.get_running_loop()
            future: "asyncio.Future[EstimateAnswer]" = loop.create_future()
            self._pending.append((query, future, deadline))
            self.queries_submitted += 1
            self.peak_batch_size = max(self.peak_batch_size, len(self._pending))
            if self._flush_task is None or self._flush_task.done():
                self._flush_task = loop.create_task(self._flush_after_window())
            if deadline is None:
                return await future
            try:
                # Shield the slot from wait_for's cancellation so a
                # timeout answers *this* caller without detonating the
                # shared batch bookkeeping mid-flush.
                return await asyncio.wait_for(
                    asyncio.shield(future), timeout=deadline.remaining()
                )
            except asyncio.CancelledError:
                # Client disconnected: shield kept the slot alive, so
                # cancel it explicitly to preserve the no-deadline
                # disconnect semantics (dropped, never walked for).
                future.cancel()
                raise
            except asyncio.TimeoutError:
                # Cancel the slot: an unflushed batch drops it before
                # walking, the engine skips it at plan boundaries.
                future.cancel()
                self.deadline_timeouts += 1
                raise DeadlineExceededError(
                    f"query missed its {deadline.budget_seconds * 1000.0:.0f} "
                    f"ms deadline",
                    deadline_seconds=deadline.budget_seconds,
                ) from None
        finally:
            if self.admission is not None:
                self.admission.release()

    async def drain(self) -> None:
        """Flush anything still pending immediately (shutdown path)."""
        if self._flush_task is not None and not self._flush_task.done():
            self._flush_task.cancel()
            try:
                await self._flush_task
            except asyncio.CancelledError:
                pass
            self._flush_task = None
        if self._pending:
            await self._flush()
        # A flush that already began executing dropped its window-task
        # reference (so new submissions can arm a fresh window); wait
        # those out too, or shutdown would orphan a mid-walk batch and
        # its clients.
        while self._active_flushes:
            await asyncio.gather(
                *list(self._active_flushes), return_exceptions=True
            )

    async def _flush_after_window(self) -> None:
        task = asyncio.current_task()
        self._active_flushes.add(task)
        try:
            if self.window_seconds > 0:
                await asyncio.sleep(self.window_seconds)
            await self._flush()
        finally:
            self._active_flushes.discard(task)

    async def _flush(self) -> None:
        batch, self._pending = self._pending, []
        self._flush_task = None
        # Drop futures already done *before* executing: a client that
        # disconnected (or timed out) during the window must not cost a
        # walk, and — the historical bug — must not shift the
        # result-to-future pairing for its surviving siblings.
        live: List[_Slot] = []
        for slot in batch:
            if slot[1].done():
                self.queries_dropped += 1
            else:
                live.append(slot)
        if not live:
            return
        self.batches_flushed += 1
        try:
            fire("batcher.flush", batch_size=len(live))
        except Exception as exc:
            for _, future, _ in live:
                if not future.done():
                    future.set_exception(exc)
            return
        queries = [query for query, _, _ in live]
        deadlines = [deadline for _, _, deadline in live]
        if any(deadline is not None for deadline in deadlines):
            execute = partial(
                self.service.estimate_many, queries, deadlines=deadlines
            )
        else:
            execute = partial(self.service.estimate_many, queries)
        loop = asyncio.get_running_loop()
        inner = loop.run_in_executor(None, execute)
        try:
            results = await asyncio.shield(inner)
        except asyncio.CancelledError:
            # The flush task was cancelled mid-execute (shutdown racing
            # a walk).  The executor call cannot be interrupted and the
            # siblings still await their slots: finish the walk, deliver,
            # then let the cancellation propagate.
            results = await inner
            self._deliver(live, results)
            raise
        except Exception as exc:  # engine-level failure: fail the whole batch
            for _, future, _ in live:
                if not future.done():
                    future.set_exception(exc)
            return
        self._deliver(live, results)

    def _deliver(
        self,
        live: List[_Slot],
        results: List[Union[EstimateAnswer, Exception]],
    ) -> None:
        for (_, future, _), result in zip(live, results):
            if future.done():
                # Client disconnected / timed out mid-execute; the
                # shared fleet already served everyone else.
                self.queries_dropped += 1
                continue
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(result)

    def stats(self) -> Dict[str, object]:
        """Batching counters for the ``/stats`` endpoint."""
        payload: Dict[str, object] = {
            "window_seconds": self.window_seconds,
            "in_flight": self.in_flight,
            "batches_flushed": self.batches_flushed,
            "queries_submitted": self.queries_submitted,
            "queries_dropped": self.queries_dropped,
            "queries_shed": self.queries_shed,
            "deadline_timeouts": self.deadline_timeouts,
            "peak_batch_size": self.peak_batch_size,
        }
        if self.admission is not None:
            payload["admission"] = {
                "depth": self.admission.depth,
                "limit": self.admission.limit,
                "rejections": self.admission.rejections,
            }
        return payload


__all__ = ["MicroBatcher"]
