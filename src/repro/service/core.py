"""The estimation service engine: publish once, answer forever.

:class:`EstimationService` owns everything below the event loop:

* **Graph publication.**  At startup the graph is frozen into CSR
  arrays, published into the configured buffer store (``"shm"`` /
  ``"mmap"`` via :func:`repro.graph.store.publish_csr`, or kept
  in-process for ``"ram"``), and the service serves from an attached
  read-only view.  The source graph is frozen
  (:meth:`~repro.graph.labeled_graph.LabeledGraph.freeze`) and the CSR
  buffers sealed, so nothing can mutate the topology underneath
  version-stamped cached answers — replacing the graph goes through
  :meth:`EstimationService.swap_graph`, which bumps the version and
  invalidates the cache atomically.
* **Planning and execution.**  A batch of queries (from the
  micro-batcher, or a single synchronous caller) is split into cache
  hits and misses; the misses are grouped by
  :func:`repro.service.planner.plan_queries` into shared max-budget
  fleets, each executed once through
  :class:`repro.experiments.planner.PrefixFleet` — the same walks the
  batch harness does, so served answers are bit-identical to
  ``run_trials_prefix`` at the same user seed.
* **Accounting.**  Steps walked, wall-clock walking time, fleet and
  query counters — the substance behind ``/stats``.

The engine is synchronous and thread-safe for the batcher's
run-in-executor calls (one lock around plan execution); all asyncio
lives in :mod:`repro.service.batcher` and :mod:`repro.service.http`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Union

from repro.durability import artifact_counters, graph_fingerprint, read_blob, write_blob
from repro.exceptions import (
    ArtifactCorruptError,
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    ExperimentError,
)
from repro.core.samplers.csr_backend import fleet_engine, validate_backend
from repro.experiments.algorithms import AlgorithmRunner, build_algorithm_suite
from repro.experiments.metrics import nrmse
from repro.experiments.planner import PrefixFleet
from repro.graph.csr import CSRGraph, csr_view
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.store import CSRPublication, publish_csr, validate_graph_store
from repro.resilience.breaker import BreakerBoard
from repro.resilience.deadline import Deadline
from repro.resilience.faults import active_injector, fire
from repro.resilience.retry import Retry
from repro.service.cache import AnswerCache
from repro.service.planner import EstimateQuery, FleetPlan, plan_queries
from repro.utils.validation import check_positive_int
from repro.walks.mixing import recommended_burn_in

GraphLike = Union[LabeledGraph, CSRGraph]


def publishable_csr_view(csr: CSRGraph) -> CSRGraph:
    """A view of *csr* the buffer stores accept (array labels/ids only).

    Dict-graph CSR views carry per-node label *sets* and Python-list
    node ids, which cannot live in a flat shm/mmap buffer.  The paper's
    graphs are all single-label (gender, location, degree bucket), so
    the sets collapse losslessly into a ``label_array`` sharing the
    adjacency buffers — classification reads the same boolean masks
    either way, keeping served answers bit-identical to the batch path
    on the original graph.  Genuinely multi-labeled graphs cannot be
    converted and raise with a pointer at ``graph_store="ram"``.
    """
    import numpy as np

    node_ids = csr._node_ids
    if node_ids is not None and not isinstance(node_ids, np.ndarray):
        node_ids = np.asarray(node_ids)
        if node_ids.dtype == object:
            raise ConfigurationError(
                "graphs with non-numeric node ids cannot be published to an "
                "external store; serve with graph_store='ram'"
            )
    label_array = csr.label_array()
    if csr._label_sets is not None:
        flattened = []
        for index in range(csr.num_nodes):
            labels = csr.labels_of(index)
            if len(labels) != 1:
                raise ConfigurationError(
                    "multi-labeled graphs cannot be flattened into a "
                    "label_array for shm/mmap serving; serve with "
                    "graph_store='ram'"
                )
            flattened.append(next(iter(labels)))
        label_array = np.asarray(flattened)
        if label_array.dtype == object:
            raise ConfigurationError(
                "graphs with non-numeric labels cannot be published to an "
                "external store; serve with graph_store='ram'"
            )
    if node_ids is csr._node_ids and label_array is csr.label_array():
        return csr
    replacement = CSRGraph(
        node_ids,
        csr.indptr,
        csr.indices,
        label_array=label_array,
        validate=False,
    )
    replacement.store = csr.store
    return replacement


@dataclass(frozen=True)
class EstimateAnswer:
    """A finished estimate: the query echoed back plus the results.

    *estimates* / *api_calls* are the per-repetition values (what
    :class:`~repro.experiments.runner.TrialOutcome` carries in the
    batch harness); *graph_version* stamps which publication produced
    them; *cached* is True when the answer was served from the cache
    rather than walked; *degraded* is True when the answer is a
    **stale fallback** — a version-matched cache entry for the same
    pair but a different budget/seed, served because the algorithm's
    breaker was open or the admission queue full (the echoed budget /
    seed / repetitions are the fallback's own, not the request's).
    """

    algorithm: str
    t1: Hashable
    t2: Hashable
    budget: int
    seed: int
    repetitions: int
    burn_in: int
    true_count: int
    graph_version: int
    estimates: List[float] = field(default_factory=list)
    api_calls: List[int] = field(default_factory=list)
    cached: bool = False
    degraded: bool = False

    @property
    def mean_estimate(self) -> float:
        return sum(self.estimates) / len(self.estimates)

    @property
    def nrmse(self) -> float:
        return nrmse(self.estimates, self.true_count)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload for the HTTP transports."""
        return {
            "algorithm": self.algorithm,
            "t1": self.t1,
            "t2": self.t2,
            "budget": self.budget,
            "seed": self.seed,
            "repetitions": self.repetitions,
            "burn_in": self.burn_in,
            "true_count": self.true_count,
            "graph_version": self.graph_version,
            "estimates": list(self.estimates),
            "api_calls": list(self.api_calls),
            "mean_estimate": self.mean_estimate,
            "nrmse": self.nrmse,
            "cached": self.cached,
            "degraded": self.degraded,
        }


class EstimationService:
    """Long-lived query engine over one published, read-only graph.

    Parameters
    ----------
    graph:
        The graph to serve — dict :class:`LabeledGraph` or array-native
        :class:`CSRGraph`.  It is frozen/sealed on construction;
        mutating it afterwards raises at the mutation site.
    graph_store:
        ``"shm"`` (default: serve from a shared-memory segment),
        ``"mmap"`` (serve from a memory-mapped sidecar; the paging
        choice for graphs larger than RAM), or ``"ram"`` (no external
        publication; single-process serving).
    backend:
        Fleet tier the service walks with: ``"csr"`` (default,
        vectorized numpy) or ``"compiled"`` (numba-njit kernels, numpy
        fallback with a typed warning when numba is absent).  The tiers
        are bit-identical from the same seed, so answers and the answer
        cache are backend-agnostic — a query answered on one tier is
        byte-for-byte the answer the other would give.
    algorithms:
        The servable runner registry; defaults to the full paper suite
        (proposed + EX-* baselines) built against the serving graph.
    default_repetitions / default_burn_in:
        Filled into queries that omit them; *default_burn_in* defaults
        to :func:`repro.walks.mixing.recommended_burn_in` on the
        serving graph.
    cache_size:
        LRU capacity of the answer cache (0 disables caching).
    breaker_threshold / breaker_cooldown_seconds:
        Per-algorithm circuit breakers: *breaker_threshold* consecutive
        fleet failures for one algorithm trip its breaker open; after
        *breaker_cooldown_seconds* it half-opens and admits one probe
        query.  While open, queries for that algorithm are served
        version-matched stale cache answers flagged ``degraded: true``
        when any exist, or rejected with
        :class:`~repro.exceptions.CircuitOpenError` (HTTP 503).
    snapshot_path:
        Optional path for **warm restarts**: :meth:`save_snapshot`
        checkpoints the answer cache there (a checksummed, atomically
        written blob — :mod:`repro.durability.snapshot`), the HTTP
        layer snapshots on a timer and on graceful shutdown, and the
        constructor loads a snapshot back when its graph fingerprint
        matches the serving graph — so a restarted service answers its
        working set from cache instead of re-walking it.  A corrupt or
        mismatched snapshot costs a cold cache, never a wrong answer.
    """

    def __init__(
        self,
        graph: GraphLike,
        *,
        graph_store: str = "shm",
        algorithms: Optional[Mapping[str, AlgorithmRunner]] = None,
        default_repetitions: int = 20,
        default_burn_in: Optional[int] = None,
        cache_size: int = 1024,
        name: str = "graph",
        breaker_threshold: int = 3,
        breaker_cooldown_seconds: float = 5.0,
        snapshot_path: Optional[Union[str, Path]] = None,
        backend: str = "csr",
    ) -> None:
        validate_graph_store(graph_store)
        validate_backend(backend)
        if backend == "python":
            raise ConfigurationError(
                "the estimation service walks vectorized fleets; "
                "backend must be 'csr' or 'compiled'"
            )
        check_positive_int(default_repetitions, "default_repetitions")
        self.name = name
        self.graph_store = graph_store
        self.backend = backend
        self.default_repetitions = int(default_repetitions)
        self._cache = AnswerCache(cache_size)
        self.breakers = BreakerBoard(breaker_threshold, breaker_cooldown_seconds)
        self._lock = threading.Lock()
        self._graph_version = 0
        self._publication: Optional[CSRPublication] = None
        self._csr: Optional[CSRGraph] = None
        self._suite: Dict[str, AlgorithmRunner] = {}
        self._closed = False
        # throughput accounting
        self.queries_served = 0
        self.query_errors = 0
        self.fleets_built = 0
        self.steps_walked = 0
        self.walk_seconds = 0.0
        self.degraded_served = 0
        self.deadline_misses = 0
        # durability accounting (the /stats "durability" block)
        self.snapshot_path = Path(snapshot_path) if snapshot_path is not None else None
        self.snapshots_written = 0
        self.snapshot_failures = 0
        self.snapshot_loaded_entries = 0
        self.snapshot_load_error: Optional[str] = None
        self._last_snapshot_at: Optional[float] = None
        self._started_at = time.monotonic()
        self._install_graph(graph, algorithms)
        if default_burn_in is None:
            default_burn_in = recommended_burn_in(self._csr, rng=0)
        self.default_burn_in = int(default_burn_in)
        if self.snapshot_path is not None and self.snapshot_path.exists():
            self.load_snapshot()

    # ------------------------------------------------------------------
    # graph lifecycle
    # ------------------------------------------------------------------
    def _install_graph(
        self,
        graph: GraphLike,
        algorithms: Optional[Mapping[str, AlgorithmRunner]] = None,
    ) -> None:
        csr = csr_view(graph)
        if isinstance(graph, LabeledGraph):
            # Freeze the dict source too: its version feeds csr_view's
            # cache, and a version bump under live workers is exactly
            # the stale-answer hazard the service exists to prevent.
            graph.freeze(f"published to the estimation service {self.name!r}")
        if self.graph_store in ("shm", "mmap"):
            publication = publish_csr(publishable_csr_view(csr), self.graph_store)
            # Attach with backoff: StoreAttachError is retryable, and
            # the transient causes (a sidecar mid-rewrite, an injected
            # chaos fault) clear within a retry or two.
            try:
                serving = Retry(attempts=3, base_seconds=0.05).call(
                    publication.attach, describe="service store attach"
                )
            except BaseException:
                publication.close()
                publication.unlink()
                raise
        else:
            csr.seal_buffers("published to the estimation service (ram)")
            publication = None
            serving = csr
        if algorithms is None:
            algorithms = build_algorithm_suite(serving, include_baselines=True)
        self._publication = publication
        self._csr = serving
        self._suite = dict(algorithms)
        self._graph_version += 1

    @property
    def csr(self) -> CSRGraph:
        """The read-only serving graph (attached from the buffer store)."""
        return self._csr

    @property
    def graph_version(self) -> int:
        """Publication counter; bumped by every :meth:`swap_graph`."""
        return self._graph_version

    @property
    def algorithms(self) -> List[str]:
        """Names of the servable algorithms."""
        return list(self._suite)

    def swap_graph(
        self,
        graph: GraphLike,
        algorithms: Optional[Mapping[str, AlgorithmRunner]] = None,
    ) -> int:
        """Replace the served graph atomically; returns the new version.

        Publishes the new graph, retires the old publication, bumps the
        version, and invalidates the answer cache — in that order, under
        the execution lock, so in-flight batches finish against the old
        buffers and every later query sees only the new version.
        """
        with self._lock:
            old = self._publication
            self._install_graph(graph, algorithms)
            self._cache.invalidate()
            if old is not None:
                old.close()
                old.unlink()
            return self._graph_version

    # ------------------------------------------------------------------
    # warm-restart snapshots
    # ------------------------------------------------------------------
    def graph_fingerprint(self) -> str:
        """Content fingerprint of the serving graph (the snapshot key)."""
        return graph_fingerprint(self._csr)

    def save_snapshot(self) -> bool:
        """Checkpoint the answer cache to :attr:`snapshot_path`.

        Atomic and checksummed (:func:`repro.durability.write_blob`), so
        a crash mid-snapshot leaves the previous one intact.  Failures
        are counted, never raised — losing a snapshot degrades the next
        restart to a cold cache, which must not take the live service
        down with it.  Returns whether a snapshot was written.
        """
        if self.snapshot_path is None:
            return False
        payload = {
            "format": 1,
            "service": self.name,
            "graph_fingerprint": self.graph_fingerprint(),
            "graph_version": self._graph_version,
            "entries": self._cache.export_entries(),
        }
        try:
            write_blob(self.snapshot_path, payload)
        except Exception as exc:
            self.snapshot_failures += 1
            self.snapshot_load_error = f"write failed: {exc}"
            return False
        self.snapshots_written += 1
        self._last_snapshot_at = time.monotonic()
        return True

    def load_snapshot(self) -> int:
        """Warm the cache from :attr:`snapshot_path`; returns entries loaded.

        The snapshot must have been taken against a graph with the same
        content fingerprint — the version *number* restarts at 1 with
        every process, so loaded keys are re-stamped with the current
        version (and the answers' ``graph_version`` field with them).
        A corrupt, unreadable, or fingerprint-mismatched snapshot is
        recorded and skipped: a cold cache, never a poisoned one.
        """
        if self.snapshot_path is None:
            return 0
        try:
            payload = read_blob(self.snapshot_path)
        except ArtifactCorruptError as exc:
            self.snapshot_load_error = str(exc)
            return 0
        if not isinstance(payload, dict) or payload.get("format") != 1:
            self.snapshot_load_error = (
                f"snapshot {self.snapshot_path} has an unknown payload format"
            )
            return 0
        expected = self.graph_fingerprint()
        if payload.get("graph_fingerprint") != expected:
            self.snapshot_load_error = (
                f"snapshot {self.snapshot_path} was taken against a different "
                "graph (fingerprint mismatch); starting cold"
            )
            return 0
        entries = []
        for key, answer in payload.get("entries", []):
            # Re-stamp with this process's graph version: the content is
            # identical (fingerprint-checked), only the counter differs.
            rekeyed = (self._graph_version,) + tuple(key)[1:]
            if isinstance(answer, EstimateAnswer):
                answer = replace(answer, graph_version=self._graph_version)
            entries.append((rekeyed, answer))
        self.snapshot_loaded_entries = self._cache.load_entries(entries)
        self.snapshot_load_error = None
        return self.snapshot_loaded_entries

    def last_snapshot_age_seconds(self) -> Optional[float]:
        """Seconds since the last successful snapshot (None if never)."""
        if self._last_snapshot_at is None:
            return None
        return time.monotonic() - self._last_snapshot_at

    def close(self) -> None:
        """Snapshot (when configured) and release the publication (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.save_snapshot()
        if self._publication is not None:
            self._publication.close()
            self._publication.unlink()

    def __enter__(self) -> "EstimationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------
    def normalize_query(
        self, query: Union[EstimateQuery, Mapping[str, object]]
    ) -> EstimateQuery:
        """Validate *query* and fill service defaults; raises on bad input."""
        if isinstance(query, Mapping):
            payload = dict(query)
            unknown = set(payload) - {
                "algorithm", "t1", "t2", "budget", "seed", "repetitions", "burn_in",
            }
            if unknown:
                raise ConfigurationError(
                    f"unknown query fields: {', '.join(sorted(map(str, unknown)))}"
                )
            if "t1" not in payload or "t2" not in payload:
                raise ConfigurationError("a query needs both target labels t1 and t2")
            if "budget" not in payload:
                raise ConfigurationError("a query needs a budget (API-call allowance)")
            query = EstimateQuery(
                algorithm=str(payload.get("algorithm", "NeighborSample-HH")),
                t1=payload["t1"],
                t2=payload["t2"],
                budget=payload["budget"],
                seed=payload.get("seed", 2018),
                repetitions=payload.get(
                    "repetitions", self.default_repetitions
                ),
                burn_in=payload.get("burn_in", self.default_burn_in),
            )
        if query.algorithm not in self._suite:
            raise ConfigurationError(
                f"unknown algorithm {query.algorithm!r}; servable: "
                f"{', '.join(self._suite)}"
            )
        check_positive_int(query.budget, "budget")
        check_positive_int(query.repetitions, "repetitions")
        if int(query.burn_in) < 0:
            raise ConfigurationError("burn_in must be >= 0")
        return replace(
            query,
            budget=int(query.budget),
            seed=int(query.seed),
            repetitions=int(query.repetitions),
            burn_in=int(query.burn_in),
        )

    def estimate(
        self, query: Union[EstimateQuery, Mapping[str, object]]
    ) -> EstimateAnswer:
        """Answer one query synchronously (cache, then a fresh fleet)."""
        result = self.estimate_many([query])[0]
        if isinstance(result, Exception):
            raise result
        return result

    def estimate_many(
        self,
        queries: Sequence[Union[EstimateQuery, Mapping[str, object]]],
        deadlines: Optional[Sequence[Optional[Deadline]]] = None,
    ) -> List[Union[EstimateAnswer, Exception]]:
        """Answer a batch; returns one answer *or exception* per query.

        Per-query failures (unknown algorithm, zero-target pair, bad
        budget) are returned in their slots instead of raised, so one
        bad query can never poison the other members of a coalesced
        batch — the micro-batcher forwards each slot to its own client.
        Cache misses are grouped by :func:`plan_queries` and each plan
        walks exactly one max-budget fleet.

        *deadlines* (parallel to *queries*, ``None`` entries = no
        deadline) enables **cooperative cancellation**: an expired
        query is dropped at the next plan boundary — before its walks
        are spent — with :class:`DeadlineExceededError` in its slot,
        and a plan whose every member expired is skipped entirely.
        Walks are never interrupted mid-kernel; the event-loop side
        (:meth:`MicroBatcher.submit
        <repro.service.batcher.MicroBatcher.submit>`) answers the 504
        at the deadline regardless, this check just stops charging
        walk budget to clients that have already been answered.
        """
        if deadlines is None:
            deadlines = [None] * len(queries)
        results: List[Union[EstimateAnswer, Exception]] = [None] * len(queries)
        with self._lock:
            misses: List[EstimateQuery] = []
            miss_slots: Dict[int, EstimateQuery] = {}
            miss_deadlines: Dict[EstimateQuery, Optional[Deadline]] = {}
            for index, raw in enumerate(queries):
                try:
                    query = self.normalize_query(raw)
                except Exception as exc:
                    results[index] = exc
                    self.query_errors += 1
                    continue
                deadline = deadlines[index]
                if deadline is not None and deadline.expired():
                    results[index] = self._deadline_miss(deadline)
                    self.query_errors += 1
                    continue
                cached = self._cache.get(query.cache_key(self._graph_version))
                if cached is not None:
                    results[index] = replace(cached, cached=True)
                    self.queries_served += 1
                else:
                    miss_slots[index] = query
                    misses.append(query)
                    # Duplicate queries keep the laxest deadline: one
                    # expired client must not starve a patient one.
                    if query in miss_deadlines:
                        previous = miss_deadlines[query]
                        if deadline is None or previous is None:
                            deadline = None
                        elif previous.remaining() > deadline.remaining():
                            deadline = previous
                    miss_deadlines[query] = deadline
            answered = self._execute_plans(plan_queries(misses), miss_deadlines)
            for index, query in miss_slots.items():
                outcome = answered[query]
                results[index] = outcome
                if isinstance(outcome, Exception):
                    self.query_errors += 1
                else:
                    self.queries_served += 1
        return results

    def _deadline_miss(self, deadline: Deadline) -> DeadlineExceededError:
        self.deadline_misses += 1
        return DeadlineExceededError(
            f"query missed its {deadline.budget_seconds * 1000.0:.0f} ms "
            f"deadline before its fleet ran",
            deadline_seconds=deadline.budget_seconds,
        )

    def degraded_answer(
        self, query: Union[EstimateQuery, Mapping[str, object]]
    ) -> Optional[EstimateAnswer]:
        """A stale-cache fallback for *query*, or ``None``.

        The graceful-degradation read: a version-matched cached answer
        for the same (algorithm, pair) at whatever budget/seed is on
        hand, flagged ``degraded: true``.  Takes only the cache's
        internal lock — never the execution lock — so the event loop
        can shed to it while a fleet is mid-walk.
        """
        if not isinstance(query, EstimateQuery):
            try:
                query = self.normalize_query(query)
            except Exception:
                return None
        stale = self._cache.find_stale(
            self._graph_version, query.algorithm, query.t1, query.t2
        )
        if stale is None:
            return None
        self.degraded_served += 1
        return replace(stale, cached=True, degraded=True)

    def _execute_plans(
        self,
        plans: Sequence[FleetPlan],
        deadlines: Optional[Mapping[EstimateQuery, Optional[Deadline]]] = None,
    ) -> Dict[EstimateQuery, Union[EstimateAnswer, Exception]]:
        deadlines = deadlines or {}
        answered: Dict[EstimateQuery, Union[EstimateAnswer, Exception]] = {}
        for plan in plans:
            # Cooperative cancellation at the plan boundary: expired
            # queries are answered 504 without walking, and a fully
            # expired plan never builds its fleet.
            live: List[EstimateQuery] = []
            for query in plan.queries:
                deadline = deadlines.get(query)
                if deadline is not None and deadline.expired():
                    answered[query] = self._deadline_miss(deadline)
                else:
                    live.append(query)
            if not live:
                continue
            breaker = self.breakers.breaker(plan.spec.algorithm)
            if not breaker.admit():
                # Open (or probing) breaker: shed to stale cache when
                # possible, fail fast otherwise — never walk.
                for query in live:
                    fallback = self.degraded_answer(query)
                    answered[query] = (
                        fallback
                        if fallback is not None
                        else CircuitOpenError(
                            plan.spec.algorithm, breaker.retry_after()
                        )
                    )
                continue
            started = time.perf_counter()
            try:
                fire("fleet.run", algorithm=plan.spec.algorithm)
                fleet = PrefixFleet(
                    self._csr,
                    self._suite[plan.spec.algorithm],
                    plan.spec,
                    plan.max_budget,
                    engine=fleet_engine(self.backend),
                )
            except Exception as exc:
                breaker.record_failure()
                for query in live:
                    answered[query] = exc
                continue
            breaker.record_success()
            self.fleets_built += 1
            self.steps_walked += fleet.steps_walked
            for query in live:
                if query in answered and not isinstance(
                    answered[query], Exception
                ):
                    continue  # duplicate within one batch: answer once
                deadline = deadlines.get(query)
                if deadline is not None and deadline.expired():
                    answered[query] = self._deadline_miss(deadline)
                    continue
                try:
                    answered[query] = self._answer_from_fleet(fleet, query)
                except Exception as exc:
                    answered[query] = exc
            self.walk_seconds += time.perf_counter() - started
        return answered

    def _answer_from_fleet(
        self, fleet: PrefixFleet, query: EstimateQuery
    ) -> EstimateAnswer:
        true_count = self._csr.count_target_edges(query.t1, query.t2)
        if true_count <= 0:
            raise ExperimentError(
                f"the target pair ({query.t1!r}, {query.t2!r}) has no target "
                "edges in the served graph; NRMSE is undefined"
            )
        estimates, api_calls = fleet.estimate(query.t1, query.t2, query.budget)
        answer = EstimateAnswer(
            algorithm=query.algorithm,
            t1=query.t1,
            t2=query.t2,
            budget=query.budget,
            seed=query.seed,
            repetitions=query.repetitions,
            burn_in=query.burn_in,
            true_count=int(true_count),
            graph_version=self._graph_version,
            estimates=estimates,
            api_calls=api_calls,
        )
        self._cache.put(query.cache_key(self._graph_version), answer)
        return answer

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        """Engine-level health for ``/healthz`` (no locks, no walking).

        ``status`` is ``"degraded"`` while any algorithm's breaker is
        open — the service is still up, but part of the suite is being
        served from stale cache or rejected.  The HTTP layer overlays
        queue depth (admission control lives in the batcher).
        """
        open_breakers = self.breakers.open_algorithms()
        report: Dict[str, object] = {
            "status": "degraded" if open_breakers else "ok",
            "graph_version": self._graph_version,
            "open_breakers": open_breakers,
        }
        if self.snapshot_path is not None:
            report["last_snapshot_age_seconds"] = self.last_snapshot_age_seconds()
        return report

    def stats(self) -> Dict[str, object]:
        """Runtime snapshot for the ``/stats`` endpoint."""
        steps_per_second = (
            self.steps_walked / self.walk_seconds if self.walk_seconds > 0 else 0.0
        )
        return {
            "graph": {
                "name": self.name,
                "version": self._graph_version,
                "store": self.graph_store,
                "num_nodes": int(self._csr.num_nodes),
                "num_edges": int(self._csr.num_edges),
            },
            "cache": self._cache.stats(),
            "fleets": {
                "built": self.fleets_built,
                "steps_walked": self.steps_walked,
                "walk_seconds": self.walk_seconds,
                "steps_per_second": steps_per_second,
            },
            "queries": {
                "served": self.queries_served,
                "errors": self.query_errors,
            },
            "resilience": {
                "breakers": self.breakers.snapshot(),
                "degraded_served": self.degraded_served,
                "deadline_misses": self.deadline_misses,
                "faults": (
                    active_injector().plan.describe()
                    if active_injector() is not None
                    else "no faults"
                ),
            },
            "durability": {
                "snapshot_path": (
                    str(self.snapshot_path)
                    if self.snapshot_path is not None
                    else None
                ),
                "snapshots_written": self.snapshots_written,
                "snapshot_failures": self.snapshot_failures,
                "snapshot_loaded_entries": self.snapshot_loaded_entries,
                "snapshot_load_error": self.snapshot_load_error,
                "last_snapshot_age_seconds": self.last_snapshot_age_seconds(),
                "artifacts": artifact_counters(),
            },
            "uptime_seconds": time.monotonic() - self._started_at,
            "algorithms": list(self._suite),
            "defaults": {
                "repetitions": self.default_repetitions,
                "burn_in": self.default_burn_in,
            },
        }


__all__ = ["EstimateAnswer", "EstimateQuery", "EstimationService"]
