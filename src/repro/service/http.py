"""HTTP transports for the estimation service.

Two interchangeable fronts over the same :class:`EstimationService` +
:class:`MicroBatcher` pair:

* :class:`ServiceHTTPServer` — a dependency-free asyncio HTTP/1.1
  server (``asyncio.start_server`` + a minimal request parser).  It is
  the transport the test suite and the CI smoke job use, and the
  fallback ``repro-osn serve`` boots when FastAPI/uvicorn are absent;
  it speaks exactly the three endpoints below and nothing else.
* :func:`create_fastapi_app` — a FastAPI application factory, gated on
  the optional dependency (raises
  :class:`~repro.exceptions.ConfigurationError` with an actionable
  message when ``fastapi`` is not importable).  Same endpoints, same
  payloads; pointing uvicorn at it gives the production front.

Endpoints:

* ``GET /healthz`` — real health, not an unconditional 200:
  ``{"status": "ok"|"degraded", "graph_version": N, "open_breakers":
  [...], "queue_depth": N}``.  ``degraded`` means some algorithm's
  circuit breaker is open or the admission queue is full; the process
  is still serving (from stale cache where it can).
* ``GET /stats`` — runtime snapshot: graph/publication info, cache hit
  rate, fleet count, steps walked per second, batcher queue depth,
  breaker states, degraded/deadline counters.
* ``POST /estimate`` — body ``{"t1": ..., "t2": ..., "budget": N,
  "algorithm"?, "seed"?, "repetitions"?, "burn_in"?, "deadline_ms"?}``;
  the request parks in the micro-batch window and returns the full
  :meth:`~repro.service.core.EstimateAnswer.to_dict` payload.

Failure-policy status codes (see ``docs/operations.md`` for the client
guidance):

========== ============================================ =================
status     meaning                                      client action
========== ============================================ =================
``400``    invalid query (unknown algorithm, bad        fix the request
           budget, zero-target pair)
``429``    admission queue full, no cached fallback     back off for
           (``Retry-After`` header)                     ``Retry-After``
``503``    circuit breaker open, no cached fallback     back off for
           (``Retry-After`` header)                     ``Retry-After``
``504``    per-query deadline exceeded                  retry with a
                                                        larger deadline
``500``    unexpected engine failure                    report a bug
========== ============================================ =================
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import signal
from typing import Dict, Optional, Tuple

from repro.exceptions import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    ReproError,
    ServiceOverloadedError,
)
from repro.service.batcher import MicroBatcher
from repro.service.core import EstimationService

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: The (status, payload, extra headers) triple every route resolves to.
Response = Tuple[int, Dict, Dict[str, str]]


def _retry_after_header(seconds: float) -> Dict[str, str]:
    """An RFC-compliant integral ``Retry-After``, rounded up, >= 1."""
    return {"Retry-After": str(max(1, math.ceil(seconds)))}


def _service_stats(service: EstimationService, batcher: MicroBatcher) -> Dict:
    stats = service.stats()
    stats["batcher"] = batcher.stats()
    return stats


def _health_payload(service: EstimationService, batcher: MicroBatcher) -> Dict:
    """Compose engine health with the transport's queue state."""
    health = service.health()
    if batcher.admission is not None:
        depth = batcher.admission.depth
        health["queue_depth"] = depth
        health["queue_limit"] = batcher.admission.limit
        if depth >= batcher.admission.limit:
            health["status"] = "degraded"
    else:
        health["queue_depth"] = batcher.in_flight
    return health


async def _dispatch(
    service: EstimationService,
    batcher: MicroBatcher,
    method: str,
    path: str,
    body: bytes,
) -> Response:
    """Route one request; shared by both transports' error contract."""
    if method == "GET" and path == "/healthz":
        return 200, _health_payload(service, batcher), {}
    if method == "GET" and path == "/stats":
        return 200, _service_stats(service, batcher), {}
    if method == "POST" and path == "/estimate":
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError):
            return 400, {"error": "request body must be a JSON object"}, {}
        if not isinstance(payload, dict):
            return 400, {"error": "request body must be a JSON object"}, {}
        deadline_ms = payload.pop("deadline_ms", None)
        if deadline_ms is not None:
            if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
                return 400, {"error": "deadline_ms must be a positive number"}, {}
        try:
            answer = await batcher.submit(
                payload,
                deadline_seconds=(
                    deadline_ms / 1000.0 if deadline_ms is not None else None
                ),
            )
        except ServiceOverloadedError as exc:
            return 429, {"error": str(exc)}, _retry_after_header(exc.retry_after)
        except CircuitOpenError as exc:
            return 503, {"error": str(exc)}, _retry_after_header(exc.retry_after)
        except DeadlineExceededError as exc:
            return 504, {"error": str(exc)}, {}
        except ReproError as exc:
            return 400, {"error": str(exc)}, {}
        except Exception as exc:  # engine crash surface (injected faults land here)
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, {}
        return 200, answer.to_dict(), {}
    return 404, {"error": f"no route for {method} {path}"}, {}


class ServiceHTTPServer:
    """Minimal asyncio HTTP front; no third-party dependencies.

    Binds lazily in :meth:`start` (``port=0`` picks a free port, read
    it back from :attr:`port`) and owns a :class:`MicroBatcher` so
    every transport instance batches independently.  *max_in_flight*
    and *deadline_ms* configure the batcher's admission control and
    default per-query deadline (both off by default).
    """

    def __init__(
        self,
        service: EstimationService,
        host: str = "127.0.0.1",
        port: int = 0,
        window_seconds: float = 0.005,
        max_in_flight: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.batcher = MicroBatcher(
            service,
            window_seconds,
            max_in_flight=max_in_flight,
            default_deadline_seconds=(
                deadline_ms / 1000.0 if deadline_ms is not None else None
            ),
        )
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        """Bind and start accepting connections (returns immediately)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, flush the batch window, close the server."""
        await self.batcher.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload, extra_headers = await self._handle_request(reader)
            body = json.dumps(payload).encode("utf-8")
            reason = _REASONS.get(status, "Unknown")
            lines = [
                f"HTTP/1.1 {status} {reason}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
            ]
            lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
            lines.append("Connection: close")
            head = "\r\n".join(lines) + "\r\n\r\n"
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; the batch (if any) continues without it
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_request(self, reader: asyncio.StreamReader) -> Response:
        request_line = (await reader.readline()).decode("ascii", "replace")
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}, {}
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("ascii", "replace").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return 400, {"error": "bad Content-Length"}, {}
        body = await reader.readexactly(length) if length > 0 else b""
        return await _dispatch(self.service, self.batcher, method, path, body)


def create_fastapi_app(
    service: EstimationService,
    window_seconds: float = 0.005,
    max_in_flight: Optional[int] = None,
    deadline_ms: Optional[float] = None,
):
    """Build the FastAPI application (requires the optional dependency).

    Raises :class:`ConfigurationError` when ``fastapi`` is not
    installed, so ``repro-osn serve --transport fastapi`` fails with an
    actionable message instead of an ImportError traceback; the
    ``auto`` transport falls back to :class:`ServiceHTTPServer`.
    """
    try:
        from fastapi import FastAPI
        from fastapi.responses import JSONResponse
    except ImportError as exc:
        raise ConfigurationError(
            "fastapi is not installed; install it (pip install fastapi uvicorn) "
            "or use the dependency-free transport (--transport stdlib)"
        ) from exc

    batcher = MicroBatcher(
        service,
        window_seconds,
        max_in_flight=max_in_flight,
        default_deadline_seconds=(
            deadline_ms / 1000.0 if deadline_ms is not None else None
        ),
    )
    app = FastAPI(title="repro-osn estimation service")
    app.state.service = service
    app.state.batcher = batcher

    @app.get("/healthz")
    async def healthz():  # pragma: no cover - exercised only with fastapi
        return _health_payload(service, batcher)

    @app.get("/stats")
    async def stats():  # pragma: no cover - exercised only with fastapi
        return _service_stats(service, batcher)

    @app.post("/estimate")
    async def estimate(payload: dict):  # pragma: no cover - ditto
        body = json.dumps(payload).encode("utf-8")
        status, response, headers = await _dispatch(
            service, batcher, "POST", "/estimate", body
        )
        if status == 200:
            return response
        return JSONResponse(status_code=status, content=response, headers=headers)

    return app


def run_server(
    service: EstimationService,
    host: str = "127.0.0.1",
    port: int = 8000,
    transport: str = "auto",
    window_seconds: float = 0.005,
    max_in_flight: Optional[int] = None,
    deadline_ms: Optional[float] = None,
    snapshot_interval_seconds: Optional[float] = None,
) -> None:
    """Run the service until interrupted (the ``repro-osn serve`` core).

    ``transport="fastapi"`` requires fastapi + uvicorn; ``"stdlib"``
    always works; ``"auto"`` prefers fastapi when importable and falls
    back silently — the container images this repo targets ship
    without either extra, so ``auto`` normally lands on the stdlib
    server.

    The stdlib transport installs ``SIGTERM`` / ``SIGINT`` handlers for
    **graceful shutdown**: stop accepting connections, drain the
    micro-batch window (in-flight queries get their answers), snapshot
    the answer cache, exit 0.  A ``SIGKILL`` skips all of that and the
    next boot warm-starts from the last periodic snapshot instead —
    *snapshot_interval_seconds* (with the service's ``snapshot_path``)
    enables that timer.
    """
    if transport not in ("auto", "fastapi", "stdlib"):
        raise ConfigurationError(
            f"unknown transport {transport!r}; choose auto, fastapi, or stdlib"
        )
    if transport in ("auto", "fastapi"):
        try:
            import uvicorn  # noqa: F401

            app = create_fastapi_app(
                service,
                window_seconds,
                max_in_flight=max_in_flight,
                deadline_ms=deadline_ms,
            )
        except (ImportError, ConfigurationError):
            if transport == "fastapi":
                raise ConfigurationError(
                    "transport='fastapi' needs fastapi and uvicorn installed; "
                    "use --transport stdlib for the dependency-free server"
                )
        else:  # pragma: no cover - needs uvicorn installed
            uvicorn.run(app, host=host, port=port)
            return

    async def _serve() -> None:
        server = ServiceHTTPServer(
            service,
            host,
            port,
            window_seconds,
            max_in_flight=max_in_flight,
            deadline_ms=deadline_ms,
        )
        await server.start()
        print(
            f"repro-osn serve: listening on http://{server.host}:{server.port} "
            f"(stdlib transport, graph version {service.graph_version})",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()
        installed_signals = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_requested.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                continue  # e.g. non-main thread or unsupported platform
            installed_signals.append(signum)

        async def _snapshot_timer() -> None:
            while True:
                await asyncio.sleep(snapshot_interval_seconds)
                # The engine swallows and counts write failures; a full
                # disk must not kill the serving loop.
                await loop.run_in_executor(None, service.save_snapshot)

        timer_task = (
            asyncio.create_task(_snapshot_timer())
            if snapshot_interval_seconds is not None
            and service.snapshot_path is not None
            else None
        )
        serve_task = asyncio.create_task(server.serve_forever())
        stop_task = asyncio.create_task(stop_requested.wait())
        try:
            await asyncio.wait(
                {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
            if stop_requested.is_set():
                print(
                    "repro-osn serve: shutdown signal received; draining "
                    "in-flight queries",
                    flush=True,
                )
        finally:
            for task in (timer_task, serve_task, stop_task):
                if task is not None:
                    task.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await task
            for signum in installed_signals:
                loop.remove_signal_handler(signum)
            # stop() flushes the batch window, so every admitted query
            # is answered before the snapshot below captures the cache.
            await server.stop()
            if service.save_snapshot():
                print(
                    f"repro-osn serve: snapshot written to "
                    f"{service.snapshot_path}",
                    flush=True,
                )
            print("repro-osn serve: shutdown complete", flush=True)

    asyncio.run(_serve())


__all__ = ["ServiceHTTPServer", "create_fastapi_app", "run_server"]
