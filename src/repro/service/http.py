"""HTTP transports for the estimation service.

Two interchangeable fronts over the same :class:`EstimationService` +
:class:`MicroBatcher` pair:

* :class:`ServiceHTTPServer` — a dependency-free asyncio HTTP/1.1
  server (``asyncio.start_server`` + a minimal request parser).  It is
  the transport the test suite and the CI smoke job use, and the
  fallback ``repro-osn serve`` boots when FastAPI/uvicorn are absent;
  it speaks exactly the three endpoints below and nothing else.
* :func:`create_fastapi_app` — a FastAPI application factory, gated on
  the optional dependency (raises
  :class:`~repro.exceptions.ConfigurationError` with an actionable
  message when ``fastapi`` is not importable).  Same endpoints, same
  payloads; pointing uvicorn at it gives the production front.

Endpoints:

* ``GET /healthz`` — liveness: ``{"status": "ok", "graph_version": N}``.
* ``GET /stats`` — runtime snapshot: graph/publication info, cache hit
  rate, fleet count, steps walked per second, batcher queue depth.
* ``POST /estimate`` — body ``{"t1": ..., "t2": ..., "budget": N,
  "algorithm"?, "seed"?, "repetitions"?, "burn_in"?}``; the request
  parks in the micro-batch window and returns the full
  :meth:`~repro.service.core.EstimateAnswer.to_dict` payload.
  Validation and estimation errors come back as ``400`` with
  ``{"error": ...}``; unknown paths are ``404``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro.exceptions import ConfigurationError, ReproError
from repro.service.batcher import MicroBatcher
from repro.service.core import EstimationService

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found", 500: "Internal Server Error"}


def _service_stats(service: EstimationService, batcher: MicroBatcher) -> Dict:
    stats = service.stats()
    stats["batcher"] = batcher.stats()
    return stats


async def _dispatch(
    service: EstimationService,
    batcher: MicroBatcher,
    method: str,
    path: str,
    body: bytes,
) -> Tuple[int, Dict]:
    """Route one request; shared by both transports' error contract."""
    if method == "GET" and path == "/healthz":
        return 200, {"status": "ok", "graph_version": service.graph_version}
    if method == "GET" and path == "/stats":
        return 200, _service_stats(service, batcher)
    if method == "POST" and path == "/estimate":
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError):
            return 400, {"error": "request body must be a JSON object"}
        if not isinstance(payload, dict):
            return 400, {"error": "request body must be a JSON object"}
        try:
            answer = await batcher.submit(payload)
        except ReproError as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - engine crash surface
            return 500, {"error": f"{type(exc).__name__}: {exc}"}
        return 200, answer.to_dict()
    return 404, {"error": f"no route for {method} {path}"}


class ServiceHTTPServer:
    """Minimal asyncio HTTP front; no third-party dependencies.

    Binds lazily in :meth:`start` (``port=0`` picks a free port, read
    it back from :attr:`port`) and owns a :class:`MicroBatcher` so
    every transport instance batches independently.
    """

    def __init__(
        self,
        service: EstimationService,
        host: str = "127.0.0.1",
        port: int = 0,
        window_seconds: float = 0.005,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.batcher = MicroBatcher(service, window_seconds)
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        """Bind and start accepting connections (returns immediately)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, flush the batch window, close the server."""
        await self.batcher.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._handle_request(reader)
            body = json.dumps(payload).encode("utf-8")
            reason = _REASONS.get(status, "Unknown")
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; the batch (if any) continues without it
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Dict]:
        request_line = (await reader.readline()).decode("ascii", "replace")
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("ascii", "replace").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return 400, {"error": "bad Content-Length"}
        body = await reader.readexactly(length) if length > 0 else b""
        return await _dispatch(self.service, self.batcher, method, path, body)


def create_fastapi_app(
    service: EstimationService, window_seconds: float = 0.005
):
    """Build the FastAPI application (requires the optional dependency).

    Raises :class:`ConfigurationError` when ``fastapi`` is not
    installed, so ``repro-osn serve --transport fastapi`` fails with an
    actionable message instead of an ImportError traceback; the
    ``auto`` transport falls back to :class:`ServiceHTTPServer`.
    """
    try:
        from fastapi import FastAPI
        from fastapi.responses import JSONResponse
    except ImportError as exc:
        raise ConfigurationError(
            "fastapi is not installed; install it (pip install fastapi uvicorn) "
            "or use the dependency-free transport (--transport stdlib)"
        ) from exc

    batcher = MicroBatcher(service, window_seconds)
    app = FastAPI(title="repro-osn estimation service")
    app.state.service = service
    app.state.batcher = batcher

    @app.get("/healthz")
    async def healthz():  # pragma: no cover - exercised only with fastapi
        return {"status": "ok", "graph_version": service.graph_version}

    @app.get("/stats")
    async def stats():  # pragma: no cover - exercised only with fastapi
        return _service_stats(service, batcher)

    @app.post("/estimate")
    async def estimate(payload: dict):  # pragma: no cover - ditto
        try:
            answer = await batcher.submit(payload)
        except ReproError as exc:
            return JSONResponse(status_code=400, content={"error": str(exc)})
        return answer.to_dict()

    return app


def run_server(
    service: EstimationService,
    host: str = "127.0.0.1",
    port: int = 8000,
    transport: str = "auto",
    window_seconds: float = 0.005,
) -> None:
    """Run the service until interrupted (the ``repro-osn serve`` core).

    ``transport="fastapi"`` requires fastapi + uvicorn; ``"stdlib"``
    always works; ``"auto"`` prefers fastapi when importable and falls
    back silently — the container images this repo targets ship
    without either extra, so ``auto`` normally lands on the stdlib
    server.
    """
    if transport not in ("auto", "fastapi", "stdlib"):
        raise ConfigurationError(
            f"unknown transport {transport!r}; choose auto, fastapi, or stdlib"
        )
    if transport in ("auto", "fastapi"):
        try:
            import uvicorn  # noqa: F401

            app = create_fastapi_app(service, window_seconds)
        except (ImportError, ConfigurationError):
            if transport == "fastapi":
                raise ConfigurationError(
                    "transport='fastapi' needs fastapi and uvicorn installed; "
                    "use --transport stdlib for the dependency-free server"
                )
        else:  # pragma: no cover - needs uvicorn installed
            uvicorn.run(app, host=host, port=port)
            return

    async def _serve() -> None:
        server = ServiceHTTPServer(service, host, port, window_seconds)
        await server.start()
        print(
            f"repro-osn serve: listening on http://{server.host}:{server.port} "
            f"(stdlib transport, graph version {service.graph_version})",
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - signal path
            pass
        finally:
            await server.stop()

    asyncio.run(_serve())


__all__ = ["ServiceHTTPServer", "create_fastapi_app", "run_server"]
