"""repro — counting edges with target labels in OSNs via random walk.

A full reproduction of Wu, Long, Fu & Chen, *"Counting Edges with Target
Labels in Online Social Networks via Random Walk"* (EDBT 2018).

Quick start
-----------
>>> from repro import load_dataset, estimate_target_edge_count
>>> dataset = load_dataset("facebook", seed=1, scale=0.25)
>>> result = estimate_target_edge_count(
...     dataset.graph, 1, 2,
...     algorithm="NeighborSample-HH", budget_fraction=0.05, seed=7,
... )
>>> result.estimate > 0
True

Walk backends
-------------
Every proposed algorithm can run on one of two interchangeable walk
backends, selected with the ``backend=`` keyword of
:func:`estimate_target_edge_count` (also exposed by the samplers, the
experiment runner, :class:`repro.experiments.config.ExperimentConfig`
and the CLI's ``--backend`` flag):

``backend="python"`` (default)
    The dict-based reference engine.  Every neighbor lookup goes through
    :class:`repro.graph.RestrictedGraphAPI`, so API-call traces are
    auditable call by call and any transition kernel works.  Prefer it
    for correctness audits, small graphs, and the EX-* baselines.
``backend="csr"``
    The vectorized backend: the graph is frozen once into numpy CSR
    arrays (:class:`repro.graph.CSRGraph`) and walks run over raw index
    arithmetic — roughly an order of magnitude faster per step, with
    *identical* charged-API-call accounting (distinct page downloads)
    and a distributionally equivalent sampling law, enforced by the
    Kolmogorov–Smirnov equivalence test suite.  Prefer it for large
    graphs, table/figure regeneration, and repeated trials.  Only the
    simple and non-backtracking kernels are vectorized.

>>> fast = estimate_target_edge_count(
...     dataset.graph, 1, 2,
...     algorithm="NeighborSample-HH", budget_fraction=0.05, seed=7,
...     backend="csr",
... )
>>> fast.estimate > 0
True

For fleet-style workloads (many independent walkers over one graph),
:class:`repro.walks.BatchedWalkEngine` advances ``N`` walkers per
numpy-vectorized step over a shared :class:`repro.graph.CSRGraph`.

Fleet execution
---------------
The experiment harness builds on that engine: with
``execution="fleet"`` (``run_trials`` / ``compare_algorithms`` /
``frequency_sweep``, ``ExperimentConfig`` and the CLI's
``--execution``), all repetitions of an NRMSE table cell run as *one*
walker fleet — one walker per repetition, each with its own
distinct-page budget ledger — and the estimators consume the whole
fleet's samples through their array-native ``estimate_batch`` entry
points.  ``n_jobs`` additionally spreads cells across worker processes
with pre-derived per-cell seeds, so results are identical for any
worker count.

Sub-packages
------------
``repro.core``
    The paper's contribution: NeighborSample / NeighborExploration
    sampling, the Hansen–Hurwitz / Horvitz–Thompson / re-weighted
    estimators, the Theorem 4.1–4.5 bounds and the one-call pipeline.
``repro.graph``
    Labeled-graph substrate, restricted OSN API, cleaning, line graph,
    loaders and exact statistics.
``repro.walks``
    Random-walk kernels, the walk engine, mixing-time machinery and the
    thinning strategy.
``repro.baselines``
    The EX-* adaptations of existing node-counting algorithms.
``repro.datasets``
    Synthetic stand-ins for the paper's five OSN crawls.
``repro.experiments``
    NRMSE harness, sweeps, and runners for every table and figure.
``repro.osn``
    |V| / |E| estimation backing the prior-knowledge assumption.
"""

from repro.core import (
    ALGORITHMS,
    BACKENDS,
    EXECUTIONS,
    AlgorithmSpec,
    EdgeHansenHurwitzEstimator,
    EdgeHorvitzThompsonEstimator,
    EstimateResult,
    NeighborExplorationSampler,
    NeighborSampleSampler,
    NodeHansenHurwitzEstimator,
    NodeHorvitzThompsonEstimator,
    NodeReweightedEstimator,
    available_algorithms,
    compute_all_bounds,
    estimate_target_edge_count,
)
from repro.datasets import load_dataset, dataset_names
from repro.exceptions import ReproError
from repro.graph import (
    CSRGraph,
    LabeledGraph,
    RestrictedGraphAPI,
    count_target_edges,
    summarize_graph,
)
from repro.walks import BatchedWalkEngine

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "LabeledGraph",
    "RestrictedGraphAPI",
    "CSRGraph",
    "BatchedWalkEngine",
    "count_target_edges",
    "summarize_graph",
    "NeighborSampleSampler",
    "NeighborExplorationSampler",
    "EdgeHansenHurwitzEstimator",
    "EdgeHorvitzThompsonEstimator",
    "NodeHansenHurwitzEstimator",
    "NodeHorvitzThompsonEstimator",
    "NodeReweightedEstimator",
    "EstimateResult",
    "ALGORITHMS",
    "BACKENDS",
    "EXECUTIONS",
    "AlgorithmSpec",
    "available_algorithms",
    "estimate_target_edge_count",
    "compute_all_bounds",
    "load_dataset",
    "dataset_names",
]
