"""Adaptations of existing node-counting algorithms to target-edge counting.

The construction (paper §5.1):

1. Transform ``G`` into the line graph ``G' = (H, R)``: each edge of
   ``G`` is a node of ``G'``; two ``G'`` nodes are adjacent iff the
   underlying edges share an endpoint.  ``|H| = |E|`` is known because
   ``|E|`` is prior knowledge.
2. A node of ``G'`` is a *target node* iff the underlying edge is a
   target edge, so counting target nodes in ``G'`` counts target edges
   in ``G``.
3. Run a node-counting random-walk estimator from Li et al. (ICDE 2015)
   on ``G'``: the re-weighted estimator on a simple random walk (EX-RW),
   Metropolis–Hastings (EX-MHRW), maximum-degree (EX-MDRW),
   rejection-controlled MH with knob ``α`` (EX-RCMH), or general
   maximum-degree with knob ``δ`` (EX-GMD).

Every variant reduces to the same re-weighted form

.. math::

   \\hat F = |H| · \\frac{Σ_i I(v_i) / w(v_i)}{Σ_i 1 / w(v_i)}

where ``w`` is the (unnormalised) stationary weight of the walk used —
constant for MHRW/MDRW, ``deg_{G'}`` for the simple walk, and the
kernel-specific weights for RCMH/GMD.

The MD/GMD kernels need the maximum degree of ``G'``; a neighbor-list
API cannot provide it, so — as is standard when evaluating these
baselines — the harness feeds them the exact value
(:func:`line_graph_max_degree`), the most favourable setting for them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.core.estimators.base import EstimateResult
from repro.exceptions import ConfigurationError, EstimationError
from repro.graph.api import RestrictedGraphAPI
from repro.graph.csr import CSRGraph
from repro.graph.labeled_graph import Label, LabeledGraph
from repro.graph.line_graph import LineGraphAPI
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import check_non_negative_int, check_positive_int
from repro.walks.batched import KernelSpec
from repro.walks.engine import RandomWalk
from repro.walks.kernels import (
    GeneralMaximumDegreeKernel,
    MaximumDegreeKernel,
    MetropolisHastingsKernel,
    RejectionControlledMHKernel,
    SimpleRandomWalkKernel,
    TransitionKernel,
)

#: Arcs per chunk of the vectorized line-degree scan (bounds the int64
#: temporaries to a few dozen MB regardless of graph size).
_LINE_DEGREE_CHUNK = 1 << 22


def line_graph_max_degree(graph: LabeledGraph) -> int:
    """Exact maximum degree of ``G'``: ``max over edges (d(u) + d(v) − 2)``.

    Works on both substrates: the dict :class:`LabeledGraph` (reference
    edge loop) and the array-native :class:`CSRGraph`, where the scan
    runs vectorized over arc chunks — the form the CSR-native
    experiment harness uses to grant the MD/GMD baselines their oracle
    parameter at million-node scale.
    """
    if isinstance(graph, CSRGraph):
        degrees = graph.degrees
        indptr = graph.indptr
        indices = graph.indices
        worst = 0
        for start in range(0, indices.size, _LINE_DEGREE_CHUNK):
            stop = min(start + _LINE_DEGREE_CHUNK, indices.size)
            # Arc -> source node, recovered from indptr per chunk so no
            # full-length 2|E| temporary is ever materialised.
            sources = (
                np.searchsorted(indptr, np.arange(start, stop), side="right") - 1
            )
            chunk = degrees[sources] + degrees[indices[start:stop]]
            if chunk.size:
                worst = max(worst, int(chunk.max()))
        return max(0, worst - 2)
    worst = 0
    for u, v in graph.edges():
        worst = max(worst, graph.degree(u) + graph.degree(v) - 2)
    return worst


class LineGraphBaseline(ABC):
    """Common machinery for all EX-* baselines."""

    #: Table 2 abbreviation, overridden by subclasses.
    name: str = "EX"

    @abstractmethod
    def build_kernel(self, line_api: LineGraphAPI) -> TransitionKernel:
        """Create the walk kernel this baseline uses on ``G'``."""

    @abstractmethod
    def csr_kernel_spec(self) -> KernelSpec:
        """The kernel as a :class:`~repro.walks.batched.KernelSpec`.

        Consumed by the vectorized fleet path
        (:mod:`repro.baselines.fleet`): the spec drives
        :class:`~repro.walks.line_batched.BatchedLineWalkEngine` and the
        stationary weights of the re-weighted estimator.  For the
        MD/GMD baselines ``max_degree`` is the line-graph maximum
        degree this instance was constructed with.
        """

    def estimate(
        self,
        api: RestrictedGraphAPI,
        t1: Label,
        t2: Label,
        k: int,
        burn_in: int = 0,
        rng: RandomSource = None,
    ) -> EstimateResult:
        """Walk ``G'`` for ``k`` collected steps and re-weight into ``F̂``."""
        check_positive_int(k, "k")
        check_non_negative_int(burn_in, "burn_in")
        generator = ensure_rng(rng)
        line_api = LineGraphAPI(api, t1, t2)
        kernel = self.build_kernel(line_api)
        walk = RandomWalk(line_api, kernel, burn_in=burn_in, rng=generator)
        result = walk.run(k)

        weighted_hits = 0.0
        weighted_total = 0.0
        target_hits = 0
        for node in result.nodes:
            weight = kernel.stationary_weight(line_api, node)
            if weight <= 0:
                raise EstimationError(
                    f"kernel {kernel!r} produced non-positive stationary weight"
                )
            weighted_total += 1.0 / weight
            if line_api.is_target(node):
                weighted_hits += 1.0 / weight
                target_hits += 1
        if weighted_total == 0:
            raise EstimationError("degenerate walk: all stationary weights were zero")
        estimate = line_api.num_nodes * weighted_hits / weighted_total
        return EstimateResult(
            estimate=estimate,
            estimator=self.name,
            sample_size=k,
            target_labels=(t1, t2),
            api_calls=api.api_calls,
            details={"target_hits": float(target_hits)},
        )


class ExReweightedBaseline(LineGraphBaseline):
    """EX-RW: simple random walk on ``G'`` with re-weighted estimation."""

    name = "EX-RW"

    def build_kernel(self, line_api: LineGraphAPI) -> TransitionKernel:
        return SimpleRandomWalkKernel()

    def csr_kernel_spec(self) -> KernelSpec:
        return KernelSpec("simple")


class ExMetropolisHastingsBaseline(LineGraphBaseline):
    """EX-MHRW: Metropolis–Hastings walk on ``G'`` (uniform stationary law)."""

    name = "EX-MHRW"

    def build_kernel(self, line_api: LineGraphAPI) -> TransitionKernel:
        return MetropolisHastingsKernel()

    def csr_kernel_spec(self) -> KernelSpec:
        return KernelSpec("mhrw")


class ExMaximumDegreeBaseline(LineGraphBaseline):
    """EX-MDRW: maximum-degree walk on ``G'`` (uniform stationary law).

    Needs the maximum degree of ``G'``; pass the exact value (via
    :func:`line_graph_max_degree`) or any upper bound.
    """

    name = "EX-MDRW"

    def __init__(self, line_max_degree: float) -> None:
        if line_max_degree <= 0:
            raise ConfigurationError("line_max_degree must be positive")
        self.line_max_degree = float(line_max_degree)

    def build_kernel(self, line_api: LineGraphAPI) -> TransitionKernel:
        return MaximumDegreeKernel(self.line_max_degree)

    def csr_kernel_spec(self) -> KernelSpec:
        return KernelSpec("mdrw", max_degree=self.line_max_degree)


class ExRejectionControlledMHBaseline(LineGraphBaseline):
    """EX-RCMH: rejection-controlled MH walk on ``G'``, knob ``alpha ∈ [0, 0.3]``."""

    name = "EX-RCMH"

    def __init__(self, alpha: float = 0.2) -> None:
        self.alpha = alpha

    def build_kernel(self, line_api: LineGraphAPI) -> TransitionKernel:
        return RejectionControlledMHKernel(alpha=self.alpha)

    def csr_kernel_spec(self) -> KernelSpec:
        return KernelSpec("rcmh", alpha=self.alpha)


class ExGeneralMaximumDegreeBaseline(LineGraphBaseline):
    """EX-GMD: general maximum-degree walk on ``G'``, knob ``delta ∈ [0.3, 0.7]``."""

    name = "EX-GMD"

    def __init__(self, line_max_degree: float, delta: float = 0.5) -> None:
        if line_max_degree <= 0:
            raise ConfigurationError("line_max_degree must be positive")
        self.line_max_degree = float(line_max_degree)
        self.delta = delta

    def build_kernel(self, line_api: LineGraphAPI) -> TransitionKernel:
        return GeneralMaximumDegreeKernel(self.line_max_degree, delta=self.delta)

    def csr_kernel_spec(self) -> KernelSpec:
        return KernelSpec("gmd", max_degree=self.line_max_degree, delta=self.delta)


#: Table 2 abbreviations of the baselines, in the order used by the tables.
BASELINE_NAMES = ["EX-MDRW", "EX-MHRW", "EX-RW", "EX-RCMH", "EX-GMD"]


def make_baseline(
    name: str,
    line_max_degree: Optional[float] = None,
    rcmh_alpha: float = 0.2,
    gmd_delta: float = 0.5,
) -> LineGraphBaseline:
    """Factory mapping a Table 2 abbreviation to a configured baseline.

    *line_max_degree* is required for EX-MDRW and EX-GMD.
    """
    if name == "EX-RW":
        return ExReweightedBaseline()
    if name == "EX-MHRW":
        return ExMetropolisHastingsBaseline()
    if name == "EX-MDRW":
        if line_max_degree is None:
            raise ConfigurationError("EX-MDRW requires line_max_degree")
        return ExMaximumDegreeBaseline(line_max_degree)
    if name == "EX-RCMH":
        return ExRejectionControlledMHBaseline(alpha=rcmh_alpha)
    if name == "EX-GMD":
        if line_max_degree is None:
            raise ConfigurationError("EX-GMD requires line_max_degree")
        return ExGeneralMaximumDegreeBaseline(line_max_degree, delta=gmd_delta)
    raise ConfigurationError(
        f"unknown baseline {name!r}; available: {', '.join(BASELINE_NAMES)}"
    )


__all__ = [
    "LineGraphBaseline",
    "ExReweightedBaseline",
    "ExMetropolisHastingsBaseline",
    "ExMaximumDegreeBaseline",
    "ExRejectionControlledMHBaseline",
    "ExGeneralMaximumDegreeBaseline",
    "line_graph_max_degree",
    "make_baseline",
    "BASELINE_NAMES",
]
