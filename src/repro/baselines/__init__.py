"""Baseline algorithms: node-counting random walks adapted via the line graph.

These are the EX-* rows of the paper's tables (§5.1, "Adaptations of
Existing Algorithms"): random-walk estimators of the *number of target
nodes* from Li et al. (ICDE 2015), run on the line graph ``G'`` of the
OSN so that target nodes of ``G'`` correspond to target edges of ``G``.
"""

from repro.baselines.adaptations import (
    LineGraphBaseline,
    ExReweightedBaseline,
    ExMetropolisHastingsBaseline,
    ExMaximumDegreeBaseline,
    ExRejectionControlledMHBaseline,
    ExGeneralMaximumDegreeBaseline,
    line_graph_max_degree,
    make_baseline,
    BASELINE_NAMES,
)
from repro.baselines.fleet import (
    classify_line_fleet,
    reweighted_estimates,
    run_baseline_fleet,
)

__all__ = [
    "classify_line_fleet",
    "reweighted_estimates",
    "run_baseline_fleet",
    "LineGraphBaseline",
    "ExReweightedBaseline",
    "ExMetropolisHastingsBaseline",
    "ExMaximumDegreeBaseline",
    "ExRejectionControlledMHBaseline",
    "ExGeneralMaximumDegreeBaseline",
    "line_graph_max_degree",
    "make_baseline",
    "BASELINE_NAMES",
]
