"""Fleet execution of the EX-* baselines: vectorized line-graph trials.

The sequential reference path runs each EX-* repetition as a Python
walk over :class:`~repro.graph.line_graph.LineGraphAPI` and re-weights
the visited line nodes one at a time.  This module is its array-native
twin, built on :class:`~repro.walks.line_batched.BatchedLineWalkEngine`:

* :func:`run_baseline_fleet` — all repetitions of one (baseline,
  budget) cell as a single fleet of implicit line-graph walkers;
* :func:`classify_line_fleet` — label-mask classification of an
  already-walked fleet into an
  :class:`~repro.core.samplers.base.EdgeSampleBatch` whose rows are the
  visited line nodes (edges of ``G``), carrying the per-sample
  *stationary weights* the re-weighted estimator needs and the
  per-trial distinct-page ledgers (proposal probes included);
* :func:`reweighted_estimates` — the Li et al. re-weighted form
  ``F̂ = |H| · (Σ I/w) / (Σ 1/w)`` for every trial at once.

Separating the walk from its classification mirrors the proposed
algorithms' prefix-reuse engine: one max-budget line fleet per baseline
serves every budget column (:meth:`LineFleetResult.prefix`) and — in
frequency sweeps — every target pair, because the line walk itself is
label-agnostic.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.samplers.base import EdgeSampleBatch
from repro.core.samplers.csr_backend import enforce_fleet_budget
from repro.exceptions import EstimationError
from repro.graph.csr import CSRGraph
from repro.graph.labeled_graph import Label
from repro.utils.rng import RandomSource, ensure_numpy_rng
from repro.walks.batched import kernel_stationary_weights
from repro.walks.line_batched import BatchedLineWalkEngine, LineFleetResult

from repro.baselines.adaptations import LineGraphBaseline


def run_baseline_fleet(
    csr: CSRGraph,
    baseline: LineGraphBaseline,
    k: int,
    repetitions: int,
    burn_in: int = 0,
    rng: RandomSource = None,
    engine: str = "numpy",
) -> LineFleetResult:
    """Walk all *repetitions* of one EX-* cell as one line-graph fleet.

    One walker per repetition, ``burn_in + k`` vectorized transitions
    each; the kernel (and its ``alpha`` / ``delta`` / line-max-degree
    knobs) comes off the *baseline* instance, so tuned suites vectorize
    with their own configuration.  ``engine="compiled"`` walks the
    fleet with the bit-identical numba kernels instead of the numpy
    step loop.
    """
    line_engine = BatchedLineWalkEngine(
        csr, kernel=baseline.csr_kernel_spec(), rng=ensure_numpy_rng(rng), engine=engine
    )
    return line_engine.run_fleet(repetitions, k, burn_in=burn_in)


def classify_line_fleet(
    csr: CSRGraph,
    fleet: LineFleetResult,
    t1: Label,
    t2: Label,
    budget: Optional[int] = None,
    known_num_nodes: Optional[int] = None,
    known_num_edges: Optional[int] = None,
) -> EdgeSampleBatch:
    """Classify an already-walked line fleet against a target pair.

    A collected line node ``(u, v)`` is a target node of ``G'`` exactly
    when ``(u, v)`` is a target edge of ``G`` — one label-mask gather.
    The batch rows are per-trial; ``weights`` holds the stationary
    weights of the kernel *the fleet itself was walked with*
    (:attr:`LineFleetResult.kernel` — carried on the result so a
    mismatched spec cannot silently mis-weight the estimates) on the
    line degrees ``d(u) + d(v) − 2``, and ``api_calls`` the per-trial
    distinct-``G``-page ledgers, rejected proposal probes included.
    """
    spec = fleet.kernel
    if spec is None:
        raise EstimationError(
            "the line fleet does not carry its kernel spec; walk it with "
            "BatchedLineWalkEngine / run_baseline_fleet"
        )
    sources = fleet.collected_src
    dests = fleet.collected_dst
    m1 = csr.label_mask(t1)
    m2 = csr.label_mask(t2)
    is_target = (m1[sources] & m2[dests]) | (m2[sources] & m1[dests])

    line_degrees = csr.degrees[sources] + csr.degrees[dests] - 2
    weights = kernel_stationary_weights(spec, line_degrees)

    charges = fleet.charged_calls()
    enforce_fleet_budget(charges, budget)

    return EdgeSampleBatch(
        sources=sources,
        dests=dests,
        is_target=is_target,
        num_edges=csr.num_edges if known_num_edges is None else known_num_edges,
        num_nodes=csr.num_nodes if known_num_nodes is None else known_num_nodes,
        target_labels=(t1, t2),
        api_calls=charges,
        node_ids=csr.node_ids,
        weights=weights,
    )


def reweighted_estimates(batch: EdgeSampleBatch) -> np.ndarray:
    """The Li et al. re-weighted estimator for every trial of a fleet.

    .. math::

       F̂ = |H| · \\frac{Σ_i I(v_i) / w(v_i)}{Σ_i 1 / w(v_i)}

    where ``|H| = |E|`` (prior knowledge, carried as
    ``batch.num_edges``), ``I`` is the target flag and ``w`` the
    stationary weights carried by the batch.  Pure array arithmetic;
    values agree with :meth:`LineGraphBaseline.estimate` up to
    floating-point summation order.
    """
    batch.require_non_empty()
    weights = batch.weights
    if weights is None:
        raise EstimationError(
            "the re-weighted baseline estimator needs per-sample stationary "
            "weights; classify the fleet with classify_line_fleet"
        )
    if (weights <= 0).any():
        raise EstimationError("kernel produced non-positive stationary weight")
    inverse = 1.0 / weights
    denominators = inverse.sum(axis=1)
    if not denominators.all():
        raise EstimationError("degenerate walk: all stationary weights were zero")
    numerators = (batch.is_target * inverse).sum(axis=1)
    return batch.num_edges * numerators / denominators


__all__ = [
    "run_baseline_fleet",
    "classify_line_fleet",
    "reweighted_estimates",
]
