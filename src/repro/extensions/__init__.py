"""Extensions beyond the paper's core contribution.

The paper's conclusion names the estimation of *other* label-refined
graph properties — numbers of wedges and triangles restricted by user
labels — as future work.  :mod:`repro.extensions.labeled_motifs`
implements that extension with the same machinery (random walks over the
restricted API plus Hansen–Hurwitz-style reweighting).
"""

from repro.extensions.labeled_motifs import (
    count_target_wedges,
    count_target_triangles,
    LabeledWedgeEstimator,
    LabeledTriangleEstimator,
)

__all__ = [
    "count_target_wedges",
    "count_target_triangles",
    "LabeledWedgeEstimator",
    "LabeledTriangleEstimator",
]
