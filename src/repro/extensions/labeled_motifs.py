"""Label-refined wedge and triangle counting (the paper's future-work direction).

The EDBT 2018 paper estimates the number of *edges* whose endpoints
carry two target labels and closes by proposing the same treatment for
wedges and triangles.  This module provides that extension using the
same ingredients:

* a simple random walk over the restricted neighbor-list API,
* neighborhood exploration at nodes that carry the relevant label,
* Hansen–Hurwitz reweighting by the stationary probability
  ``d(u) / 2|E|``.

Definitions
-----------
Given labels ``(t1, c, t2)`` a **target wedge** is an ordered-center path
``u - v - w`` with ``u ≠ w`` where the *center* ``v`` carries ``c``, one
endpoint carries ``t1`` and the other carries ``t2``.

Given labels ``(t1, t2, t3)`` a **target triangle** is a triangle whose
three vertices can be matched one-to-one to the three labels (counted
once per vertex set).

Estimators
----------
* Wedges: sample nodes ``v`` by random walk; when ``v`` carries the
  center label, explore its neighborhood and count ``W(v)`` — the number
  of target wedges centred at ``v``.  Since the walk occupies ``v`` with
  probability ``d(v)/2|E|``,

  .. math:: \\hat W = \\frac1k \\sum_i \\frac{2|E|}{d(v_i)} W(v_i)

  is unbiased for the total number of target wedges.

* Triangles: sample edges ``(u, v)`` with the NeighborSample process
  (uniform over ``E``); count ``Δ(u, v)`` — target triangles containing
  that edge — by intersecting the two neighbor lists.  Every triangle
  contains three edges, so

  .. math:: \\hat T = \\frac1k \\sum_i \\frac{|E|}{3} Δ(u_i, v_i)

  is unbiased for the number of target triangles.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.core.estimators.base import EstimateResult
from repro.exceptions import EstimationError
from repro.graph.api import RestrictedGraphAPI
from repro.graph.labeled_graph import Label, LabeledGraph, Node
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import check_non_negative_int, check_positive_int
from repro.walks.engine import RandomWalk
from repro.walks.kernels import SimpleRandomWalkKernel


# ----------------------------------------------------------------------
# exact (full-access) ground truth
# ----------------------------------------------------------------------
def _matches_permutation(labels_by_node, required) -> bool:
    """Whether the nodes' label sets can be matched one-to-one to *required*.

    Both inputs have length 3; a brute-force check over the 6 permutations
    is plenty.
    """
    a, b, c = labels_by_node
    r1, r2, r3 = required
    permutations = (
        (a, b, c), (a, c, b), (b, a, c), (b, c, a), (c, a, b), (c, b, a)
    )
    for x, y, z in permutations:
        if r1 in x and r2 in y and r3 in z:
            return True
    return False


def count_target_wedges(
    graph: LabeledGraph, end_label_1: Label, center_label: Label, end_label_2: Label
) -> int:
    """Exact number of target wedges ``t1 - c - t2`` (full access, for ground truth)."""
    total = 0
    for center in graph.nodes():
        if not graph.has_label(center, center_label):
            continue
        total += _wedges_at_center(graph.labels_of, graph.neighbors(center), end_label_1, end_label_2)
    return total


def _wedges_at_center(labels_of, neighbors, end_label_1, end_label_2) -> int:
    """Count unordered endpoint pairs around one center node."""
    with_first = 0
    with_second = 0
    with_both = 0
    for neighbor in neighbors:
        labels = labels_of(neighbor)
        has_first = end_label_1 in labels
        has_second = end_label_2 in labels
        if has_first:
            with_first += 1
        if has_second:
            with_second += 1
        if has_first and has_second:
            with_both += 1
    if end_label_1 == end_label_2:
        return with_first * (with_first - 1) // 2
    # Unordered endpoint pairs {u, w} where one endpoint carries t1 and the
    # other carries t2: ordered assignments are |A|·|B| minus the u = w cases
    # (a neighbor carrying both labels paired with itself); pairs whose two
    # endpoints both carry both labels were counted under both orderings.
    ordered = with_first * with_second - with_both
    double_counted = with_both * (with_both - 1) // 2
    return ordered - double_counted


def count_target_triangles(
    graph: LabeledGraph, t1: Label, t2: Label, t3: Label
) -> int:
    """Exact number of target triangles (full access, for ground truth)."""
    total = 0
    for u in graph.nodes():
        neighbors_u = set(graph.neighbors(u))
        for v in neighbors_u:
            if repr(v) <= repr(u):
                continue
            common = neighbors_u & set(graph.neighbors(v))
            for w in common:
                if repr(w) <= repr(v):
                    continue
                if _matches_permutation(
                    (graph.labels_of(u), graph.labels_of(v), graph.labels_of(w)),
                    (t1, t2, t3),
                ):
                    total += 1
    return total


# ----------------------------------------------------------------------
# random-walk estimators over the restricted API
# ----------------------------------------------------------------------
class LabeledWedgeEstimator:
    """Estimate the number of target wedges via NeighborExploration-style sampling.

    Parameters
    ----------
    api:
        Restricted neighbor-list access.
    end_label_1, center_label, end_label_2:
        The wedge label pattern ``t1 - c - t2``.
    burn_in:
        Walk burn-in (use the graph's mixing time).
    rng:
        Seed or generator.
    """

    name = "LabeledWedge-HH"

    def __init__(
        self,
        api: RestrictedGraphAPI,
        end_label_1: Label,
        center_label: Label,
        end_label_2: Label,
        burn_in: int = 0,
        rng: RandomSource = None,
    ) -> None:
        self.api = api
        self.end_label_1 = end_label_1
        self.center_label = center_label
        self.end_label_2 = end_label_2
        self.burn_in = check_non_negative_int(burn_in, "burn_in")
        self._rng = ensure_rng(rng)

    def _wedges_at(self, node: Node) -> int:
        neighbors = self.api.neighbors(node)
        return _wedges_at_center(
            self.api.labels_of, neighbors, self.end_label_1, self.end_label_2
        )

    def estimate(self, k: int) -> EstimateResult:
        """Run the walk for ``k`` collected samples and return the estimate."""
        check_positive_int(k, "k")
        walk = RandomWalk(self.api, SimpleRandomWalkKernel(), burn_in=self.burn_in, rng=self._rng)
        result = walk.run(k)
        total = 0.0
        explored = 0
        for node, degree in zip(result.nodes, result.degrees):
            if degree <= 0:
                raise EstimationError("random walk visited a node of degree zero")
            if self.center_label not in self.api.labels_of(node):
                continue
            explored += 1
            total += self._wedges_at(node) / degree
        estimate = 2.0 * self.api.num_edges * total / k
        return EstimateResult(
            estimate=estimate,
            estimator=self.name,
            sample_size=k,
            target_labels=(self.end_label_1, self.end_label_2),
            api_calls=self.api.api_calls,
            details={"explored_centers": float(explored)},
        )


class LabeledTriangleEstimator:
    """Estimate the number of target triangles via NeighborSample-style sampling."""

    name = "LabeledTriangle-HH"

    def __init__(
        self,
        api: RestrictedGraphAPI,
        t1: Label,
        t2: Label,
        t3: Label,
        burn_in: int = 0,
        rng: RandomSource = None,
    ) -> None:
        self.api = api
        self.labels: Tuple[Label, Label, Label] = (t1, t2, t3)
        self.burn_in = check_non_negative_int(burn_in, "burn_in")
        self._rng = ensure_rng(rng)

    def _target_triangles_on_edge(self, u: Node, v: Node) -> int:
        labels_u = self.api.labels_of(u)
        labels_v = self.api.labels_of(v)
        common = set(self.api.neighbors(u)) & set(self.api.neighbors(v))
        count = 0
        for w in common:
            if _matches_permutation(
                (labels_u, labels_v, self.api.labels_of(w)), self.labels
            ):
                count += 1
        return count

    def estimate(self, k: int) -> EstimateResult:
        """Run the walk for ``k`` collected edge samples and return the estimate."""
        check_positive_int(k, "k")
        walk = RandomWalk(self.api, SimpleRandomWalkKernel(), burn_in=self.burn_in, rng=self._rng)
        result = walk.run(k)
        total = 0.0
        for edge in result.edges:
            if edge is None:  # pragma: no cover - the simple walk never self-loops
                continue
            total += self._target_triangles_on_edge(*edge)
        estimate = self.api.num_edges * total / (3.0 * k)
        return EstimateResult(
            estimate=estimate,
            estimator=self.name,
            sample_size=k,
            target_labels=(self.labels[0], self.labels[1]),
            api_calls=self.api.api_calls,
            details={"triangle_incidences": total},
        )


__all__ = [
    "count_target_wedges",
    "count_target_triangles",
    "LabeledWedgeEstimator",
    "LabeledTriangleEstimator",
]
