"""Thinning: approximately-independent samples from one long walk.

The Horvitz–Thompson estimators (paper §4.1.3 and §4.2.3) need samples
that are (approximately) independent, but the single-walk implementation
produces consecutive, highly dependent samples.  Following Hardiman &
Katzir (the strategy the paper adopts), samples that are at least
``r = 2.5% · k`` steps apart are treated as independent.

:func:`thinning_interval` computes ``r`` and :func:`thin_indices`
selects which positions of a length-``k`` walk to keep.
"""

from __future__ import annotations

import math
from typing import List, Sequence, TypeVar

from repro.utils.validation import check_fraction, check_non_negative_int

T = TypeVar("T")

#: The fraction of the walk length used as the thinning gap in the paper.
DEFAULT_THINNING_FRACTION = 0.025


def thinning_interval(num_samples: int, fraction: float = DEFAULT_THINNING_FRACTION) -> int:
    """The gap ``r = ceil(fraction · k)``, never smaller than 1."""
    check_non_negative_int(num_samples, "num_samples")
    check_fraction(fraction, "fraction")
    if num_samples == 0:
        return 1
    return max(1, math.ceil(fraction * num_samples))


def thin_indices(
    num_samples: int, fraction: float = DEFAULT_THINNING_FRACTION
) -> List[int]:
    """Indices (into a length-``num_samples`` walk) spaced ``r`` apart.

    Always includes index 0 when the walk is non-empty.
    """
    check_non_negative_int(num_samples, "num_samples")
    if num_samples == 0:
        return []
    interval = thinning_interval(num_samples, fraction)
    return list(range(0, num_samples, interval))


def thin_sequence(items: Sequence[T], fraction: float = DEFAULT_THINNING_FRACTION) -> List[T]:
    """Return the subsequence of *items* at thinned positions."""
    indices = thin_indices(len(items), fraction)
    return [items[i] for i in indices]


__all__ = [
    "DEFAULT_THINNING_FRACTION",
    "thinning_interval",
    "thin_indices",
    "thin_sequence",
]
