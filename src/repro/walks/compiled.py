"""Compiled (numba-``njit``) twins of the batched fleet hot loops.

The numpy engines of :mod:`repro.walks.batched` and
:mod:`repro.walks.line_batched` advance every walker with a handful of
full-fleet array operations per transition — fast, but each step still
pays several gathers, temporaries, and Python dispatch.  This module
holds scalar twin kernels of those loops that run over the raw CSR
``indptr`` / ``indices`` / ``degrees`` arrays, compiled with numba when
it is installed and executed as plain Python otherwise (slow but
identical — the differential suite runs them un-jitted).

**Bit-exact replay contract.**  Both engines draw from the same numpy
``Generator`` and must consume it identically so a fleet is
reproducible regardless of engine:

* every numpy-engine step consumes fixed-size ``random(n)`` blocks —
  an offset block (node walks), a side + offset block pair (line
  walks), and one accept block for the accept/reject kernels that
  draw one (``mhrw`` / ``mdrw`` / ``gmd`` / ``rcmh`` with
  ``alpha > 0``);
* ``Generator.random((steps, blocks, n))`` fills its output from the
  underlying bit stream in C order, i.e. exactly the concatenation of
  the per-step ``random(n)`` calls — so the drivers here pre-draw a
  chunk of steps at a time and the kernels index ``draws[step, block,
  walker]``;
* exclusion draws (non-backtracking, line stage 2) use a
  *swap-with-last* bijection — draw over the ``d − 1`` allowed slots
  and bump a collision with the excluded neighbor to the last slot —
  instead of a data-dependent redraw loop, so consumption per step is
  fixed in both engines;
* the accept probabilities mirror
  :func:`repro.walks.batched.kernel_move_probabilities` operation for
  operation (including numpy's ``x ** 0.5 -> sqrt`` scalar-power fast
  path), so the float compares come out bit-identical.

Kernels cannot raise rich exceptions under ``nopython``; they return
status codes which the drivers convert back to the same
:class:`~repro.exceptions.WalkError` types the numpy engines raise.

When numba is missing, selecting the compiled engine falls back to the
numpy engine with a :class:`CompiledFallbackWarning` — never an import
error — and, because the two engines are bit-identical, the results
are unchanged.
"""

from __future__ import annotations

import math
import warnings
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, WalkError

#: Fleet engines selectable on the batched walk engines.
ENGINES: Tuple[str, ...] = ("numpy", "compiled")

#: Target size (in float64 draws) of one pre-drawn uniform chunk
#: (~32 MB); chunking keeps memory flat while amortising RNG calls.
_CHUNK_DOUBLES = 4_000_000

_KERNEL_IDS = {
    "simple": 0,
    "non_backtracking": 1,
    "mhrw": 2,
    "rcmh": 3,
    "mdrw": 4,
    "gmd": 5,
}


class CompiledFallbackWarning(RuntimeWarning):
    """The compiled engine was requested but numba is not installed.

    The fleet silently runs on the bit-identical numpy engine instead;
    this warning is the only difference in observable behavior.
    """


try:  # pragma: no cover - exercised via both CI legs
    from numba import njit as _numba_njit

    _NUMBA_AVAILABLE = True
except Exception:  # ImportError, or a broken install
    _numba_njit = None
    _NUMBA_AVAILABLE = False


def numba_available() -> bool:
    """Whether numba imported, i.e. the compiled engine actually JITs."""
    return _NUMBA_AVAILABLE


def _jit(func):
    """``numba.njit`` when available, identity otherwise.

    The un-jitted functions are plain nopython-compatible Python, so
    the differential tests exercise the very same code numba compiles.
    """
    if _numba_njit is None:
        return func
    return _numba_njit(cache=True)(func)


def resolve_engine(engine: Optional[str]) -> str:
    """Normalise an engine name, falling back when numba is absent.

    Returns ``"numpy"`` or ``"compiled"``; requesting ``"compiled"``
    without numba installed emits a :class:`CompiledFallbackWarning`
    and returns ``"numpy"`` (identical results, no JIT speedup).
    """
    if engine is None:
        engine = "numpy"
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown fleet engine {engine!r}; choose one of {', '.join(ENGINES)}"
        )
    if engine == "compiled" and not _NUMBA_AVAILABLE:
        warnings.warn(
            "numba is not installed; the compiled fleet engine falls back to "
            "the bit-identical numpy engine (install numba to enable the JIT "
            "kernels)",
            CompiledFallbackWarning,
            stacklevel=3,
        )
        return "numpy"
    return engine


def has_accept_draw(spec) -> bool:
    """Whether *spec*'s advance consumes an accept uniform per step.

    Mirrors :func:`~repro.walks.batched.kernel_move_probabilities`
    returning an array (vs ``None``): the degree-stationary kernels and
    ``rcmh`` at ``alpha = 0`` always move and draw nothing.
    """
    if spec.name in ("simple", "non_backtracking"):
        return False
    if spec.name == "rcmh" and spec.alpha == 0.0:
        return False
    return True


def _scalar_pow(x: float, y: float) -> float:
    """Scalar twin of :func:`pow_like_scalar` for ``x > 0``.

    Exponents 1, 2 and 0.5 take the same exactly-rounded branches the
    vectorized helper takes (the last via ``sqrt``, correctly rounded
    where generic ``pow`` need not be); everything else is libm ``pow``
    — what Python ``**`` calls and what numba lowers ``**`` to — so the
    rcmh accept probabilities come out bit-identical across all tiers.
    """
    if y == 1.0:
        return x
    if y == 2.0:
        return x * x
    if y == 0.5:
        return math.sqrt(x)
    return x ** y


def pow_like_scalar(values, exponent: float) -> np.ndarray:
    """Elementwise ``values ** exponent`` with *scalar* (libm) rounding.

    numpy's vectorized float64 power loop may come from a SIMD
    implementation that disagrees with libm ``pow`` by 1 ULP on some
    inputs (machine-dependent), while every scalar tier — Python
    ``**``, the reference kernels, the per-step CSR loops and numba's
    lowering of ``**`` — calls libm.  The vectorized engines route
    their generic powers through this helper so all tiers compute the
    same accept probabilities bit for bit: the correctly-rounded
    exponents (1, 2, 0.5) vectorize directly (they match
    :func:`_scalar_pow`'s fast paths exactly), everything else
    evaluates libm ``pow`` once per *unique* base — degrees and degree
    ratios repeat heavily — and gathers the results back.
    """
    values = np.asarray(values, dtype=np.float64)
    if exponent == 1.0:
        return values.copy()
    if exponent == 2.0:
        return values * values
    if exponent == 0.5:
        return np.sqrt(values)
    unique, inverse = np.unique(values, return_inverse=True)
    powered = np.array(
        [math.pow(base, exponent) for base in unique.tolist()], dtype=np.float64
    )
    # numpy < 2.1 flattens return_inverse; reshape covers both behaviors.
    return powered[np.reshape(inverse, values.shape)]


def _accept_probability(
    kernel_id: int,
    current_degree: int,
    proposal_degree: int,
    alpha: float,
    delta: float,
    max_degree: float,
) -> float:
    """One walker's accept probability; scalar twin of the formula table."""
    if kernel_id == 2:  # mhrw: min(1, d(u)/d(v))
        p = current_degree / proposal_degree
        if p > 1.0:
            p = 1.0
        return p
    if kernel_id == 3:  # rcmh: min(1, (d(u)/d(v)) ** alpha)
        p = _scalar_pow(current_degree / proposal_degree, alpha)
        if p > 1.0:
            p = 1.0
        return p
    if kernel_id == 4:  # mdrw: d(u)/d_max (overflow checked by caller)
        return current_degree / max_degree
    # gmd: d(u)/max(d(u), delta * d_max)
    cap = delta * max_degree
    if current_degree > cap:
        return 1.0  # d(u)/d(u), exactly 1.0 in the numpy engine too
    return current_degree / cap


def _node_fleet_chunk(
    indptr,
    indices,
    degrees,
    draws,
    current,
    previous,
    trajectories,
    probes,
    step0,
    kernel_id,
    alpha,
    delta,
    max_degree,
    record_probes,
):
    """Advance a node fleet by ``draws.shape[0]`` transitions.

    ``draws`` is ``(chunk_steps, blocks, n)`` pre-drawn uniforms —
    block 0 the offset draw, block 1 (when present) the accept draw —
    consumed in the exact order the numpy engine draws them.
    ``current`` / ``previous`` are updated in place; positions land in
    ``trajectories[:, step0 + 1 :]`` and proposals in
    ``probes[:, step0 :]`` when *record_probes*.

    Returns ``(status, value)``: ``(0, 0)`` on success, ``(1, degree)``
    when mdrw reached a node above ``max_degree``.
    """
    chunk_steps = draws.shape[0]
    blocks = draws.shape[1]
    n = current.shape[0]
    for s in range(chunk_steps):
        col = step0 + s + 1
        for i in range(n):
            cur = current[i]
            deg = degrees[cur]
            r = draws[s, 0, i]
            if kernel_id == 1:  # non-backtracking: swap-with-last exclusion
                prev = previous[i]
                if prev >= 0 and deg > 1:
                    span = deg - 1
                    off = int(r * span)
                    if off > span - 1:
                        off = span - 1
                    nxt = indices[indptr[cur] + off]
                    if nxt == prev:
                        nxt = indices[indptr[cur] + deg - 1]
                else:
                    off = int(r * deg)
                    if off > deg - 1:
                        off = deg - 1
                    nxt = indices[indptr[cur] + off]
                previous[i] = cur
                current[i] = nxt
                trajectories[i, col] = nxt
                continue
            off = int(r * deg)
            if off > deg - 1:
                off = deg - 1
            cand = indices[indptr[cur] + off]
            nxt = cand
            if blocks > 1:  # accept/reject kernels that draw
                if kernel_id == 4 and deg > max_degree:
                    return 1, deg
                p = _accept_probability(
                    kernel_id, deg, degrees[cand], alpha, delta, max_degree
                )
                if not draws[s, 1, i] < p:
                    nxt = cur
            if record_probes:
                probes[i, step0 + s] = cand
            previous[i] = cur
            current[i] = nxt
            trajectories[i, col] = nxt
    return 0, 0


def _line_fleet_chunk(
    indptr,
    indices,
    degrees,
    draws,
    u,
    v,
    src,
    dst,
    probes_u,
    probes_v,
    step0,
    kernel_id,
    alpha,
    delta,
    max_degree,
    record_probes,
):
    """Advance a line-graph fleet by ``draws.shape[0]`` transitions.

    Blocks per step: 0 the pivot-side draw, 1 the stage-2 neighbor
    offset, 2 (when present) the accept draw — the numpy engine's
    order.  ``u`` / ``v`` are updated in place; endpoints land in
    ``src`` / ``dst`` and proposal endpoints in ``probes_u`` /
    ``probes_v`` when *record_probes*.

    Returns ``(status, a, b)``: ``(0, 0, 0)`` on success, ``(1, u, v)``
    for an isolated line node, ``(2, line_degree, 0)`` when mdrw
    reached a line node above ``max_degree``.
    """
    chunk_steps = draws.shape[0]
    blocks = draws.shape[1]
    n = u.shape[0]
    for s in range(chunk_steps):
        col = step0 + s + 1
        for i in range(n):
            uu = u[i]
            vv = v[i]
            du = degrees[uu]
            dv = degrees[vv]
            line_degree = du + dv - 2
            if line_degree <= 0:
                return 1, uu, vv
            # Stage 1 — pivot side, proportional to its d − 1 slots.
            side = int(draws[s, 0, i] * line_degree)
            if side > line_degree - 1:
                side = line_degree - 1
            if side < du - 1:
                pivot = uu
                other = vv
            else:
                pivot = vv
                other = uu
            # Stage 2 — swap-with-last exclusion draw over the pivot's
            # d − 1 allowed slots (pivot degree >= 2 on the chosen side).
            pivot_degree = degrees[pivot]
            span = pivot_degree - 1
            off = int(draws[s, 1, i] * span)
            if off > span - 1:
                off = span - 1
            w = indices[indptr[pivot] + off]
            if w == other:
                w = indices[indptr[pivot] + pivot_degree - 1]
            new_u = pivot
            new_v = w
            if blocks > 2:  # accept test on the line degrees
                if kernel_id == 4 and line_degree > max_degree:
                    return 2, line_degree, 0
                proposal_degree = degrees[pivot] + degrees[w] - 2
                p = _accept_probability(
                    kernel_id, line_degree, proposal_degree, alpha, delta, max_degree
                )
                if not draws[s, 2, i] < p:
                    new_u = uu
                    new_v = vv
            if record_probes:
                probes_u[i, step0 + s] = pivot
                probes_v[i, step0 + s] = w
            u[i] = new_u
            v[i] = new_v
            src[i, col] = new_u
            dst[i, col] = new_v
    return 0, 0, 0


_node_fleet_chunk = _jit(_node_fleet_chunk)
_line_fleet_chunk = _jit(_line_fleet_chunk)
_accept_probability = _jit(_accept_probability)
_scalar_pow = _jit(_scalar_pow)


def _chunk_steps(total: int, blocks: int, num_walkers: int) -> int:
    """Steps per pre-drawn chunk, targeting ``_CHUNK_DOUBLES`` draws."""
    per_step = max(1, blocks * num_walkers)
    return max(1, min(total, _CHUNK_DOUBLES // per_step))


def compiled_node_fleet(csr, spec, rng, current, trajectories, probes) -> None:
    """Walk a node fleet with the compiled kernel; bit-identical to numpy.

    *current* holds the start positions (consumed as scratch),
    *trajectories* is the ``(N, total + 1)`` output with column 0
    already filled, *probes* the ``(N, total)`` proposal record or
    ``None``.  Draws exactly ``total`` offset blocks (plus accept
    blocks for drawing kernels) from *rng*, matching the numpy engine's
    consumption from the same generator state.
    """
    total = trajectories.shape[1] - 1
    n = current.shape[0]
    blocks = 2 if has_accept_draw(spec) else 1
    record_probes = probes is not None
    probe_out = probes if record_probes else np.empty((0, 0), dtype=np.int64)
    previous = np.full(n, -1, dtype=np.int64)
    kernel_id = _KERNEL_IDS[spec.name]
    chunk = _chunk_steps(total, blocks, n)
    step = 0
    while step < total:
        span = min(chunk, total - step)
        draws = rng.random((span, blocks, n))
        status, value = _node_fleet_chunk(
            csr.indptr,
            csr.indices,
            csr.degrees,
            draws,
            current,
            previous,
            trajectories,
            probe_out,
            step,
            kernel_id,
            float(spec.alpha),
            float(spec.delta),
            float(spec.max_degree),
            record_probes,
        )
        if status == 1:
            raise WalkError(
                f"walk reached a node of degree {int(value)} > "
                f"max_degree={spec.max_degree}"
            )
        step += span


def compiled_line_fleet(
    csr, spec, rng, u, v, src, dst, probes_u, probes_v
) -> None:
    """Walk a line-graph fleet with the compiled kernel.

    *u* / *v* hold the seed-edge endpoints (consumed as scratch);
    *src* / *dst* are the ``(N, total + 1)`` outputs with column 0
    already filled, *probes_u* / *probes_v* the proposal-endpoint
    records or ``None``.  Bit-identical to the numpy engine from the
    same generator state.
    """
    total = src.shape[1] - 1
    n = u.shape[0]
    blocks = 3 if has_accept_draw(spec) else 2
    record_probes = probes_u is not None
    empty = np.empty((0, 0), dtype=np.int64)
    kernel_id = _KERNEL_IDS[spec.name]
    chunk = _chunk_steps(total, blocks, n)
    step = 0
    while step < total:
        span = min(chunk, total - step)
        draws = rng.random((span, blocks, n))
        status, a, b = _line_fleet_chunk(
            csr.indptr,
            csr.indices,
            csr.degrees,
            draws,
            u,
            v,
            src,
            dst,
            probes_u if record_probes else empty,
            probes_v if record_probes else empty,
            step,
            kernel_id,
            float(spec.alpha),
            float(spec.delta),
            float(spec.max_degree),
            record_probes,
        )
        if status == 1:
            raise WalkError(
                f"line walk reached isolated line node "
                f"({csr.node_ids[int(a)]!r}, {csr.node_ids[int(b)]!r}); "
                "run on the largest connected component"
            )
        if status == 2:
            raise WalkError(
                f"walk reached a node of degree {int(a)} > "
                f"max_degree={spec.max_degree}"
            )
        step += span


__all__ = [
    "ENGINES",
    "CompiledFallbackWarning",
    "numba_available",
    "resolve_engine",
    "has_accept_draw",
    "pow_like_scalar",
    "compiled_node_fleet",
    "compiled_line_fleet",
]
