"""Vectorized random walks over a :class:`~repro.graph.csr.CSRGraph`.

Two execution styles live here, both sharing the CSR arrays:

* :func:`csr_walk` — one walker, a tight scalar loop.  In its default
  *fast* mode it consumes pre-drawn numpy uniforms; in *exact-RNG* mode
  it reproduces the reference dict engine
  (:class:`repro.walks.engine.RandomWalk`) **step for step from the same
  seed**, by consuming ``random.Random`` bits exactly the way
  ``rng.choice`` does.
* :class:`BatchedWalkEngine` — ``N`` independent walkers advanced one
  numpy-vectorized step at a time, for throughput workloads (fleet
  simulation, variance studies, benchmarks).

Both support every kernel of :mod:`repro.walks.kernels`: the two
degree-stationary kernels the paper's proposed algorithms use
(``simple``, ``non_backtracking``) *and* the four accept/reject
baseline kernels of the EX-* adaptations (``mhrw``, ``mdrw``,
``rcmh``, ``gmd``), whose acceptance tests are applied as one
vectorized accept/reject mask with stay-in-place (self-loop)
semantics on rejection.  Charged API calls follow the same
distinct-page-download semantics as
:class:`repro.graph.api.RestrictedGraphAPI` with caching on: fetching
a page (neighbor list) of a node is charged once per distinct node,
revisits are free, and exceeding a budget raises
:class:`~repro.exceptions.APIBudgetExceededError`.  The MH-family
kernels (``mhrw``, and ``rcmh`` with ``alpha > 0``) additionally
*probe* their proposal's page to evaluate the acceptance ratio, so
rejected proposals are charged too — exactly like the reference
kernel's ``degree(proposal)`` call.

Buffer stores: the batched engine reads the graph only through numpy
*gathers* (``indices[indptr[current] + offsets]``, ``degrees[nodes]``),
so it runs unchanged over shared-memory or memory-mapped CSR buffers
(:mod:`repro.graph.store`) — a memmapped adjacency faults in just the
pages the fleet touches and is never densified.  Only the scalar
single-walker paths (:func:`csr_walk`) materialise Python adjacency
lists via :meth:`CSRGraph.adjacency_lists`; whole-array label passes
use the chunked-gather fallback documented on
:meth:`CSRGraph.neighbor_mask_counts`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import (
    APIBudgetExceededError,
    ConfigurationError,
    EmptyGraphError,
    WalkError,
)
from repro.graph.csr import CSRGraph
from repro.utils.rng import RandomSource, ensure_numpy_rng, ensure_rng
from repro.walks.compiled import (
    compiled_node_fleet,
    pow_like_scalar,
    resolve_engine,
)
from repro.utils.validation import (
    check_in_range,
    check_non_negative_int,
    check_positive,
    check_positive_int,
)
from repro.walks.engine import WalkResult

#: The kernels whose stationary law is proportional to degree — the
#: walks the paper's proposed algorithms run.
DEGREE_STATIONARY_KERNELS: Tuple[str, ...] = ("simple", "non_backtracking")

#: The accept/reject kernels of the EX-* baselines (Li et al.), applied
#: as a single vectorized accept mask per fleet step.
BASELINE_CSR_KERNELS: Tuple[str, ...] = ("mhrw", "mdrw", "rcmh", "gmd")

#: Kernel names the CSR backend can vectorize.
SUPPORTED_CSR_KERNELS: Tuple[str, ...] = (
    DEGREE_STATIONARY_KERNELS + BASELINE_CSR_KERNELS
)

KernelLike = Union[None, str, object]


@dataclass(frozen=True)
class KernelSpec:
    """Array-backend description of one transition kernel.

    The vectorized engines cannot call the object kernels of
    :mod:`repro.walks.kernels` per step, so a kernel is reduced to its
    name plus the scalar knobs the accept test and the stationary
    weights need:

    * ``max_degree`` — the (upper bound on the) maximum degree required
      by ``mdrw`` / ``gmd``; on the EX-* path this is the maximum
      degree of the *line graph*.
    * ``alpha`` — the ``rcmh`` interpolation knob (``0`` = simple
      random walk, ``1`` = full Metropolis–Hastings).
    * ``delta`` — the ``gmd`` degree-cap knob (``1`` recovers ``mdrw``).
    """

    name: str
    max_degree: float = 0.0
    alpha: float = 0.2
    delta: float = 0.5

    def __post_init__(self) -> None:
        if self.name not in SUPPORTED_CSR_KERNELS:
            raise ConfigurationError(
                f"unsupported CSR kernel {self.name!r}; "
                f"supported: {', '.join(SUPPORTED_CSR_KERNELS)}"
            )
        if self.name in ("mdrw", "gmd"):
            check_positive(self.max_degree, "max_degree")
        if self.name == "rcmh":
            check_in_range(self.alpha, "alpha", 0.0, 1.0)
        if self.name == "gmd":
            check_in_range(self.delta, "delta", 0.0, 1.0)
            if self.delta == 0.0:
                raise ConfigurationError(
                    "delta must be strictly positive for the GMD walk"
                )

    @property
    def probes_proposals(self) -> bool:
        """Whether the accept test reads the *proposal's* page.

        The MH acceptance ratio needs ``d(v)`` of the proposed node, so
        the reference kernel issues a ``degree(proposal)`` API call even
        when the proposal is rejected; the fleet ledgers must charge
        those probes too.  The MD-family kernels decide from the
        *current* degree alone and never touch the proposal's page.
        """
        return self.name == "mhrw" or (self.name == "rcmh" and self.alpha > 0.0)


def resolve_csr_kernel(kernel: KernelLike) -> str:
    """Normalise *kernel* (name, spec or kernel instance) to a supported name.

    Every kernel of :mod:`repro.walks.kernels` is vectorizable; unknown
    names/objects raise :class:`ConfigurationError`.  Use
    :func:`resolve_kernel_spec` when the kernel's knobs (``max_degree``,
    ``alpha``, ``delta``) are needed too.
    """
    return resolve_kernel_spec(kernel, require_parameters=False).name


def resolve_kernel_spec(
    kernel: KernelLike, require_parameters: bool = True
) -> KernelSpec:
    """Normalise *kernel* to a :class:`KernelSpec`.

    Accepts a name string, a :class:`KernelSpec`, or a kernel instance
    from :mod:`repro.walks.kernels` (whose ``max_degree`` / ``alpha`` /
    ``delta`` attributes are read off the object).  The bare names
    ``"mdrw"`` / ``"gmd"`` carry no maximum degree, which the walk
    itself needs; with *require_parameters* they raise a
    :class:`ConfigurationError` pointing at the spec/instance forms
    (name-level validation passes ``require_parameters=False``).
    """
    if kernel is None:
        return KernelSpec("simple")
    if isinstance(kernel, KernelSpec):
        return kernel
    if isinstance(kernel, str):
        if kernel not in SUPPORTED_CSR_KERNELS:
            raise ConfigurationError(
                f"unsupported CSR kernel {kernel!r}; "
                f"supported: {', '.join(SUPPORTED_CSR_KERNELS)}"
            )
        if kernel in ("mdrw", "gmd") and require_parameters:
            raise ConfigurationError(
                f"kernel {kernel!r} needs a maximum degree; pass a "
                "KernelSpec or a kernel instance instead of the bare name"
            )
        return KernelSpec(kernel, max_degree=1.0 if kernel in ("mdrw", "gmd") else 0.0)
    name = getattr(kernel, "name", None)
    if name in SUPPORTED_CSR_KERNELS:
        return KernelSpec(
            name,
            max_degree=float(getattr(kernel, "max_degree", 0.0)),
            alpha=float(getattr(kernel, "alpha", 0.2)),
            delta=float(getattr(kernel, "delta", 0.5)),
        )
    raise ConfigurationError(
        f"the CSR backend cannot vectorize kernel {kernel!r}; "
        f"supported: {', '.join(SUPPORTED_CSR_KERNELS)}"
    )


def kernel_move_probabilities(
    spec: KernelSpec,
    current_degrees: np.ndarray,
    proposal_degrees: Optional[np.ndarray],
) -> Optional[np.ndarray]:
    """Per-walker probability of accepting the drawn candidate.

    The canonical formula table, shared by every *vectorized*
    accept/reject path (fleet advance and line-graph fleets; the
    scalar per-step loops in ``_walk_exact`` / ``_walk_fast`` inline
    the same formulas for speed — keep them in sync):

    * ``mhrw`` — ``min(1, d(u)/d(v))``
    * ``rcmh`` — ``min(1, (d(u)/d(v))**alpha)`` (``alpha=0``: always)
    * ``mdrw`` — ``d(u)/d_max``
    * ``gmd``  — ``d(u)/max(d(u), delta·d_max)``

    Returns ``None`` when the kernel always moves (degree-stationary
    kernels, and ``rcmh`` at ``alpha=0``), so callers can skip the
    accept draw entirely.  ``mdrw`` degrees above ``max_degree`` raise
    :class:`WalkError`, matching the reference kernel.
    """
    name = spec.name
    if name == "mhrw":
        return np.minimum(1.0, current_degrees / proposal_degrees)
    if name == "rcmh":
        if spec.alpha == 0.0:
            return None
        # pow_like_scalar, not `** alpha`: numpy's SIMD pow can be 1 ULP
        # off libm, which every scalar tier (and the compiled engine)
        # calls — the bit-exactness contract spans all of them.
        return np.minimum(
            1.0, pow_like_scalar(current_degrees / proposal_degrees, spec.alpha)
        )
    if name == "mdrw":
        worst = int(current_degrees.max(initial=0))
        if worst > spec.max_degree:
            raise WalkError(
                f"walk reached a node of degree {worst} > "
                f"max_degree={spec.max_degree}"
            )
        return current_degrees / spec.max_degree
    if name == "gmd":
        return current_degrees / np.maximum(
            current_degrees, spec.delta * spec.max_degree
        )
    return None  # degree-stationary kernels always move


def kernel_stationary_weights(spec: KernelSpec, degrees: np.ndarray) -> np.ndarray:
    """Unnormalised stationary weights of nodes of *degrees* under *spec*.

    The array twin of ``TransitionKernel.stationary_weight``; the EX-*
    estimators divide by these to importance-reweight their samples.
    """
    name = spec.name
    if name in ("mhrw", "mdrw"):
        return np.ones(degrees.shape, dtype=np.float64)
    if name == "rcmh":
        return pow_like_scalar(degrees, 1.0 - spec.alpha)
    if name == "gmd":
        return np.maximum(degrees, spec.delta * spec.max_degree).astype(np.float64)
    return degrees.astype(np.float64)  # simple / non_backtracking


def _check_not_empty(csr: CSRGraph) -> None:
    if csr.num_nodes == 0:
        raise EmptyGraphError("cannot walk on an empty graph")


def _isolated_error(index: int, csr: CSRGraph) -> WalkError:
    return WalkError(
        f"random walk reached isolated node {csr.node_ids[index]!r}; "
        "run on the largest connected component"
    )


# ----------------------------------------------------------------------
# exact-RNG draw contract
# ----------------------------------------------------------------------
def exact_randbelow(generator):
    """The index source of ``random.Random.choice``, as a bound callable.

    ``choice(seq)`` is ``seq[rng._randbelow(len(seq))]``; consuming
    ``_randbelow`` directly keeps the bit stream aligned with the dict
    engine.  Defined once so every exact-RNG replay path shares the same
    consumption contract (with a ``randrange`` fallback should CPython
    ever drop the private method).
    """
    randbelow = getattr(generator, "_randbelow", None)
    if randbelow is None:  # pragma: no cover - future-proofing
        return generator.randrange
    return randbelow


def draw_start_index(csr: CSRGraph, rng, exact_rng: bool = False) -> int:
    """Uniform start index for a walk.

    In exact mode this consumes the generator exactly like
    :meth:`RestrictedGraphAPI.random_node` (one ``choice`` over the node
    list), so seeded replays of the reference pipeline stay aligned.
    """
    _check_not_empty(csr)
    if exact_rng:
        return exact_randbelow(ensure_rng(rng))(csr.num_nodes)
    return int(ensure_numpy_rng(rng).integers(csr.num_nodes))


# ----------------------------------------------------------------------
# single-walker scalar paths
# ----------------------------------------------------------------------
def csr_walk(
    csr: CSRGraph,
    num_steps: int,
    start: Optional[int] = None,
    rng: RandomSource = None,
    kernel: KernelLike = "simple",
    exact_rng: bool = False,
    return_probes: bool = False,
) -> np.ndarray:
    """Run one walker for *num_steps* steps; return the node index after each.

    Parameters
    ----------
    csr:
        The frozen graph.
    num_steps:
        Number of transitions to perform.
    start:
        Starting node *index*; drawn uniformly from the rng when omitted
        (mirroring :meth:`RestrictedGraphAPI.random_node`).
    rng:
        Seed / generator.  Fast mode draws from a numpy generator; exact
        mode from a :class:`random.Random`.
    kernel:
        Any supported kernel (name, :class:`KernelSpec`, or kernel
        instance); the MD/GMD kernels need their ``max_degree`` knob, so
        pass those as instances or specs rather than bare names.
    exact_rng:
        When true, consume ``random.Random`` bits exactly like the
        reference engine, so the same seed yields the same trajectory as
        :class:`repro.walks.engine.RandomWalk` over a
        :class:`RestrictedGraphAPI` of the same graph — for every
        kernel, the baselines' accept/reject ones included.
    return_probes:
        When true, return ``(path, probes)`` instead of just the path,
        where *probes* is the per-step proposal drawn by an MH-family
        kernel (whose accept test fetched the proposal's page — see
        :attr:`KernelSpec.probes_proposals`) or ``None`` for every
        other kernel.  Callers reproducing charged-call accounting need
        the probes: a rejected proposal still cost a page download.
    """
    check_non_negative_int(num_steps, "num_steps")
    _check_not_empty(csr)
    spec = resolve_kernel_spec(kernel)
    if exact_rng:
        path, probes = _walk_exact(csr, num_steps, start, ensure_rng(rng), spec)
    else:
        path, probes = _walk_fast(csr, num_steps, start, ensure_numpy_rng(rng), spec)
    return (path, probes) if return_probes else path


def _walk_exact(csr, num_steps, start, generator, spec):
    randbelow = exact_randbelow(generator)
    random = generator.random
    indptr, indices, degrees = csr.adjacency_lists()
    if start is None:
        start = randbelow(csr.num_nodes)
    # Only the start can be isolated: every later position is someone's
    # neighbor, so its degree is >= 1 and the hot loops skip the check.
    if num_steps and degrees[start] == 0:
        raise _isolated_error(start, csr)
    u = start
    out: List[int] = []
    append = out.append
    kernel_name = spec.name
    if kernel_name == "rcmh" and spec.alpha == 0.0:
        # The reference kernel short-circuits to an unconditional move
        # without consuming the accept draw — exactly the simple walk.
        kernel_name = "simple"
    if kernel_name == "simple":
        for _ in range(num_steps):
            u = indices[indptr[u] + randbelow(degrees[u])]
            append(u)
    elif kernel_name == "non_backtracking":
        prev = None
        for _ in range(num_steps):
            lo = indptr[u]
            deg = degrees[u]
            if deg == 1:
                nxt = indices[lo]  # dead end: backtracking, no rng consumed
            else:
                # When prev is not a neighbor the first draw already
                # differs from it, so the rejection loop alone replicates
                # both kernel branches with identical rng consumption.
                nxt = indices[lo + randbelow(deg)]
                while nxt == prev:
                    nxt = indices[lo + randbelow(deg)]
            prev, u = u, nxt
            append(u)
    elif kernel_name in ("mhrw", "rcmh"):
        # Reference consumption: choice(neighbors) then random() for the
        # accept test (degree(proposal) consumes no rng).  Accept
        # formulas inline kernel_move_probabilities — the canonical
        # table — because this is a per-step hot loop.
        alpha = spec.alpha if kernel_name == "rcmh" else 1.0
        probes: List[int] = []
        for _ in range(num_steps):
            deg = degrees[u]
            proposal = indices[indptr[u] + randbelow(deg)]
            probes.append(proposal)
            ratio = deg / degrees[proposal]
            accept = min(1.0, ratio if alpha == 1.0 else ratio**alpha)
            if random() < accept:
                u = proposal
            append(u)
        return (
            np.asarray(out, dtype=np.int64),
            np.asarray(probes, dtype=np.int64),
        )
    else:  # mdrw / gmd: random() for the move test, then choice on moves
        max_degree = spec.max_degree
        delta = spec.delta if kernel_name == "gmd" else 1.0
        for _ in range(num_steps):
            deg = degrees[u]
            if kernel_name == "mdrw" and deg > max_degree:
                raise WalkError(
                    f"walk reached a node of degree {deg} > "
                    f"max_degree={max_degree}"
                )
            if random() < deg / max(deg, delta * max_degree):
                u = indices[indptr[u] + randbelow(deg)]
            append(u)
    return np.asarray(out, dtype=np.int64), None


def _walk_fast(csr, num_steps, start, nprng, spec):
    indptr, indices, degrees = csr.adjacency_lists()
    if start is None:
        start = int(nprng.integers(csr.num_nodes))
    # Only the start can be isolated (see _walk_exact).
    if num_steps and degrees[start] == 0:
        raise _isolated_error(start, csr)
    uniforms = nprng.random(num_steps).tolist()
    u = start
    out: List[int] = []
    append = out.append
    kernel_name = spec.name
    if kernel_name == "rcmh" and spec.alpha == 0.0:
        kernel_name = "simple"  # every proposal accepted, no accept draw
    if kernel_name == "simple":
        rows = csr.neighbor_rows()
        for r in uniforms:
            row = rows[u]
            offset = int(r * len(row))
            # `offset < len(row)` guards float rounding at r -> 1
            u = row[offset] if offset < len(row) else row[-1]
            append(u)
    elif kernel_name == "non_backtracking":
        prev = -1
        for r in uniforms:
            lo = indptr[u]
            deg = degrees[u]
            if deg == 1:
                nxt = indices[lo]
            else:
                offset = int(r * deg)
                if offset == deg:
                    offset -= 1
                nxt = indices[lo + offset]
                while nxt == prev:
                    offset = int(nprng.random() * deg)
                    if offset == deg:
                        offset -= 1
                    nxt = indices[lo + offset]
            prev, u = u, nxt
            append(u)
    else:  # accept/reject baselines: candidate draw + accept draw per step
        # Accept formulas inline kernel_move_probabilities — the
        # canonical table — because this is a per-step hot loop.
        accepts = nprng.random(num_steps).tolist()
        alpha = spec.alpha
        max_degree = spec.max_degree
        delta = spec.delta
        probes: List[int] = []
        probing = spec.probes_proposals
        for step, r in enumerate(uniforms):
            deg = degrees[u]
            offset = int(r * deg)
            if offset == deg:
                offset -= 1
            proposal = indices[indptr[u] + offset]
            if kernel_name == "mhrw":
                accept = min(1.0, deg / degrees[proposal])
            elif kernel_name == "rcmh":
                accept = min(1.0, (deg / degrees[proposal]) ** alpha)
            elif kernel_name == "mdrw":
                if deg > max_degree:
                    raise WalkError(
                        f"walk reached a node of degree {deg} > "
                        f"max_degree={max_degree}"
                    )
                accept = deg / max_degree
            else:  # gmd
                accept = deg / max(deg, delta * max_degree)
            if probing:
                probes.append(proposal)
            if accepts[step] < accept:
                u = proposal
            append(u)
        if probing:
            return (
                np.asarray(out, dtype=np.int64),
                np.asarray(probes, dtype=np.int64),
            )
    return np.asarray(out, dtype=np.int64), None


# ----------------------------------------------------------------------
# budget accounting
# ----------------------------------------------------------------------
def charge_distinct_pages(
    pages: np.ndarray,
    visited: np.ndarray,
    budget: Optional[int],
    already_charged: int = 0,
) -> int:
    """Charge the never-downloaded pages of *pages*; return the new charge.

    The one implementation of the distinct-page crossing invariant,
    shared by the samplers' page filters and the batched engine: pages
    are considered in first-download order, on exhaustion only the
    still-affordable ones are marked in *visited* (mutated in place),
    and the raised error reports the crossing attempt ``budget + 1`` —
    exactly :meth:`APICallCounter.charge`'s behavior mid-crawl.
    """
    distinct, first_seen = np.unique(np.atleast_1d(pages), return_index=True)
    ordered = distinct[np.argsort(first_seen)]
    new = ordered[~visited[ordered]]
    if budget is not None:
        affordable = budget - already_charged
        if new.size > affordable:
            visited[new[: max(0, affordable)]] = True
            raise APIBudgetExceededError(budget, budget + 1)
    visited[new] = True
    return int(new.size)


class PageBudgetTracker:
    """Distinct-page-download accounting for CSR walks.

    Mirrors a budgeted :class:`RestrictedGraphAPI` with caching enabled:
    the first fetch of a node's page is charged, revisits are free, and
    crossing *budget* raises :class:`APIBudgetExceededError`.
    """

    def __init__(self, num_nodes: int, budget: Optional[int] = None) -> None:
        self._visited = np.zeros(num_nodes, dtype=bool)
        self.budget = budget if budget is None else check_non_negative_int(budget, "budget")
        self._charged = 0

    @property
    def charged(self) -> int:
        """Distinct pages downloaded so far."""
        if self.budget is None:
            # Unbudgeted: pages are only marked (cheap per step); count lazily.
            return int(np.count_nonzero(self._visited))
        return self._charged

    def charge_pages(self, node_indices: np.ndarray) -> None:
        """Charge the pages of *node_indices* that were never fetched before.

        See :func:`charge_distinct_pages` for the crossing semantics.
        """
        if self.budget is None:
            # Unbudgeted fast path: mark only, count lazily in `charged`.
            self._visited[np.atleast_1d(node_indices)] = True
            return
        try:
            self._charged += charge_distinct_pages(
                node_indices, self._visited, self.budget, self._charged
            )
        except APIBudgetExceededError:
            self._charged = self.budget + 1
            raise


def per_walker_distinct_counts(trajectories: np.ndarray, *extra: np.ndarray) -> np.ndarray:
    """Distinct pages downloaded by each walker of an independent fleet.

    Unlike :class:`PageBudgetTracker` (one cache shared by the whole
    fleet), this models ``N`` *independent* crawlers: walker ``w`` is
    charged once per distinct node in ``trajectories[w]`` — exactly what
    ``N`` separate :class:`~repro.graph.api.RestrictedGraphAPI` wrappers
    with caching on would each record, which is how the experiment
    harness runs repetitions.  (Extra pages beyond the trajectory, such
    as NeighborExploration's explored neighbors, are accounted by the
    fleet samplers themselves.)

    Additional per-walker page arrays — e.g. the proposal probes of the
    MH-family kernels, or the two endpoint arrays of a line-graph fleet
    — are passed as *extra* positional arrays (same number of rows) and
    folded into each walker's distinct count.

    All rows have equal length, so each row is sorted in C and its value
    transitions counted — no per-walker Python work.
    """
    trajectories = np.atleast_2d(trajectories)
    if extra:
        trajectories = np.concatenate(
            [trajectories] + [np.atleast_2d(pages) for pages in extra], axis=1
        )
    ordered = np.sort(trajectories, axis=1)
    return (ordered[:, 1:] != ordered[:, :-1]).sum(axis=1) + 1


# ----------------------------------------------------------------------
# batched engine
# ----------------------------------------------------------------------
@dataclass
class BatchedWalkResult:
    """Trajectories of ``N`` independent walkers, post burn-in.

    Attributes
    ----------
    nodes:
        ``(num_walkers, num_steps)`` node indices, one row per walker.
    degrees:
        Degrees of the collected nodes (same shape).
    start_nodes:
        Where each walker started.
    tail_nodes:
        Each walker's position just before the first collected step
        (the start node when ``burn_in == 0``) — needed to reconstruct
        the first traversed edge.
    burn_in:
        Steps discarded per walker before collection.
    charged_calls:
        Distinct pages downloaded across the whole fleet (shared cache).
    """

    nodes: np.ndarray
    degrees: np.ndarray
    start_nodes: np.ndarray
    tail_nodes: np.ndarray
    burn_in: int
    charged_calls: int

    @property
    def num_walkers(self) -> int:
        return int(self.nodes.shape[0])

    @property
    def num_steps(self) -> int:
        return int(self.nodes.shape[1])

    def walk_result(self, walker: int, csr: CSRGraph) -> WalkResult:
        """Convert one walker's trajectory into a reference :class:`WalkResult`."""
        row = self.nodes[walker]
        ids = csr.node_ids
        previous = int(self.tail_nodes[walker])
        edges = []
        for index in row:
            index = int(index)
            edges.append(None if index == previous else (ids[previous], ids[index]))
            previous = index
        return WalkResult(
            nodes=[ids[int(i)] for i in row],
            degrees=[int(d) for d in self.degrees[walker]],
            edges=edges,
            burn_in=self.burn_in,
            start_node=ids[int(self.start_nodes[walker])],
        )


@dataclass
class FleetWalkResult:
    """Full trajectories of ``N`` independent walkers (burn-in included).

    Produced by :meth:`BatchedWalkEngine.run_fleet`, the execution mode
    behind ``run_trials(..., execution="fleet")``: one walker stands for
    one experiment repetition, so — unlike :class:`BatchedWalkResult`,
    whose fleet shares a page cache — every walker keeps its *own*
    distinct-page ledger, mirroring the fresh
    :class:`~repro.graph.api.RestrictedGraphAPI` each repetition gets.

    Attributes
    ----------
    trajectories:
        ``(num_walkers, burn_in + num_steps + 1)`` node indices; column
        0 is the start node, the remaining columns are the positions
        after each transition (burn-in transitions included, because a
        real crawler downloads pages during burn-in too).
    burn_in:
        Transitions discarded before collection starts.
    probed:
        ``(num_walkers, burn_in + num_steps)`` proposal node indices for
        kernels whose accept test reads the proposal's page (``mhrw``,
        ``rcmh`` with ``alpha > 0`` — see
        :attr:`KernelSpec.probes_proposals`), or ``None``.  Rejected
        proposals cost a page download in the reference engine, so the
        per-walker ledgers fold these in.
    kernel:
        The :class:`KernelSpec` that walked this fleet.  Carried on the
        result so classification cannot be handed a mismatched spec
        (the stationary weights would be silently wrong).
    """

    trajectories: np.ndarray
    burn_in: int
    probed: Optional[np.ndarray] = None
    kernel: Optional[KernelSpec] = None

    @property
    def num_walkers(self) -> int:
        return int(self.trajectories.shape[0])

    @property
    def num_steps(self) -> int:
        """Collected (post-burn-in) transitions per walker."""
        return int(self.trajectories.shape[1]) - 1 - self.burn_in

    @property
    def start_nodes(self) -> np.ndarray:
        return self.trajectories[:, 0]

    @property
    def collected(self) -> np.ndarray:
        """``(num_walkers, num_steps)`` positions after the burn-in."""
        return self.trajectories[:, self.burn_in + 1 :]

    @property
    def sources(self) -> np.ndarray:
        """Source endpoint of each collected transition (same shape)."""
        return self.trajectories[:, self.burn_in : -1]

    def charged_calls(self) -> np.ndarray:
        """Per-walker distinct pages downloaded (independent crawlers).

        Includes the proposal probes of the MH-family kernels: a
        rejected proposal's page was still fetched to evaluate the
        acceptance ratio, exactly like the reference kernel's
        ``degree(proposal)`` call.
        """
        if self.probed is None:
            return per_walker_distinct_counts(self.trajectories)
        return per_walker_distinct_counts(self.trajectories, self.probed)

    def prefix(self, num_steps: int) -> "FleetWalkResult":
        """The fleet truncated to its first *num_steps* collected steps.

        The foundation of the prefix-reuse sweep engine: a budget-``b``
        crawl from a given seed *is* the first ``b`` collected steps of
        a longer crawl from the same seed, so every smaller budget point
        of a sweep can be read off one max-budget fleet.  The returned
        result shares the trajectory buffer (a view, not a copy); its
        ledgers (:meth:`charged_calls`) are recomputed over the
        truncated trajectories — proposal probes of rejection steps
        included — and therefore match what a fleet run to exactly
        ``num_steps`` would have charged.
        """
        check_positive_int(num_steps, "num_steps")
        if num_steps > self.num_steps:
            raise ConfigurationError(
                f"prefix of {num_steps} steps exceeds the fleet's "
                f"{self.num_steps} collected steps"
            )
        if num_steps == self.num_steps:
            return self
        return FleetWalkResult(
            trajectories=self.trajectories[:, : self.burn_in + num_steps + 1],
            burn_in=self.burn_in,
            probed=(
                None
                if self.probed is None
                else self.probed[:, : self.burn_in + num_steps]
            ),
            kernel=self.kernel,
        )


class BatchedWalkEngine:
    """Advance ``N`` independent walkers with one numpy step at a time.

    Parameters
    ----------
    csr:
        The frozen graph.
    kernel:
        Any supported kernel — ``"simple"`` (default),
        ``"non_backtracking"``, or one of the EX-* accept/reject
        kernels (``mhrw`` / ``mdrw`` / ``rcmh`` / ``gmd``), given as a
        name, :class:`KernelSpec` or kernel instance.  The accept/reject
        kernels advance with a single vectorized accept mask per step:
        candidate neighbors for all walkers come from one ``indptr``
        gather, the per-walker accept probabilities from
        :func:`kernel_move_probabilities`, and rejected walkers stay in
        place (self-loop semantics).
    budget:
        Optional charged-API-call cap, with the same distinct-page
        semantics as a caching :class:`RestrictedGraphAPI`: the fleet
        shares one page cache, and the engine raises
        :class:`APIBudgetExceededError` mid-walk as soon as the number of
        distinct pages fetched exceeds the budget.
    rng:
        Seed / generator (normalised to a numpy generator).
    engine:
        ``"numpy"`` (default) steps the fleet with one vectorized numpy
        pass per transition; ``"compiled"`` runs the numba-njit twin
        kernels of :mod:`repro.walks.compiled` over chunked pre-drawn
        uniforms.  Both consume the generator identically, so the two
        engines are **bit-identical** from the same seed (the
        differential suite in ``tests/unit/test_compiled_backend.py``
        pins this).  When numba is missing, ``"compiled"`` falls back
        to ``"numpy"`` with a
        :class:`~repro.walks.compiled.CompiledFallbackWarning` — never
        an import error.
    """

    def __init__(
        self,
        csr: CSRGraph,
        kernel: KernelLike = "simple",
        budget: Optional[int] = None,
        rng: RandomSource = None,
        engine: str = "numpy",
    ) -> None:
        self.csr = csr
        self.kernel = resolve_kernel_spec(kernel)
        self.kernel_name = self.kernel.name
        self.budget = budget if budget is None else check_non_negative_int(budget, "budget")
        self._nprng = ensure_numpy_rng(rng)
        self.engine = resolve_engine(engine)

    def run(
        self,
        num_walkers: int,
        num_steps: int,
        burn_in: int = 0,
        start_nodes: Optional[Sequence[int]] = None,
    ) -> BatchedWalkResult:
        """Run the fleet and collect *num_steps* positions per walker."""
        check_positive_int(num_walkers, "num_walkers")
        check_positive_int(num_steps, "num_steps")
        check_non_negative_int(burn_in, "burn_in")
        _check_not_empty(self.csr)
        csr = self.csr
        current = self._draw_starts(num_walkers, start_nodes)
        starts = current.copy()

        tracker = PageBudgetTracker(csr.num_nodes, self.budget)
        total = burn_in + num_steps

        if self.engine == "compiled":
            # The compiled kernels walk the whole fleet first; the page
            # charges are then replayed per step from the trajectory
            # columns in the exact order the numpy loop issues them, so
            # a budget crossing raises at the same step either way.
            trajectories, probes = self._fleet_trajectories(current, total)
            for step in range(total):
                tracker.charge_pages(trajectories[:, step])
                if probes is not None:
                    tracker.charge_pages(probes[:, step])
            tracker.charge_pages(trajectories[:, total])
            nodes = np.ascontiguousarray(trajectories[:, burn_in + 1 :])
            return BatchedWalkResult(
                nodes=nodes,
                degrees=csr.degrees[nodes],
                start_nodes=starts,
                tail_nodes=trajectories[:, burn_in].copy(),
                burn_in=burn_in,
                charged_calls=tracker.charged,
            )

        nodes = np.empty((num_walkers, num_steps), dtype=np.int64)
        tail = starts.copy()
        previous = np.full(num_walkers, -1, dtype=np.int64)

        for step in range(total):
            tracker.charge_pages(current)  # fetch pages of current positions
            nxt, probed = self._advance(current, previous)
            if probed is not None:
                # MH-family accept tests fetched the proposals' pages.
                tracker.charge_pages(probed)
            previous = current
            current = nxt
            if step >= burn_in:
                nodes[:, step - burn_in] = current
            if step == burn_in - 1:
                tail = current.copy()
        # Collected degrees are read off the final pages too.
        tracker.charge_pages(current)

        return BatchedWalkResult(
            nodes=nodes,
            degrees=csr.degrees[nodes],
            start_nodes=starts,
            tail_nodes=tail,
            burn_in=burn_in,
            charged_calls=tracker.charged,
        )

    def run_fleet(
        self,
        num_walkers: int,
        num_steps: int,
        burn_in: int = 0,
        start_nodes: Optional[Sequence[int]] = None,
    ) -> FleetWalkResult:
        """Run ``N`` *independent* walkers and record their full trajectories.

        The execution mode behind ``run_trials(..., execution="fleet")``:
        each walker stands for one experiment repetition, so each keeps
        its own distinct-page ledger (no fleet-shared cache — see
        :meth:`FleetWalkResult.charged_calls`).  When the engine has a
        *budget*, it is enforced **per walker**: the run raises
        :class:`APIBudgetExceededError` when any single walker's crawl
        downloaded more than *budget* distinct pages — the same outcome
        as the budgeted :class:`RestrictedGraphAPI` wrapper each
        sequential repetition runs through, except that the check
        happens after the walk completes (the fleet walks to the end
        before settling the ledgers), not mid-step; size the walk
        accordingly when probing tight budgets.
        """
        check_positive_int(num_walkers, "num_walkers")
        check_positive_int(num_steps, "num_steps")
        check_non_negative_int(burn_in, "burn_in")
        _check_not_empty(self.csr)
        current = self._draw_starts(num_walkers, start_nodes)

        total = burn_in + num_steps
        trajectories, probes = self._fleet_trajectories(current, total)

        result = FleetWalkResult(
            trajectories=trajectories,
            burn_in=burn_in,
            probed=probes,
            kernel=self.kernel,
        )
        if self.budget is not None:
            charges = result.charged_calls()
            if int(charges.max(initial=0)) > self.budget:
                raise APIBudgetExceededError(self.budget, self.budget + 1)
        return result

    # ------------------------------------------------------------------
    def _fleet_trajectories(
        self, current: np.ndarray, total: int
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Walk *total* transitions from *current*; return the full record.

        The single seam both engines share: ``trajectories`` is
        ``(N, total + 1)`` with the start positions in column 0, and
        ``probes`` is the ``(N, total)`` proposal record for probing
        kernels (else ``None``).  The compiled engine consumes the
        generator in chunked pre-drawn blocks that replay the numpy
        loop's per-step draws bit for bit, so both engines return
        identical arrays from the same generator state.
        """
        num_walkers = int(current.shape[0])
        trajectories = np.empty((num_walkers, total + 1), dtype=np.int64)
        trajectories[:, 0] = current
        probes: Optional[np.ndarray] = None
        if self.kernel.probes_proposals:
            probes = np.empty((num_walkers, total), dtype=np.int64)
        if self.engine == "compiled":
            compiled_node_fleet(
                self.csr, self.kernel, self._nprng, current.copy(), trajectories, probes
            )
            return trajectories, probes
        previous = np.full(num_walkers, -1, dtype=np.int64)
        for step in range(total):
            nxt, probed = self._advance(current, previous)
            if probes is not None:
                probes[:, step] = probed
            previous = current
            current = nxt
            trajectories[:, step + 1] = current
        return trajectories, probes

    def _draw_starts(
        self, num_walkers: int, start_nodes: Optional[Sequence[int]]
    ) -> np.ndarray:
        csr = self.csr
        if start_nodes is None:
            current = self._nprng.integers(
                0, csr.num_nodes, size=num_walkers, dtype=np.int64
            )
        else:
            current = np.asarray(start_nodes, dtype=np.int64)
            if current.shape != (num_walkers,):
                raise ConfigurationError(
                    f"start_nodes must have shape ({num_walkers},), got {current.shape}"
                )
            if current.size and (current.min() < 0 or current.max() >= csr.num_nodes):
                raise ConfigurationError("start_nodes contains out-of-range indices")
        # Only starts can be isolated; every later position is a neighbor.
        start_degrees = csr.degrees[current]
        if not start_degrees.all():
            index = int(current[int(np.argmin(start_degrees))])
            raise _isolated_error(index, csr)
        return current.copy()

    def _advance(
        self, current: np.ndarray, previous: np.ndarray
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """One vectorized step; returns ``(next_positions, probed_pages)``.

        *probed_pages* is the proposal array when the kernel's accept
        test fetched the proposals' pages (MH family), else ``None``.
        """
        csr = self.csr
        degrees = csr.degrees[current]
        draws = self._nprng.random(current.size)
        if self.kernel_name == "non_backtracking":
            # Exclude the previous node by a swap-with-last draw: sample
            # an offset over the d−1 allowed slots and, when it lands on
            # the excluded neighbor, take the last slot instead — a
            # bijection onto row∖{previous} that needs no redraw loop
            # (fixed one-draw-per-step consumption, which is what lets
            # the compiled engine pre-draw its uniforms and stay
            # bit-identical).  Dead ends (degree 1) and the first step
            # (previous = −1) fall back to the plain uniform draw, so
            # backtracking stays the only option at a dead end.
            eligible = (previous >= 0) & (degrees > 1)
            span = np.where(eligible, degrees - 1, degrees)
            offsets = (draws * span).astype(np.int64)
            np.minimum(offsets, span - 1, out=offsets)
            rows = csr.indptr[current]
            nxt = csr.indices[rows + offsets].astype(np.int64)
            bump = eligible & (nxt == previous)
            if bump.any():
                nxt[bump] = csr.indices[rows[bump] + degrees[bump] - 1]
            return nxt, None
        offsets = (draws * degrees).astype(np.int64)
        np.minimum(offsets, degrees - 1, out=offsets)
        nxt = csr.indices[csr.indptr[current] + offsets].astype(np.int64)
        if self.kernel_name == "simple":
            return nxt, None
        # Accept/reject baselines: one vectorized accept mask; rejected
        # walkers stay in place (the kernels' self-loop semantics).
        spec = self.kernel
        accept_probabilities = kernel_move_probabilities(
            spec, degrees, csr.degrees[nxt]
        )
        probed = nxt if spec.probes_proposals else None
        if accept_probabilities is None:  # rcmh at alpha=0: always move
            return nxt, probed
        accept = self._nprng.random(current.size) < accept_probabilities
        return np.where(accept, nxt, current), probed


__all__ = [
    "SUPPORTED_CSR_KERNELS",
    "DEGREE_STATIONARY_KERNELS",
    "BASELINE_CSR_KERNELS",
    "KernelSpec",
    "resolve_csr_kernel",
    "resolve_kernel_spec",
    "kernel_move_probabilities",
    "kernel_stationary_weights",
    "exact_randbelow",
    "draw_start_index",
    "csr_walk",
    "charge_distinct_pages",
    "per_walker_distinct_counts",
    "PageBudgetTracker",
    "BatchedWalkResult",
    "FleetWalkResult",
    "BatchedWalkEngine",
]
