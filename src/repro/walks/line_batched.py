"""Vectorized fleets over the *implicit* line graph ``G'`` of a CSR graph.

The EX-* baseline adaptations (paper §5.1) run node-counting random
walks on the line graph ``G' = (H, R)`` of ``G``: every edge of ``G``
is a node of ``G'``, adjacent to the other edges sharing one of its
endpoints.  The reference implementation walks ``G'`` lazily through
:class:`~repro.graph.line_graph.LineGraphAPI`, one Python object per
neighbor — unusable at million-node scale, and materialising ``G'``
explicitly is worse (a ``G`` node of degree ``d`` contributes
``d(d−1)/2`` line edges, which explodes on heavy-tailed graphs).

:class:`BatchedLineWalkEngine` avoids both: a fleet of walkers lives in
*edge space* — the current line node of walker ``w`` is the endpoint
pair ``(u_w, v_w)`` — and every step works directly on the CSR arrays
of ``G``:

* the line degree is arithmetic, ``d'(u,v) = d(u) + d(v) − 2``;
* a uniform line neighbor is drawn in two vectorized stages: choose the
  pivot endpoint with probability proportional to its ``d − 1`` other
  incident edges, then draw a uniform neighbor of the pivot excluding
  the opposite endpoint (a swap-with-last draw over the ``d − 1``
  allowed slots, the same device the non-backtracking kernel uses —
  fixed draw consumption per step, so the compiled engine can pre-draw
  its uniforms and replay bit-identically);
* the kernel's accept test is one vectorized mask over the current and
  proposal line degrees (:func:`~repro.walks.batched.kernel_move_probabilities`),
  with stay-in-place semantics on rejection.

Charged-call accounting matches the reference path: walking to, or
probing, a line node fetches the friend lists of *both its endpoints*
on ``G``, so the per-walker ledgers count distinct ``G`` nodes over the
trajectory endpoint arrays plus — for the MH-family kernels — the
endpoints of every (possibly rejected) proposal.

Like :class:`~repro.walks.batched.BatchedWalkEngine`, every read of
``G`` here is a gather, so the engine runs unchanged over
shared-memory or memory-mapped CSR buffers (:mod:`repro.graph.store`)
without densifying the adjacency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, EmptyGraphError, WalkError
from repro.graph.csr import CSRGraph
from repro.utils.rng import RandomSource, ensure_numpy_rng
from repro.utils.validation import check_non_negative_int, check_positive_int
from repro.walks.batched import (
    KernelLike,
    KernelSpec,
    kernel_move_probabilities,
    per_walker_distinct_counts,
    resolve_kernel_spec,
)
from repro.walks.compiled import compiled_line_fleet, resolve_engine


@dataclass
class LineFleetResult:
    """Full line-graph trajectories of ``N`` independent walkers.

    A line node is an (unordered) edge of ``G``; each walker's position
    at step ``t`` is the endpoint pair ``(src[w, t], dst[w, t])``.

    Attributes
    ----------
    src, dst:
        ``(num_walkers, burn_in + num_steps + 1)`` endpoint index
        arrays; column 0 is the start edge.  The pair order is
        traversal order (the pivot endpoint the walk moved through
        lands in ``src``), which classification treats symmetrically.
    burn_in:
        Transitions discarded before collection starts.
    probed_src, probed_dst:
        ``(num_walkers, burn_in + num_steps)`` endpoints of the
        proposal drawn at each step, recorded only for kernels whose
        accept test fetches the proposal's pages (``mhrw``, ``rcmh``
        with ``alpha > 0``); ``None`` otherwise.  Rejected proposals
        cost page downloads in the reference engine, so the ledgers
        fold these in — and prefixes slice them consistently, keeping
        the rejection steps' accounting intact.
    kernel:
        The :class:`~repro.walks.batched.KernelSpec` that walked this
        fleet.  Carried on the result so classification cannot be
        handed a mismatched spec (the stationary weights would be
        silently wrong).
    """

    src: np.ndarray
    dst: np.ndarray
    burn_in: int
    probed_src: Optional[np.ndarray] = None
    probed_dst: Optional[np.ndarray] = None
    kernel: Optional[KernelSpec] = None

    @property
    def num_walkers(self) -> int:
        return int(self.src.shape[0])

    @property
    def num_steps(self) -> int:
        """Collected (post-burn-in) transitions per walker."""
        return int(self.src.shape[1]) - 1 - self.burn_in

    @property
    def collected_src(self) -> np.ndarray:
        """First endpoints of the collected line nodes (``(N, num_steps)``)."""
        return self.src[:, self.burn_in + 1 :]

    @property
    def collected_dst(self) -> np.ndarray:
        """Second endpoints of the collected line nodes (same shape)."""
        return self.dst[:, self.burn_in + 1 :]

    def charged_calls(self) -> np.ndarray:
        """Per-walker distinct ``G`` pages downloaded (independent crawlers).

        Every visited line node costs the pages of both its endpoints
        (the reference ``LineGraphAPI.neighbors`` reads both friend
        lists); MH-family proposal probes add the proposal endpoints
        even when the proposal was rejected.
        """
        pages = [self.src, self.dst]
        if self.probed_src is not None:
            pages += [self.probed_src, self.probed_dst]
        return per_walker_distinct_counts(*pages)

    def prefix(self, num_steps: int) -> "LineFleetResult":
        """The fleet truncated to its first *num_steps* collected steps.

        The line-graph twin of :meth:`FleetWalkResult.prefix`: budget
        columns of a sweep are read off one max-budget fleet.  Proposal
        probes are truncated alongside the trajectories, so the ledger
        of a prefix is bit-identical to a fresh fleet run to exactly
        ``num_steps`` from the same seed — rejection steps included.
        """
        check_positive_int(num_steps, "num_steps")
        if num_steps > self.num_steps:
            raise ConfigurationError(
                f"prefix of {num_steps} steps exceeds the fleet's "
                f"{self.num_steps} collected steps"
            )
        if num_steps == self.num_steps:
            return self
        keep_nodes = self.burn_in + num_steps + 1
        keep_probes = self.burn_in + num_steps
        return LineFleetResult(
            src=self.src[:, :keep_nodes],
            dst=self.dst[:, :keep_nodes],
            burn_in=self.burn_in,
            probed_src=(
                None if self.probed_src is None else self.probed_src[:, :keep_probes]
            ),
            probed_dst=(
                None if self.probed_dst is None else self.probed_dst[:, :keep_probes]
            ),
            kernel=self.kernel,
        )


class BatchedLineWalkEngine:
    """Advance ``N`` independent line-graph walkers, one numpy step at a time.

    Parameters
    ----------
    csr:
        The frozen *original* graph ``G`` — the line graph is never
        materialised.
    kernel:
        Any supported kernel (name, :class:`KernelSpec`, or kernel
        instance).  For ``mdrw`` / ``gmd`` the spec's ``max_degree`` is
        the maximum degree *of the line graph*
        (:func:`repro.baselines.adaptations.line_graph_max_degree`).
    rng:
        Seed / generator (normalised to a numpy generator).
    engine:
        ``"numpy"`` (default) or ``"compiled"`` — see
        :class:`~repro.walks.batched.BatchedWalkEngine`; the two
        engines consume the generator identically and are bit-identical
        from the same seed, and ``"compiled"`` falls back to
        ``"numpy"`` (typed warning) when numba is absent.
    """

    def __init__(
        self,
        csr: CSRGraph,
        kernel: KernelLike = "simple",
        rng: RandomSource = None,
        engine: str = "numpy",
    ) -> None:
        self.csr = csr
        self.kernel = resolve_kernel_spec(kernel)
        if self.kernel.name == "non_backtracking":
            raise ConfigurationError(
                "the line-graph fleet supports the simple and EX-* "
                "accept/reject kernels; non_backtracking has no baseline"
            )
        self._nprng = ensure_numpy_rng(rng)
        self.engine = resolve_engine(engine)

    def run_fleet(
        self,
        num_walkers: int,
        num_steps: int,
        burn_in: int = 0,
    ) -> LineFleetResult:
        """Run ``N`` independent line walkers; record full trajectories.

        Start edges follow the reference seed rule
        (:meth:`LineGraphAPI.random_node`): a uniform node of ``G``,
        then a uniform incident edge.  Each walker stands for one
        experiment repetition and keeps its own distinct-page ledger
        (:meth:`LineFleetResult.charged_calls`).
        """
        check_positive_int(num_walkers, "num_walkers")
        check_positive_int(num_steps, "num_steps")
        check_non_negative_int(burn_in, "burn_in")
        csr = self.csr
        if csr.num_nodes == 0:
            raise EmptyGraphError("cannot walk on an empty graph")
        if csr.num_edges == 0:
            raise WalkError("the line graph of an edgeless graph has no nodes")
        spec = self.kernel
        rng = self._nprng
        degrees = csr.degrees
        indptr = csr.indptr
        indices = csr.indices

        # Seed edges: uniform node, then uniform incident edge.
        u = rng.integers(0, csr.num_nodes, size=num_walkers, dtype=np.int64)
        if not degrees[u].all():
            index = int(u[int(np.argmin(degrees[u]))])
            raise WalkError(
                f"random line walk seeded at isolated node "
                f"{csr.node_ids[index]!r}; run on the largest connected component"
            )
        offsets = (rng.random(num_walkers) * degrees[u]).astype(np.int64)
        np.minimum(offsets, degrees[u] - 1, out=offsets)
        v = indices[indptr[u] + offsets].astype(np.int64)

        total = burn_in + num_steps
        src = np.empty((num_walkers, total + 1), dtype=np.int64)
        dst = np.empty((num_walkers, total + 1), dtype=np.int64)
        src[:, 0] = u
        dst[:, 0] = v
        probes: Tuple[Optional[np.ndarray], Optional[np.ndarray]] = (None, None)
        if spec.probes_proposals:
            probes = (
                np.empty((num_walkers, total), dtype=np.int64),
                np.empty((num_walkers, total), dtype=np.int64),
            )

        if self.engine == "compiled":
            compiled_line_fleet(
                csr, spec, rng, u.copy(), v.copy(), src, dst, probes[0], probes[1]
            )
        else:
            for step in range(total):
                u, v, proposal = self._advance(u, v)
                if probes[0] is not None:
                    probes[0][:, step] = proposal[0]
                    probes[1][:, step] = proposal[1]
                src[:, step + 1] = u
                dst[:, step + 1] = v

        return LineFleetResult(
            src=src,
            dst=dst,
            burn_in=burn_in,
            probed_src=probes[0],
            probed_dst=probes[1],
            kernel=spec,
        )

    # ------------------------------------------------------------------
    def _advance(
        self, u: np.ndarray, v: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, Tuple[np.ndarray, np.ndarray]]:
        """One vectorized line-graph step for the whole fleet.

        Returns the new endpoint arrays plus the proposal endpoint pair
        (used for ledger probes; equal to the new position on accepted
        steps).
        """
        csr = self.csr
        spec = self.kernel
        rng = self._nprng
        degrees = csr.degrees
        du = degrees[u]
        dv = degrees[v]
        line_degrees = du + dv - 2
        if not line_degrees.all():
            stuck = int(np.argmin(line_degrees))
            raise WalkError(
                f"line walk reached isolated line node "
                f"({csr.node_ids[int(u[stuck])]!r}, "
                f"{csr.node_ids[int(v[stuck])]!r}); "
                "run on the largest connected component"
            )

        # Stage 1 — pick the pivot endpoint: side u holds d(u)−1 of the
        # d(u)+d(v)−2 line neighbors.
        side_draws = (rng.random(u.size) * line_degrees).astype(np.int64)
        np.minimum(side_draws, line_degrees - 1, out=side_draws)
        side_u = side_draws < (du - 1)
        pivot = np.where(side_u, u, v)
        other = np.where(side_u, v, u)

        # Stage 2 — uniform neighbor of the pivot excluding the opposite
        # endpoint, by a swap-with-last draw: sample over the pivot's
        # d−1 allowed slots (pivot degree >= 2 on the chosen side) and
        # bump a draw that lands on the excluded endpoint to the last
        # slot — a bijection onto row∖{other} with exactly one uniform
        # consumed per walker per step (what lets the compiled engine
        # pre-draw its uniforms and replay bit-identically).
        pivot_degrees = degrees[pivot]
        span = pivot_degrees - 1
        offsets = (rng.random(u.size) * span).astype(np.int64)
        np.minimum(offsets, span - 1, out=offsets)
        rows = csr.indptr[pivot]
        w = csr.indices[rows + offsets].astype(np.int64)
        bump = w == other
        if bump.any():
            w[bump] = csr.indices[rows[bump] + pivot_degrees[bump] - 1]

        # Kernel accept test on line degrees; rejected walkers stay.
        accept_probabilities = kernel_move_probabilities(
            spec, line_degrees, degrees[pivot] + degrees[w] - 2
        )
        if accept_probabilities is None:  # simple walk / rcmh at alpha=0
            return pivot, w, (pivot, w)
        accept = rng.random(u.size) < accept_probabilities
        return (
            np.where(accept, pivot, u),
            np.where(accept, w, v),
            (pivot, w),
        )


__all__ = ["LineFleetResult", "BatchedLineWalkEngine"]
