"""Mixing-time machinery (paper §5.1, "Mixing Time").

The paper defines the mixing time parameterised by a total-variation
threshold ``ε`` as

.. math::

   T(ε) = \\max_i \\min\\{ t : \\tfrac12 \\sum_u |π(u) − [π^{(i)} P^t](u)| < ε \\}

where ``P`` is the transition matrix of the simple random walk and
``π`` its stationary distribution (``π(u) = d(u)/2|E|``).  This module
computes

* :func:`exact_mixing_time` — the definition above, by power-iterating
  indicator distributions (optionally over a subset of start nodes for
  large graphs),
* :func:`spectral_mixing_bound` — the classical bound
  ``T(ε) ≤ log(1/(ε·π_min)) / (1−λ₂)`` from the spectral gap, cheap
  enough for the bigger datasets,
* helpers for transition matrices, stationary distributions and
  total-variation distance that the tests and benches reuse.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import EmptyGraphError, MixingTimeError
from repro.graph.labeled_graph import LabeledGraph, Node
from repro.utils.validation import check_positive, check_positive_int


def node_index(graph: LabeledGraph) -> Dict[Node, int]:
    """Deterministic node -> dense index mapping (sorted by repr)."""
    return {node: index for index, node in enumerate(sorted(graph.nodes(), key=repr))}


def transition_matrix(
    graph: LabeledGraph, index: Optional[Dict[Node, int]] = None
) -> np.ndarray:
    """Dense row-stochastic transition matrix of the simple random walk."""
    if graph.num_nodes == 0:
        raise EmptyGraphError("transition matrix of an empty graph is undefined")
    if index is None:
        index = node_index(graph)
    size = len(index)
    matrix = np.zeros((size, size), dtype=float)
    for node, i in index.items():
        neighbors = graph.neighbors(node)
        if not neighbors:
            # Isolated nodes would make the chain non-ergodic; the cleaning
            # step removes them, but be explicit for raw graphs.
            matrix[i, i] = 1.0
            continue
        weight = 1.0 / len(neighbors)
        for neighbor in neighbors:
            matrix[i, index[neighbor]] = weight
    return matrix


def stationary_distribution(
    graph: LabeledGraph, index: Optional[Dict[Node, int]] = None
) -> np.ndarray:
    """Stationary distribution of the simple walk: ``π(u) = d(u) / 2|E|``."""
    if graph.num_edges == 0:
        raise EmptyGraphError("stationary distribution needs at least one edge")
    if index is None:
        index = node_index(graph)
    pi = np.zeros(len(index), dtype=float)
    total = 2.0 * graph.num_edges
    for node, i in index.items():
        pi[i] = graph.degree(node) / total
    return pi


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance ``½ Σ |p − q|`` between two distributions."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(f"distributions have different shapes: {p.shape} vs {q.shape}")
    return 0.5 * float(np.abs(p - q).sum())


def mixing_time_from_node(
    matrix: np.ndarray,
    pi: np.ndarray,
    start_index: int,
    epsilon: float,
    max_steps: int,
) -> int:
    """Steps needed for the walk started at *start_index* to come ε-close to π."""
    size = matrix.shape[0]
    distribution = np.zeros(size, dtype=float)
    distribution[start_index] = 1.0
    for step in range(1, max_steps + 1):
        distribution = distribution @ matrix
        if total_variation_distance(distribution, pi) < epsilon:
            return step
    raise MixingTimeError(
        f"walk from node index {start_index} did not mix within {max_steps} steps "
        f"(epsilon={epsilon})"
    )


def exact_mixing_time(
    graph: LabeledGraph,
    epsilon: float = 1e-3,
    max_steps: int = 10_000,
    start_nodes: Optional[Iterable[Node]] = None,
) -> int:
    """Mixing time ``T(ε)`` by the paper's definition.

    Parameters
    ----------
    graph:
        Must be connected and non-bipartite for the chain to converge;
        the synthetic OSN datasets are (triangles abound).
    epsilon:
        Total-variation threshold; the paper uses ``1e-3``.
    max_steps:
        Safety cap; exceeded raises :class:`MixingTimeError`.
    start_nodes:
        Restrict the maximisation to these start nodes.  The paper's
        definition maximises over *all* nodes, which is O(|V|²) memory /
        O(|V|² · T) time; for graphs beyond a few thousand nodes pass a
        sample of start nodes (the maximum over a sample is a lower bound
        but tracks the true value closely on OSN-like graphs) or use
        :func:`spectral_mixing_bound`.
    """
    check_positive(epsilon, "epsilon")
    check_positive_int(max_steps, "max_steps")
    index = node_index(graph)
    matrix = transition_matrix(graph, index)
    pi = stationary_distribution(graph, index)
    if start_nodes is None:
        start_indices: Sequence[int] = range(len(index))
    else:
        start_indices = [index[node] for node in start_nodes]
    worst = 0
    for start_index in start_indices:
        steps = mixing_time_from_node(matrix, pi, start_index, epsilon, max_steps)
        worst = max(worst, steps)
    return worst


#: Above this many nodes the spectral gap switches from a dense eigensolver
#: to scipy's sparse Lanczos solver (the dense matrix would not fit in RAM).
_DENSE_EIGEN_LIMIT = 1_500


def spectral_gap(graph: LabeledGraph) -> float:
    """Spectral gap ``1 − λ₂`` of the simple random walk.

    Uses the symmetric normalised form ``D^{-1/2} A D^{-1/2}`` so the
    eigenvalues are real; ``λ₂`` is the second-largest eigenvalue
    *modulus* of the walk matrix.  Small graphs use a dense eigensolver;
    larger ones use scipy's sparse Lanczos iteration.
    """
    index = node_index(graph)
    size = len(index)
    if size < 2:
        raise EmptyGraphError("spectral gap needs at least two nodes")
    degrees = np.zeros(size, dtype=float)
    for node, i in index.items():
        degrees[i] = graph.degree(node)
    if np.any(degrees == 0):
        raise MixingTimeError("graph has isolated nodes; spectral gap undefined")
    inv_sqrt = 1.0 / np.sqrt(degrees)

    if size <= _DENSE_EIGEN_LIMIT:
        adjacency = np.zeros((size, size), dtype=float)
        for node, i in index.items():
            for neighbor in graph.neighbors(node):
                adjacency[i, index[neighbor]] = 1.0
        normalized = adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]
        eigenvalues = np.linalg.eigvalsh(normalized)
        moduli = np.sort(np.abs(eigenvalues))[::-1]
    else:
        from scipy.sparse import coo_matrix
        from scipy.sparse.linalg import eigsh

        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for node, i in index.items():
            for neighbor in graph.neighbors(node):
                j = index[neighbor]
                rows.append(i)
                cols.append(j)
                vals.append(inv_sqrt[i] * inv_sqrt[j])
        normalized = coo_matrix((vals, (rows, cols)), shape=(size, size)).tocsr()
        # Largest-magnitude eigenvalues: the Perron value 1 and λ₂.
        eigenvalues = eigsh(normalized, k=2, which="LM", return_eigenvectors=False)
        moduli = np.sort(np.abs(eigenvalues))[::-1]
    # moduli[0] is 1 (the Perron eigenvalue); the gap uses the next one.
    lambda_2 = float(moduli[1])
    return 1.0 - lambda_2


def spectral_mixing_bound(graph: LabeledGraph, epsilon: float = 1e-3) -> int:
    """Upper bound on ``T(ε)`` from the spectral gap.

    ``T(ε) ≤ (1/gap) · log(1 / (ε · π_min))`` — standard for reversible
    chains (Levin, Peres & Wilmer, Theorem 12.3).  Returns the ceiling as
    an integer number of steps.
    """
    check_positive(epsilon, "epsilon")
    gap = spectral_gap(graph)
    if gap <= 0:
        raise MixingTimeError(
            "spectral gap is zero (bipartite or disconnected graph); "
            "the simple walk does not mix"
        )
    pi = stationary_distribution(graph)
    pi_min = float(pi.min())
    bound = np.log(1.0 / (epsilon * pi_min)) / gap
    return int(np.ceil(bound))


def spectral_mixing_bound_csr(csr, epsilon: float = 1e-3) -> int:
    """Spectral mixing bound straight off CSR arrays (no Python loops).

    The array twin of :func:`spectral_mixing_bound`: the normalised
    adjacency ``D^{-1/2} A D^{-1/2}`` is assembled directly from
    ``indptr`` / ``indices`` (one scipy CSR constructor call) so the
    bound is computable at million-node scale, where the dict-based
    assembly would dominate.
    """
    check_positive(epsilon, "epsilon")
    from scipy.sparse import csr_matrix
    from scipy.sparse.linalg import eigsh

    degrees = np.asarray(csr.degrees, dtype=float)
    if csr.num_nodes < 2 or csr.num_edges == 0:
        raise EmptyGraphError("spectral bound needs at least two connected nodes")
    if np.any(degrees == 0):
        raise MixingTimeError("graph has isolated nodes; spectral gap undefined")
    inv_sqrt = 1.0 / np.sqrt(degrees)
    row_of_entry = np.repeat(np.arange(csr.num_nodes), np.asarray(csr.degrees))
    data = inv_sqrt[row_of_entry] * inv_sqrt[csr.indices]
    normalized = csr_matrix(
        (data, csr.indices, csr.indptr), shape=(csr.num_nodes, csr.num_nodes)
    )
    eigenvalues = eigsh(normalized, k=2, which="LM", return_eigenvectors=False)
    lambda_2 = float(np.sort(np.abs(eigenvalues))[::-1][1])
    gap = 1.0 - lambda_2
    if gap <= 0:
        raise MixingTimeError(
            "spectral gap is zero (bipartite or disconnected graph); "
            "the simple walk does not mix"
        )
    pi_min = float(degrees.min()) / (2.0 * csr.num_edges)
    return int(np.ceil(np.log(1.0 / (epsilon * pi_min)) / gap))


def recommended_burn_in(
    graph: LabeledGraph,
    epsilon: float = 1e-3,
    exact_threshold: int = 2_000,
    sample_starts: int = 32,
    rng=None,
) -> int:
    """Burn-in length used by the experiment harness.

    Small graphs (``|V| ≤ exact_threshold``) get the exact mixing time
    maximised over a random subset of start nodes; larger graphs fall
    back to the spectral bound, capped at ``4 · |V|`` steps to keep the
    harness practical (the cap is generous: the paper's measured mixing
    times are far below ``|V|``).

    Accepts both substrates: a small :class:`CSRGraph` is converted to
    the dict graph for the exact computation; a large one uses the
    array-native spectral bound (:func:`spectral_mixing_bound_csr`).
    """
    from repro.graph.csr import CSRGraph
    from repro.utils.rng import ensure_rng

    generator = ensure_rng(rng)
    if isinstance(graph, CSRGraph):
        if graph.num_nodes <= exact_threshold:
            graph = graph.to_labeled_graph()
        else:
            bound = spectral_mixing_bound_csr(graph, epsilon=epsilon)
            return min(bound, 4 * graph.num_nodes)
    if graph.num_nodes <= exact_threshold:
        nodes = list(graph.nodes())
        if len(nodes) > sample_starts:
            nodes = generator.sample(nodes, sample_starts)
        return exact_mixing_time(graph, epsilon=epsilon, start_nodes=nodes)
    bound = spectral_mixing_bound(graph, epsilon=epsilon)
    return min(bound, 4 * graph.num_nodes)


__all__ = [
    "node_index",
    "transition_matrix",
    "stationary_distribution",
    "total_variation_distance",
    "mixing_time_from_node",
    "exact_mixing_time",
    "spectral_gap",
    "spectral_mixing_bound",
    "spectral_mixing_bound_csr",
    "recommended_burn_in",
]
