"""Transition kernels for the random-walk engine.

Each kernel answers two questions:

* ``step`` — given the current node, where does the walk go next?
* ``stationary_weight`` — what is the (unnormalised) stationary
  probability of a node under this kernel?  Estimators use this to
  re-weight samples; only ratios matter, so no normalising constant is
  needed.

Kernels implemented
-------------------
Every kernel has two engines: the object interface below, consumed one
step at a time by the reference :class:`~repro.walks.engine.RandomWalk`,
and a vectorized fleet twin in :mod:`repro.walks.batched` /
:mod:`repro.walks.line_batched` (CSR name in the table), where the
accept/reject kernels advance whole fleets with a single accept mask
per step.  The EX-* baselines run these kernels on the *line graph*;
their fleet execution walks it implicitly
(:class:`~repro.walks.line_batched.BatchedLineWalkEngine`).

=====================================  ========  ==========================================
Kernel                                 CSR name  Stationary weight of node ``u``
=====================================  ========  ==========================================
:class:`SimpleRandomWalkKernel`        simple    ``d(u)``           (paper's own algorithms)
:class:`NonBacktrackingKernel`         non_backtracking ``d(u)``    (Lee et al. [14])
:class:`MetropolisHastingsKernel`      mhrw      ``1``              (EX-MHRW baseline)
:class:`MaximumDegreeKernel`           mdrw      ``1``              (EX-MDRW baseline)
:class:`RejectionControlledMHKernel`   rcmh      ``d(u)**(1-α)``    (EX-RCMH baseline, Li et al.)
:class:`GeneralMaximumDegreeKernel`    gmd       ``max(d(u), δ·d_max)`` (EX-GMD baseline, Li et al.)
=====================================  ========  ==========================================

The maximum degree needed by the MD/GMD kernels is not available through
a neighbor-list API; following common practice the caller supplies an
upper bound (for the experiments we pass the true maximum degree, which
is the most favourable setting for those baselines).  The vectorized
engines receive a kernel as a :class:`~repro.walks.batched.KernelSpec`
(or read the knobs off a kernel instance); exact-RNG replay of each
kernel against this module's reference implementations is available via
:func:`repro.walks.batched.csr_walk`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, Tuple

from repro.exceptions import WalkError
from repro.utils.validation import check_in_range, check_positive

KernelState = Any


class TransitionKernel(ABC):
    """Interface shared by all walk kernels."""

    #: human-readable identifier used in experiment reports
    name: str = "kernel"

    def initial_state(self, provider, start_node, rng) -> KernelState:
        """Build any per-walk state (e.g. the previous node); default: none."""
        return None

    @abstractmethod
    def step(self, provider, current, state: KernelState, rng) -> Tuple[Any, KernelState]:
        """Return ``(next_node, new_state)`` for one transition."""

    @abstractmethod
    def stationary_weight(self, provider, node) -> float:
        """Unnormalised stationary probability of *node* under this kernel."""

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"{type(self).__name__}()"


class SimpleRandomWalkKernel(TransitionKernel):
    """Move to a uniformly random neighbor; stationary distribution ∝ degree.

    This is the kernel the paper's own NeighborSample and
    NeighborExploration algorithms use: at stationarity a node ``u`` is
    occupied with probability ``d(u) / 2|E|`` and an edge is traversed
    with probability ``1 / |E|`` per direction.
    """

    name = "simple"

    def step(self, provider, current, state, rng):
        neighbors = provider.neighbors(current)
        if not neighbors:
            raise WalkError(
                f"random walk reached isolated node {current!r}; "
                "run on the largest connected component"
            )
        return rng.choice(neighbors), state

    def stationary_weight(self, provider, node) -> float:
        return float(provider.degree(node))


class NonBacktrackingKernel(TransitionKernel):
    """Simple random walk that avoids returning to the previous node.

    Lee, Xu and Eun (SIGMETRICS 2012) show the non-backtracking walk has
    the same degree-proportional stationary distribution as the simple
    walk but lower asymptotic variance.  Provided as an optional upgrade
    for the paper's samplers (not used in the headline experiments).
    """

    name = "non_backtracking"

    def initial_state(self, provider, start_node, rng):
        return None  # previous node; None until the first step happens

    def step(self, provider, current, state, rng):
        previous = state
        neighbors = provider.neighbors(current)
        if not neighbors:
            raise WalkError(
                f"random walk reached isolated node {current!r}; "
                "run on the largest connected component"
            )
        if len(neighbors) == 1:
            # Dead-end: backtracking is the only option.
            return neighbors[0], current
        if previous is None or previous not in neighbors:
            return rng.choice(neighbors), current
        choice = rng.choice(neighbors)
        while choice == previous:
            choice = rng.choice(neighbors)
        return choice, current

    def stationary_weight(self, provider, node) -> float:
        return float(provider.degree(node))


class MetropolisHastingsKernel(TransitionKernel):
    """Metropolis–Hastings random walk with a uniform target distribution.

    Propose a uniform neighbor ``v`` and accept with probability
    ``min(1, d(u)/d(v))``; otherwise stay at ``u``.  The stationary
    distribution is uniform over nodes, so sample averages of an
    indicator directly estimate relative counts (the EX-MHRW baseline).
    """

    name = "mhrw"

    def step(self, provider, current, state, rng):
        neighbors = provider.neighbors(current)
        if not neighbors:
            raise WalkError(
                f"random walk reached isolated node {current!r}; "
                "run on the largest connected component"
            )
        proposal = rng.choice(neighbors)
        d_current = len(neighbors)
        d_proposal = provider.degree(proposal)
        accept_probability = min(1.0, d_current / d_proposal)
        if rng.random() < accept_probability:
            return proposal, state
        return current, state

    def stationary_weight(self, provider, node) -> float:
        return 1.0


class MaximumDegreeKernel(TransitionKernel):
    """Maximum-degree random walk: uniform stationary distribution via self-loops.

    From node ``u`` each neighbor is chosen with probability
    ``1/d_max`` and the walk self-loops with the remaining probability
    ``1 - d(u)/d_max``.  Nodes of low degree therefore self-loop a lot,
    which is exactly the pathology the paper observes for EX-MDRW.
    """

    name = "mdrw"

    def __init__(self, max_degree: float) -> None:
        self.max_degree = check_positive(max_degree, "max_degree")

    def step(self, provider, current, state, rng):
        neighbors = provider.neighbors(current)
        if not neighbors:
            raise WalkError(
                f"random walk reached isolated node {current!r}; "
                "run on the largest connected component"
            )
        degree = len(neighbors)
        if degree > self.max_degree:
            raise WalkError(
                f"node {current!r} has degree {degree} > max_degree={self.max_degree}"
            )
        move_probability = degree / self.max_degree
        if rng.random() < move_probability:
            return rng.choice(neighbors), state
        return current, state

    def stationary_weight(self, provider, node) -> float:
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"MaximumDegreeKernel(max_degree={self.max_degree})"


class RejectionControlledMHKernel(TransitionKernel):
    """Rejection-controlled Metropolis–Hastings walk (Li et al., ICDE 2015).

    A knob ``alpha`` in ``[0, 1]`` interpolates between the simple random
    walk (``alpha = 0``) and full Metropolis–Hastings (``alpha = 1``):
    the proposal is accepted with probability ``min(1, (d(u)/d(v))**alpha)``.
    The stationary distribution is proportional to ``d(u)**(1-alpha)``,
    so estimates must be re-weighted accordingly (the EX-RCMH baseline
    does).  The paper sweeps ``alpha ∈ [0, 0.3]`` and reports the best.
    """

    name = "rcmh"

    def __init__(self, alpha: float = 0.2) -> None:
        self.alpha = check_in_range(alpha, "alpha", 0.0, 1.0)

    def step(self, provider, current, state, rng):
        neighbors = provider.neighbors(current)
        if not neighbors:
            raise WalkError(
                f"random walk reached isolated node {current!r}; "
                "run on the largest connected component"
            )
        proposal = rng.choice(neighbors)
        if self.alpha == 0.0:
            return proposal, state
        d_current = len(neighbors)
        d_proposal = provider.degree(proposal)
        accept_probability = min(1.0, (d_current / d_proposal) ** self.alpha)
        if rng.random() < accept_probability:
            return proposal, state
        return current, state

    def stationary_weight(self, provider, node) -> float:
        return float(provider.degree(node)) ** (1.0 - self.alpha)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"RejectionControlledMHKernel(alpha={self.alpha})"


class GeneralMaximumDegreeKernel(TransitionKernel):
    """General maximum-degree random walk (Li et al., ICDE 2015).

    The plain MD walk wastes steps self-looping at low-degree nodes.  The
    general variant caps the virtual degree at ``c(u) = max(d(u), delta ·
    d_max)`` with ``delta ∈ (0, 1]``: from ``u`` each neighbor is chosen
    with probability ``1/c(u)`` and the walk self-loops with probability
    ``1 - d(u)/c(u)``.  The stationary distribution is proportional to
    ``c(u)``, so estimates are re-weighted by ``1/c(u)``.  ``delta = 1``
    recovers MD; ``delta → 0`` recovers the simple random walk.  The
    paper sweeps ``delta ∈ [0.3, 0.7]`` and reports the best.
    """

    name = "gmd"

    def __init__(self, max_degree: float, delta: float = 0.5) -> None:
        self.max_degree = check_positive(max_degree, "max_degree")
        self.delta = check_in_range(delta, "delta", 0.0, 1.0)
        if self.delta == 0.0:
            raise WalkError("delta must be strictly positive for the GMD walk")

    def virtual_degree(self, degree: int) -> float:
        """The capped degree ``c(u) = max(d(u), delta · d_max)``."""
        return max(float(degree), self.delta * self.max_degree)

    def step(self, provider, current, state, rng):
        neighbors = provider.neighbors(current)
        if not neighbors:
            raise WalkError(
                f"random walk reached isolated node {current!r}; "
                "run on the largest connected component"
            )
        degree = len(neighbors)
        capped = self.virtual_degree(degree)
        move_probability = degree / capped
        if rng.random() < move_probability:
            return rng.choice(neighbors), state
        return current, state

    def stationary_weight(self, provider, node) -> float:
        return self.virtual_degree(provider.degree(node))

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"GeneralMaximumDegreeKernel(max_degree={self.max_degree}, "
            f"delta={self.delta})"
        )


__all__ = [
    "TransitionKernel",
    "SimpleRandomWalkKernel",
    "NonBacktrackingKernel",
    "MetropolisHastingsKernel",
    "MaximumDegreeKernel",
    "RejectionControlledMHKernel",
    "GeneralMaximumDegreeKernel",
]
