"""The random-walk engine.

A walk is the combination of

* a *neighbor provider* — anything with ``neighbors(node)``,
  ``degree(node)`` and ``random_node(rng)``; in practice either
  :class:`repro.graph.api.RestrictedGraphAPI` (walks on ``G``) or
  :class:`repro.graph.line_graph.LineGraphAPI` (walks on ``G'``),
* a *transition kernel* — how the next node is chosen from the current
  one (:mod:`repro.walks.kernels`),
* burn-in and sample-collection schedules.

The engine is deliberately agnostic of what the samples are used for;
the samplers in :mod:`repro.core.samplers` and the baselines in
:mod:`repro.baselines` layer their estimator-specific bookkeeping on
top of :class:`WalkResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Hashable, List, Optional, Protocol, Sequence, Tuple, TypeVar

from repro.exceptions import WalkError
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import check_non_negative_int, check_positive_int

NodeT = TypeVar("NodeT", bound=Hashable)


class NeighborProvider(Protocol):
    """Minimal neighbor-list access required by the walk engine."""

    def neighbors(self, node):  # pragma: no cover - protocol definition
        ...

    def degree(self, node):  # pragma: no cover - protocol definition
        ...

    def random_node(self, rng=None):  # pragma: no cover - protocol definition
        ...


@dataclass
class WalkResult(Generic[NodeT]):
    """Everything a sampler might need from one random-walk run.

    Attributes
    ----------
    nodes:
        The node visited at each *collected* step, in order (burn-in
        steps are excluded).
    degrees:
        Degree of each collected node (cached so estimators do not pay
        another API call).
    edges:
        The edge traversed to *arrive* at each collected step, i.e.
        ``edges[i] == (nodes[i-1 or burn-in tail], nodes[i])``.  Entry
        ``i`` is ``None`` when the kernel self-looped at that step.
    burn_in:
        Number of steps discarded before collection started.
    start_node:
        Where the walk started.
    """

    nodes: List[NodeT] = field(default_factory=list)
    degrees: List[int] = field(default_factory=list)
    edges: List[Optional[Tuple[NodeT, NodeT]]] = field(default_factory=list)
    burn_in: int = 0
    start_node: Optional[NodeT] = None

    def __len__(self) -> int:
        return len(self.nodes)

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.degrees) or len(self.nodes) != len(self.edges):
            raise WalkError("nodes, degrees and edges must have equal lengths")

    def distinct_nodes(self) -> set:
        """Distinct nodes among the collected steps."""
        return set(self.nodes)

    def traversed_edges(self) -> List[Tuple[NodeT, NodeT]]:
        """Collected edges, skipping self-loop steps."""
        return [edge for edge in self.edges if edge is not None]


class RandomWalk:
    """Run a transition kernel over a neighbor provider.

    Parameters
    ----------
    provider:
        Graph access (restricted API or line-graph view).
    kernel:
        A :class:`repro.walks.kernels.TransitionKernel`.
    burn_in:
        Number of steps to discard before collecting samples.  The paper
        sets this to (an upper bound on) the mixing time of each dataset;
        see :mod:`repro.walks.mixing`.
    rng:
        Seed or generator for reproducibility.
    """

    def __init__(
        self,
        provider: NeighborProvider,
        kernel,
        burn_in: int = 0,
        rng: RandomSource = None,
    ) -> None:
        self.provider = provider
        self.kernel = kernel
        self.burn_in = check_non_negative_int(burn_in, "burn_in")
        self._rng = ensure_rng(rng)

    def run(
        self,
        num_samples: int,
        start_node=None,
        collect_every: int = 1,
    ) -> WalkResult:
        """Walk until *num_samples* post-burn-in samples are collected.

        Parameters
        ----------
        num_samples:
            Number of collected steps (``k`` in the paper).
        start_node:
            Optional explicit starting node; a random one is drawn from
            the provider otherwise.
        collect_every:
            Collect one sample every this many steps after burn-in.  The
            default of 1 matches the paper's single-walk implementation
            (consecutive, dependent samples); Horvitz–Thompson estimators
            thin afterwards via :mod:`repro.walks.thinning` instead.
        """
        check_non_negative_int(num_samples, "num_samples")
        check_positive_int(collect_every, "collect_every")
        if start_node is None:
            start_node = self.provider.random_node(self._rng)

        current = start_node
        kernel_state = self.kernel.initial_state(self.provider, current, self._rng)

        # Burn-in: advance without recording.
        for _ in range(self.burn_in):
            current, kernel_state = self.kernel.step(
                self.provider, current, kernel_state, self._rng
            )

        result = WalkResult(burn_in=self.burn_in, start_node=start_node)
        collected = 0
        step_in_cycle = 0
        previous = current
        while collected < num_samples:
            nxt, kernel_state = self.kernel.step(
                self.provider, current, kernel_state, self._rng
            )
            step_in_cycle += 1
            previous, current = current, nxt
            if step_in_cycle >= collect_every:
                step_in_cycle = 0
                edge = None if current == previous else (previous, current)
                result.nodes.append(current)
                result.degrees.append(self.provider.degree(current))
                result.edges.append(edge)
                collected += 1
        return result

    def run_independent(
        self,
        num_walks: int,
        samples_per_walk: int = 1,
    ) -> List[WalkResult]:
        """Run *num_walks* independent walks (each with its own burn-in).

        This is the naive implementation sketched in Algorithm 1 of the
        paper: every sample costs a full burn-in.  It exists for the
        single-walk-vs-independent-walks ablation; the production path is
        :meth:`run`.
        """
        check_positive_int(num_walks, "num_walks")
        check_positive_int(samples_per_walk, "samples_per_walk")
        return [self.run(samples_per_walk) for _ in range(num_walks)]


__all__ = ["RandomWalk", "WalkResult", "NeighborProvider"]
