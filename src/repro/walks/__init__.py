"""Random-walk engines, transition kernels, mixing-time and thinning utilities."""

from repro.walks.engine import RandomWalk, WalkResult, NeighborProvider
from repro.walks.batched import (
    BatchedWalkEngine,
    BatchedWalkResult,
    FleetWalkResult,
    KernelSpec,
    PageBudgetTracker,
    BASELINE_CSR_KERNELS,
    SUPPORTED_CSR_KERNELS,
    charge_distinct_pages,
    csr_walk,
    draw_start_index,
    kernel_move_probabilities,
    kernel_stationary_weights,
    resolve_csr_kernel,
    resolve_kernel_spec,
)
from repro.walks.line_batched import BatchedLineWalkEngine, LineFleetResult
from repro.walks.kernels import (
    TransitionKernel,
    SimpleRandomWalkKernel,
    NonBacktrackingKernel,
    MetropolisHastingsKernel,
    MaximumDegreeKernel,
    RejectionControlledMHKernel,
    GeneralMaximumDegreeKernel,
)
from repro.walks.mixing import (
    exact_mixing_time,
    spectral_mixing_bound,
    total_variation_distance,
    transition_matrix,
    stationary_distribution,
)
from repro.walks.thinning import thin_indices, thinning_interval

__all__ = [
    "RandomWalk",
    "WalkResult",
    "NeighborProvider",
    "BatchedWalkEngine",
    "BatchedWalkResult",
    "FleetWalkResult",
    "BatchedLineWalkEngine",
    "LineFleetResult",
    "KernelSpec",
    "PageBudgetTracker",
    "BASELINE_CSR_KERNELS",
    "SUPPORTED_CSR_KERNELS",
    "charge_distinct_pages",
    "csr_walk",
    "draw_start_index",
    "kernel_move_probabilities",
    "kernel_stationary_weights",
    "resolve_csr_kernel",
    "resolve_kernel_spec",
    "TransitionKernel",
    "SimpleRandomWalkKernel",
    "NonBacktrackingKernel",
    "MetropolisHastingsKernel",
    "MaximumDegreeKernel",
    "RejectionControlledMHKernel",
    "GeneralMaximumDegreeKernel",
    "exact_mixing_time",
    "spectral_mixing_bound",
    "total_variation_distance",
    "transition_matrix",
    "stationary_distribution",
    "thin_indices",
    "thinning_interval",
]
