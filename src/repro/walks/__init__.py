"""Random-walk engines, transition kernels, mixing-time and thinning utilities."""

from repro.walks.engine import RandomWalk, WalkResult, NeighborProvider
from repro.walks.batched import (
    BatchedWalkEngine,
    BatchedWalkResult,
    PageBudgetTracker,
    SUPPORTED_CSR_KERNELS,
    charge_distinct_pages,
    csr_walk,
    draw_start_index,
    resolve_csr_kernel,
)
from repro.walks.kernels import (
    TransitionKernel,
    SimpleRandomWalkKernel,
    NonBacktrackingKernel,
    MetropolisHastingsKernel,
    MaximumDegreeKernel,
    RejectionControlledMHKernel,
    GeneralMaximumDegreeKernel,
)
from repro.walks.mixing import (
    exact_mixing_time,
    spectral_mixing_bound,
    total_variation_distance,
    transition_matrix,
    stationary_distribution,
)
from repro.walks.thinning import thin_indices, thinning_interval

__all__ = [
    "RandomWalk",
    "WalkResult",
    "NeighborProvider",
    "BatchedWalkEngine",
    "BatchedWalkResult",
    "PageBudgetTracker",
    "SUPPORTED_CSR_KERNELS",
    "charge_distinct_pages",
    "csr_walk",
    "draw_start_index",
    "resolve_csr_kernel",
    "TransitionKernel",
    "SimpleRandomWalkKernel",
    "NonBacktrackingKernel",
    "MetropolisHastingsKernel",
    "MaximumDegreeKernel",
    "RejectionControlledMHKernel",
    "GeneralMaximumDegreeKernel",
    "exact_mixing_time",
    "spectral_mixing_bound",
    "total_variation_distance",
    "transition_matrix",
    "stationary_distribution",
    "thin_indices",
    "thinning_interval",
]
