"""High-level, one-call API for estimating target-edge counts.

Most users only need :func:`estimate_target_edge_count`:

>>> from repro import estimate_target_edge_count
>>> result = estimate_target_edge_count(
...     graph, t1="hong_kong", t2="spain",
...     algorithm="NeighborExploration-HH",
...     budget_fraction=0.05, seed=7,
... )
>>> result.estimate    # doctest: +SKIP
1234.5

The function wires together the restricted API, the burn-in choice, the
sampling process and the estimator, using the same defaults as the
paper's experiments.  The registry :data:`ALGORITHMS` maps the Table 2
abbreviations of the paper's five proposed configurations to runnable
specs; the EX-* baselines live in :mod:`repro.baselines` and are merged
into the experiment harness's registry
(:mod:`repro.experiments.algorithms`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.exceptions import ConfigurationError
from repro.graph.api import RestrictedGraphAPI
from repro.graph.labeled_graph import Label, LabeledGraph, validate_target_labels
from repro.utils.rng import RandomSource
from repro.utils.validation import check_fraction, check_non_negative_int, check_positive_int
from repro.walks.mixing import recommended_burn_in

from repro.core.estimators import (
    EdgeHansenHurwitzEstimator,
    EdgeHorvitzThompsonEstimator,
    EstimateResult,
    NodeHansenHurwitzEstimator,
    NodeHorvitzThompsonEstimator,
    NodeReweightedEstimator,
)
from repro.core.samplers import NeighborExplorationSampler, NeighborSampleSampler
from repro.core.samplers.csr_backend import BACKENDS, EXECUTIONS, validate_backend


@dataclass(frozen=True)
class AlgorithmSpec:
    """A runnable (sampling process, estimator) pair.

    Attributes
    ----------
    name:
        Table 2 abbreviation (e.g. ``"NeighborSample-HH"``).
    sampler:
        ``"edge"`` for NeighborSample, ``"node"`` for NeighborExploration.
    run:
        ``run(api, t1, t2, k, burn_in, rng, backend="python") ->
        EstimateResult``.  For the proposed algorithms this is a
        :class:`ProposedRunner`, which also carries the sampler kind
        and estimator constructor the fleet execution path reads off it
        (``estimate_batch`` over whole trial batches instead of one
        trial at a time).
    """

    name: str
    sampler: str
    run: Callable[..., EstimateResult]


@dataclass(frozen=True)
class ProposedRunner:
    """Picklable runner for one proposed (sampler, estimator) pairing.

    A plain value object instead of a closure so experiment suites can
    cross process boundaries (``n_jobs > 1`` ships the suite to the
    workers) and so the fleet execution path can read the sampling
    process and estimator constructor straight off the runner — any
    ``ProposedRunner``, registry or custom, vectorizes with its own
    configuration.
    """

    sampler: str
    estimator_factory: Callable[[], object]

    def __call__(self, api, t1, t2, k, burn_in, rng, backend: str = "python") -> EstimateResult:
        sampler_cls = NeighborSampleSampler if self.sampler == "edge" else NeighborExplorationSampler
        sampler = sampler_cls(api, t1, t2, burn_in=burn_in, rng=rng, backend=backend)
        return self.estimator_factory().estimate(sampler.sample(k))


def _run_neighbor_sample(estimator_factory):
    return ProposedRunner(sampler="edge", estimator_factory=estimator_factory)


def _run_neighbor_exploration(estimator_factory):
    return ProposedRunner(sampler="node", estimator_factory=estimator_factory)


#: The paper's five proposed algorithm configurations (Table 2, upper half).
ALGORITHMS: Dict[str, AlgorithmSpec] = {
    "NeighborSample-HH": AlgorithmSpec(
        name="NeighborSample-HH",
        sampler="edge",
        run=_run_neighbor_sample(EdgeHansenHurwitzEstimator),
    ),
    "NeighborSample-HT": AlgorithmSpec(
        name="NeighborSample-HT",
        sampler="edge",
        run=_run_neighbor_sample(EdgeHorvitzThompsonEstimator),
    ),
    "NeighborExploration-HH": AlgorithmSpec(
        name="NeighborExploration-HH",
        sampler="node",
        run=_run_neighbor_exploration(NodeHansenHurwitzEstimator),
    ),
    "NeighborExploration-HT": AlgorithmSpec(
        name="NeighborExploration-HT",
        sampler="node",
        run=_run_neighbor_exploration(NodeHorvitzThompsonEstimator),
    ),
    "NeighborExploration-RW": AlgorithmSpec(
        name="NeighborExploration-RW",
        sampler="node",
        run=_run_neighbor_exploration(NodeReweightedEstimator),
    ),
}


def available_algorithms() -> List[str]:
    """Names of the paper's proposed algorithms, in Table 2 order."""
    return list(ALGORITHMS)


def resolve_sample_size(
    num_nodes: int,
    sample_size: Optional[int] = None,
    budget_fraction: Optional[float] = None,
) -> int:
    """Translate the paper's "x% of |V| API calls" budget into ``k``.

    Exactly one of *sample_size* and *budget_fraction* must be given;
    the default when both are ``None`` is 5% of ``|V|`` (the largest
    budget used in the paper's tables).
    """
    if sample_size is not None and budget_fraction is not None:
        raise ConfigurationError("pass either sample_size or budget_fraction, not both")
    if sample_size is not None:
        return check_positive_int(sample_size, "sample_size")
    fraction = 0.05 if budget_fraction is None else check_fraction(budget_fraction, "budget_fraction")
    return max(1, math.ceil(fraction * num_nodes))


def estimate_target_edge_count(
    graph: Union[LabeledGraph, RestrictedGraphAPI],
    t1: Label,
    t2: Label,
    algorithm: str = "NeighborExploration-HH",
    sample_size: Optional[int] = None,
    budget_fraction: Optional[float] = None,
    burn_in: Optional[int] = None,
    seed: RandomSource = None,
    backend: str = "python",
) -> EstimateResult:
    """Estimate the number of edges whose endpoints carry ``t1`` and ``t2``.

    Parameters
    ----------
    graph:
        Either a full :class:`LabeledGraph` (a restricted API is wrapped
        around it automatically) or an existing
        :class:`RestrictedGraphAPI` — e.g. one with an API budget.
    t1, t2:
        The target labels (paper §3).
    algorithm:
        One of :func:`available_algorithms`.  The paper's guidance:
        NeighborExploration-HH when target edges are rare,
        NeighborSample-HH/HT when they are abundant (§5.3).
    sample_size / budget_fraction:
        Either an explicit ``k`` or a fraction of ``|V|`` (the paper
        sweeps 0.5%–5%).  Default: 5% of ``|V|``.
    burn_in:
        Walk burn-in; computed from the graph's mixing time when omitted
        (only possible when a full graph was passed).
    seed:
        Seed or generator for reproducibility.
    backend:
        ``"python"`` (default) runs the dict-based reference walk engine
        through the restricted API.  ``"csr"`` freezes the graph into
        numpy CSR arrays and runs the vectorized backend — typically an
        order of magnitude faster, with identical charged-API-call
        accounting and a distributionally equivalent sampling law (the
        equivalence test suite enforces this).  ``"compiled"`` behaves
        exactly like ``"csr"`` on this scalar path (the numba kernels
        accelerate fleet execution; see ``run_trials``).  Prefer
        ``"csr"`` for large graphs and repeated trials; prefer
        ``"python"`` when auditing API-call traces or using a
        non-vectorized kernel.

    Returns
    -------
    EstimateResult
        The estimate plus bookkeeping (sample size, API calls, details).
    """
    validate_backend(backend)
    if algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; available: {', '.join(ALGORITHMS)}"
        )
    spec = ALGORITHMS[algorithm]

    if isinstance(graph, RestrictedGraphAPI):
        api = graph
        underlying: Optional[LabeledGraph] = None
    elif isinstance(graph, LabeledGraph):
        validate_target_labels(graph, t1, t2)
        api = RestrictedGraphAPI(graph)
        underlying = graph
    else:
        raise ConfigurationError(
            "graph must be a LabeledGraph or RestrictedGraphAPI, "
            f"got {type(graph).__name__}"
        )

    if burn_in is None:
        if underlying is None:
            raise ConfigurationError(
                "burn_in must be given explicitly when estimating through a "
                "RestrictedGraphAPI (the mixing time cannot be computed without "
                "full access)"
            )
        burn_in = recommended_burn_in(underlying, rng=seed)
    else:
        burn_in = check_non_negative_int(burn_in, "burn_in")

    k = resolve_sample_size(api.num_nodes, sample_size, budget_fraction)
    return spec.run(api, t1, t2, k, burn_in, seed, backend=backend)


__all__ = [
    "AlgorithmSpec",
    "BACKENDS",
    "EXECUTIONS",
    "ALGORITHMS",
    "available_algorithms",
    "resolve_sample_size",
    "estimate_target_edge_count",
]
