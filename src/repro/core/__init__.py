"""The paper's contribution: samplers, estimators, bounds and the high-level API."""

from repro.core.samplers import (
    EdgeSample,
    EdgeSampleSet,
    NodeSample,
    NodeSampleSet,
    NeighborSampleSampler,
    NeighborExplorationSampler,
)
from repro.core.estimators import (
    EstimateResult,
    EdgeHansenHurwitzEstimator,
    EdgeHorvitzThompsonEstimator,
    NodeHansenHurwitzEstimator,
    NodeHorvitzThompsonEstimator,
    NodeReweightedEstimator,
)
from repro.core.bounds import (
    SampleSizeBounds,
    bound_neighbor_sample_hh,
    bound_neighbor_sample_ht,
    bound_neighbor_exploration_hh,
    bound_neighbor_exploration_ht,
    bound_neighbor_exploration_rw,
    compute_all_bounds,
)
from repro.core.pipeline import (
    ALGORITHMS,
    BACKENDS,
    EXECUTIONS,
    AlgorithmSpec,
    estimate_target_edge_count,
    available_algorithms,
)
from repro.core.selector import (
    SelectionReport,
    estimate_with_adaptive_selection,
    recommend_algorithm,
)

__all__ = [
    "EdgeSample",
    "EdgeSampleSet",
    "NodeSample",
    "NodeSampleSet",
    "NeighborSampleSampler",
    "NeighborExplorationSampler",
    "EstimateResult",
    "EdgeHansenHurwitzEstimator",
    "EdgeHorvitzThompsonEstimator",
    "NodeHansenHurwitzEstimator",
    "NodeHorvitzThompsonEstimator",
    "NodeReweightedEstimator",
    "SampleSizeBounds",
    "bound_neighbor_sample_hh",
    "bound_neighbor_sample_ht",
    "bound_neighbor_exploration_hh",
    "bound_neighbor_exploration_ht",
    "bound_neighbor_exploration_rw",
    "compute_all_bounds",
    "ALGORITHMS",
    "BACKENDS",
    "EXECUTIONS",
    "AlgorithmSpec",
    "estimate_target_edge_count",
    "available_algorithms",
    "SelectionReport",
    "estimate_with_adaptive_selection",
    "recommend_algorithm",
]
