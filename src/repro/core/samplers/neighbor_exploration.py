"""NeighborExploration — the paper's Algorithm 2 (node sampling + exploration).

At each of ``k`` iterations the process samples a user ``u`` via a
simple random walk.  If ``u`` carries one of the target labels, all of
``u``'s neighbors are explored and ``T(u)`` — the number of target
edges incident to ``u`` — is recorded.  Exploring neighbors of labeled
nodes boosts the probability of touching target edges, which is why the
estimators built on this process dominate when target edges are rare
(paper §5.3).

The efficient implementation mirrors §4.2.2: a single walk with a
burn-in, exploring at each of the last ``k`` steps.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import ConfigurationError
from repro.graph.api import RestrictedGraphAPI
from repro.graph.labeled_graph import Label, Node
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import check_non_negative_int, check_positive_int
from repro.walks.engine import RandomWalk
from repro.walks.kernels import SimpleRandomWalkKernel, TransitionKernel

from repro.core.samplers.base import NodeSample, NodeSampleSet
from repro.core.samplers.csr_backend import (
    explore_nodes_csr,
    run_csr_sampler,
    validate_backend_and_kernel,
)


class NeighborExplorationSampler:
    """Sample ``k`` nodes (and explore labeled ones) via random walk.

    Parameters
    ----------
    api:
        Restricted neighbor-list access to the graph.
    t1, t2:
        The target labels.
    burn_in:
        Steps discarded before sampling starts.
    kernel:
        Walk kernel, simple random walk by default (as in the paper).
    rng:
        Seed or generator.
    backend:
        ``"python"`` (default) for the dict-based reference engine,
        ``"csr"`` for the vectorized numpy backend (same charged-call
        accounting, distributionally equivalent samples; simple and
        non-backtracking kernels only).  ``"compiled"`` behaves exactly
        like ``"csr"`` on this scalar path (the numba kernels
        accelerate fleet execution only).
    exact_rng:
        With ``backend="csr"``, reproduce the reference engine's random
        stream bit for bit (same seed, same samples).
    """

    def __init__(
        self,
        api: RestrictedGraphAPI,
        t1: Label,
        t2: Label,
        burn_in: int = 0,
        kernel: Optional[TransitionKernel] = None,
        rng: RandomSource = None,
        backend: str = "python",
        exact_rng: bool = False,
    ) -> None:
        self.api = api
        self.t1 = t1
        self.t2 = t2
        self.burn_in = check_non_negative_int(burn_in, "burn_in")
        self.kernel = kernel if kernel is not None else SimpleRandomWalkKernel()
        self.backend = validate_backend_and_kernel(backend, self.kernel)
        self.exact_rng = exact_rng
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    def sample(
        self,
        k: int,
        single_walk: bool = True,
        start_node: Optional[Node] = None,
    ) -> NodeSampleSet:
        """Collect ``k`` node samples (Algorithm 2).

        ``single_walk=False`` pays a full burn-in per sample, producing
        independent samples (ablation only).
        """
        check_positive_int(k, "k")
        if self.backend in ("csr", "compiled"):
            # Scalar single-walk sampling has no fleet loop to compile;
            # the compiled backend behaves exactly like csr here.
            if not single_walk:
                raise ConfigurationError(
                    "the csr backend implements the single-walk path only; "
                    "use backend='python' for the independent-walks ablation"
                )
            return self._sample_csr(k, start_node)
        if single_walk:
            walk = RandomWalk(self.api, self.kernel, burn_in=self.burn_in, rng=self._rng)
            result = walk.run(k, start_node=start_node)
            nodes = list(result.nodes)
        else:
            nodes = []
            for _ in range(k):
                walk = RandomWalk(
                    self.api, self.kernel, burn_in=self.burn_in, rng=self._rng
                )
                nodes.append(walk.run(1, start_node=start_node).nodes[0])

        sample_set = NodeSampleSet(
            num_edges=self.api.num_edges,
            num_nodes=self.api.num_nodes,
            target_labels=(self.t1, self.t2),
        )
        for index, node in enumerate(nodes):
            sample_set.samples.append(self._explore(node, index))
        sample_set.api_calls_used = self.api.api_calls
        return sample_set

    def _sample_csr(self, k: int, start_node: Optional[Node]) -> NodeSampleSet:
        return run_csr_sampler(
            self.api,
            explore_nodes_csr,
            self.t1,
            self.t2,
            k,
            burn_in=self.burn_in,
            kernel=self.kernel,
            rng=self._rng,
            start_node=start_node,
            exact_rng=self.exact_rng,
        )

    # ------------------------------------------------------------------
    def _explore(self, node: Node, step_index: int) -> NodeSample:
        """Build the :class:`NodeSample` for one visited node.

        Only nodes carrying a target label have their neighborhood
        explored (line 4 of Algorithm 2); for the rest we record the
        degree (already known from the walk step) and ``T(u) = 0``.
        """
        labels = self.api.labels_of(node)
        neighbors = self.api.neighbors(node)
        degree = len(neighbors)
        has_t1 = self.t1 in labels
        has_t2 = self.t2 in labels
        if not (has_t1 or has_t2):
            return NodeSample(
                node=node,
                degree=degree,
                has_target_label=False,
                incident_target_edges=0,
                step_index=step_index,
            )
        incident = 0
        for neighbor in neighbors:
            neighbor_labels = self.api.labels_of(neighbor)
            if has_t1 and self.t2 in neighbor_labels:
                incident += 1
            elif has_t2 and self.t1 in neighbor_labels:
                incident += 1
        return NodeSample(
            node=node,
            degree=degree,
            has_target_label=True,
            incident_target_edges=incident,
            step_index=step_index,
        )


__all__ = ["NeighborExplorationSampler"]
