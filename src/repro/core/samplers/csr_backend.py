"""CSR-array implementations of the paper's two sampling processes.

These functions mirror :class:`NeighborSampleSampler` and
:class:`NeighborExplorationSampler` over a frozen
:class:`~repro.graph.csr.CSRGraph` instead of the dict-based
:class:`RestrictedGraphAPI`.  They produce the very same
:class:`EdgeSampleSet` / :class:`NodeSampleSet` containers, so every
estimator downstream is backend-agnostic.

Fidelity guarantees:

* ``exact_rng=True`` reproduces the reference sampler **bit for bit**:
  same seed, same trajectory, same samples, same charged API calls.
* ``exact_rng=False`` (default) uses the fast numpy-uniform walk; it has
  the same per-step transition distribution, so estimates agree in
  distribution (enforced by the Kolmogorov–Smirnov equivalence suite).
* Charged API calls are counted with the reference distinct-page
  semantics: one charge per distinct node whose neighbor-list page the
  process downloads (walk positions, plus — for NeighborExploration —
  the explored neighbors of labeled sampled nodes).  A *budget* makes
  the functions raise :class:`APIBudgetExceededError` exactly when the
  reference crawler would have run out mid-crawl.  Through
  :func:`run_csr_sampler` the accounting also persists across repeated
  calls on one wrapper (previously downloaded pages stay free), and a
  non-caching wrapper is rejected — ``cache=False`` charges every
  retrieval, which the distinct-page model cannot reproduce.  Only the
  aggregate count is reproduced: the per-node call breakdown
  (:attr:`APICallCounter.per_node`) is not tracked on this path.

Kernel support: every kernel of :mod:`repro.walks.kernels` is accepted
— the degree-stationary walks the proposed algorithms use *and* the
EX-* accept/reject kernels (``mhrw`` / ``mdrw`` / ``rcmh`` / ``gmd``),
which :class:`~repro.walks.batched.BatchedWalkEngine` applies as one
vectorized accept mask per step.  When a fleet walks a
non-degree-stationary kernel, the returned batches carry per-sample
stationary ``weights`` so re-weighted estimators can
importance-correct; the MH-family proposal probes are folded into the
per-trial ledgers.  (The EX-* baselines themselves walk the *line
graph* — their fleet path lives in :mod:`repro.baselines.fleet` on top
of :class:`~repro.walks.line_batched.BatchedLineWalkEngine`.)

The fleet classification paths touch the graph only through gathers
(label masks indexed by trajectories, ``gather_neighbors`` for the
exploration ledgers) and the incident-count table — whose underlying
whole-adjacency pass dispatches to the chunked-gather fallback on
memory-mapped graphs (:meth:`CSRGraph.neighbor_mask_counts`) — so they
run unchanged over shm/mmap-backed CSR buffers
(:mod:`repro.graph.store`).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.exceptions import APIBudgetExceededError, ConfigurationError, WalkError
from repro.graph.csr import CSRGraph
from repro.graph.labeled_graph import Label, Node
from repro.utils.rng import RandomSource, ensure_numpy_rng, ensure_rng
from repro.utils.validation import check_non_negative_int, check_positive_int
from repro.walks.batched import (
    BatchedWalkEngine,
    DEGREE_STATIONARY_KERNELS,
    KernelLike,
    charge_distinct_pages,
    csr_walk,
    draw_start_index,
    kernel_stationary_weights,
    resolve_kernel_spec,
)

from repro.core.samplers.base import (
    EdgeSample,
    EdgeSampleBatch,
    EdgeSampleSet,
    NodeSample,
    NodeSampleBatch,
    NodeSampleSet,
)
#: Walk-backend choices, shared by the samplers, the pipeline, the
#: experiment config and the CLI.  ``"compiled"`` is the CSR data plane
#: driven by the numba-njit fleet kernels of
#: :mod:`repro.walks.compiled` — bit-identical to ``"csr"`` from the
#: same seed, and falling back to it (typed warning) when numba is
#: absent; scalar walk paths behave exactly as ``"csr"``.
BACKENDS: Tuple[str, ...] = ("python", "csr", "compiled")

#: Trial-execution choices for the experiment harness: one repetition at
#: a time through a fresh API wrapper, or all repetitions of a cell as
#: one vectorized walker fleet.
EXECUTIONS: Tuple[str, ...] = ("sequential", "fleet")

#: Walk-reuse choices for the sweep harness: fresh walks per cell, or
#: one max-budget fleet whose prefixes serve every smaller budget point
#: (and whose trajectories serve every target pair of a frequency
#: sweep) — O(max budget) walking instead of O(Σ budgets).
REUSES: Tuple[str, ...] = ("none", "prefix")


def validate_backend(backend: str) -> str:
    """Return *backend* or raise the shared unknown-backend error."""
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; available: {', '.join(BACKENDS)}"
        )
    return backend


def validate_execution(execution: str) -> str:
    """Return *execution* or raise the shared unknown-execution error."""
    if execution not in EXECUTIONS:
        raise ConfigurationError(
            f"unknown execution {execution!r}; available: {', '.join(EXECUTIONS)}"
        )
    return execution


def validate_reuse(reuse: str) -> str:
    """Return *reuse* or raise the shared unknown-reuse error."""
    if reuse not in REUSES:
        raise ConfigurationError(
            f"unknown reuse {reuse!r}; available: {', '.join(REUSES)}"
        )
    return reuse


def validate_backend_and_kernel(backend: str, kernel) -> str:
    """Backend validation plus, for the CSR tiers, an eager kernel check.

    Shared by both sampler constructors so an unknown or
    under-parameterized kernel (e.g. a bare ``"mdrw"`` name without its
    ``max_degree``) fails at construction time, not mid-sample.
    """
    if validate_backend(backend) != "python":
        resolve_kernel_spec(kernel)
    return backend


def fleet_engine(backend: str) -> str:
    """The batched-engine name a validated *backend* selects.

    ``"compiled"`` drives the fleets with the numba kernels (numpy
    fallback when numba is missing); every other backend uses the
    vectorized numpy engine.
    """
    return "compiled" if backend == "compiled" else "numpy"


def _run_walk(
    csr: CSRGraph,
    total_steps: int,
    start_node: Optional[Node],
    rng: RandomSource,
    kernel_name,
    exact_rng: bool,
) -> Tuple[np.ndarray, np.ndarray]:
    """Walk ``total_steps`` steps; return ``(positions, downloaded_pages)``.

    *positions* is the start plus every position (length + 1);
    *downloaded_pages* lists the pages the reference crawler fetches,
    in fetch order — the positions themselves plus, for MH-family
    kernels, each step's probed proposal interleaved right after the
    position it was proposed from (``degree(proposal)`` fires between
    consecutive ``neighbors(current)`` calls), so budget-crossing
    accounting stays faithful even for rejected proposals.
    """
    # Normalise the rng up front so the start draw and the walk consume
    # one generator (draw_start_index mirrors RestrictedGraphAPI.random_node
    # in exact mode).
    generator = ensure_rng(rng) if exact_rng else ensure_numpy_rng(rng)
    if start_node is None:
        start = draw_start_index(csr, generator, exact_rng=exact_rng)
    else:
        start = csr.index_of(start_node)
    path, probes = csr_walk(
        csr, total_steps, start, generator, kernel_name,
        exact_rng=exact_rng, return_probes=True,
    )
    full = np.concatenate(([start], path))
    if probes is None:
        return full, full
    pages = np.empty(full.size + probes.size, dtype=np.int64)
    pages[0::2] = full
    pages[1::2] = probes
    return full, pages


def _charge_pages(
    pages: np.ndarray,
    budget: Optional[int],
    page_filter: Optional[np.ndarray],
) -> int:
    """Count the chargeable pages in *pages* and update *page_filter*.

    *page_filter* is the caller's "already downloaded" mask (one bool
    per CSR index); pages present in it are free, mirroring the
    reference wrapper's cache.  Delegates to
    :func:`charge_distinct_pages` for the crossing semantics (error
    reports ``budget + 1``; pages fetched before the crossing stay
    marked).
    """
    if budget is not None:
        check_non_negative_int(budget, "budget")
    if page_filter is None:
        # Standalone use: nothing was downloaded before this crawl.
        page_filter = np.zeros(int(pages.max()) + 1, dtype=bool)
    return charge_distinct_pages(pages, page_filter, budget)


def sample_edges_csr(
    csr: CSRGraph,
    t1: Label,
    t2: Label,
    k: int,
    burn_in: int = 0,
    rng: RandomSource = None,
    kernel: KernelLike = "simple",
    start_node: Optional[Node] = None,
    budget: Optional[int] = None,
    exact_rng: bool = False,
    known_num_nodes: Optional[int] = None,
    known_num_edges: Optional[int] = None,
    page_filter: Optional[np.ndarray] = None,
) -> EdgeSampleSet:
    """NeighborSample (Algorithm 1, single-walk variant) on CSR arrays.

    Returns the same :class:`EdgeSampleSet` the reference sampler would:
    the edges traversed during the last ``k`` of ``burn_in + k`` steps,
    each classified as target / non-target via the label masks.
    *page_filter* marks pages already downloaded (free revisits); it is
    updated in place.  Charged-call parity holds for every kernel: an
    MH-family walk's probed proposals are charged in reference fetch
    order, rejected ones included.
    """
    check_positive_int(k, "k")
    check_non_negative_int(burn_in, "burn_in")
    spec = resolve_kernel_spec(kernel)
    full, pages = _run_walk(csr, burn_in + k, start_node, rng, spec, exact_rng)

    sources = full[burn_in : burn_in + k]
    dests = full[burn_in + 1 :]
    loops = np.flatnonzero(sources == dests)
    if loops.size:
        # Accept/reject kernels can stay in place; NeighborSample needs a
        # traversed edge per collected step — same error as the reference.
        raise WalkError(
            "NeighborSample requires a kernel that traverses an edge at "
            f"every step, but step {int(loops[0])} was a self-loop"
        )
    m1 = csr.label_mask(t1)
    m2 = csr.label_mask(t2)
    is_target = (m1[sources] & m2[dests]) | (m2[sources] & m1[dests])

    # Every page the reference crawler downloads is a walk position or —
    # for MH-family kernels — a probed proposal; classification
    # endpoints are walk nodes, hence cache hits.
    charged = _charge_pages(pages, budget, page_filter)

    ids = csr.node_ids
    sample_set = EdgeSampleSet(
        num_edges=csr.num_edges if known_num_edges is None else known_num_edges,
        num_nodes=csr.num_nodes if known_num_nodes is None else known_num_nodes,
        target_labels=(t1, t2),
        api_calls_used=charged,
    )
    samples = sample_set.samples
    for index in range(k):
        samples.append(
            EdgeSample(
                u=ids[int(sources[index])],
                v=ids[int(dests[index])],
                is_target=bool(is_target[index]),
                step_index=index,
            )
        )
    return sample_set


def explore_nodes_csr(
    csr: CSRGraph,
    t1: Label,
    t2: Label,
    k: int,
    burn_in: int = 0,
    rng: RandomSource = None,
    kernel: KernelLike = "simple",
    start_node: Optional[Node] = None,
    budget: Optional[int] = None,
    exact_rng: bool = False,
    known_num_nodes: Optional[int] = None,
    known_num_edges: Optional[int] = None,
    page_filter: Optional[np.ndarray] = None,
) -> NodeSampleSet:
    """NeighborExploration (Algorithm 2, single-walk variant) on CSR arrays.

    ``T(u)`` for labeled sampled nodes comes from the precomputed
    vectorized incident-target-edge counts; the charged-call accounting
    adds the pages of explored neighbors, as the reference sampler does.
    *page_filter* marks pages already downloaded (free revisits); it is
    updated in place.  (On budget exhaustion, which pages count as
    fetched-before-crossing is approximated: explorations are accounted
    in node-index rather than sample order.)
    """
    check_positive_int(k, "k")
    check_non_negative_int(burn_in, "burn_in")
    spec = resolve_kernel_spec(kernel)
    full, walk_pages = _run_walk(csr, burn_in + k, start_node, rng, spec, exact_rng)

    collected = full[burn_in + 1 :]
    m1 = csr.label_mask(t1)
    m2 = csr.label_mask(t2)
    has_label = m1[collected] | m2[collected]
    incident = csr.target_incident_counts(t1, t2)[collected]

    labeled = np.unique(collected[has_label])
    if labeled.size:
        explored = [
            csr.indices[csr.indptr[i] : csr.indptr[i + 1]] for i in labeled
        ]
        pages = np.concatenate([walk_pages] + explored)
    else:
        pages = walk_pages
    charged = _charge_pages(pages, budget, page_filter)

    ids = csr.node_ids
    degrees = csr.degrees[collected]
    sample_set = NodeSampleSet(
        num_edges=csr.num_edges if known_num_edges is None else known_num_edges,
        num_nodes=csr.num_nodes if known_num_nodes is None else known_num_nodes,
        target_labels=(t1, t2),
        api_calls_used=charged,
    )
    samples = sample_set.samples
    for index in range(k):
        labeled_here = bool(has_label[index])
        samples.append(
            NodeSample(
                node=ids[int(collected[index])],
                degree=int(degrees[index]),
                has_target_label=labeled_here,
                incident_target_edges=int(incident[index]) if labeled_here else 0,
                step_index=index,
            )
        )
    return sample_set


def run_csr_sampler(
    api,
    sample_fn: Callable[..., object],
    t1: Label,
    t2: Label,
    k: int,
    burn_in: int,
    kernel: KernelLike,
    rng: RandomSource,
    start_node: Optional[Node],
    exact_rng: bool,
):
    """Run a CSR sampling function through a :class:`RestrictedGraphAPI`.

    Shared by both sampler classes.  Keeps the wrapper's accounting in
    step with the reference path:

    * pages already in the wrapper's cache (downloaded by earlier calls,
      on either backend) are free — the wrapper's page mask is threaded
      through and updated in place;
    * on budget exhaustion the counter lands on ``budget + 1`` and the
      raised error reports the crossing attempt, exactly like
      :meth:`APICallCounter.charge`;
    * on success the charged calls are added to the wrapper's counter.

    Requires a caching wrapper: with ``cache=False`` the reference
    charges every retrieval, an accounting the distinct-page CSR model
    cannot reproduce.
    """
    if not api.cache_enabled:
        raise ConfigurationError(
            "backend='csr' models the distinct-page-download accounting of a "
            "caching crawler; build the RestrictedGraphAPI with cache=True or "
            "use backend='python'"
        )
    counter = api.counter
    remaining = None
    if counter.budget is not None:
        remaining = max(0, counter.budget - counter.calls)
    try:
        sample_set = sample_fn(
            api.to_csr(),
            t1,
            t2,
            k,
            burn_in=burn_in,
            rng=rng,
            kernel=kernel,
            start_node=start_node,
            budget=remaining,
            exact_rng=exact_rng,
            known_num_nodes=api.num_nodes,
            known_num_edges=api.num_edges,
            page_filter=api.downloaded_page_mask(),
        )
    except APIBudgetExceededError:
        counter.calls = counter.budget + 1  # mirror the reference counter
        raise APIBudgetExceededError(counter.budget, counter.calls) from None
    counter.calls += sample_set.api_calls_used
    sample_set.api_calls_used = api.api_calls
    return sample_set


# ----------------------------------------------------------------------
# fleet execution: every repetition of a table cell as one walker fleet
# ----------------------------------------------------------------------
def run_fleet_walk(
    csr: CSRGraph,
    k: int,
    repetitions: int,
    burn_in: int,
    rng: RandomSource,
    kernel: KernelLike,
    engine: str = "numpy",
):
    check_positive_int(k, "k")
    check_positive_int(repetitions, "repetitions")
    check_non_negative_int(burn_in, "burn_in")
    fleet_engine_ = BatchedWalkEngine(
        csr, kernel=kernel, rng=ensure_numpy_rng(rng), engine=engine
    )
    return fleet_engine_.run_fleet(repetitions, k, burn_in=burn_in)


def enforce_fleet_budget(charges: np.ndarray, budget: Optional[int]) -> None:
    """Per-walker budget check, mirroring :meth:`APICallCounter.charge`.

    Each walker stands for one repetition crawling through its own
    budgeted wrapper, so the first walker whose distinct-page ledger
    crosses *budget* is the crawl that would have died mid-walk.
    """
    if budget is None:
        return
    check_non_negative_int(budget, "budget")
    if charges.size and int(charges.max()) > budget:
        raise APIBudgetExceededError(budget, budget + 1)


#: Ledger-matrix size cap for the dense (fleet × |V|) boolean strategy;
#: 2^27 cells is 128 MB of bools, beyond which the sort-based encoding
#: takes over.
_MASK_LEDGER_MAX_CELLS = 1 << 27


def _exploration_charges(
    csr: CSRGraph,
    trajectories: np.ndarray,
    collected: np.ndarray,
    has_label: np.ndarray,
) -> np.ndarray:
    """Per-walker distinct pages: own trajectory ∪ own explored neighbors.

    Fully vectorized across the fleet, no per-walker Python loop.  The
    default strategy scatters every downloaded page into a dense
    ``(fleet, |V|)`` boolean ledger and row-sums it; when that matrix
    would be unreasonably large the pages are encoded as
    ``walker · |V| + page`` codes instead and counted with one global
    ``unique`` + ``bincount``.  Either way the (walker, labeled node)
    exploration pairs are deduplicated before their neighborhoods are
    gathered.
    """
    num_walkers = trajectories.shape[0]
    span = np.int64(csr.num_nodes)
    explorers = explored = None
    if has_label.any():
        rows, cols = np.nonzero(has_label)
        explore_pairs = np.unique(rows * span + collected[rows, cols])
        explorers = explore_pairs // span
        explored = explore_pairs % span

    if num_walkers * csr.num_nodes <= _MASK_LEDGER_MAX_CELLS:
        visited = np.zeros((num_walkers, csr.num_nodes), dtype=bool)
        visited[np.arange(num_walkers)[:, None], trajectories] = True
        if explored is not None:
            visited[
                np.repeat(explorers, csr.degrees[explored]),
                csr.gather_neighbors(explored),
            ] = True
        return visited.sum(axis=1).astype(np.int64)

    codes = (np.arange(num_walkers, dtype=np.int64)[:, None] * span + trajectories).ravel()
    if explored is not None:
        neighbor_codes = (
            np.repeat(explorers, csr.degrees[explored]) * span
            + csr.gather_neighbors(explored)
        )
        codes = np.concatenate([codes, neighbor_codes])
    distinct = np.unique(codes)
    return np.bincount(distinct // span, minlength=num_walkers).astype(np.int64)


def _fleet_weights(csr: CSRGraph, fleet, nodes: np.ndarray) -> Optional[np.ndarray]:
    """Per-sample stationary weights for non-degree-stationary fleets.

    The spec comes off the fleet itself
    (:attr:`~repro.walks.batched.FleetWalkResult.kernel`), so
    classification can never be handed a kernel that disagrees with the
    walk.  ``None`` for the simple / non-backtracking walks (their
    weights are the degrees, which the batches already carry); for the
    accept/reject kernels the importance weights a re-weighted
    estimator divides by.
    """
    spec = getattr(fleet, "kernel", None)
    if spec is None or spec.name in DEGREE_STATIONARY_KERNELS:
        return None
    return kernel_stationary_weights(spec, csr.degrees[nodes])


def classify_edge_fleet(
    csr: CSRGraph,
    fleet,
    t1: Label,
    t2: Label,
    budget: Optional[int] = None,
    known_num_nodes: Optional[int] = None,
    known_num_edges: Optional[int] = None,
) -> EdgeSampleBatch:
    """NeighborSample classification of an already-walked fleet.

    Separating the walk (:class:`~repro.walks.batched.FleetWalkResult`)
    from its classification is what the prefix-reuse sweep engine is
    built on: one fleet can be classified against many target pairs and
    truncated (:meth:`FleetWalkResult.prefix`) to many budgets — the
    walk is label-agnostic, only this step reads the masks.

    When the fleet was walked with a non-degree-stationary
    (EX-*-style) kernel — read off :attr:`FleetWalkResult.kernel`, so
    no mismatched spec can be injected — the batch carries the
    per-sample stationary ``weights`` of the *source* nodes, the
    importance weights a re-weighted estimator needs.
    """
    sources = fleet.sources
    dests = fleet.collected
    loops = np.flatnonzero((sources == dests).any(axis=1))
    if loops.size:
        # Accept/reject kernels can stay in place; NeighborSample needs
        # a traversed edge per collected step — same error the scalar
        # paths raise (walker index reported instead of step index).
        raise WalkError(
            "NeighborSample requires a kernel that traverses an edge at "
            f"every step, but walker {int(loops[0])} self-looped"
        )
    m1 = csr.label_mask(t1)
    m2 = csr.label_mask(t2)
    is_target = (m1[sources] & m2[dests]) | (m2[sources] & m1[dests])

    # As on the sequential CSR path, every page a NeighborSample crawler
    # downloads belongs to a walk position — plus, for MH-family
    # kernels, the probed proposals, which the fleet's ledger includes.
    charges = fleet.charged_calls()
    enforce_fleet_budget(charges, budget)

    return EdgeSampleBatch(
        sources=sources,
        dests=dests,
        is_target=is_target,
        num_edges=csr.num_edges if known_num_edges is None else known_num_edges,
        num_nodes=csr.num_nodes if known_num_nodes is None else known_num_nodes,
        target_labels=(t1, t2),
        api_calls=charges,
        node_ids=csr.node_ids,
        trajectories=fleet.trajectories,
        weights=_fleet_weights(csr, fleet, sources),
    )


def classify_node_fleet(
    csr: CSRGraph,
    fleet,
    t1: Label,
    t2: Label,
    budget: Optional[int] = None,
    known_num_nodes: Optional[int] = None,
    known_num_edges: Optional[int] = None,
) -> NodeSampleBatch:
    """NeighborExploration classification of an already-walked fleet.

    ``T(u)`` comes from the precomputed vectorized incident counts; the
    per-trial charged-call ledger adds the pages of the neighbors each
    trial explores around its labeled sampled nodes — recomputed per
    classification because which nodes get explored depends on the
    target pair.  When the fleet walked a non-degree-stationary kernel
    (:attr:`FleetWalkResult.kernel`) the batch also carries the
    collected nodes' stationary ``weights`` (see
    :func:`classify_edge_fleet`).
    """
    collected = fleet.collected
    m1 = csr.label_mask(t1)
    m2 = csr.label_mask(t2)
    has_label = m1[collected] | m2[collected]
    incident = np.where(
        has_label, csr.target_incident_counts(t1, t2)[collected], 0
    ).astype(np.int64)

    # MH-family kernels probed their proposals' pages too; folding the
    # probe columns into the page matrix charges them alongside the
    # trajectory (the ledger helper only cares that each row lists the
    # walker's downloaded pages).
    pages = fleet.trajectories
    if getattr(fleet, "probed", None) is not None:
        pages = np.concatenate([pages, fleet.probed], axis=1)
    charges = _exploration_charges(csr, pages, collected, has_label)
    enforce_fleet_budget(charges, budget)

    return NodeSampleBatch(
        nodes=collected,
        degrees=csr.degrees[collected],
        has_target_label=has_label,
        incident_target_edges=incident,
        num_edges=csr.num_edges if known_num_edges is None else known_num_edges,
        num_nodes=csr.num_nodes if known_num_nodes is None else known_num_nodes,
        target_labels=(t1, t2),
        api_calls=charges,
        node_ids=csr.node_ids,
        trajectories=fleet.trajectories,
        weights=_fleet_weights(csr, fleet, collected),
    )


def sample_edges_fleet(
    csr: CSRGraph,
    t1: Label,
    t2: Label,
    k: int,
    repetitions: int,
    burn_in: int = 0,
    rng: RandomSource = None,
    kernel: KernelLike = "simple",
    budget: Optional[int] = None,
    known_num_nodes: Optional[int] = None,
    known_num_edges: Optional[int] = None,
    engine: str = "numpy",
) -> EdgeSampleBatch:
    """NeighborSample for *repetitions* independent trials in one fleet.

    One walker per trial, advanced with vectorized numpy steps (burn-in
    included) or, with ``engine="compiled"``, the bit-identical numba
    kernels; the result is the array-native
    :class:`~repro.core.samplers.base.EdgeSampleBatch` — per-trial
    source/destination/target-flag rows — plus a per-trial charged-call
    ledger with the same distinct-page semantics as running each trial
    through its own caching :class:`RestrictedGraphAPI`.
    """
    fleet = run_fleet_walk(csr, k, repetitions, burn_in, rng, kernel, engine=engine)
    return classify_edge_fleet(
        csr, fleet, t1, t2,
        budget=budget,
        known_num_nodes=known_num_nodes,
        known_num_edges=known_num_edges,
    )


def explore_nodes_fleet(
    csr: CSRGraph,
    t1: Label,
    t2: Label,
    k: int,
    repetitions: int,
    burn_in: int = 0,
    rng: RandomSource = None,
    kernel: KernelLike = "simple",
    budget: Optional[int] = None,
    known_num_nodes: Optional[int] = None,
    known_num_edges: Optional[int] = None,
    engine: str = "numpy",
) -> NodeSampleBatch:
    """NeighborExploration for *repetitions* independent trials in one fleet.

    ``T(u)`` comes from the precomputed vectorized incident counts; the
    per-trial charged-call ledger adds the pages of the neighbors each
    trial explores around its labeled sampled nodes, exactly like the
    reference sampler running through a fresh caching wrapper.
    """
    fleet = run_fleet_walk(csr, k, repetitions, burn_in, rng, kernel, engine=engine)
    return classify_node_fleet(
        csr, fleet, t1, t2,
        budget=budget,
        known_num_nodes=known_num_nodes,
        known_num_edges=known_num_edges,
    )


__all__ = [
    "BACKENDS",
    "EXECUTIONS",
    "REUSES",
    "validate_backend",
    "validate_execution",
    "validate_reuse",
    "fleet_engine",
    "run_fleet_walk",
    "sample_edges_csr",
    "explore_nodes_csr",
    "classify_edge_fleet",
    "classify_node_fleet",
    "sample_edges_fleet",
    "explore_nodes_fleet",
    "run_csr_sampler",
]
