"""Random-walk sampling processes: NeighborSample (edges) and NeighborExploration (nodes)."""

from repro.core.samplers.base import (
    EdgeSample,
    EdgeSampleBatch,
    EdgeSampleSet,
    NodeSample,
    NodeSampleBatch,
    NodeSampleSet,
)
from repro.core.samplers.neighbor_sample import NeighborSampleSampler
from repro.core.samplers.neighbor_exploration import NeighborExplorationSampler
from repro.core.samplers.csr_backend import (
    explore_nodes_csr,
    explore_nodes_fleet,
    sample_edges_csr,
    sample_edges_fleet,
)

__all__ = [
    "EdgeSample",
    "EdgeSampleSet",
    "EdgeSampleBatch",
    "NodeSample",
    "NodeSampleSet",
    "NodeSampleBatch",
    "NeighborSampleSampler",
    "NeighborExplorationSampler",
    "sample_edges_csr",
    "explore_nodes_csr",
    "sample_edges_fleet",
    "explore_nodes_fleet",
]
