"""Random-walk sampling processes: NeighborSample (edges) and NeighborExploration (nodes)."""

from repro.core.samplers.base import (
    EdgeSample,
    EdgeSampleSet,
    NodeSample,
    NodeSampleSet,
)
from repro.core.samplers.neighbor_sample import NeighborSampleSampler
from repro.core.samplers.neighbor_exploration import NeighborExplorationSampler
from repro.core.samplers.csr_backend import explore_nodes_csr, sample_edges_csr

__all__ = [
    "EdgeSample",
    "EdgeSampleSet",
    "NodeSample",
    "NodeSampleSet",
    "NeighborSampleSampler",
    "NeighborExplorationSampler",
    "sample_edges_csr",
    "explore_nodes_csr",
]
