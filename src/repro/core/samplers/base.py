"""Sample records produced by the paper's two sampling processes.

The samplers are decoupled from the estimators through two container
types:

* :class:`EdgeSampleSet` — what NeighborSample (Algorithm 1) produces:
  ``k`` edges, each flagged as target/non-target.
* :class:`NodeSampleSet` — what NeighborExploration (Algorithm 2)
  produces: ``k`` nodes, each with its degree, whether it carries a
  target label, and ``T(u)`` (the number of incident target edges) when
  it does.

Both containers also carry the prior knowledge (``|E|``, ``|V|``) read
from the restricted API at sampling time, so an estimator needs nothing
but the sample set.

The fleet execution path (``run_trials(..., execution="fleet")``) runs
*all repetitions of a table cell at once* and therefore works with the
array-native twins :class:`EdgeSampleBatch` / :class:`NodeSampleBatch`:
one numpy row per trial, consumed wholesale by the estimators'
``estimate_batch`` entry points instead of one Python object per sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import InsufficientSamplesError
from repro.graph.labeled_graph import Label, Node
from repro.walks.thinning import DEFAULT_THINNING_FRACTION, thin_indices


@dataclass(frozen=True)
class EdgeSample:
    """One edge drawn by the NeighborSample process.

    Attributes
    ----------
    u, v:
        The endpoints in traversal order (``u`` was sampled first, ``v``
        is the randomly chosen neighbor).
    is_target:
        ``I((u, v))`` — whether the edge is a target edge for the label
        pair being estimated.
    step_index:
        Position of this sample within the walk (0-based), used by the
        thinning strategy of the Horvitz–Thompson estimator.
    """

    u: Node
    v: Node
    is_target: bool
    step_index: int = 0

    def canonical(self) -> Tuple[Node, Node]:
        """Endpoint pair in a direction-independent canonical order."""
        try:
            return (self.u, self.v) if self.u <= self.v else (self.v, self.u)  # type: ignore[operator]
        except TypeError:
            return (self.u, self.v) if repr(self.u) <= repr(self.v) else (self.v, self.u)


@dataclass(frozen=True)
class NodeSample:
    """One node drawn by the NeighborExploration process.

    Attributes
    ----------
    node:
        The sampled user.
    degree:
        ``d(u)`` — needed by every node-based estimator.
    has_target_label:
        Whether the node carries ``t1`` or ``t2`` (only then were its
        neighbors explored).
    incident_target_edges:
        ``T(u)`` — number of target edges incident to the node.  Always 0
        when ``has_target_label`` is ``False`` (a target edge needs one
        endpoint with a target label... this endpoint).
    step_index:
        Position within the walk, for thinning.
    """

    node: Node
    degree: int
    has_target_label: bool
    incident_target_edges: int
    step_index: int = 0


@dataclass
class EdgeSampleSet:
    """The output of NeighborSample: ``k`` edge samples plus prior knowledge."""

    samples: List[EdgeSample] = field(default_factory=list)
    num_edges: int = 0
    num_nodes: int = 0
    target_labels: Optional[Tuple[Label, Label]] = None
    api_calls_used: int = 0

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    @property
    def k(self) -> int:
        """The number of sampling iterations (``k`` in the paper)."""
        return len(self.samples)

    def require_non_empty(self) -> None:
        """Raise when an estimator is asked to work with zero samples."""
        if not self.samples:
            raise InsufficientSamplesError("edge sample set is empty")

    def target_samples(self) -> List[EdgeSample]:
        """Samples whose edge is a target edge."""
        return [sample for sample in self.samples if sample.is_target]

    def thinned(self, fraction: float = DEFAULT_THINNING_FRACTION) -> "EdgeSampleSet":
        """Keep only samples ``r = fraction·k`` steps apart (HT independence fix).

        Thinning operates on walk positions (``step_index``), so it works
        whether the set was collected by one long walk or independently.
        """
        keep = set(thin_indices(len(self.samples), fraction))
        thinned_samples = [
            sample for position, sample in enumerate(self.samples) if position in keep
        ]
        return EdgeSampleSet(
            samples=thinned_samples,
            num_edges=self.num_edges,
            num_nodes=self.num_nodes,
            target_labels=self.target_labels,
            api_calls_used=self.api_calls_used,
        )


@dataclass
class NodeSampleSet:
    """The output of NeighborExploration: ``k`` node samples plus prior knowledge."""

    samples: List[NodeSample] = field(default_factory=list)
    num_edges: int = 0
    num_nodes: int = 0
    target_labels: Optional[Tuple[Label, Label]] = None
    api_calls_used: int = 0

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    @property
    def k(self) -> int:
        """The number of sampling iterations (``k`` in the paper)."""
        return len(self.samples)

    def require_non_empty(self) -> None:
        """Raise when an estimator is asked to work with zero samples."""
        if not self.samples:
            raise InsufficientSamplesError("node sample set is empty")

    def labeled_samples(self) -> List[NodeSample]:
        """Samples whose node carries a target label (and was explored)."""
        return [sample for sample in self.samples if sample.has_target_label]

    def thinned(self, fraction: float = DEFAULT_THINNING_FRACTION) -> "NodeSampleSet":
        """Keep only samples ``r = fraction·k`` steps apart (HT independence fix)."""
        keep = set(thin_indices(len(self.samples), fraction))
        thinned_samples = [
            sample for position, sample in enumerate(self.samples) if position in keep
        ]
        return NodeSampleSet(
            samples=thinned_samples,
            num_edges=self.num_edges,
            num_nodes=self.num_nodes,
            target_labels=self.target_labels,
            api_calls_used=self.api_calls_used,
        )


@dataclass
class EdgeSampleBatch:
    """NeighborSample output for a whole fleet: one numpy row per trial.

    All per-sample arrays have shape ``(num_trials, k)`` and hold CSR
    node *indices* (``node_ids[i]`` maps back to the original
    identifiers).  ``api_calls`` has one charged-call count per trial —
    each trial is an independent crawler with its own page cache.

    ``weights`` carries the per-sample (unnormalised) stationary
    weights when the fleet walked a *non*-degree-stationary kernel —
    the importance weights a re-weighted estimator must divide by.  It
    is ``None`` for the simple/non-backtracking walks (whose weights
    are the degrees, already carried).  The EX-* baseline path reuses
    this container for its line-graph samples: each "edge sample" is a
    line node of ``G'`` (an edge of ``G``), ``weights`` holds the
    kernel's stationary weights on ``G'``, and
    :func:`repro.baselines.fleet.reweighted_estimates` consumes them.
    """

    sources: np.ndarray
    dests: np.ndarray
    is_target: np.ndarray
    num_edges: int = 0
    num_nodes: int = 0
    target_labels: Optional[Tuple[Label, Label]] = None
    api_calls: Optional[np.ndarray] = None
    node_ids: Optional[Sequence[Node]] = None
    trajectories: Optional[np.ndarray] = None
    weights: Optional[np.ndarray] = None

    @property
    def num_trials(self) -> int:
        return int(self.sources.shape[0])

    @property
    def k(self) -> int:
        """Sampling iterations per trial (``k`` in the paper)."""
        return int(self.sources.shape[1])

    def require_non_empty(self) -> None:
        """Raise when an estimator is asked to work with zero samples."""
        if self.sources.size == 0:
            raise InsufficientSamplesError("edge sample batch is empty")

    def thinned(self, fraction: float = DEFAULT_THINNING_FRACTION) -> "EdgeSampleBatch":
        """Column subset ``r = fraction·k`` steps apart (HT independence fix).

        Every trial has the same length, so one index list thins the
        whole batch — this is the array-native form of
        :meth:`EdgeSampleSet.thinned`.
        """
        keep = thin_indices(self.k, fraction)
        return EdgeSampleBatch(
            sources=self.sources[:, keep],
            dests=self.dests[:, keep],
            is_target=self.is_target[:, keep],
            num_edges=self.num_edges,
            num_nodes=self.num_nodes,
            target_labels=self.target_labels,
            api_calls=self.api_calls,
            node_ids=self.node_ids,
            trajectories=self.trajectories,
            weights=None if self.weights is None else self.weights[:, keep],
        )

    def sample_set(self, trial: int) -> EdgeSampleSet:
        """Materialise one trial's row as a reference :class:`EdgeSampleSet`."""
        if self.node_ids is None:
            raise ValueError("batch does not carry node_ids; cannot materialise")
        ids = self.node_ids
        calls = 0 if self.api_calls is None else int(self.api_calls[trial])
        result = EdgeSampleSet(
            num_edges=self.num_edges,
            num_nodes=self.num_nodes,
            target_labels=self.target_labels,
            api_calls_used=calls,
        )
        for index in range(self.k):
            result.samples.append(
                EdgeSample(
                    u=ids[int(self.sources[trial, index])],
                    v=ids[int(self.dests[trial, index])],
                    is_target=bool(self.is_target[trial, index]),
                    step_index=index,
                )
            )
        return result


@dataclass
class NodeSampleBatch:
    """NeighborExploration output for a whole fleet: one numpy row per trial.

    Same conventions as :class:`EdgeSampleBatch` (``weights`` included:
    per-sample stationary weights when the fleet walked a
    non-degree-stationary kernel, ``None`` otherwise);
    ``incident_target_edges`` is already zeroed for unlabeled samples
    (mirroring the reference sampler, which only explores labeled
    nodes).
    """

    nodes: np.ndarray
    degrees: np.ndarray
    has_target_label: np.ndarray
    incident_target_edges: np.ndarray
    num_edges: int = 0
    num_nodes: int = 0
    target_labels: Optional[Tuple[Label, Label]] = None
    api_calls: Optional[np.ndarray] = None
    node_ids: Optional[Sequence[Node]] = None
    trajectories: Optional[np.ndarray] = None
    weights: Optional[np.ndarray] = None

    @property
    def num_trials(self) -> int:
        return int(self.nodes.shape[0])

    @property
    def k(self) -> int:
        """Sampling iterations per trial (``k`` in the paper)."""
        return int(self.nodes.shape[1])

    def require_non_empty(self) -> None:
        """Raise when an estimator is asked to work with zero samples."""
        if self.nodes.size == 0:
            raise InsufficientSamplesError("node sample batch is empty")

    def thinned(self, fraction: float = DEFAULT_THINNING_FRACTION) -> "NodeSampleBatch":
        """Column subset ``r = fraction·k`` steps apart (HT independence fix)."""
        keep = thin_indices(self.k, fraction)
        return NodeSampleBatch(
            nodes=self.nodes[:, keep],
            degrees=self.degrees[:, keep],
            has_target_label=self.has_target_label[:, keep],
            incident_target_edges=self.incident_target_edges[:, keep],
            num_edges=self.num_edges,
            num_nodes=self.num_nodes,
            target_labels=self.target_labels,
            api_calls=self.api_calls,
            node_ids=self.node_ids,
            trajectories=self.trajectories,
            weights=None if self.weights is None else self.weights[:, keep],
        )

    def sample_set(self, trial: int) -> NodeSampleSet:
        """Materialise one trial's row as a reference :class:`NodeSampleSet`."""
        if self.node_ids is None:
            raise ValueError("batch does not carry node_ids; cannot materialise")
        ids = self.node_ids
        calls = 0 if self.api_calls is None else int(self.api_calls[trial])
        result = NodeSampleSet(
            num_edges=self.num_edges,
            num_nodes=self.num_nodes,
            target_labels=self.target_labels,
            api_calls_used=calls,
        )
        for index in range(self.k):
            labeled = bool(self.has_target_label[trial, index])
            result.samples.append(
                NodeSample(
                    node=ids[int(self.nodes[trial, index])],
                    degree=int(self.degrees[trial, index]),
                    has_target_label=labeled,
                    incident_target_edges=(
                        int(self.incident_target_edges[trial, index]) if labeled else 0
                    ),
                    step_index=index,
                )
            )
        return result


__all__ = [
    "EdgeSample",
    "NodeSample",
    "EdgeSampleSet",
    "NodeSampleSet",
    "EdgeSampleBatch",
    "NodeSampleBatch",
]
