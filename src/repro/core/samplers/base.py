"""Sample records produced by the paper's two sampling processes.

The samplers are decoupled from the estimators through two container
types:

* :class:`EdgeSampleSet` — what NeighborSample (Algorithm 1) produces:
  ``k`` edges, each flagged as target/non-target.
* :class:`NodeSampleSet` — what NeighborExploration (Algorithm 2)
  produces: ``k`` nodes, each with its degree, whether it carries a
  target label, and ``T(u)`` (the number of incident target edges) when
  it does.

Both containers also carry the prior knowledge (``|E|``, ``|V|``) read
from the restricted API at sampling time, so an estimator needs nothing
but the sample set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.exceptions import InsufficientSamplesError
from repro.graph.labeled_graph import Label, Node
from repro.walks.thinning import DEFAULT_THINNING_FRACTION, thin_indices


@dataclass(frozen=True)
class EdgeSample:
    """One edge drawn by the NeighborSample process.

    Attributes
    ----------
    u, v:
        The endpoints in traversal order (``u`` was sampled first, ``v``
        is the randomly chosen neighbor).
    is_target:
        ``I((u, v))`` — whether the edge is a target edge for the label
        pair being estimated.
    step_index:
        Position of this sample within the walk (0-based), used by the
        thinning strategy of the Horvitz–Thompson estimator.
    """

    u: Node
    v: Node
    is_target: bool
    step_index: int = 0

    def canonical(self) -> Tuple[Node, Node]:
        """Endpoint pair in a direction-independent canonical order."""
        try:
            return (self.u, self.v) if self.u <= self.v else (self.v, self.u)  # type: ignore[operator]
        except TypeError:
            return (self.u, self.v) if repr(self.u) <= repr(self.v) else (self.v, self.u)


@dataclass(frozen=True)
class NodeSample:
    """One node drawn by the NeighborExploration process.

    Attributes
    ----------
    node:
        The sampled user.
    degree:
        ``d(u)`` — needed by every node-based estimator.
    has_target_label:
        Whether the node carries ``t1`` or ``t2`` (only then were its
        neighbors explored).
    incident_target_edges:
        ``T(u)`` — number of target edges incident to the node.  Always 0
        when ``has_target_label`` is ``False`` (a target edge needs one
        endpoint with a target label... this endpoint).
    step_index:
        Position within the walk, for thinning.
    """

    node: Node
    degree: int
    has_target_label: bool
    incident_target_edges: int
    step_index: int = 0


@dataclass
class EdgeSampleSet:
    """The output of NeighborSample: ``k`` edge samples plus prior knowledge."""

    samples: List[EdgeSample] = field(default_factory=list)
    num_edges: int = 0
    num_nodes: int = 0
    target_labels: Optional[Tuple[Label, Label]] = None
    api_calls_used: int = 0

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    @property
    def k(self) -> int:
        """The number of sampling iterations (``k`` in the paper)."""
        return len(self.samples)

    def require_non_empty(self) -> None:
        """Raise when an estimator is asked to work with zero samples."""
        if not self.samples:
            raise InsufficientSamplesError("edge sample set is empty")

    def target_samples(self) -> List[EdgeSample]:
        """Samples whose edge is a target edge."""
        return [sample for sample in self.samples if sample.is_target]

    def thinned(self, fraction: float = DEFAULT_THINNING_FRACTION) -> "EdgeSampleSet":
        """Keep only samples ``r = fraction·k`` steps apart (HT independence fix).

        Thinning operates on walk positions (``step_index``), so it works
        whether the set was collected by one long walk or independently.
        """
        keep = set(thin_indices(len(self.samples), fraction))
        thinned_samples = [
            sample for position, sample in enumerate(self.samples) if position in keep
        ]
        return EdgeSampleSet(
            samples=thinned_samples,
            num_edges=self.num_edges,
            num_nodes=self.num_nodes,
            target_labels=self.target_labels,
            api_calls_used=self.api_calls_used,
        )


@dataclass
class NodeSampleSet:
    """The output of NeighborExploration: ``k`` node samples plus prior knowledge."""

    samples: List[NodeSample] = field(default_factory=list)
    num_edges: int = 0
    num_nodes: int = 0
    target_labels: Optional[Tuple[Label, Label]] = None
    api_calls_used: int = 0

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    @property
    def k(self) -> int:
        """The number of sampling iterations (``k`` in the paper)."""
        return len(self.samples)

    def require_non_empty(self) -> None:
        """Raise when an estimator is asked to work with zero samples."""
        if not self.samples:
            raise InsufficientSamplesError("node sample set is empty")

    def labeled_samples(self) -> List[NodeSample]:
        """Samples whose node carries a target label (and was explored)."""
        return [sample for sample in self.samples if sample.has_target_label]

    def thinned(self, fraction: float = DEFAULT_THINNING_FRACTION) -> "NodeSampleSet":
        """Keep only samples ``r = fraction·k`` steps apart (HT independence fix)."""
        keep = set(thin_indices(len(self.samples), fraction))
        thinned_samples = [
            sample for position, sample in enumerate(self.samples) if position in keep
        ]
        return NodeSampleSet(
            samples=thinned_samples,
            num_edges=self.num_edges,
            num_nodes=self.num_nodes,
            target_labels=self.target_labels,
            api_calls_used=self.api_calls_used,
        )


__all__ = ["EdgeSample", "NodeSample", "EdgeSampleSet", "NodeSampleSet"]
