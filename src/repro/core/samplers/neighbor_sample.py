"""NeighborSample — the paper's Algorithm 1 (edge sampling).

At each of ``k`` iterations the process samples a user ``u`` via a
simple random walk and then picks one of ``u``'s neighbors ``v``
uniformly at random; ``(u, v)`` is the edge sampled at that iteration.
At stationarity each edge of ``G`` is sampled with probability
``1/|E|`` per iteration (both traversal directions contribute
``1/2|E|`` each, §4.1.2 of the paper).

Two implementations are provided, matching the paper:

* :meth:`NeighborSampleSampler.sample` (``single_walk=True``, default) —
  the efficient variant: run one long walk, discard the burn-in, and
  take the edges traversed during the last ``k`` steps as the sample.
  The marginal distribution of each sampled edge is still uniform over
  ``E``; consecutive samples are dependent, which the Hansen–Hurwitz
  estimator tolerates and the Horvitz–Thompson estimator repairs by
  thinning.
* ``single_walk=False`` — the naive Algorithm 1: every iteration pays a
  full burn-in so the ``k`` edges are genuinely independent.  Exists for
  the ablation benchmark; it is far more expensive in API calls.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.exceptions import ConfigurationError, WalkError
from repro.graph.api import RestrictedGraphAPI
from repro.graph.labeled_graph import Label, Node
from repro.graph.line_graph import edge_is_target
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import check_non_negative_int, check_positive_int
from repro.walks.engine import RandomWalk
from repro.walks.kernels import SimpleRandomWalkKernel, TransitionKernel

from repro.core.samplers.base import EdgeSample, EdgeSampleSet
from repro.core.samplers.csr_backend import (
    run_csr_sampler,
    sample_edges_csr,
    validate_backend_and_kernel,
)


class NeighborSampleSampler:
    """Sample ``k`` edges from a restricted-access OSN via random walk.

    Parameters
    ----------
    api:
        Restricted neighbor-list access to the graph.
    t1, t2:
        The target labels; each sampled edge is flagged with
        ``I((u, v))`` at sampling time (the labels come with the profile
        pages the walk downloads anyway).
    burn_in:
        Steps discarded before sampling starts.  Use the dataset's mixing
        time (see :func:`repro.walks.mixing.recommended_burn_in`).
    kernel:
        The walk kernel; the paper uses the simple random walk.  A
        non-backtracking kernel can be substituted — it has the same
        stationary distribution, so the estimators stay unbiased.
    rng:
        Seed or generator.
    backend:
        ``"python"`` (default) walks the dict-based reference engine
        through the restricted API; ``"csr"`` walks frozen numpy arrays
        (:mod:`repro.core.samplers.csr_backend`) with identical
        charged-call accounting and a distributionally equivalent
        sampling law.  Only the simple and non-backtracking kernels are
        vectorized.  ``"compiled"`` behaves exactly like ``"csr"`` on
        this scalar path (the numba kernels accelerate fleet execution
        only).
    exact_rng:
        With ``backend="csr"``, consume random bits exactly like the
        reference engine so the same seed reproduces its samples
        verbatim (slower than the default numpy-uniform fast path).
    """

    def __init__(
        self,
        api: RestrictedGraphAPI,
        t1: Label,
        t2: Label,
        burn_in: int = 0,
        kernel: Optional[TransitionKernel] = None,
        rng: RandomSource = None,
        backend: str = "python",
        exact_rng: bool = False,
    ) -> None:
        self.api = api
        self.t1 = t1
        self.t2 = t2
        self.burn_in = check_non_negative_int(burn_in, "burn_in")
        self.kernel = kernel if kernel is not None else SimpleRandomWalkKernel()
        if self.kernel.stationary_weight is None:  # pragma: no cover - defensive
            raise ConfigurationError("kernel must expose stationary weights")
        self.backend = validate_backend_and_kernel(backend, self.kernel)
        self.exact_rng = exact_rng
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    def sample(
        self,
        k: int,
        single_walk: bool = True,
        start_node: Optional[Node] = None,
    ) -> EdgeSampleSet:
        """Collect ``k`` edge samples.

        Parameters
        ----------
        k:
            Number of sampling iterations.
        single_walk:
            ``True`` (paper's efficient implementation): one walk, the
            edges of its last ``k`` steps.  ``False``: ``k`` independent
            walks, one edge each (Algorithm 1 verbatim).
        start_node:
            Optional fixed starting node (useful in tests).
        """
        check_positive_int(k, "k")
        if self.backend in ("csr", "compiled"):
            # Scalar single-walk sampling has no fleet loop to compile;
            # the compiled backend behaves exactly like csr here.
            if not single_walk:
                raise ConfigurationError(
                    "the csr backend implements the single-walk path only; "
                    "use backend='python' for the independent-walks ablation"
                )
            return self._sample_csr(k, start_node)
        if single_walk:
            return self._sample_single_walk(k, start_node)
        return self._sample_independent(k, start_node)

    def _sample_csr(self, k: int, start_node: Optional[Node]) -> EdgeSampleSet:
        return run_csr_sampler(
            self.api,
            sample_edges_csr,
            self.t1,
            self.t2,
            k,
            burn_in=self.burn_in,
            kernel=self.kernel,
            rng=self._rng,
            start_node=start_node,
            exact_rng=self.exact_rng,
        )

    # ------------------------------------------------------------------
    def _classify_edge(self, u: Node, v: Node) -> bool:
        """``I((u, v))`` — is the edge a target edge?"""
        return edge_is_target(
            self.api.labels_of(u), self.api.labels_of(v), self.t1, self.t2
        )

    def _sample_single_walk(self, k: int, start_node: Optional[Node]) -> EdgeSampleSet:
        walk = RandomWalk(self.api, self.kernel, burn_in=self.burn_in, rng=self._rng)
        result = walk.run(k, start_node=start_node)
        sample_set = EdgeSampleSet(
            num_edges=self.api.num_edges,
            num_nodes=self.api.num_nodes,
            target_labels=(self.t1, self.t2),
        )
        for index, edge in enumerate(result.edges):
            if edge is None:
                # The simple walk never self-loops; other kernels might.
                raise WalkError(
                    "NeighborSample requires a kernel that traverses an edge at "
                    f"every step, but step {index} was a self-loop"
                )
            u, v = edge
            sample_set.samples.append(
                EdgeSample(u=u, v=v, is_target=self._classify_edge(u, v), step_index=index)
            )
        sample_set.api_calls_used = self.api.api_calls
        return sample_set

    def _sample_independent(self, k: int, start_node: Optional[Node]) -> EdgeSampleSet:
        sample_set = EdgeSampleSet(
            num_edges=self.api.num_edges,
            num_nodes=self.api.num_nodes,
            target_labels=(self.t1, self.t2),
        )
        for index in range(k):
            walk = RandomWalk(self.api, self.kernel, burn_in=self.burn_in, rng=self._rng)
            result = walk.run(1, start_node=start_node)
            u = result.nodes[0]
            neighbors = self.api.neighbors(u)
            v = self._rng.choice(neighbors)
            sample_set.samples.append(
                EdgeSample(u=u, v=v, is_target=self._classify_edge(u, v), step_index=index)
            )
        sample_set.api_calls_used = self.api.api_calls
        return sample_set


__all__ = ["NeighborSampleSampler"]
