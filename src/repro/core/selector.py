"""Adaptive algorithm selection (operationalising the paper's §5.3 guidance).

The paper's experiments end with a practical rule of thumb: when target
edges are rare, NeighborExploration is the algorithm of choice; when
they are abundant, NeighborSample is just as good (or slightly better)
and much cheaper in API calls, because it never explores whole
neighborhoods.

A practitioner does not know the relative count ``F/|E|`` in advance —
that is the quantity being estimated.  :func:`estimate_with_adaptive_selection`
therefore splits the API budget into a small *pilot* phase and a *main*
phase:

1. the pilot runs NeighborExploration-HH on a small fraction of the
   budget to obtain a rough ``F̂_pilot`` (NeighborExploration because it
   is the only family that produces a useful signal when the target
   edges are rare),
2. the relative count ``F̂_pilot / |E|`` is compared against a threshold
   (default 5%, the region where the paper's tables show the two
   families converging),
3. the main phase spends the remaining budget on the selected
   algorithm, and the final estimate is returned together with the
   pilot diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.estimators import (
    EdgeHansenHurwitzEstimator,
    NodeHansenHurwitzEstimator,
)
from repro.core.estimators.base import EstimateResult
from repro.core.samplers import NeighborExplorationSampler, NeighborSampleSampler
from repro.exceptions import ConfigurationError
from repro.graph.api import RestrictedGraphAPI
from repro.graph.labeled_graph import Label, LabeledGraph
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import check_fraction, check_non_negative_int, check_positive_int
from repro.walks.mixing import recommended_burn_in

#: Relative target-edge count above which NeighborSample is preferred.
DEFAULT_RARITY_THRESHOLD = 0.05

#: Fraction of the sample budget spent on the pilot phase.
DEFAULT_PILOT_SHARE = 0.2


@dataclass(frozen=True)
class SelectionReport:
    """Outcome of an adaptive estimation run.

    Attributes
    ----------
    result:
        The main-phase estimate.
    selected_algorithm:
        ``"NeighborSample-HH"`` or ``"NeighborExploration-HH"``.
    pilot_estimate:
        The pilot phase's (rough) estimate of ``F``.
    pilot_relative_count:
        ``pilot_estimate / |E|`` — the quantity compared with the threshold.
    pilot_sample_size / main_sample_size:
        How the sample budget was split.
    threshold:
        The rarity threshold used for the decision.
    """

    result: EstimateResult
    selected_algorithm: str
    pilot_estimate: float
    pilot_relative_count: float
    pilot_sample_size: int
    main_sample_size: int
    threshold: float

    @property
    def estimate(self) -> float:
        """The final estimate of the target-edge count."""
        return self.result.estimate


def recommend_algorithm(
    relative_count: float, threshold: float = DEFAULT_RARITY_THRESHOLD
) -> str:
    """The paper's §5.3 rule: NeighborSample for abundant target edges,
    NeighborExploration for rare ones."""
    if relative_count < 0:
        raise ConfigurationError(f"relative_count must be non-negative, got {relative_count}")
    check_fraction(threshold, "threshold")
    if relative_count >= threshold:
        return "NeighborSample-HH"
    return "NeighborExploration-HH"


def estimate_with_adaptive_selection(
    graph: LabeledGraph,
    t1: Label,
    t2: Label,
    sample_size: int,
    pilot_share: float = DEFAULT_PILOT_SHARE,
    threshold: float = DEFAULT_RARITY_THRESHOLD,
    burn_in: Optional[int] = None,
    seed: RandomSource = None,
) -> SelectionReport:
    """Estimate ``F`` with a pilot-then-select strategy.

    Parameters
    ----------
    graph:
        The labeled graph; access during estimation still goes through a
        :class:`RestrictedGraphAPI` built here.
    t1, t2:
        The target labels.
    sample_size:
        Total number of walk samples to spend (pilot + main).
    pilot_share:
        Fraction of *sample_size* used by the pilot phase.
    threshold:
        Relative-count threshold of the selection rule.
    burn_in:
        Walk burn-in; derived from the graph's mixing time when omitted.
    seed:
        Seed or generator.
    """
    check_positive_int(sample_size, "sample_size")
    check_fraction(pilot_share, "pilot_share")
    check_fraction(threshold, "threshold")
    rng = ensure_rng(seed)
    if burn_in is None:
        burn_in = recommended_burn_in(graph, rng=rng)
    else:
        burn_in = check_non_negative_int(burn_in, "burn_in")

    pilot_size = max(1, int(round(pilot_share * sample_size)))
    main_size = max(1, sample_size - pilot_size)

    # Pilot: NeighborExploration-HH, the only configuration that yields a
    # signal when the target edges are rare.
    pilot_api = RestrictedGraphAPI(graph)
    pilot_sampler = NeighborExplorationSampler(pilot_api, t1, t2, burn_in=burn_in, rng=rng)
    pilot_result = NodeHansenHurwitzEstimator().estimate(pilot_sampler.sample(pilot_size))
    relative_count = pilot_result.estimate / max(1, pilot_api.num_edges)

    selected = recommend_algorithm(relative_count, threshold)

    main_api = RestrictedGraphAPI(graph)
    if selected == "NeighborSample-HH":
        sampler = NeighborSampleSampler(main_api, t1, t2, burn_in=burn_in, rng=rng)
        main_result = EdgeHansenHurwitzEstimator().estimate(sampler.sample(main_size))
    else:
        sampler = NeighborExplorationSampler(main_api, t1, t2, burn_in=burn_in, rng=rng)
        main_result = NodeHansenHurwitzEstimator().estimate(sampler.sample(main_size))

    return SelectionReport(
        result=main_result,
        selected_algorithm=selected,
        pilot_estimate=pilot_result.estimate,
        pilot_relative_count=relative_count,
        pilot_sample_size=pilot_size,
        main_sample_size=main_size,
        threshold=threshold,
    )


__all__ = [
    "DEFAULT_RARITY_THRESHOLD",
    "DEFAULT_PILOT_SHARE",
    "SelectionReport",
    "recommend_algorithm",
    "estimate_with_adaptive_selection",
]
