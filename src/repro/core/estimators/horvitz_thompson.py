"""Horvitz–Thompson estimators (paper §4.1.3 and §4.2.3).

The Horvitz–Thompson estimator sums, over the *distinct* units that made
it into the sample, ``value / Pr[unit enters the sample at least once]``.
Unlike Hansen–Hurwitz it needs the ``k`` draws to be independent, which
the single-walk implementation violates; the paper repairs this by
*thinning* — only samples at least ``r = 2.5%·k`` walk steps apart are
used — and these estimators apply the same strategy by default.

Edge form (NeighborSample), Equation (3)::

    F̂ = Σ_{e ∈ S, I(e)=1} 1 / (1 − (1 − 1/|E|)^k)

Node form (NeighborExploration), Equation (13)::

    F̂ = ½ Σ_{u ∈ S} T(u) / (1 − (1 − d(u)/2|E|)^k)

``k`` is the number of (post-thinning) draws; ``S`` contains each
distinct sampled unit once.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.estimators.base import EdgeEstimator, EstimateResult, NodeEstimator
from repro.core.samplers.base import (
    EdgeSampleBatch,
    EdgeSampleSet,
    NodeSampleBatch,
    NodeSampleSet,
)
from repro.exceptions import EstimationError
from repro.graph.labeled_graph import Node
from repro.utils.validation import check_fraction
from repro.walks.thinning import DEFAULT_THINNING_FRACTION


def _at_least_once_probability(per_draw: float, draws: int) -> float:
    """``1 − (1 − p)^k`` — probability a unit is drawn at least once."""
    if not 0.0 < per_draw <= 1.0:
        raise EstimationError(f"per-draw probability must be in (0, 1], got {per_draw}")
    return 1.0 - (1.0 - per_draw) ** draws


class EdgeHorvitzThompsonEstimator(EdgeEstimator):
    """NeighborSample-HT (Equation 3), with the paper's thinning strategy.

    Parameters
    ----------
    thinning_fraction:
        The gap between retained samples as a fraction of ``k``; the
        paper uses 2.5%.  Pass ``None`` to disable thinning (useful when
        the sample set already contains independent draws).
    """

    name = "NeighborSample-HT"

    def __init__(self, thinning_fraction: float | None = DEFAULT_THINNING_FRACTION) -> None:
        if thinning_fraction is not None:
            check_fraction(thinning_fraction, "thinning_fraction")
        self.thinning_fraction = thinning_fraction

    def estimate(self, samples: EdgeSampleSet) -> EstimateResult:
        samples.require_non_empty()
        if samples.num_edges <= 0:
            raise EstimationError("sample set does not carry |E| prior knowledge")
        working = (
            samples if self.thinning_fraction is None else samples.thinned(self.thinning_fraction)
        )
        working.require_non_empty()
        k = working.k
        inclusion = _at_least_once_probability(1.0 / samples.num_edges, k)
        distinct_targets = {
            sample.canonical() for sample in working.samples if sample.is_target
        }
        estimate = len(distinct_targets) / inclusion
        return EstimateResult(
            estimate=estimate,
            estimator=self.name,
            sample_size=k,
            target_labels=samples.target_labels,
            api_calls=samples.api_calls_used,
            details={
                "distinct_target_edges": float(len(distinct_targets)),
                "inclusion_probability": inclusion,
                "pre_thinning_k": float(samples.k),
            },
        )

    def estimate_batch(self, batch: EdgeSampleBatch) -> np.ndarray:
        """Equation (3) for every trial of a fleet at once, thinning included.

        All trials share one thinning index list (same ``k``), so the
        whole batch thins in one column slice; the per-trial distinct
        target-edge counts come from canonical index codes instead of
        per-sample Python sets.  Values match :meth:`estimate` exactly.
        """
        batch.require_non_empty()
        if batch.num_edges <= 0:
            raise EstimationError("sample batch does not carry |E| prior knowledge")
        working = (
            batch if self.thinning_fraction is None else batch.thinned(self.thinning_fraction)
        )
        working.require_non_empty()
        inclusion = _at_least_once_probability(1.0 / batch.num_edges, working.k)
        # Direction-independent edge code over CSR indices; the span is
        # read off the data (prior-knowledge |V| may be an estimate).
        span = int(max(working.sources.max(), working.dests.max())) + 1
        codes = (
            np.minimum(working.sources, working.dests) * span
            + np.maximum(working.sources, working.dests)
        )
        estimates = np.empty(working.num_trials, dtype=np.float64)
        for trial in range(working.num_trials):
            targets = codes[trial][working.is_target[trial]]
            estimates[trial] = np.unique(targets).size / inclusion
        return estimates


class NodeHorvitzThompsonEstimator(NodeEstimator):
    """NeighborExploration-HT (Equation 13), with the paper's thinning strategy."""

    name = "NeighborExploration-HT"

    def __init__(self, thinning_fraction: float | None = DEFAULT_THINNING_FRACTION) -> None:
        if thinning_fraction is not None:
            check_fraction(thinning_fraction, "thinning_fraction")
        self.thinning_fraction = thinning_fraction

    def estimate(self, samples: NodeSampleSet) -> EstimateResult:
        samples.require_non_empty()
        if samples.num_edges <= 0:
            raise EstimationError("sample set does not carry |E| prior knowledge")
        working = (
            samples if self.thinning_fraction is None else samples.thinned(self.thinning_fraction)
        )
        working.require_non_empty()
        k = working.k
        total_degree = 2.0 * samples.num_edges

        # Each distinct node contributes once, with its T(u).
        distinct: Dict[Node, Tuple[int, int]] = {}
        for sample in working.samples:
            distinct[sample.node] = (sample.degree, sample.incident_target_edges)

        estimate = 0.0
        for degree, incident in distinct.values():
            if incident == 0:
                continue
            if degree <= 0:
                raise EstimationError("sampled node has degree 0")
            inclusion = _at_least_once_probability(degree / total_degree, k)
            estimate += incident / inclusion
        estimate *= 0.5
        return EstimateResult(
            estimate=estimate,
            estimator=self.name,
            sample_size=k,
            target_labels=samples.target_labels,
            api_calls=samples.api_calls_used,
            details={
                "distinct_nodes": float(len(distinct)),
                "pre_thinning_k": float(samples.k),
            },
        )

    def estimate_batch(self, batch: NodeSampleBatch) -> np.ndarray:
        """Equation (13) for every trial of a fleet at once, thinning included.

        Distinct sampled nodes are found per trial with one ``unique``
        over index rows (degree and ``T(u)`` are functions of the node,
        so any occurrence serves); values agree with :meth:`estimate` up
        to floating-point summation order.
        """
        batch.require_non_empty()
        if batch.num_edges <= 0:
            raise EstimationError("sample batch does not carry |E| prior knowledge")
        working = (
            batch if self.thinning_fraction is None else batch.thinned(self.thinning_fraction)
        )
        working.require_non_empty()
        k = working.k
        total_degree = 2.0 * batch.num_edges
        estimates = np.empty(working.num_trials, dtype=np.float64)
        for trial in range(working.num_trials):
            _, first_seen = np.unique(working.nodes[trial], return_index=True)
            degrees = working.degrees[trial][first_seen]
            incident = working.incident_target_edges[trial][first_seen]
            contributing = incident > 0
            degrees = degrees[contributing]
            incident = incident[contributing]
            if degrees.size and int(degrees.min()) <= 0:
                raise EstimationError("sampled node has degree 0")
            per_draw = degrees / total_degree
            if per_draw.size and float(per_draw.max()) > 1.0:
                # Same guard as the scalar _at_least_once_probability: an
                # underestimated |E| prior can push degree/2|E| past 1.
                raise EstimationError(
                    "per-draw probability must be in (0, 1], got "
                    f"{float(per_draw.max())}"
                )
            inclusion = 1.0 - (1.0 - per_draw) ** k
            estimates[trial] = 0.5 * (incident / inclusion).sum()
        return estimates


__all__ = ["EdgeHorvitzThompsonEstimator", "NodeHorvitzThompsonEstimator"]
