"""Horvitz–Thompson estimators (paper §4.1.3 and §4.2.3).

The Horvitz–Thompson estimator sums, over the *distinct* units that made
it into the sample, ``value / Pr[unit enters the sample at least once]``.
Unlike Hansen–Hurwitz it needs the ``k`` draws to be independent, which
the single-walk implementation violates; the paper repairs this by
*thinning* — only samples at least ``r = 2.5%·k`` walk steps apart are
used — and these estimators apply the same strategy by default.

Edge form (NeighborSample), Equation (3)::

    F̂ = Σ_{e ∈ S, I(e)=1} 1 / (1 − (1 − 1/|E|)^k)

Node form (NeighborExploration), Equation (13)::

    F̂ = ½ Σ_{u ∈ S} T(u) / (1 − (1 − d(u)/2|E|)^k)

``k`` is the number of (post-thinning) draws; ``S`` contains each
distinct sampled unit once.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.estimators.base import EdgeEstimator, EstimateResult, NodeEstimator
from repro.core.samplers.base import EdgeSampleSet, NodeSampleSet
from repro.exceptions import EstimationError
from repro.graph.labeled_graph import Node
from repro.utils.validation import check_fraction
from repro.walks.thinning import DEFAULT_THINNING_FRACTION


def _at_least_once_probability(per_draw: float, draws: int) -> float:
    """``1 − (1 − p)^k`` — probability a unit is drawn at least once."""
    if not 0.0 < per_draw <= 1.0:
        raise EstimationError(f"per-draw probability must be in (0, 1], got {per_draw}")
    return 1.0 - (1.0 - per_draw) ** draws


class EdgeHorvitzThompsonEstimator(EdgeEstimator):
    """NeighborSample-HT (Equation 3), with the paper's thinning strategy.

    Parameters
    ----------
    thinning_fraction:
        The gap between retained samples as a fraction of ``k``; the
        paper uses 2.5%.  Pass ``None`` to disable thinning (useful when
        the sample set already contains independent draws).
    """

    name = "NeighborSample-HT"

    def __init__(self, thinning_fraction: float | None = DEFAULT_THINNING_FRACTION) -> None:
        if thinning_fraction is not None:
            check_fraction(thinning_fraction, "thinning_fraction")
        self.thinning_fraction = thinning_fraction

    def estimate(self, samples: EdgeSampleSet) -> EstimateResult:
        samples.require_non_empty()
        if samples.num_edges <= 0:
            raise EstimationError("sample set does not carry |E| prior knowledge")
        working = (
            samples if self.thinning_fraction is None else samples.thinned(self.thinning_fraction)
        )
        working.require_non_empty()
        k = working.k
        inclusion = _at_least_once_probability(1.0 / samples.num_edges, k)
        distinct_targets = {
            sample.canonical() for sample in working.samples if sample.is_target
        }
        estimate = len(distinct_targets) / inclusion
        return EstimateResult(
            estimate=estimate,
            estimator=self.name,
            sample_size=k,
            target_labels=samples.target_labels,
            api_calls=samples.api_calls_used,
            details={
                "distinct_target_edges": float(len(distinct_targets)),
                "inclusion_probability": inclusion,
                "pre_thinning_k": float(samples.k),
            },
        )


class NodeHorvitzThompsonEstimator(NodeEstimator):
    """NeighborExploration-HT (Equation 13), with the paper's thinning strategy."""

    name = "NeighborExploration-HT"

    def __init__(self, thinning_fraction: float | None = DEFAULT_THINNING_FRACTION) -> None:
        if thinning_fraction is not None:
            check_fraction(thinning_fraction, "thinning_fraction")
        self.thinning_fraction = thinning_fraction

    def estimate(self, samples: NodeSampleSet) -> EstimateResult:
        samples.require_non_empty()
        if samples.num_edges <= 0:
            raise EstimationError("sample set does not carry |E| prior knowledge")
        working = (
            samples if self.thinning_fraction is None else samples.thinned(self.thinning_fraction)
        )
        working.require_non_empty()
        k = working.k
        total_degree = 2.0 * samples.num_edges

        # Each distinct node contributes once, with its T(u).
        distinct: Dict[Node, Tuple[int, int]] = {}
        for sample in working.samples:
            distinct[sample.node] = (sample.degree, sample.incident_target_edges)

        estimate = 0.0
        for degree, incident in distinct.values():
            if incident == 0:
                continue
            if degree <= 0:
                raise EstimationError("sampled node has degree 0")
            inclusion = _at_least_once_probability(degree / total_degree, k)
            estimate += incident / inclusion
        estimate *= 0.5
        return EstimateResult(
            estimate=estimate,
            estimator=self.name,
            sample_size=k,
            target_labels=samples.target_labels,
            api_calls=samples.api_calls_used,
            details={
                "distinct_nodes": float(len(distinct)),
                "pre_thinning_k": float(samples.k),
            },
        )


__all__ = ["EdgeHorvitzThompsonEstimator", "NodeHorvitzThompsonEstimator"]
