"""Hansen–Hurwitz estimators (paper §4.1.2 and §4.2.2).

The Hansen–Hurwitz estimator averages ``value / inclusion probability``
over the ``k`` draws.  It does not require the draws to be independent
— only that each draw has the right marginal distribution — which is
why it pairs with the cheap single-walk implementation.

Edge form (NeighborSample), Equation (2) of the paper::

    F̂ = (1/k) Σ_i |E| · I((u_i, v_i))

Node form (NeighborExploration), Equation (11)::

    F̂ = (1/k) Σ_i |E| · T(u_i) / d(u_i)

Both are unbiased because a simple random walk at stationarity occupies
an edge with probability ``1/|E|`` and a node with probability
``d(u)/2|E|``.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimators.base import EdgeEstimator, EstimateResult, NodeEstimator
from repro.core.samplers.base import (
    EdgeSampleBatch,
    EdgeSampleSet,
    NodeSampleBatch,
    NodeSampleSet,
)
from repro.exceptions import EstimationError


class EdgeHansenHurwitzEstimator(EdgeEstimator):
    """NeighborSample-HH: ``F̂ = (1/k) Σ |E| · I(e_i)`` (Equation 2)."""

    name = "NeighborSample-HH"

    def estimate(self, samples: EdgeSampleSet) -> EstimateResult:
        samples.require_non_empty()
        if samples.num_edges <= 0:
            raise EstimationError("sample set does not carry |E| prior knowledge")
        k = samples.k
        target_hits = sum(1 for sample in samples if sample.is_target)
        estimate = samples.num_edges * target_hits / k
        return EstimateResult(
            estimate=estimate,
            estimator=self.name,
            sample_size=k,
            target_labels=samples.target_labels,
            api_calls=samples.api_calls_used,
            details={"target_hits": float(target_hits)},
        )

    def estimate_batch(self, batch: EdgeSampleBatch) -> np.ndarray:
        """Equation (2) for every trial of a fleet at once.

        Consumes the target-flag matrix directly (no per-sample Python
        objects) and returns one estimate per trial.  The arithmetic is
        the scalar path's (``|E| · hits / k``), so per-trial values match
        :meth:`estimate` exactly.
        """
        batch.require_non_empty()
        if batch.num_edges <= 0:
            raise EstimationError("sample batch does not carry |E| prior knowledge")
        hits = batch.is_target.sum(axis=1, dtype=np.int64)
        return batch.num_edges * hits / batch.k


class NodeHansenHurwitzEstimator(NodeEstimator):
    """NeighborExploration-HH: ``F̂ = (1/k) Σ |E| · T(u_i)/d(u_i)`` (Equation 11)."""

    name = "NeighborExploration-HH"

    def estimate(self, samples: NodeSampleSet) -> EstimateResult:
        samples.require_non_empty()
        if samples.num_edges <= 0:
            raise EstimationError("sample set does not carry |E| prior knowledge")
        k = samples.k
        total = 0.0
        explored = 0
        for sample in samples:
            if sample.degree <= 0:
                raise EstimationError(
                    f"sampled node {sample.node!r} has degree 0; a random walk "
                    "cannot have visited it"
                )
            if sample.incident_target_edges:
                total += sample.incident_target_edges / sample.degree
            if sample.has_target_label:
                explored += 1
        estimate = samples.num_edges * total / k
        return EstimateResult(
            estimate=estimate,
            estimator=self.name,
            sample_size=k,
            target_labels=samples.target_labels,
            api_calls=samples.api_calls_used,
            details={"explored_nodes": float(explored)},
        )

    def estimate_batch(self, batch: NodeSampleBatch) -> np.ndarray:
        """Equation (11) for every trial of a fleet at once.

        Returns one estimate per trial; values agree with
        :meth:`estimate` up to floating-point summation order.
        """
        batch.require_non_empty()
        if batch.num_edges <= 0:
            raise EstimationError("sample batch does not carry |E| prior knowledge")
        if not batch.degrees.all():
            raise EstimationError(
                "sample batch contains a degree-0 node; a random walk cannot "
                "have visited it"
            )
        totals = (batch.incident_target_edges / batch.degrees).sum(axis=1)
        return batch.num_edges * totals / batch.k


__all__ = ["EdgeHansenHurwitzEstimator", "NodeHansenHurwitzEstimator"]
