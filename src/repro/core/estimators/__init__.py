"""Estimators of the target-edge count built on the two sampling processes."""

from repro.core.estimators.base import EstimateResult, EdgeEstimator, NodeEstimator
from repro.core.estimators.hansen_hurwitz import (
    EdgeHansenHurwitzEstimator,
    NodeHansenHurwitzEstimator,
)
from repro.core.estimators.horvitz_thompson import (
    EdgeHorvitzThompsonEstimator,
    NodeHorvitzThompsonEstimator,
)
from repro.core.estimators.reweighted import NodeReweightedEstimator

__all__ = [
    "EstimateResult",
    "EdgeEstimator",
    "NodeEstimator",
    "EdgeHansenHurwitzEstimator",
    "NodeHansenHurwitzEstimator",
    "EdgeHorvitzThompsonEstimator",
    "NodeHorvitzThompsonEstimator",
    "NodeReweightedEstimator",
]
