"""Re-weighted (importance-sampling) estimator (paper §4.2.4).

The NeighborExploration process samples nodes with probability
proportional to degree (the trial distribution), while the quantity of
interest is defined over the uniform node distribution (the target
distribution).  The re-weighted estimator of Liu's importance-sampling
framework corrects for this with weights ``∝ 1/d(u)``:

.. math::

   F̂ = |V| · \\frac{Σ_i T(u_i)/d(u_i)}{2 · Σ_i 1/d(u_i)}
                                                (Equation 19)

It is a ratio estimator: consistent (asymptotically unbiased) rather
than exactly unbiased, it does not need ``|E|``, and it does not require
independent samples, so it runs on the raw single-walk output.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimators.base import EstimateResult, NodeEstimator
from repro.core.samplers.base import NodeSampleBatch, NodeSampleSet
from repro.exceptions import EstimationError


class NodeReweightedEstimator(NodeEstimator):
    """NeighborExploration-RW: Equation (19) of the paper."""

    name = "NeighborExploration-RW"

    def estimate(self, samples: NodeSampleSet) -> EstimateResult:
        samples.require_non_empty()
        if samples.num_nodes <= 0:
            raise EstimationError("sample set does not carry |V| prior knowledge")
        numerator = 0.0
        denominator = 0.0
        for sample in samples:
            if sample.degree <= 0:
                raise EstimationError(
                    f"sampled node {sample.node!r} has degree 0; a random walk "
                    "cannot have visited it"
                )
            numerator += sample.incident_target_edges / sample.degree
            denominator += 1.0 / sample.degree
        if denominator == 0:
            raise EstimationError("degenerate sample: all importance weights are zero")
        estimate = samples.num_nodes * numerator / (2.0 * denominator)
        return EstimateResult(
            estimate=estimate,
            estimator=self.name,
            sample_size=samples.k,
            target_labels=samples.target_labels,
            api_calls=samples.api_calls_used,
            details={
                "weighted_numerator": numerator,
                "weighted_denominator": denominator,
            },
        )

    def estimate_batch(self, batch: NodeSampleBatch) -> np.ndarray:
        """Equation (19) for every trial of a fleet at once.

        Pure array arithmetic over the degree and ``T(u)`` matrices;
        values agree with :meth:`estimate` up to floating-point
        summation order.
        """
        batch.require_non_empty()
        if batch.num_nodes <= 0:
            raise EstimationError("sample batch does not carry |V| prior knowledge")
        if not batch.degrees.all():
            raise EstimationError(
                "sample batch contains a degree-0 node; a random walk cannot "
                "have visited it"
            )
        numerators = (batch.incident_target_edges / batch.degrees).sum(axis=1)
        denominators = (1.0 / batch.degrees).sum(axis=1)
        if not denominators.all():
            raise EstimationError("degenerate sample: all importance weights are zero")
        return batch.num_nodes * numerators / (2.0 * denominators)


__all__ = ["NodeReweightedEstimator"]
