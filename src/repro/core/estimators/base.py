"""Common estimator interfaces and the result record they produce."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.graph.labeled_graph import Label

from repro.core.samplers.base import EdgeSampleSet, NodeSampleSet


@dataclass(frozen=True)
class EstimateResult:
    """The outcome of one estimation run.

    Attributes
    ----------
    estimate:
        The estimated number of target edges ``F̂``.
    estimator:
        Name of the estimator that produced it (Table 2 abbreviation
        where applicable).
    sample_size:
        Number of samples (``k``) the estimator consumed — after
        thinning, for Horvitz–Thompson estimators.
    target_labels:
        The label pair being estimated, when known.
    api_calls:
        Charged API calls used to collect the underlying sample, when
        known.
    details:
        Estimator-specific extras (e.g. number of distinct target edges
        seen, the thinning interval, ...).
    """

    estimate: float
    estimator: str
    sample_size: int
    target_labels: Optional[Tuple[Label, Label]] = None
    api_calls: Optional[int] = None
    details: Dict[str, float] = field(default_factory=dict)

    def relative_error(self, true_value: float) -> float:
        """``|F̂ − F| / F`` against a known ground truth."""
        if true_value == 0:
            raise ZeroDivisionError("relative error is undefined for F = 0")
        return abs(self.estimate - true_value) / true_value


class EdgeEstimator(ABC):
    """An estimator that consumes NeighborSample output (edge samples)."""

    #: Table 2 abbreviation, overridden by subclasses.
    name: str = "edge-estimator"

    @abstractmethod
    def estimate(self, samples: EdgeSampleSet) -> EstimateResult:
        """Return the estimated target-edge count from *samples*."""


class NodeEstimator(ABC):
    """An estimator that consumes NeighborExploration output (node samples)."""

    #: Table 2 abbreviation, overridden by subclasses.
    name: str = "node-estimator"

    @abstractmethod
    def estimate(self, samples: NodeSampleSet) -> EstimateResult:
        """Return the estimated target-edge count from *samples*."""


__all__ = ["EstimateResult", "EdgeEstimator", "NodeEstimator"]
