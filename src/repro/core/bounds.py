"""Sample-size bounds from Theorems 4.1–4.5 of the paper.

Each theorem states how many samples ``k`` suffice for the corresponding
estimator to be an ``(ε, δ)``-approximation of the true target-edge
count ``F`` (Chebyshev-based, so generally loose — the paper's Tables
18–22 show the bounds, and §5.2 notes that far fewer samples are enough
in practice).

All bounds are *oracle* quantities: they involve sums over the whole
graph (``F``, ``T(u)``, degrees), so they can only be evaluated with
full access.  They serve as diagnostics and reproduce Tables 18–22.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.exceptions import EstimationError
from repro.graph.labeled_graph import Label, LabeledGraph
from repro.graph.statistics import count_target_edges, target_incident_counts
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class SampleSizeBounds:
    """Theorem 4.1–4.5 bounds for one (graph, label pair, ε, δ) setting."""

    neighbor_sample_hh: float
    neighbor_sample_ht: float
    neighbor_exploration_hh: float
    neighbor_exploration_ht: float
    neighbor_exploration_rw: float
    epsilon: float
    delta: float
    true_count: int

    def as_dict(self) -> Dict[str, float]:
        """Map Table 2 abbreviation -> bound, in the order of Tables 18–22."""
        return {
            "NeighborSample-HH": self.neighbor_sample_hh,
            "NeighborSample-HT": self.neighbor_sample_ht,
            "NeighborExploration-HH": self.neighbor_exploration_hh,
            "NeighborExploration-HT": self.neighbor_exploration_ht,
            "NeighborExploration-RW": self.neighbor_exploration_rw,
        }


def _require_positive_count(true_count: int) -> None:
    if true_count <= 0:
        raise EstimationError(
            "the (epsilon, delta) bounds are undefined when the true target-edge "
            "count F is zero (relative error has no meaning)"
        )


def bound_neighbor_sample_hh(
    graph: LabeledGraph, t1: Label, t2: Label, epsilon: float = 0.1, delta: float = 0.1
) -> float:
    """Theorem 4.1: bound for NeighborSample with the Hansen–Hurwitz estimator.

    ``k ≥ (Σ_{X∈E} |E|·I(X) − F²) / (ε² F² δ)``; the sum collapses to
    ``|E|·F`` because exactly ``F`` edges have ``I(X) = 1``.
    """
    check_fraction(epsilon, "epsilon")
    check_fraction(delta, "delta")
    true_count = count_target_edges(graph, t1, t2)
    _require_positive_count(true_count)
    num_edges = graph.num_edges
    numerator = num_edges * true_count - true_count**2
    return max(0.0, numerator / (epsilon**2 * true_count**2 * delta))


def bound_neighbor_sample_ht(
    graph: LabeledGraph, t1: Label, t2: Label, epsilon: float = 0.1, delta: float = 0.1
) -> float:
    """Theorem 4.2: bound for NeighborSample with the Horvitz–Thompson estimator.

    ``k ≥ max_e log((I(e)² + B)/B) / log(1/A(e))`` with ``A(e) = 1 − 1/|E|``
    and ``B = δ ε² F² / |E|``.  Non-target edges contribute 0, so the
    maximum is attained at any target edge.
    """
    check_fraction(epsilon, "epsilon")
    check_fraction(delta, "delta")
    true_count = count_target_edges(graph, t1, t2)
    _require_positive_count(true_count)
    num_edges = graph.num_edges
    if num_edges < 2:
        raise EstimationError("the HT bound needs a graph with at least two edges")
    a = 1.0 - 1.0 / num_edges
    b = delta * epsilon**2 * true_count**2 / num_edges
    return math.log((1.0 + b) / b) / math.log(1.0 / a)


def bound_neighbor_exploration_hh(
    graph: LabeledGraph, t1: Label, t2: Label, epsilon: float = 0.1, delta: float = 0.1
) -> float:
    """Theorem 4.3: bound for NeighborExploration with the Hansen–Hurwitz estimator.

    ``k ≥ (Σ_u 2|E|·T(u)²/d(u) − 4F²) / (4 ε² F² δ)``.
    """
    check_fraction(epsilon, "epsilon")
    check_fraction(delta, "delta")
    true_count = count_target_edges(graph, t1, t2)
    _require_positive_count(true_count)
    num_edges = graph.num_edges
    total = 0.0
    for node, incident in target_incident_counts(graph, t1, t2).items():
        if incident:
            total += 2.0 * num_edges * incident**2 / graph.degree(node)
    numerator = total - 4.0 * true_count**2
    return max(0.0, numerator / (4.0 * epsilon**2 * true_count**2 * delta))


def bound_neighbor_exploration_ht(
    graph: LabeledGraph, t1: Label, t2: Label, epsilon: float = 0.1, delta: float = 0.1
) -> float:
    """Theorem 4.4: bound for NeighborExploration with the Horvitz–Thompson estimator.

    ``k ≥ max_y log((T(y)² + B)/B) / log(1/A(y))`` with
    ``A(y) = 1 − d(y)/2|E|`` and ``B = 4 δ ε² F² / |V|``.
    """
    check_fraction(epsilon, "epsilon")
    check_fraction(delta, "delta")
    true_count = count_target_edges(graph, t1, t2)
    _require_positive_count(true_count)
    total_degree = 2.0 * graph.num_edges
    b = 4.0 * delta * epsilon**2 * true_count**2 / graph.num_nodes
    worst = 0.0
    for node, incident in target_incident_counts(graph, t1, t2).items():
        if incident == 0:
            continue
        pi = graph.degree(node) / total_degree
        a = 1.0 - pi
        if a <= 0.0:
            # A single node holds all the mass; one sample always hits it.
            continue
        bound = math.log((incident**2 + b) / b) / math.log(1.0 / a)
        worst = max(worst, bound)
    return worst


def bound_neighbor_exploration_rw(
    graph: LabeledGraph, t1: Label, t2: Label, epsilon: float = 0.1, delta: float = 0.1
) -> float:
    """Theorem 4.5: bound for NeighborExploration with the Re-weighted estimator.

    ``k ≥ max{ 18(Σ_y T(y)²/π_y − 4F²)/(4 ε² F² δ),
               18(Σ_y 1/π_y − |V|²)/(ε² |V|² δ) }``
    with ``π_y = d(y)/2|E|``.
    """
    check_fraction(epsilon, "epsilon")
    check_fraction(delta, "delta")
    true_count = count_target_edges(graph, t1, t2)
    _require_positive_count(true_count)
    num_nodes = graph.num_nodes
    total_degree = 2.0 * graph.num_edges

    sum_t_term = 0.0
    sum_inverse_pi = 0.0
    incident_counts = target_incident_counts(graph, t1, t2)
    for node in graph.nodes():
        pi = graph.degree(node) / total_degree
        sum_inverse_pi += 1.0 / pi
        incident = incident_counts[node]
        if incident:
            sum_t_term += incident**2 / pi

    first = 18.0 * (sum_t_term - 4.0 * true_count**2) / (4.0 * epsilon**2 * true_count**2 * delta)
    second = 18.0 * (sum_inverse_pi - num_nodes**2) / (epsilon**2 * num_nodes**2 * delta)
    return max(0.0, first, second)


def compute_all_bounds(
    graph: LabeledGraph, t1: Label, t2: Label, epsilon: float = 0.1, delta: float = 0.1
) -> SampleSizeBounds:
    """All five bounds for one setting — a row of Tables 18–22."""
    return SampleSizeBounds(
        neighbor_sample_hh=bound_neighbor_sample_hh(graph, t1, t2, epsilon, delta),
        neighbor_sample_ht=bound_neighbor_sample_ht(graph, t1, t2, epsilon, delta),
        neighbor_exploration_hh=bound_neighbor_exploration_hh(graph, t1, t2, epsilon, delta),
        neighbor_exploration_ht=bound_neighbor_exploration_ht(graph, t1, t2, epsilon, delta),
        neighbor_exploration_rw=bound_neighbor_exploration_rw(graph, t1, t2, epsilon, delta),
        epsilon=epsilon,
        delta=delta,
        true_count=count_target_edges(graph, t1, t2),
    )


__all__ = [
    "SampleSizeBounds",
    "bound_neighbor_sample_hh",
    "bound_neighbor_sample_ht",
    "bound_neighbor_exploration_hh",
    "bound_neighbor_exploration_ht",
    "bound_neighbor_exploration_rw",
    "compute_all_bounds",
]
