"""Random-number-generator plumbing.

Every stochastic component in the library accepts either ``None`` (fresh
entropy), an integer seed, or an existing :class:`random.Random` /
:class:`numpy.random.Generator` instance.  :func:`ensure_rng` normalises
all of these into a :class:`random.Random`, which is what the samplers
and walk engines use internally (the per-step work is dominated by
Python-level adjacency lookups, so the stdlib generator is the right
tool; numpy generators are converted by drawing a seed from them).
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Optional, Union

import numpy as np

RandomSource = Union[None, int, random.Random, np.random.Generator]

_MAX_SEED = 2**63 - 1


def derive_seed(seed: RandomSource, *parts) -> int:
    """Deterministic child seed from a master *seed* and a key of *parts*.

    Uses a blake2s digest rather than ``hash()``: string hashing is
    salted per process, so ``hash()``-derived seeds would silently make
    "seeded" experiments differ between runs.  Non-integer sources
    contribute a base of 0 (their state cannot be summarised stably).
    """
    base = seed if isinstance(seed, (int, np.integer)) else 0
    key = ":".join([str(int(base))] + [str(part) for part in parts])
    digest = hashlib.blake2s(key.encode(), digest_size=4).digest()
    return int.from_bytes(digest, "big") % (2**31)


def ensure_rng(rng: RandomSource = None) -> random.Random:
    """Return a :class:`random.Random` built from *rng*.

    Parameters
    ----------
    rng:
        ``None`` for fresh OS entropy, an ``int`` seed, an existing
        :class:`random.Random` (returned unchanged), or a
        :class:`numpy.random.Generator` (a child seed is drawn from it).
    """
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, (int, np.integer)):
        return random.Random(int(rng))
    if isinstance(rng, np.random.Generator):
        return random.Random(int(rng.integers(0, _MAX_SEED)))
    raise TypeError(
        "rng must be None, an int seed, random.Random or numpy Generator, "
        f"got {type(rng).__name__}"
    )


def spawn_rngs(rng: RandomSource, count: int) -> list[random.Random]:
    """Derive *count* independent generators from a single source.

    The children are seeded from draws of the parent, so a fixed parent
    seed yields a reproducible family of streams (one per repetition of
    an experiment, for example).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    return [random.Random(parent.getrandbits(63)) for _ in range(count)]


def ensure_numpy_rng(rng: RandomSource = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` built from *rng*."""
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    if isinstance(rng, random.Random):
        return np.random.default_rng(rng.getrandbits(63))
    raise TypeError(
        "rng must be None, an int seed, random.Random or numpy Generator, "
        f"got {type(rng).__name__}"
    )


def choice_weighted(rng: random.Random, items: Iterable, weights: Iterable[float]):
    """Pick one item proportionally to *weights* using *rng*.

    A small, allocation-free alternative to ``random.choices`` for the
    hot loops of the walk engines (``random.choices`` always builds a
    list of length *k*).
    """
    items = list(items)
    weights = list(weights)
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("sum of weights must be positive")
    threshold = rng.random() * total
    acc = 0.0
    last = items[-1]
    for item, weight in zip(items, weights):
        if weight < 0:
            raise ValueError("weights must be non-negative")
        acc += weight
        if acc >= threshold:
            return item
    return last


__all__ = [
    "RandomSource",
    "derive_seed",
    "ensure_rng",
    "ensure_numpy_rng",
    "spawn_rngs",
    "choice_weighted",
]
