"""Small argument-validation helpers used across the package.

Each helper raises :class:`repro.exceptions.ConfigurationError` with a
message that names the offending parameter, so call sites stay compact
while error messages stay actionable.
"""

from __future__ import annotations

from numbers import Integral, Real

from repro.exceptions import ConfigurationError


def check_positive_int(value, name: str) -> int:
    """Validate that *value* is an integer strictly greater than zero."""
    if not isinstance(value, Integral) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value, name: str) -> int:
    """Validate that *value* is an integer greater than or equal to zero."""
    if not isinstance(value, Integral) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_positive(value, name: str) -> float:
    """Validate that *value* is a real number strictly greater than zero."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return float(value)


def check_non_negative(value, name: str) -> float:
    """Validate that *value* is a real number greater than or equal to zero."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")
    return float(value)


def check_probability(value, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return float(value)


def check_fraction(value, name: str) -> float:
    """Validate that *value* lies in the half-open interval (0, 1]."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if not 0.0 < value <= 1.0:
        raise ConfigurationError(f"{name} must be in (0, 1], got {value}")
    return float(value)


def check_in_range(value, name: str, low: float, high: float) -> float:
    """Validate that *value* lies in the closed interval [*low*, *high*]."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if not low <= value <= high:
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value}")
    return float(value)


def check_choice(value, name: str, choices) -> object:
    """Validate that *value* is one of *choices*."""
    if value not in choices:
        allowed = ", ".join(repr(c) for c in choices)
        raise ConfigurationError(f"{name} must be one of {allowed}, got {value!r}")
    return value


__all__ = [
    "check_positive_int",
    "check_non_negative_int",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_fraction",
    "check_in_range",
    "check_choice",
]
