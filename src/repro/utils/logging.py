"""Logging helpers.

The library logs under the ``repro`` namespace and never configures the
root logger.  :func:`configure_logging` is a convenience for scripts,
examples and the CLI.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

_LIBRARY_LOGGER = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger below the library's ``repro`` namespace."""
    if name is None or name == _LIBRARY_LOGGER:
        return logging.getLogger(_LIBRARY_LOGGER)
    if name.startswith(_LIBRARY_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_LOGGER}.{name}")


def configure_logging(level: int = logging.INFO, stream=None) -> logging.Logger:
    """Attach a simple stream handler to the library logger.

    Safe to call repeatedly: existing handlers installed by this function
    are replaced rather than duplicated.
    """
    logger = logging.getLogger(_LIBRARY_LOGGER)
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
    )
    handler._repro_handler = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    return logger


__all__ = ["get_logger", "configure_logging"]
