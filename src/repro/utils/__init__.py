"""Shared utilities: RNG handling, validation helpers and logging."""

from repro.utils.rng import RandomSource, ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "RandomSource",
    "ensure_rng",
    "spawn_rngs",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability",
]
