"""Random-walk estimation of ``|V|`` and ``|E|`` (the paper's prior knowledge).

The problem definition (paper §3, assumption 2) takes ``|V|`` and
``|E|`` as known, pointing to Katzir, Liberty & Somekh (WWW 2011) and
the paper's own earlier work for how to estimate them when they are not
published.  This module implements those estimators so the library is
self-contained end-to-end:

* ``|V|`` — Katzir's collision estimator.  With degree-biased
  random-walk samples ``u_1 … u_k``,

  .. math::

     \\hat{|V|} = \\frac{(Σ_i d_{u_i}) · (Σ_i 1/d_{u_i})}{2 C}

  where ``C`` counts sample pairs ``i < j`` that hit the same node.
* ``|E|`` — Hardiman–Katzir style: the walk's harmonic-mean identity
  ``E[1/d] = |V| / 2|E|`` gives
  ``\\hat{|E|} = k · \\hat{|V|} / (2 Σ_i 1/d_{u_i})``.

Both estimators consume the same walk, so one crawl yields both priors.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import EstimationError
from repro.graph.api import RestrictedGraphAPI
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import check_non_negative_int, check_positive_int
from repro.walks.engine import RandomWalk, WalkResult
from repro.walks.kernels import SimpleRandomWalkKernel


@dataclass(frozen=True)
class SizeEstimate:
    """Joint estimate of ``|V|`` and ``|E|`` from one random-walk crawl."""

    num_nodes: float
    num_edges: float
    collisions: int
    sample_size: int
    api_calls: int


def _collision_count(result: WalkResult) -> int:
    """Number of unordered sample pairs that landed on the same node."""
    counts = Counter(result.nodes)
    return sum(c * (c - 1) // 2 for c in counts.values())


def estimate_num_nodes(result: WalkResult) -> float:
    """Katzir's collision estimator of ``|V|`` from walk samples."""
    if len(result) < 2:
        raise EstimationError("node-count estimation needs at least two samples")
    collisions = _collision_count(result)
    if collisions == 0:
        raise EstimationError(
            "no collisions observed; increase the walk length to estimate |V|"
        )
    sum_degree = float(sum(result.degrees))
    sum_inverse = float(sum(1.0 / d for d in result.degrees))
    return sum_degree * sum_inverse / (2.0 * collisions)


def estimate_num_edges(result: WalkResult, num_nodes: Optional[float] = None) -> float:
    """Estimate ``|E|`` from walk samples (and an ``|V|`` estimate).

    When *num_nodes* is omitted it is estimated from the same walk via
    :func:`estimate_num_nodes`.
    """
    if len(result) == 0:
        raise EstimationError("edge-count estimation needs at least one sample")
    if num_nodes is None:
        num_nodes = estimate_num_nodes(result)
    sum_inverse = float(sum(1.0 / d for d in result.degrees))
    if sum_inverse == 0:
        raise EstimationError("degenerate walk: every sampled degree was infinite")
    return len(result) * num_nodes / (2.0 * sum_inverse)


def estimate_graph_size(
    api: RestrictedGraphAPI,
    sample_size: int,
    burn_in: int = 0,
    rng: RandomSource = None,
) -> SizeEstimate:
    """Crawl the OSN once and estimate both ``|V|`` and ``|E|``.

    Parameters
    ----------
    api:
        Restricted neighbor-list access.
    sample_size:
        Number of post-burn-in walk steps.  Collisions are rare on large
        graphs, so this needs to be on the order of ``sqrt(|V|)`` or more
        for a stable ``|V|`` estimate (birthday bound).
    burn_in:
        Walk burn-in before collecting.
    rng:
        Seed or generator.
    """
    check_positive_int(sample_size, "sample_size")
    check_non_negative_int(burn_in, "burn_in")
    generator = ensure_rng(rng)
    walk = RandomWalk(api, SimpleRandomWalkKernel(), burn_in=burn_in, rng=generator)
    result = walk.run(sample_size)
    num_nodes = estimate_num_nodes(result)
    num_edges = estimate_num_edges(result, num_nodes)
    return SizeEstimate(
        num_nodes=num_nodes,
        num_edges=num_edges,
        collisions=_collision_count(result),
        sample_size=sample_size,
        api_calls=api.api_calls,
    )


__all__ = [
    "SizeEstimate",
    "estimate_num_nodes",
    "estimate_num_edges",
    "estimate_graph_size",
]
