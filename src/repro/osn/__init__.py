"""OSN-specific helpers that back the paper's prior-knowledge assumption."""

from repro.osn.size_estimation import (
    SizeEstimate,
    estimate_graph_size,
    estimate_num_edges,
    estimate_num_nodes,
)

__all__ = [
    "SizeEstimate",
    "estimate_graph_size",
    "estimate_num_edges",
    "estimate_num_nodes",
]
