"""Command-line interface: ``repro-osn`` / ``python -m repro``.

Sub-commands
------------
``datasets``
    Print the Table 1-style summary of every dataset stand-in.
``estimate``
    Estimate a target-edge count on one dataset with one algorithm.
``table``
    Reproduce one of the paper's NRMSE tables (4–17).
``figure``
    Reproduce the data series behind Figure 1 or 2.
``bounds``
    Print the Theorem 4.1–4.5 sample-size bounds (Tables 18–22 style).
``mixing``
    Print the measured mixing time of a dataset stand-in.
``select``
    Run the adaptive pilot-then-select strategy (paper §5.3 automated).
``cost``
    Profile the charged API calls of every algorithm at a fixed budget.
``serve``
    Boot the long-lived estimation service: publish one dataset into
    the shm/mmap store and answer micro-batched estimate queries over
    HTTP (``/healthz``, ``/stats``, ``POST /estimate``).
``sweep-spills``
    Reclaim orphaned ``$REPRO_MMAP_DIR`` spill files left behind by
    killed runs, plus committed journals and dead-pid scratch temps.
``fsck``
    Verify durable ``.npz`` artifacts: blake2b manifest check plus the
    deep :meth:`CSRGraph.validate_invariants` structural check.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.bounds import compute_all_bounds
from repro.core.samplers.csr_backend import BACKENDS, EXECUTIONS, REUSES
from repro.core.pipeline import available_algorithms, estimate_target_edge_count
from repro.datasets.registry import dataset_names, load_dataset
from repro.experiments.config import ExperimentConfig
from repro.graph.store import GRAPH_STORES
from repro.experiments.figures import run_paper_figure
from repro.experiments.reporting import (
    format_frequency_series,
    format_nrmse_table,
)
from repro.experiments.tables import list_tables, run_paper_table
from repro.graph.statistics import count_target_edges
from repro.utils.logging import configure_logging
from repro.walks.mixing import recommended_burn_in


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-osn`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-osn",
        description="Counting edges with target labels in OSNs via random walk "
        "(EDBT 2018 reproduction).",
    )
    parser.add_argument("--verbose", action="store_true", help="enable INFO logging")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list the dataset stand-ins")

    estimate = subparsers.add_parser("estimate", help="run one estimation")
    estimate.add_argument("--dataset", choices=dataset_names(), default="facebook")
    estimate.add_argument("--pair-index", type=int, default=0, help="target pair index")
    estimate.add_argument(
        "--algorithm", choices=available_algorithms(), default="NeighborExploration-HH"
    )
    estimate.add_argument("--budget", type=float, default=0.05, help="fraction of |V|")
    estimate.add_argument("--scale", type=float, default=0.5, help="dataset scale")
    estimate.add_argument("--seed", type=int, default=2018)
    estimate.add_argument(
        "--backend",
        choices=BACKENDS,
        default="python",
        help="walk backend: dict-based reference engine, vectorized CSR "
        "arrays, or numba-compiled kernels (bit-identical to csr; numpy "
        "fallback when numba is absent)",
    )

    table = subparsers.add_parser("table", help="reproduce a paper NRMSE table")
    table.add_argument("number", type=int, choices=list_tables())
    # None sentinels: only flags the user actually passed are pinned
    # against the REPRO_* environment overrides.
    table.add_argument("--repetitions", type=int, default=None, help="default: 20")
    table.add_argument("--scale", type=float, default=None, help="default: 0.25")
    table.add_argument("--seed", type=int, default=2018)
    table.add_argument(
        "--budgets",
        type=float,
        nargs="+",
        default=[0.01, 0.03, 0.05],
        help="sample-size fractions of |V|",
    )
    table.add_argument(
        "--backend",
        choices=BACKENDS,
        default="python",
        help="walk backend for the proposed algorithms ('compiled' runs "
        "numba-njit fleet kernels, bit-identical to 'csr')",
    )
    table.add_argument(
        "--execution",
        choices=EXECUTIONS,
        default="sequential",
        help="run each cell's repetitions one at a time or as one vectorized "
        "walker fleet (all ten algorithms; EX-* run line-graph fleets)",
    )
    table.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for cell-level parallelism (same table for any "
        "worker count; default: 1)",
    )
    table.add_argument(
        "--reuse",
        choices=REUSES,
        default="none",
        help="'prefix' reads every budget column off one max-budget fleet "
        "per algorithm, EX-* baselines included (O(max budget) walking)",
    )
    table.add_argument(
        "--representation",
        choices=("dict", "csr"),
        default="dict",
        help="dataset substrate; 'csr' synthesises array-natively (paper "
        "scale), reproduces all ten algorithm rows and needs "
        "--execution fleet or --reuse prefix",
    )
    table.add_argument(
        "--graph-store",
        choices=GRAPH_STORES,
        default="ram",
        dest="graph_store",
        help="CSR buffer store: 'shm' publishes one shared-memory segment "
        "that --jobs workers reattach via O(1) handles; 'mmap' memory-maps "
        "the dataset from an .npz sidecar (out-of-core); needs "
        "--representation csr (identical tables either way)",
    )
    table.add_argument(
        "--journal",
        default=None,
        help="path to an append-only experiment journal; every completed "
        "cell is made durable as it finishes, so a crashed run can be "
        "resumed (.journal.jsonl is appended to the name if missing)",
    )
    table.add_argument(
        "--resume",
        action="store_true",
        help="replay the finished cells of --journal and run only the "
        "missing ones (bit-identical to an uninterrupted run)",
    )

    figure = subparsers.add_parser("figure", help="reproduce a paper figure series")
    figure.add_argument("number", type=int, choices=[1, 2])
    figure.add_argument("--repetitions", type=int, default=None, help="default: 10")
    figure.add_argument("--scale", type=float, default=None, help="default: 0.25")
    figure.add_argument("--seed", type=int, default=2018)
    figure.add_argument(
        "--backend",
        choices=BACKENDS,
        default="python",
        help="walk backend for the proposed algorithms ('compiled' runs "
        "numba-njit fleet kernels, bit-identical to 'csr')",
    )
    figure.add_argument(
        "--execution",
        choices=EXECUTIONS,
        default="sequential",
        help="run each point's repetitions one at a time or as one vectorized "
        "walker fleet",
    )
    figure.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for point-level parallelism (same series for "
        "any worker count; default: 1)",
    )
    figure.add_argument(
        "--reuse",
        choices=REUSES,
        default="none",
        help="'prefix' classifies every target pair off one shared fleet "
        "per algorithm (the walk is label-agnostic)",
    )
    figure.add_argument(
        "--representation",
        choices=("dict", "csr"),
        default="dict",
        help="dataset substrate; 'csr' synthesises array-natively (paper "
        "scale) and needs --execution fleet or --reuse prefix",
    )
    figure.add_argument(
        "--graph-store",
        choices=GRAPH_STORES,
        default="ram",
        dest="graph_store",
        help="CSR buffer store: 'shm' shares one segment across --jobs "
        "workers; 'mmap' memory-maps the dataset (out-of-core); needs "
        "--representation csr",
    )
    figure.add_argument(
        "--journal",
        default=None,
        help="path to an append-only experiment journal (see 'table')",
    )
    figure.add_argument(
        "--resume",
        action="store_true",
        help="replay the finished points of --journal and run only the "
        "missing ones",
    )

    bounds = subparsers.add_parser("bounds", help="Theorem 4.1-4.5 sample-size bounds")
    bounds.add_argument("--dataset", choices=dataset_names(), default="facebook")
    bounds.add_argument("--pair-index", type=int, default=0)
    bounds.add_argument("--scale", type=float, default=0.5)
    bounds.add_argument("--epsilon", type=float, default=0.1)
    bounds.add_argument("--delta", type=float, default=0.1)
    bounds.add_argument("--seed", type=int, default=2018)

    mixing = subparsers.add_parser("mixing", help="measured mixing time of a dataset")
    mixing.add_argument("--dataset", choices=dataset_names(), default="facebook")
    mixing.add_argument("--scale", type=float, default=0.25)
    mixing.add_argument("--epsilon", type=float, default=1e-3)
    mixing.add_argument("--seed", type=int, default=2018)

    select = subparsers.add_parser(
        "select", help="adaptive pilot-then-select estimation (paper §5.3)"
    )
    select.add_argument("--dataset", choices=dataset_names(), default="pokec")
    select.add_argument("--pair-index", type=int, default=0)
    select.add_argument("--budget", type=float, default=0.05, help="fraction of |V|")
    select.add_argument("--threshold", type=float, default=0.05)
    select.add_argument("--scale", type=float, default=0.25)
    select.add_argument("--seed", type=int, default=2018)

    cost = subparsers.add_parser("cost", help="API calls charged per algorithm")
    cost.add_argument("--dataset", choices=dataset_names(), default="facebook")
    cost.add_argument("--pair-index", type=int, default=0)
    cost.add_argument("--budget", type=float, default=0.05, help="fraction of |V|")
    cost.add_argument("--repetitions", type=int, default=3)
    cost.add_argument("--scale", type=float, default=0.25)
    cost.add_argument("--seed", type=int, default=2018)

    serve = subparsers.add_parser(
        "serve", help="boot the long-lived estimation query server"
    )
    serve.add_argument("--dataset", choices=dataset_names(), default="facebook")
    serve.add_argument("--scale", type=float, default=0.25, help="dataset scale")
    serve.add_argument("--seed", type=int, default=0, help="dataset synthesis seed")
    serve.add_argument(
        "--graph-store",
        choices=GRAPH_STORES,
        default="shm",
        dest="graph_store",
        help="buffer store the graph is published into at startup: 'shm' "
        "(fits-in-RAM, fastest), 'mmap' (out-of-core sidecar), 'ram' "
        "(no publication; dev only)",
    )
    serve.add_argument(
        "--backend",
        choices=("csr", "compiled"),
        default="csr",
        help="fleet tier the server walks with: 'csr' (vectorized numpy) "
        "or 'compiled' (numba-njit kernels; numpy fallback with a typed "
        "warning when numba is absent) — answers are bit-identical",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000)
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        dest="batch_window_ms",
        help="micro-batch collection window; concurrent queries arriving "
        "within it share one max-budget prefix fleet",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        dest="cache_size",
        help="answer-cache capacity (0 disables caching)",
    )
    serve.add_argument(
        "--repetitions", type=int, default=20, help="default repetitions per query"
    )
    serve.add_argument(
        "--burn-in",
        type=int,
        default=None,
        dest="burn_in",
        help="default burn-in per query (default: measured on the graph)",
    )
    serve.add_argument(
        "--transport",
        choices=("auto", "fastapi", "stdlib"),
        default="auto",
        help="HTTP front: 'fastapi' (needs the optional dependency), "
        "'stdlib' (dependency-free asyncio server), 'auto' prefers "
        "fastapi and falls back",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        dest="deadline_ms",
        help="default per-query deadline; expired queries get a fast 504 "
        "and are skipped at fleet-plan boundaries (default: none)",
    )
    serve.add_argument(
        "--max-in-flight",
        type=int,
        default=None,
        dest="max_in_flight",
        help="admission bound on queries simultaneously awaiting answers; "
        "overflow is served from stale cache (degraded) or 429'd "
        "(default: unbounded)",
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        dest="breaker_threshold",
        help="consecutive fleet failures that trip an algorithm's circuit "
        "breaker open",
    )
    serve.add_argument(
        "--breaker-cooldown-ms",
        type=float,
        default=5000.0,
        dest="breaker_cooldown_ms",
        help="how long an open breaker waits before half-opening on a "
        "probe query",
    )
    serve.add_argument(
        "--faults",
        default=None,
        help="deterministic fault-injection plan for chaos runs, e.g. "
        "'seed=7;store.attach=error,count=1;worker.cell=kill,count=1' "
        "(see docs/operations.md; REPRO_FAULTS is the env equivalent)",
    )
    serve.add_argument(
        "--snapshot",
        default=None,
        dest="snapshot_path",
        help="checkpoint the answer cache to this path for warm restarts "
        "(written on a timer and on graceful shutdown; loaded at boot "
        "when the graph fingerprint matches)",
    )
    serve.add_argument(
        "--snapshot-interval-ms",
        type=float,
        default=30000.0,
        dest="snapshot_interval_ms",
        help="periodic snapshot timer (needs --snapshot); this is what a "
        "SIGKILL'd server warm-restarts from",
    )

    sweep = subparsers.add_parser(
        "sweep-spills",
        help="reclaim orphaned $REPRO_MMAP_DIR spill files from dead runs",
    )
    sweep.add_argument(
        "--directory",
        default=None,
        help="spill directory to sweep (default: $REPRO_MMAP_DIR or the "
        "tempdir spill location)",
    )
    sweep.add_argument(
        "--max-age-seconds",
        type=float,
        default=None,
        dest="max_age_seconds",
        help="also delete pid-less spill files older than this (without it "
        "only files whose recorded owner pid is dead are touched)",
    )
    sweep.add_argument(
        "--dry-run",
        action="store_true",
        dest="dry_run",
        help="report what would be deleted without deleting",
    )

    fsck = subparsers.add_parser(
        "fsck",
        help="verify checksums and CSR invariants of durable .npz artifacts",
    )
    fsck.add_argument(
        "paths",
        nargs="+",
        help=".npz artifact files, or directories to scan for them",
    )
    fsck.add_argument(
        "--mode",
        choices=("full", "sampled"),
        default="full",
        help="manifest verification depth: every byte, or member sizes "
        "plus sampled pages (default: full)",
    )
    fsck.add_argument(
        "--no-structure",
        action="store_true",
        dest="no_structure",
        help="skip the deep CSR invariant check (checksums only)",
    )
    fsck.add_argument(
        "--symmetry-samples",
        type=int,
        default=1024,
        dest="symmetry_samples",
        help="adjacency slots to spot-check for symmetry (0 disables)",
    )
    return parser


def _resolve_run_size(args, default_repetitions: int, default_scale: float):
    """Resolve --repetitions/--scale/--jobs sentinels against defaults.

    Returns ``(repetitions, scale, n_jobs, pinned)`` where *pinned*
    names only the flags the user actually passed — those beat exported
    ``REPRO_*`` variables, while untouched defaults stay overridable.
    """
    pinned = tuple(
        name
        for name, value in (
            ("repetitions", args.repetitions),
            ("scale", args.scale),
            ("n_jobs", args.jobs),
        )
        if value is not None
    )
    repetitions = default_repetitions if args.repetitions is None else args.repetitions
    scale = default_scale if args.scale is None else args.scale
    n_jobs = 1 if args.jobs is None else args.jobs
    return repetitions, scale, n_jobs, pinned


def _command_datasets(args) -> int:
    print(f"{'name':<14}{'|V|':>10}{'|E|':>12}{'max deg':>10}{'avg deg':>10}{'labels':>8}")
    for name in dataset_names():
        dataset = load_dataset(name, seed=0, scale=0.25)
        summary = dataset.summary()
        print(
            f"{name:<14}{summary.num_nodes:>10}{summary.num_edges:>12}"
            f"{summary.max_degree:>10}{summary.average_degree:>10.1f}"
            f"{summary.num_distinct_labels:>8}"
        )
        for pair in dataset.target_pairs:
            count = dataset.target_counts[pair]
            print(f"    target pair {pair}: F={count} ({100 * dataset.fraction(pair):.3f}% of |E|)")
    return 0


def _command_estimate(args) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    t1, t2 = dataset.target_pairs[args.pair_index]
    truth = count_target_edges(dataset.graph, t1, t2)
    result = estimate_target_edge_count(
        dataset.graph,
        t1,
        t2,
        algorithm=args.algorithm,
        budget_fraction=args.budget,
        seed=args.seed,
        backend=args.backend,
    )
    print(f"dataset            : {dataset.spec.paper_name} (scale {args.scale})")
    print(f"target labels      : ({t1}, {t2})")
    print(f"backend            : {args.backend}")
    print(f"algorithm          : {result.estimator}")
    print(f"sample size (k)    : {result.sample_size}")
    print(f"API calls charged  : {result.api_calls}")
    print(f"estimated F        : {result.estimate:.1f}")
    print(f"true F             : {truth}")
    print(f"relative error     : {result.relative_error(truth):.3f}")
    return 0


def _command_table(args) -> int:
    repetitions, scale, n_jobs, pinned = _resolve_run_size(
        args, default_repetitions=20, default_scale=0.25
    )
    config = ExperimentConfig(
        dataset="facebook",  # replaced by run_paper_table with the table's dataset
        sample_fractions=tuple(args.budgets),
        repetitions=repetitions,
        seed=args.seed,
        scale=scale,
        backend=args.backend,
        execution=args.execution,
        reuse=args.reuse,
        representation=args.representation,
        graph_store=args.graph_store,
        n_jobs=n_jobs,
        journal=args.journal,
        resume=args.resume,
        pinned=pinned,
    )
    result = run_paper_table(args.number, config)
    print(format_nrmse_table(result.table, caption=f"Reproduction of paper Table {args.number}"))
    reproduced_name, reproduced_value = result.reproduced_best()
    paper_name, paper_value = result.paper_best()
    print()
    print(f"paper best at 5%|V|      : {paper_name} (NRMSE {paper_value})")
    print(f"reproduced best (largest): {reproduced_name} (NRMSE {reproduced_value:.3f})")
    agreement = result.agreement()
    print(f"family agreement         : {agreement['family_match']}")
    print(f"proposed beats baselines : {agreement['proposed_wins']}")
    return 0


def _command_figure(args) -> int:
    repetitions, scale, n_jobs, pinned = _resolve_run_size(
        args, default_repetitions=10, default_scale=0.25
    )
    config = ExperimentConfig(
        dataset="orkut",  # replaced by run_paper_figure with the figure's dataset
        repetitions=repetitions,
        seed=args.seed,
        scale=scale,
        backend=args.backend,
        execution=args.execution,
        reuse=args.reuse,
        representation=args.representation,
        graph_store=args.graph_store,
        n_jobs=n_jobs,
        journal=args.journal,
        resume=args.resume,
        pinned=pinned,
    )
    result = run_paper_figure(
        args.number, config, repetitions=None if args.repetitions is None else repetitions
    )
    print(
        format_frequency_series(
            result.points,
            caption=f"Reproduction of paper Figure {args.number} "
            f"({result.definition.dataset}, 5%|V| API calls)",
        )
    )
    return 0


def _command_bounds(args) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    t1, t2 = dataset.target_pairs[args.pair_index]
    bounds = compute_all_bounds(dataset.graph, t1, t2, epsilon=args.epsilon, delta=args.delta)
    print(f"dataset      : {dataset.spec.paper_name} (scale {args.scale})")
    print(f"target labels: ({t1}, {t2}), F = {bounds.true_count}")
    print(f"(epsilon, delta) = ({args.epsilon}, {args.delta})")
    for name, value in bounds.as_dict().items():
        print(f"  {name:<26}{value:>16.1f}")
    return 0


def _command_mixing(args) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    burn_in = recommended_burn_in(dataset.graph, epsilon=args.epsilon, rng=args.seed)
    paper = dataset.spec.paper_mixing_time
    print(f"dataset                 : {dataset.spec.paper_name} (scale {args.scale})")
    print(f"measured burn-in T({args.epsilon}): {burn_in}")
    print(f"paper-reported mixing time (full graph): {paper}")
    return 0


def _command_select(args) -> int:
    from repro.core.selector import estimate_with_adaptive_selection

    dataset = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    t1, t2 = dataset.target_pairs[args.pair_index]
    truth = count_target_edges(dataset.graph, t1, t2)
    sample_size = max(1, int(args.budget * dataset.graph.num_nodes))
    report = estimate_with_adaptive_selection(
        dataset.graph,
        t1,
        t2,
        sample_size=sample_size,
        threshold=args.threshold,
        seed=args.seed,
    )
    print(f"dataset              : {dataset.spec.paper_name} (scale {args.scale})")
    print(f"target labels        : ({t1}, {t2})")
    print(f"pilot F/|E| estimate : {report.pilot_relative_count:.5f} (threshold {report.threshold})")
    print(f"selected algorithm   : {report.selected_algorithm}")
    print(f"final estimate       : {report.estimate:.1f}")
    print(f"true F               : {truth}")
    if truth:
        print(f"relative error       : {abs(report.estimate - truth) / truth:.3f}")
    return 0


def _command_cost(args) -> int:
    from repro.experiments.cost import format_cost_table, profile_api_costs

    dataset = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    t1, t2 = dataset.target_pairs[args.pair_index]
    sample_size = max(1, int(args.budget * dataset.graph.num_nodes))
    profiles = profile_api_costs(
        dataset.graph,
        t1,
        t2,
        sample_size=sample_size,
        repetitions=args.repetitions,
        seed=args.seed,
    )
    print(f"dataset: {dataset.spec.paper_name} (scale {args.scale}), "
          f"target pair ({t1}, {t2}), k={sample_size}")
    print(format_cost_table(profiles))
    return 0


def _command_serve(args) -> int:
    from repro.service import EstimationService, ServiceConfig, run_server

    config = ServiceConfig(
        dataset=args.dataset,
        scale=args.scale,
        seed=args.seed,
        graph_store=args.graph_store,
        backend=args.backend,
        host=args.host,
        port=args.port,
        batch_window_ms=args.batch_window_ms,
        cache_size=args.cache_size,
        repetitions=args.repetitions,
        burn_in=args.burn_in,
        transport=args.transport,
        deadline_ms=args.deadline_ms,
        max_in_flight=args.max_in_flight,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_ms=args.breaker_cooldown_ms,
        faults=args.faults,
        snapshot_path=args.snapshot_path,
        snapshot_interval_ms=args.snapshot_interval_ms,
    )
    if config.faults is not None:
        from repro.resilience import FaultInjector, FaultPlan, install_injector

        install_injector(FaultInjector(FaultPlan.parse(config.faults)))
    dataset = load_dataset(config.dataset, seed=config.seed, scale=config.scale)
    service = EstimationService(
        dataset.graph,
        graph_store=config.graph_store,
        backend=config.backend,
        default_repetitions=config.repetitions,
        default_burn_in=config.burn_in,
        cache_size=config.cache_size,
        name=f"{config.dataset}-scale{config.scale}",
        breaker_threshold=config.breaker_threshold,
        breaker_cooldown_seconds=config.breaker_cooldown_seconds,
        snapshot_path=config.snapshot_path,
    )
    try:
        run_server(
            service,
            host=config.host,
            port=config.port,
            transport=config.transport,
            window_seconds=config.window_seconds,
            max_in_flight=config.max_in_flight,
            deadline_ms=config.deadline_ms,
            snapshot_interval_seconds=config.snapshot_interval_seconds,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        print("shutting down")
    finally:
        service.close()
    return 0


def _command_sweep_spills(args) -> int:
    from repro.graph.store import sweep_orphan_spills

    victims = sweep_orphan_spills(
        directory=args.directory,
        max_age_seconds=args.max_age_seconds,
        dry_run=args.dry_run,
    )
    verb = "would remove" if args.dry_run else "removed"
    for victim in victims:
        print(f"{verb}: {victim}")
    print(f"{verb} {len(victims)} orphaned spill file(s)")
    return 0


def _command_fsck(args) -> int:
    import numpy as np

    from repro.durability import verify_artifact
    from repro.exceptions import ArtifactCorruptError
    from repro.graph.csr import CSRGraph

    targets: List = []
    for raw in args.paths:
        path = Path(raw)
        if path.is_dir():
            targets.extend(sorted(path.glob("*.npz")))
        else:
            targets.append(path)
    if not targets:
        print("fsck: no .npz artifacts found")
        return 0
    corrupt = 0
    for path in targets:
        try:
            outcome = verify_artifact(path, mode=args.mode)
            detail = f"manifest {outcome}"
            if not args.no_structure:
                with np.load(path) as payload:
                    arrays = {key: payload[key] for key in payload.files}
                if "indptr" in arrays and "indices" in arrays:
                    report = CSRGraph(
                        arrays.get("node_ids"),
                        arrays["indptr"],
                        arrays["indices"],
                        label_array=arrays.get("label_array"),
                        validate=False,
                    ).validate_invariants(symmetry_samples=args.symmetry_samples)
                    detail += (
                        f", structure ok ({report['num_nodes']} nodes, "
                        f"{report['num_edges']} edges)"
                    )
                else:
                    detail += ", structure skipped (not a CSR artifact)"
        except ArtifactCorruptError as exc:
            corrupt += 1
            print(f"CORRUPT {path}: {exc}")
            continue
        print(f"ok      {path}: {detail}")
    clean = len(targets) - corrupt
    print(f"fsck: {clean} clean, {corrupt} corrupt of {len(targets)} artifact(s)")
    return 1 if corrupt else 0


_COMMANDS = {
    "datasets": _command_datasets,
    "estimate": _command_estimate,
    "table": _command_table,
    "figure": _command_figure,
    "bounds": _command_bounds,
    "mixing": _command_mixing,
    "select": _command_select,
    "cost": _command_cost,
    "serve": _command_serve,
    "sweep-spills": _command_sweep_spills,
    "fsck": _command_fsck,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        configure_logging()
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
