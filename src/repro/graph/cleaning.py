"""Graph cleaning used in the paper's experimental setup (§5.1).

The paper prepares every dataset the same way:

1. drop edge directions (treat the graph as undirected),
2. drop self-loops and multi-edges,
3. keep only the largest connected component.

:func:`simplify_osn_graph` performs all three on raw edge lists, and
:func:`largest_connected_component` extracts the component from an
existing :class:`LabeledGraph`.

The CSR-native data plane gets the same treatment without touching a
Python dict: :func:`largest_component_mask` runs a frontier BFS directly
on ``indptr`` / ``indices`` arrays and
:func:`largest_connected_component_csr` compacts a
:class:`~repro.graph.csr.CSRGraph` to its largest component with pure
array gathers — the path the million-node generators and the numpy
edge-list loader go through.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.exceptions import EmptyGraphError
from repro.graph.csr import sorted_unique
from repro.graph.labeled_graph import Edge, Label, LabeledGraph, Node


def deduplicate_edges(edges: Iterable[Edge]) -> List[Edge]:
    """Drop self-loops and parallel edges from an edge list.

    Direction is ignored: ``(u, v)`` and ``(v, u)`` count as the same
    edge and only the first occurrence is kept.
    """
    seen: Set[frozenset] = set()
    result: List[Edge] = []
    for u, v in edges:
        if u == v:
            continue
        key = frozenset((u, v))
        if key in seen:
            continue
        seen.add(key)
        result.append((u, v))
    return result


def connected_components(graph: LabeledGraph) -> List[Set[Node]]:
    """Return the connected components of *graph* as sets of nodes.

    Components are returned in descending order of size.  Uses an
    iterative level-by-level frontier BFS (plain lists, one visited set
    for the whole graph) instead of the old per-node deque/set flood
    fill — on large graphs the per-node set churn dominated load time.
    """
    visited: Set[Node] = set()
    components: List[Set[Node]] = []
    neighbors = graph.neighbors
    for start in graph.nodes():
        if start in visited:
            continue
        visited.add(start)
        members: List[Node] = [start]
        frontier: List[Node] = [start]
        while frontier:
            next_frontier: List[Node] = []
            for node in frontier:
                for neighbor in neighbors(node):
                    if neighbor not in visited:
                        visited.add(neighbor)
                        members.append(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        components.append(set(members))
    components.sort(key=len, reverse=True)
    return components


def largest_component_mask(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Boolean mask of the largest connected component of a CSR adjacency.

    A frontier BFS on raw arrays: each level is one ``repeat``-based
    multi-range gather of the frontier's neighborhoods, so the per-level
    work is numpy-vectorized and no per-node Python object is ever
    allocated.  Ties between equal-size components break toward the
    lowest-indexed seed (deterministic).  Isolated nodes form singleton
    components.
    """
    num_nodes = int(indptr.size - 1)
    if num_nodes == 0:
        return np.zeros(0, dtype=bool)
    degrees = np.diff(indptr)
    component = np.full(num_nodes, -1, dtype=np.int64)

    def bfs(seed: int, label: int) -> int:
        component[seed] = label
        size = 1
        frontier = np.array([seed], dtype=np.int64)
        while frontier.size:
            lengths = degrees[frontier]
            total = int(lengths.sum())
            if total == 0:
                break
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(lengths) - lengths, lengths
            )
            neighbors = indices[np.repeat(indptr[frontier], lengths) + offsets]
            fresh = sorted_unique(neighbors[component[neighbors] < 0])
            component[fresh] = label
            size += int(fresh.size)
            frontier = fresh
        return size

    # Seed from the max-degree node: on OSN-shaped graphs it sits in the
    # giant component, so one BFS usually already covers a majority of
    # the nodes and the remaining seeds terminate via the
    # cannot-beat-the-best check below instead of being explored.
    best_label = 0
    best_size = bfs(int(np.argmax(degrees)), 0)
    visited = best_size
    label = 1
    cursor = 0
    while num_nodes - visited > best_size:
        while component[cursor] >= 0:
            cursor += 1
        size = bfs(cursor, label)
        visited += size
        if size > best_size:
            best_label, best_size = label, size
        label += 1
    return component == best_label


def largest_connected_component_csr(csr) -> "CSRGraph":
    """Compact a :class:`~repro.graph.csr.CSRGraph` to its largest component.

    Pure array work: the component mask comes from
    :func:`largest_component_mask`, surviving rows are gathered with one
    ``repeat``/``cumsum`` pass and neighbor indices are renumbered
    through a dense old→new map.  Labels (array or sets) and original
    node identifiers are carried over; a graph that is already connected
    is returned as-is (no copy).
    """
    from repro.graph.csr import CSRGraph

    if csr.num_nodes == 0:
        raise EmptyGraphError("cannot take the largest component of an empty graph")
    mask = largest_component_mask(csr.indptr, csr.indices)
    kept = np.flatnonzero(mask)
    if kept.size == csr.num_nodes:
        return csr
    remap = np.cumsum(mask, dtype=np.int64) - 1
    lengths = csr.degrees[kept]
    starts = csr.indptr[kept]
    total = int(lengths.sum())
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lengths) - lengths, lengths
    )
    # A component is closed under adjacency, so every gathered neighbor
    # survives and the remap is total on them.
    new_indices = remap[csr.indices[np.repeat(starts, lengths) + offsets]]
    new_indptr = np.zeros(kept.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=new_indptr[1:])

    old_ids = csr.node_ids
    if isinstance(old_ids, range):
        node_ids: Optional[np.ndarray] = kept
    elif isinstance(old_ids, np.ndarray):
        node_ids = old_ids[kept]
    else:
        node_ids = np.asarray([old_ids[i] for i in kept])
    label_array = csr.label_array()
    if label_array is not None:
        return CSRGraph(node_ids, new_indptr, new_indices, label_array=label_array[kept])
    label_sets = [csr.labels_of(int(i)) for i in kept] if csr.all_labels() else None
    return CSRGraph(node_ids, new_indptr, new_indices, label_sets)


def largest_connected_component(graph: LabeledGraph) -> LabeledGraph:
    """Return a new graph restricted to the largest connected component."""
    if graph.num_nodes == 0:
        raise EmptyGraphError("cannot take the largest component of an empty graph")
    components = connected_components(graph)
    keep = components[0]
    if len(keep) == graph.num_nodes:
        return graph.copy()
    return induced_subgraph(graph, keep)


def induced_subgraph(graph: LabeledGraph, nodes: Iterable[Node]) -> LabeledGraph:
    """Return the subgraph induced by *nodes*, preserving labels."""
    keep = set(nodes)
    result = LabeledGraph()
    for node in keep:
        result.add_node(node, graph.labels_of(node))
    for node in keep:
        for neighbor in graph.neighbors(node):
            if neighbor in keep and not result.has_edge(node, neighbor):
                result.add_edge(node, neighbor)
    return result


def is_connected(graph: LabeledGraph) -> bool:
    """Return whether *graph* is connected (empty graphs are not)."""
    if graph.num_nodes == 0:
        return False
    components = connected_components(graph)
    return len(components[0]) == graph.num_nodes


def simplify_osn_graph(
    edges: Iterable[Edge],
    labels: Optional[Dict[Node, Iterable[Label]]] = None,
    keep_largest_component: bool = True,
) -> LabeledGraph:
    """Build a cleaned :class:`LabeledGraph` from a raw OSN edge list.

    Mirrors the paper's preprocessing: symmetrise, drop self-loops and
    multi-edges, and optionally keep only the largest connected
    component.  Nodes that appear only in *labels* but not in any edge
    are dropped (isolated nodes can never be reached by a random walk).
    """
    cleaned = deduplicate_edges(edges)
    graph = LabeledGraph.from_edges(cleaned, labels=None)
    if labels:
        for node, node_labels in labels.items():
            if graph.has_node(node):
                graph.set_labels(node, node_labels)
    if keep_largest_component and graph.num_nodes > 0:
        graph = largest_connected_component(graph)
    return graph


__all__ = [
    "deduplicate_edges",
    "connected_components",
    "largest_connected_component",
    "largest_component_mask",
    "largest_connected_component_csr",
    "induced_subgraph",
    "is_connected",
    "simplify_osn_graph",
]
