"""Graph cleaning used in the paper's experimental setup (§5.1).

The paper prepares every dataset the same way:

1. drop edge directions (treat the graph as undirected),
2. drop self-loops and multi-edges,
3. keep only the largest connected component.

:func:`simplify_osn_graph` performs all three on raw edge lists, and
:func:`largest_connected_component` extracts the component from an
existing :class:`LabeledGraph`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.exceptions import EmptyGraphError
from repro.graph.labeled_graph import Edge, Label, LabeledGraph, Node


def deduplicate_edges(edges: Iterable[Edge]) -> List[Edge]:
    """Drop self-loops and parallel edges from an edge list.

    Direction is ignored: ``(u, v)`` and ``(v, u)`` count as the same
    edge and only the first occurrence is kept.
    """
    seen: Set[frozenset] = set()
    result: List[Edge] = []
    for u, v in edges:
        if u == v:
            continue
        key = frozenset((u, v))
        if key in seen:
            continue
        seen.add(key)
        result.append((u, v))
    return result


def connected_components(graph: LabeledGraph) -> List[Set[Node]]:
    """Return the connected components of *graph* as sets of nodes.

    Components are returned in descending order of size.  Uses an
    iterative BFS so very deep components do not hit the recursion limit.
    """
    visited: Set[Node] = set()
    components: List[Set[Node]] = []
    for start in graph.nodes():
        if start in visited:
            continue
        component: Set[Node] = {start}
        visited.add(start)
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor in graph.neighbors(node):
                if neighbor not in visited:
                    visited.add(neighbor)
                    component.add(neighbor)
                    queue.append(neighbor)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def largest_connected_component(graph: LabeledGraph) -> LabeledGraph:
    """Return a new graph restricted to the largest connected component."""
    if graph.num_nodes == 0:
        raise EmptyGraphError("cannot take the largest component of an empty graph")
    components = connected_components(graph)
    keep = components[0]
    if len(keep) == graph.num_nodes:
        return graph.copy()
    return induced_subgraph(graph, keep)


def induced_subgraph(graph: LabeledGraph, nodes: Iterable[Node]) -> LabeledGraph:
    """Return the subgraph induced by *nodes*, preserving labels."""
    keep = set(nodes)
    result = LabeledGraph()
    for node in keep:
        result.add_node(node, graph.labels_of(node))
    for node in keep:
        for neighbor in graph.neighbors(node):
            if neighbor in keep and not result.has_edge(node, neighbor):
                result.add_edge(node, neighbor)
    return result


def is_connected(graph: LabeledGraph) -> bool:
    """Return whether *graph* is connected (empty graphs are not)."""
    if graph.num_nodes == 0:
        return False
    components = connected_components(graph)
    return len(components[0]) == graph.num_nodes


def simplify_osn_graph(
    edges: Iterable[Edge],
    labels: Optional[Dict[Node, Iterable[Label]]] = None,
    keep_largest_component: bool = True,
) -> LabeledGraph:
    """Build a cleaned :class:`LabeledGraph` from a raw OSN edge list.

    Mirrors the paper's preprocessing: symmetrise, drop self-loops and
    multi-edges, and optionally keep only the largest connected
    component.  Nodes that appear only in *labels* but not in any edge
    are dropped (isolated nodes can never be reached by a random walk).
    """
    cleaned = deduplicate_edges(edges)
    graph = LabeledGraph.from_edges(cleaned, labels=None)
    if labels:
        for node, node_labels in labels.items():
            if graph.has_node(node):
                graph.set_labels(node, node_labels)
    if keep_largest_component and graph.num_nodes > 0:
        graph = largest_connected_component(graph)
    return graph


__all__ = [
    "deduplicate_edges",
    "connected_components",
    "largest_connected_component",
    "induced_subgraph",
    "is_connected",
    "simplify_osn_graph",
]
