"""Pluggable buffer backends for :class:`~repro.graph.csr.CSRGraph`.

A CSR graph is, at bottom, a handful of flat numpy arrays.  Historically
those arrays always lived in process-private RAM; this module makes the
backing store pluggable, which is what both scale ceilings named in the
roadmap need:

* ``"ram"`` — plain numpy arrays (the default, unchanged behavior);
* ``"shm"`` — one POSIX shared-memory segment
  (:mod:`multiprocessing.shared_memory`) holding every buffer, so a
  fleet of worker processes can attach the *same physical pages*
  instead of each receiving a multi-hundred-megabyte pickle;
* ``"mmap"`` — :class:`numpy.memmap` views over an **uncompressed**
  ``.npz`` sidecar file, so a graph larger than physical memory is
  paged in on demand (out-of-core) and any number of processes share
  the page cache.

The unit of exchange is a :class:`CSRHandle`: a tiny, picklable
descriptor (segment name / file path plus per-array dtype, shape and
byte offset) that reattaches **zero-copy** in another process via
:func:`attach_csr`.  A shm/mmap-backed :class:`CSRGraph` pickles *as*
its handle (see :meth:`CSRGraph.__reduce_ex__`), so shipping one to a
``ProcessPoolExecutor`` worker costs O(1) bytes regardless of graph
size — the difference between "each worker deserialises Orkut" and
"each worker opens Orkut".

Ownership and cleanup semantics
-------------------------------

:func:`publish_csr` returns a :class:`CSRPublication`, which *owns* the
external resource (the segment, or the spilled sidecar file):

* workers that :func:`attach_csr` a handle own nothing — their mapping
  dies with the process (attachments deliberately bypass the
  ``resource_tracker``, which would otherwise unlink a segment the
  moment the *first* worker exits);
* the publisher must call :meth:`CSRPublication.unlink` (or use the
  publication as a context manager) when the fleet is done;
* a publication garbage-collected without ``unlink`` emits a
  :class:`ResourceWarning` *and* cleans up best-effort, so leak bugs
  are loud in ``-W error::ResourceWarning`` runs (CI sets exactly that
  flag) instead of silently filling ``/dev/shm``.

The ``.npz`` format used by :func:`save_csr_npz` is the plain
uncompressed archive :func:`numpy.savez` writes, which is also what the
``repro.graph.io`` edge-list sidecar cache uses — so existing sidecars
open memmap-native with no conversion step
(:func:`npz_array_specs` locates each member's raw bytes inside the
zip and hands them to :class:`numpy.memmap` directly).
"""

from __future__ import annotations

import atexit
import mmap as _mmap_module
import os
import pickle
import re
import tempfile
import time
import uuid
import warnings
import weakref
import zipfile
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.durability import (
    JOURNAL_SUFFIX,
    SCRATCH_PATTERN,
    journal_is_committed,
    verify_artifact,
)
from repro.durability import write_npz as _write_checksummed_npz
from repro.exceptions import ConfigurationError, StoreAttachError
from repro.graph.csr import CSRGraph
from repro.resilience.faults import fire

#: Buffer backends a CSR graph can live in, and the value set of every
#: ``graph_store`` knob (config, CLI, registry, runner).
GRAPH_STORES: Tuple[str, ...] = ("ram", "shm", "mmap")

#: Buffer alignment inside a shared-memory segment (numpy is happiest
#: on cache-line-or-better boundaries; 64 covers every dtype here).
_SHM_ALIGN = 64


def validate_graph_store(store: str) -> str:
    """Return *store* or raise the shared unknown-graph-store error."""
    if store not in GRAPH_STORES:
        raise ConfigurationError(
            f"unknown graph store {store!r}; available: {', '.join(GRAPH_STORES)}"
        )
    return store


@dataclass(frozen=True)
class ArraySpec:
    """Where one named buffer lives inside a segment or sidecar file.

    ``offset`` is a byte offset — into the shared-memory segment for the
    ``"shm"`` store, into the ``.npz`` file (past the zip local header
    and the ``.npy`` member header) for ``"mmap"``.
    """

    key: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    def size_bytes(self) -> int:
        """Byte length of the described buffer."""
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class CSRHandle:
    """O(1)-picklable descriptor of an externally-backed CSR graph.

    ``location`` is the shared-memory segment name (``store="shm"``) or
    the sidecar file path (``store="mmap"``); ``arrays`` describes the
    buffers by key — ``"indptr"`` and ``"indices"`` always, plus
    ``"label_array"`` / ``"node_ids"`` when the graph carries them.
    :func:`attach_csr` turns a handle back into a zero-copy
    :class:`~repro.graph.csr.CSRGraph` in any process that can reach
    the segment/file.

    Derived caches travel too: any label masks, incident-target-edge
    arrays and ground-truth counts the publisher had already computed
    are published alongside the buffers (``masks`` / ``incident`` map
    label keys to array specs, ``target_counts`` carries the scalars),
    so an attached graph starts *warm* — a worker never repeats the
    publisher's O(|E|) classification passes.  The handle itself stays
    a few hundred bytes.
    """

    store: str
    location: str
    arrays: Tuple[ArraySpec, ...]
    #: ``(label, array_key)`` pairs for published label masks.
    masks: Tuple[Tuple[object, str], ...] = ()
    #: ``(t1, t2, array_key)`` triples for published incident counts.
    incident: Tuple[Tuple[object, object, str], ...] = ()
    #: ``(t1, t2, count)`` ground-truth target-edge counts.
    target_counts: Tuple[Tuple[object, object, int], ...] = ()

    def __post_init__(self) -> None:
        if self.store not in ("shm", "mmap"):
            raise ConfigurationError(
                f"a CSRHandle describes an external store (shm or mmap), "
                f"got {self.store!r}"
            )

    def spec(self, key: str) -> Optional[ArraySpec]:
        """The :class:`ArraySpec` named *key*, or ``None``."""
        for spec in self.arrays:
            if spec.key == key:
                return spec
        return None


def _publishable_arrays(csr: CSRGraph) -> List[Tuple[str, np.ndarray]]:
    """The (key, array) payload of *csr*, or raise if it has any.

    Python-object state (per-node label *sets*, non-array node ids)
    cannot live in a flat buffer; such graphs predate the array-native
    plane and must be re-labeled with a ``label_array`` first.
    """
    payload: List[Tuple[str, np.ndarray]] = [
        ("indptr", csr.indptr),
        ("indices", csr.indices),
    ]
    if csr._label_sets is not None:
        raise ConfigurationError(
            "set-labeled CSR graphs cannot be published to an external "
            "store; relabel with a label_array (the array labelers) first"
        )
    label_array = csr.label_array()
    if label_array is not None:
        payload.append(("label_array", np.ascontiguousarray(label_array)))
    node_ids = csr._node_ids
    if node_ids is not None:
        if not isinstance(node_ids, np.ndarray):
            raise ConfigurationError(
                "CSR graphs with Python-object node ids cannot be published "
                "to an external store; use identity or numpy node ids"
            )
        payload.append(("node_ids", np.ascontiguousarray(node_ids)))
    return payload


def _cache_payload(csr: CSRGraph) -> Tuple[
    List[Tuple[str, np.ndarray]],
    Tuple[Tuple[object, str], ...],
    Tuple[Tuple[object, object, str], ...],
    Tuple[Tuple[object, object, int], ...],
]:
    """Whatever derived label caches *csr* already computed, as buffers.

    The publisher typically computed the ground truth before fanning
    out, which populated the label masks and the incident-target-edge
    arrays — exactly the O(|E|)-to-derive, O(|V|)-to-store arrays every
    worker needs for classification.  Publishing them costs a few |V|
    buffers in the segment and saves each attacher the recompute.
    """
    payload: List[Tuple[str, np.ndarray]] = []
    masks = []
    for position, (label, mask) in enumerate(csr._mask_cache.items()):
        key = f"cache_mask_{position}"
        payload.append((key, np.ascontiguousarray(mask)))
        masks.append((label, key))
    incident = []
    for position, (pair, counts) in enumerate(csr._incident_cache.items()):
        key = f"cache_incident_{position}"
        payload.append((key, np.ascontiguousarray(counts)))
        incident.append((pair[0], pair[1], key))
    target_counts = tuple(
        (pair[0], pair[1], int(count))
        for pair, count in csr._target_count_cache.items()
    )
    return payload, tuple(masks), tuple(incident), target_counts


def _align(offset: int) -> int:
    return (offset + _SHM_ALIGN - 1) // _SHM_ALIGN * _SHM_ALIGN


def _build_csr(
    arrays: Dict[str, np.ndarray], store: str, owner, handle: "CSRHandle"
) -> CSRGraph:
    """Assemble an attached CSRGraph from named buffers (zero-copy).

    Published derived caches (label masks, incident counts, ground-truth
    counts) are re-wired from the handle's manifest, so the attached
    graph classifies without repeating the publisher's O(|E|) passes.
    """
    csr = CSRGraph(
        arrays.get("node_ids"),
        arrays["indptr"],
        arrays["indices"],
        label_array=arrays.get("label_array"),
        validate=False,
    )
    csr.store = store
    csr._buffer_owner = owner
    csr._handle = handle
    for label, key in handle.masks:
        if key in arrays:
            csr._mask_cache[label] = arrays[key]
    for t1, t2, key in handle.incident:
        if key in arrays:
            csr._incident_cache[(t1, t2)] = arrays[key]
    for t1, t2, count in handle.target_counts:
        csr._target_count_cache[(t1, t2)] = int(count)
    csr.seal_buffers(f"attached from {store}")
    return csr


# ----------------------------------------------------------------------
# shared-memory backend
# ----------------------------------------------------------------------
def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without resource-tracker registration.

    On 3.8–3.12 attaching registers the segment with the process's
    ``resource_tracker``, which *unlinks it* when that process exits —
    the first worker to finish would tear the graph out from under the
    rest of the fleet (and print a spurious leak warning).  3.13 grew
    ``track=False`` for exactly this; older interpreters get the
    documented unregister workaround.  Lifetime stays with the
    publisher, where it belongs.
    """
    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except FileNotFoundError as exc:
        raise StoreAttachError(
            f"shared-memory segment {name!r} does not exist (unlinked by its "
            f"publisher, or published on another host)",
            location=name,
        ) from exc
    except TypeError:  # Python < 3.13: no track parameter
        # Suppress the tracker registration rather than unregistering
        # afterwards: an unregister would also knock out the *creator's*
        # registration when publisher and attacher share a process.
        original_register = resource_tracker.register

        def _skip_shared_memory(name, rtype):  # pragma: no branch
            if rtype != "shared_memory":
                original_register(name, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError as exc:
            raise StoreAttachError(
                f"shared-memory segment {name!r} does not exist (unlinked by "
                f"its publisher, or published on another host)",
                location=name,
            ) from exc
        finally:
            resource_tracker.register = original_register


def _publish_shm(
    payload: List[Tuple[str, np.ndarray]],
    masks: Tuple[Tuple[object, str], ...],
    incident: Tuple[Tuple[object, object, str], ...],
    target_counts: Tuple[Tuple[object, object, int], ...],
) -> Tuple[shared_memory.SharedMemory, CSRHandle]:
    specs: List[ArraySpec] = []
    offset = 0
    for key, array in payload:
        offset = _align(offset)
        specs.append(ArraySpec(key, array.dtype.str, tuple(array.shape), offset))
        offset += array.nbytes
    segment = shared_memory.SharedMemory(create=True, size=max(1, offset))
    for spec, (_, array) in zip(specs, payload):
        view = np.ndarray(
            spec.shape, dtype=spec.dtype, buffer=segment.buf, offset=spec.offset
        )
        view[...] = array
    return segment, CSRHandle(
        "shm", segment.name, tuple(specs), masks, incident, target_counts
    )


def _attach_shm(handle: CSRHandle) -> CSRGraph:
    segment = _attach_segment(handle.location)
    arrays: Dict[str, np.ndarray] = {}
    for spec in handle.arrays:
        view = np.ndarray(
            spec.shape, dtype=spec.dtype, buffer=segment.buf, offset=spec.offset
        )
        view.setflags(write=False)
        arrays[spec.key] = view
    return _build_csr(arrays, "shm", segment, handle)


# ----------------------------------------------------------------------
# memory-mapped npz backend
# ----------------------------------------------------------------------
def npz_array_specs(path: Union[str, Path]) -> List[ArraySpec]:
    """Locate every array member's raw data inside an uncompressed ``.npz``.

    A :func:`numpy.savez` archive stores each array as an uncompressed
    ``<key>.npy`` zip member, so the array bytes sit contiguously in the
    file at a computable offset: the member's local zip header, then the
    ``.npy`` magic/header, then the data.  That offset plus the parsed
    dtype/shape is everything :class:`numpy.memmap` needs — the sidecar
    caches written by :mod:`repro.graph.io` open memmap-native with no
    rewrite.  Compressed members (``np.savez_compressed``) cannot be
    mapped and raise :class:`ConfigurationError`.
    """
    path = Path(path)
    specs: List[ArraySpec] = []
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise ConfigurationError(
                    f"{path}: member {info.filename!r} is compressed; only "
                    "uncompressed archives (np.savez) can be memory-mapped"
                )
            with archive.open(info) as member:
                version = np.lib.format.read_magic(member)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(member)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(member)
                else:  # pragma: no cover - no writer emits other versions
                    raise ConfigurationError(
                        f"{path}: unsupported .npy format version {version}"
                    )
                header_size = member.tell()
            if fortran and len(shape) > 1:  # pragma: no cover - 1-d payloads
                raise ConfigurationError(
                    f"{path}: Fortran-ordered member {info.filename!r} "
                    "cannot be memory-mapped as C-contiguous"
                )
            # The central directory's extra field can differ from the
            # local header's, so read the local header to find the data.
            raw.seek(info.header_offset)
            local = raw.read(30)
            if local[:4] != b"PK\x03\x04":
                raise ConfigurationError(f"{path}: corrupt zip local header")
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            data_offset = info.header_offset + 30 + name_len + extra_len + header_size
            key = info.filename[:-4] if info.filename.endswith(".npy") else info.filename
            specs.append(ArraySpec(key, dtype.str, tuple(shape), data_offset))
    return specs


def _attach_mmap(handle: CSRHandle) -> CSRGraph:
    path = Path(handle.location)
    try:
        arrays: Dict[str, np.ndarray] = {
            spec.key: np.memmap(
                path, dtype=np.dtype(spec.dtype), mode="r",
                offset=spec.offset, shape=spec.shape,
            )
            for spec in handle.arrays
        }
    except FileNotFoundError as exc:
        raise StoreAttachError(
            f"sidecar file {str(path)!r} does not exist (deleted out from "
            f"under its handle, or spilled on another host)",
            location=str(path),
        ) from exc
    csr = _build_csr(arrays, "mmap", None, handle)
    # Advise MADV_RANDOM *after* construction: the sequential reads the
    # constructor performs (np.diff over indptr) still benefit from
    # readahead, while the walks' random gathers stop paging in 128 KB
    # of neighbors around every 4-byte access — without this, kernel
    # readahead quietly makes the whole file resident and the
    # out-of-core story is fiction.
    for view in arrays.values():
        backing = getattr(view, "_mmap", None)
        if backing is not None and hasattr(_mmap_module, "MADV_RANDOM"):
            try:
                backing.madvise(_mmap_module.MADV_RANDOM)
            except (OSError, ValueError):  # pragma: no cover - advisory only
                pass
    return csr


def _write_npz(path: Path, payload: Dict[str, np.ndarray]) -> Path:
    """Write *payload* as a checksummed uncompressed ``.npz``, atomically.

    Delegates to :func:`repro.durability.write_npz`: pid-stamped scratch
    file in the same directory, blake2b manifest footer, fsync, rename —
    a concurrent reader never sees a half-written archive, a crashed
    writer never corrupts an existing one, and the attach paths verify
    the manifest before mapping a byte.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    return _write_checksummed_npz(path, payload)


def save_csr_npz(csr: CSRGraph, path: Union[str, Path]) -> Path:
    """Spill *csr*'s buffers to an uncompressed ``.npz`` sidecar.

    Open it back with :func:`load_csr_npz` — memmap-native or fully
    loaded.  Only the defining buffers are written (derived caches are
    a :func:`publish_csr` concern; a standalone sidecar is typically
    spilled before any classification ran).
    """
    return _write_npz(Path(path), dict(_publishable_arrays(csr)))


def load_csr_npz(path: Union[str, Path], mmap: bool = True) -> CSRGraph:
    """Open a :func:`save_csr_npz` sidecar as a :class:`CSRGraph`.

    With ``mmap=True`` (default) every buffer is a read-only
    :class:`numpy.memmap` view — O(1) open, pages fault in on demand,
    and the resulting graph pickles as its :class:`CSRHandle`.  With
    ``mmap=False`` the arrays are fully loaded into process RAM.
    """
    path = Path(path)
    if mmap:
        verify_artifact(path)
        return _attach_mmap(CSRHandle("mmap", str(path), tuple(npz_array_specs(path))))
    verify_artifact(path)
    with np.load(path) as payload:
        arrays = {key: np.ascontiguousarray(payload[key]) for key in payload.files}
    return CSRGraph(
        arrays.get("node_ids"),
        arrays["indptr"],
        arrays["indices"],
        label_array=arrays.get("label_array"),
        validate=False,
    )


# ----------------------------------------------------------------------
# publication lifecycle
# ----------------------------------------------------------------------
class CSRPublication:
    """Ownership token for a published CSR buffer set.

    The publisher-side half of the handle protocol: holds the external
    resource (shared-memory segment or spilled sidecar file) alive while
    workers attach, and releases it on :meth:`unlink`.  Usable as a
    context manager; a publication that is garbage-collected still
    owning its resource emits a :class:`ResourceWarning` (and cleans up
    best-effort) so leaks fail ``-W error::ResourceWarning`` runs.
    """

    def __init__(
        self,
        handle: CSRHandle,
        segment: Optional[shared_memory.SharedMemory] = None,
        path: Optional[Path] = None,
        owns_resource: bool = True,
    ) -> None:
        self.handle = handle
        self._segment = segment
        self._path = path
        self._owns = owns_resource

    @property
    def store(self) -> str:
        """Which backend the publication lives in (``"shm"`` / ``"mmap"``)."""
        return self.handle.store

    @property
    def owns_resource(self) -> bool:
        """Whether this publication owns (and must release) the resource.

        ``False`` for the re-publication of an already-attached graph:
        the pre-existing handle was reused — which also means caches
        computed *since* that handle was written are not in it (the
        caller can ship those by value, see
        :meth:`CSRGraph.export_label_caches`).
        """
        return self._owns

    def attach(self) -> CSRGraph:
        """Attach this publication in the current process (zero-copy)."""
        return attach_csr(self.handle)

    def close(self) -> None:
        """Drop this process's mapping (workers get this implicitly at exit)."""
        if self._segment is not None:
            try:
                self._segment.close()
            except BufferError:
                # Attached arrays still alive in this process; the
                # mapping goes when they do.
                pass

    def unlink(self) -> None:
        """Release the external resource (idempotent).

        Shared-memory segments are unlinked from the kernel; spilled
        sidecar files are deleted.  Attached views in *other* processes
        stay valid until those processes drop their mappings (POSIX
        unlink semantics), so the publisher can unlink as soon as every
        worker has attached.
        """
        if not self._owns:
            return
        self._owns = False
        if self._segment is not None:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        if self._path is not None:
            Path(self._path).unlink(missing_ok=True)

    def __enter__(self) -> "CSRPublication":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        self.unlink()

    def __del__(self) -> None:
        if getattr(self, "_owns", False):
            # Release first, warn second: under ``-W error::ResourceWarning``
            # the warn call raises, and cleanup must already have happened
            # by then (the raised error surfaces as an unraisable
            # exception, which CI escalates — see ci.yml).
            self.close()
            self.unlink()
            warnings.warn(
                f"CSRPublication({self.handle.store}:{self.handle.location}) "
                "was never unlinked; it was released in __del__",
                ResourceWarning,
                source=self,
            )


def default_mmap_dir() -> Path:
    """Directory for spilled sidecars (``REPRO_MMAP_DIR`` overrides)."""
    configured = os.environ.get("REPRO_MMAP_DIR")
    if configured:
        return Path(configured)
    return Path(tempfile.gettempdir()) / "repro-osn-mmap"


# ----------------------------------------------------------------------
# spill-file ownership
# ----------------------------------------------------------------------
class SpillOwnership:
    """Ownership token for one spilled sidecar file under the mmap dir.

    The mmap twin of :class:`CSRPublication`'s discipline, closing the
    historical leak: sidecars spilled by ``load_dataset(...,
    graph_store="mmap")`` were never reclaimed, so every run left
    another ``.npz`` under ``$REPRO_MMAP_DIR``.  Whoever holds the
    token owns the file; :meth:`release` deletes it (idempotent —
    POSIX unlink semantics keep live :class:`numpy.memmap` views in
    this and other processes valid until they unmap).  A token
    garbage-collected still owning its file cleans up best-effort and
    emits a :class:`ResourceWarning`, loud under the CI's
    ``-W error::ResourceWarning`` ladder; tokens still alive at
    interpreter exit are released quietly first (an :mod:`atexit` hook
    drains the registry before teardown GC, so long-lived caches don't
    false-positive).
    """

    def __init__(self, path: Union[str, Path], owns_resource: bool = True) -> None:
        self.path = Path(path)
        self._owns = owns_resource

    @property
    def owns_resource(self) -> bool:
        """Whether this token still owns (and must delete) the file."""
        return self._owns

    def release(self) -> None:
        """Delete the spilled file (idempotent)."""
        if not self._owns:
            return
        self._owns = False
        self.path.unlink(missing_ok=True)

    def __enter__(self) -> "SpillOwnership":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __del__(self) -> None:
        if getattr(self, "_owns", False):
            # Clean up before warning: under -W error::ResourceWarning
            # the warn call raises (surfacing as an unraisable error CI
            # escalates), and the file must already be gone by then.
            self.release()
            warnings.warn(
                f"SpillOwnership({self.path}) was never released; "
                "it was deleted in __del__",
                ResourceWarning,
                source=self,
            )


#: Live spill tokens of this process, keyed by path.  Weak values: a
#: token dropped by its holder leaves the registry on its own (after
#: __del__ has cleaned up), so the registry never extends a lifetime.
_TRACKED_SPILLS: "weakref.WeakValueDictionary[str, SpillOwnership]" = (
    weakref.WeakValueDictionary()
)


def track_spill(path: Union[str, Path]) -> SpillOwnership:
    """Register *path* as a spill this process owns; returns the token."""
    token = SpillOwnership(path)
    _TRACKED_SPILLS[str(Path(path))] = token
    return token


@atexit.register
def _release_tracked_spills() -> None:  # pragma: no cover - exit path
    """Quietly delete still-owned spills at interpreter exit.

    Long-lived holders (the dataset registry's in-process cache, a
    serving process's publication) legitimately keep their tokens until
    the very end; draining them here — before teardown GC runs
    ``__del__`` — deletes the files without tripping the
    ResourceWarning meant for mid-run leaks.
    """
    for token in list(_TRACKED_SPILLS.values()):
        token.release()


#: File-name patterns whose embedded pid identifies the spilling
#: process: publish_csr's ``csr-<pid>-<uuid>.npz`` and the dataset
#: registry's ``<name>-seed<s>-scale<f>-pid<pid>.npz``.
_SPILL_PID_PATTERNS = (
    re.compile(r"^csr-(?P<pid>\d+)-[0-9a-f]+\.npz$"),
    re.compile(r"^.+-pid(?P<pid>\d+)\.npz$"),
)


def _spill_owner_pid(name: str) -> Optional[int]:
    for pattern in _SPILL_PID_PATTERNS:
        match = pattern.match(name)
        if match:
            return int(match.group("pid"))
    return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    return True


def sweep_orphan_spills(
    directory: Union[None, str, Path] = None,
    max_age_seconds: Optional[float] = None,
    dry_run: bool = False,
) -> List[Path]:
    """Delete spill files whose owning process is gone; return the victims.

    The opt-in janitor for ``$REPRO_MMAP_DIR`` (exposed as ``repro-osn
    sweep-spills``): ownership tracking reclaims spills on clean exits,
    but a SIGKILLed run leaves its files behind with nobody holding a
    token.  Under *directory* (default :func:`default_mmap_dir`),

    * a ``.npz`` spill is an orphan when its name embeds a spilling pid
      that is no longer alive, or when it embeds no pid (hand-named
      spills, pre-tracking leftovers), *max_age_seconds* is given, and
      its mtime is older than that;
    * an atomic-write scratch file (``.<name>.pid<pid>.<uuid>.tmp`` —
      the only garbage the durability layer's write protocol can leave)
      is an orphan when its writer pid is dead — that covers sidecar,
      checkpoint and snapshot temps alike;
    * an experiment journal (``*.journal.jsonl``) is an orphan only
      when it recorded a ``commit`` — its run completed and delivered.
      **Uncommitted journals are never swept**: they are the resume
      state of a crashed sweep, exactly what ``--resume`` needs.

    Files this process currently owns a token for are never touched,
    and neither are pid-less spills when no age bound was passed (the
    sweep refuses to guess).  ``dry_run=True`` reports without
    deleting.
    """
    target = Path(directory) if directory is not None else default_mmap_dir()
    if not target.is_dir():
        return []
    tracked = {str(Path(path)) for path in _TRACKED_SPILLS.keys()}
    victims: List[Path] = []
    now = time.time()
    for path in sorted(target.iterdir()):
        if str(path) in tracked or not path.is_file():
            continue
        name = path.name
        scratch = SCRATCH_PATTERN.match(name)
        if scratch is not None:
            pid = int(scratch.group("pid"))
            orphaned = pid != os.getpid() and not _pid_alive(pid)
        elif name.endswith(JOURNAL_SUFFIX):
            orphaned = journal_is_committed(path)
        elif name.endswith(".npz"):
            pid = _spill_owner_pid(name)
            if pid is not None:
                orphaned = pid != os.getpid() and not _pid_alive(pid)
            elif max_age_seconds is not None:
                try:
                    orphaned = (now - path.stat().st_mtime) > max_age_seconds
                except FileNotFoundError:  # pragma: no cover - raced deletion
                    continue
            else:
                orphaned = False
        else:
            continue
        if orphaned:
            victims.append(path)
            if not dry_run:
                path.unlink(missing_ok=True)
    return victims


def publish_csr(
    csr: CSRGraph,
    store: str,
    directory: Union[None, str, Path] = None,
) -> CSRPublication:
    """Publish *csr*'s buffers to an external *store*; return the ownership token.

    ``store="shm"`` copies the buffers once into one fresh
    shared-memory segment; ``store="mmap"`` spills them to an
    uncompressed ``.npz`` under *directory* (default
    :func:`default_mmap_dir`).  A graph **already backed** by the
    requested store is re-published for free: its existing handle is
    reused and the returned publication owns nothing (``unlink`` is a
    no-op), so republishing an attached graph can never tear it down.
    """
    if store not in ("shm", "mmap"):
        raise ConfigurationError(
            f"publish_csr targets an external store (shm or mmap), got {store!r}"
        )
    existing = getattr(csr, "_handle", None)
    if existing is not None and existing.store == store:
        csr.seal_buffers(f"published to {store}")
        return CSRPublication(existing, owns_resource=False)
    payload = _publishable_arrays(csr)
    caches, masks, incident, target_counts = _cache_payload(csr)
    payload = payload + caches
    # The publisher's own copy must match what workers attached: freeze
    # it so a post-publish in-place write raises instead of silently
    # diverging from the shared buffers (and from version-stamped
    # cached answers in the serving layer).
    csr.seal_buffers(f"published to {store}")
    if store == "shm":
        segment, handle = _publish_shm(payload, masks, incident, target_counts)
        return CSRPublication(handle, segment=segment)
    target = Path(directory) if directory is not None else default_mmap_dir()
    path = target / f"csr-{os.getpid()}-{uuid.uuid4().hex}.npz"
    _write_npz(path, dict(payload))
    handle = CSRHandle(
        "mmap", str(path), tuple(npz_array_specs(path)), masks, incident, target_counts
    )
    return CSRPublication(handle, path=path)


def attach_csr(handle: CSRHandle) -> CSRGraph:
    """Reattach a published CSR graph from its :class:`CSRHandle`.

    Zero-copy: the returned graph's ``indptr`` / ``indices`` /
    ``label_array`` are read-only views over the shared segment or the
    memory-mapped sidecar.  The attachment owns no external resource —
    cleanup stays with the :class:`CSRPublication` — and the graph
    re-pickles as its handle, so it can be forwarded to further
    processes at O(1) cost.
    """
    if isinstance(handle, (bytes, bytearray)):  # defensive: raw pickles
        handle = pickle.loads(handle)
    if not isinstance(handle, CSRHandle):
        raise ConfigurationError(f"attach_csr needs a CSRHandle, got {type(handle).__name__}")
    fire("store.attach", location=handle.location, store=handle.store)
    if handle.store == "shm":
        return _attach_shm(handle)
    # Verify the sidecar's manifest footer *before* memory-mapping a
    # byte: a torn or bit-flipped spill raises a typed (retryable)
    # ArtifactCorruptError instead of being silently walked.  Mode via
    # REPRO_VERIFY_ARTIFACTS (full | sampled | off).  A *missing*
    # sidecar is an attach race, not corruption — fall through so the
    # attach raises its usual retryable StoreAttachError.
    try:
        verify_artifact(handle.location)
    except FileNotFoundError:
        pass
    return _attach_mmap(handle)


def spill_csr_to_mmap(csr: CSRGraph, path: Union[str, Path]) -> CSRGraph:
    """Spill *csr* to a sidecar at *path* and reopen it memmap-backed.

    The registry's out-of-core hook: a freshly synthesised in-RAM graph
    becomes a disk-backed one whose arrays page in on demand and whose
    pickle is an O(1) handle.  The caller owns the file's lifetime
    (deterministic registry sidecars are left in place for reuse).
    """
    save_csr_npz(csr, path)
    return load_csr_npz(path, mmap=True)


__all__ = [
    "GRAPH_STORES",
    "validate_graph_store",
    "ArraySpec",
    "CSRHandle",
    "CSRPublication",
    "publish_csr",
    "attach_csr",
    "save_csr_npz",
    "load_csr_npz",
    "spill_csr_to_mmap",
    "npz_array_specs",
    "default_mmap_dir",
    "SpillOwnership",
    "track_spill",
    "sweep_orphan_spills",
]
