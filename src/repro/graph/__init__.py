"""Graph substrate: labeled graphs, restricted OSN access, cleaning and statistics."""

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.api import RestrictedGraphAPI, APICallCounter
from repro.graph.csr import CSRGraph, csr_view
from repro.graph.store import (
    GRAPH_STORES,
    CSRHandle,
    CSRPublication,
    attach_csr,
    load_csr_npz,
    publish_csr,
    save_csr_npz,
)
from repro.graph.cleaning import simplify_osn_graph, largest_connected_component
from repro.graph.line_graph import build_line_graph, LineGraphNode
from repro.graph.statistics import (
    GraphSummary,
    count_target_edges,
    degree_histogram,
    label_histogram,
    target_edge_fraction,
    target_incident_count,
    summarize_graph,
)

__all__ = [
    "LabeledGraph",
    "RestrictedGraphAPI",
    "APICallCounter",
    "CSRGraph",
    "csr_view",
    "GRAPH_STORES",
    "CSRHandle",
    "CSRPublication",
    "publish_csr",
    "attach_csr",
    "save_csr_npz",
    "load_csr_npz",
    "simplify_osn_graph",
    "largest_connected_component",
    "build_line_graph",
    "LineGraphNode",
    "GraphSummary",
    "count_target_edges",
    "degree_histogram",
    "label_histogram",
    "target_edge_fraction",
    "target_incident_count",
    "summarize_graph",
]
