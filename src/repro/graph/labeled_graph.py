"""The labeled, undirected graph that models an online social network.

:class:`LabeledGraph` is the in-memory substrate that every other piece
of the library is built on.  It is intentionally simple:

* undirected, no self-loops, no parallel edges (the paper removes all of
  these before running anything, see §5.1 of the paper),
* integer-or-hashable node identifiers,
* a *set of labels per node* (a user's gender, location, degree bucket,
  ... anything hashable),
* O(1) neighbor lookup, O(1) degree lookup, O(1) membership tests.

The restricted-access model used in the paper (neighbor lists behind an
API) is layered on top by :class:`repro.graph.api.RestrictedGraphAPI`;
algorithms in :mod:`repro.core` only ever talk to that wrapper, never to
this class directly, which keeps the "no full access" assumption honest.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

import networkx as nx

from repro.exceptions import EmptyGraphError, GraphError, LabelError, NodeNotFoundError

Node = Hashable
Label = Hashable
Edge = Tuple[Node, Node]


class LabeledGraph:
    """An undirected simple graph whose nodes carry sets of labels.

    Parameters
    ----------
    directed_input:
        Kept for documentation purposes only; the graph itself is always
        undirected.  Directed edge lists should be symmetrised by the
        loaders / cleaners before reaching this class.
    """

    def __init__(self) -> None:
        self._adj: Dict[Node, Set[Node]] = {}
        self._labels: Dict[Node, Set[Label]] = {}
        self._num_edges: int = 0
        self._version: int = 0
        self._frozen: Optional[str] = None

    @property
    def version(self) -> int:
        """Mutation counter, bumped by every structural or label change.

        Derived caches (frozen CSR views, ground-truth counts) key on it
        to detect staleness without hashing the whole graph.
        """
        return self._version

    @property
    def frozen(self) -> Optional[str]:
        """Why this graph is read-only, or ``None`` when still mutable."""
        return getattr(self, "_frozen", None)

    def freeze(self, reason: str = "graph is frozen") -> None:
        """Make this graph permanently read-only.

        Version-keyed consumers (published CSR buffers, answer caches in
        the serving layer) hand out results stamped with
        :attr:`version`; mutating the graph underneath them would bump
        the version silently while live workers keep serving the old
        arrays.  Freezing turns that hazard into an immediate
        :class:`GraphError` at the mutation site, carrying *reason* so
        the error explains who published the graph.  Idempotent (the
        first reason wins); there is deliberately no unfreeze — swap in
        a :meth:`copy` instead.
        """
        if getattr(self, "_frozen", None) is None:
            self._frozen = str(reason)

    def _require_mutable(self) -> None:
        reason = getattr(self, "_frozen", None)
        if reason is not None:
            raise GraphError(
                f"graph is read-only: {reason}; mutate a copy() and swap it in"
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node, labels: Optional[Iterable[Label]] = None) -> None:
        """Add *node* (idempotent) and attach any *labels* to it."""
        self._require_mutable()
        if node not in self._adj:
            self._adj[node] = set()
            self._labels[node] = set()
            self._version += 1
        if labels is not None:
            self._labels[node].update(labels)
            self._version += 1

    def add_edge(self, u: Node, v: Node) -> bool:
        """Add the undirected edge ``(u, v)``.

        Self-loops are rejected with :class:`GraphError`; duplicate edges
        are ignored.  Returns ``True`` if a new edge was inserted.
        """
        self._require_mutable()
        if u == v:
            raise GraphError(f"self-loops are not allowed (node {u!r})")
        self.add_node(u)
        self.add_node(v)
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        self._version += 1
        return True

    def add_edges_from(self, edges: Iterable[Edge]) -> int:
        """Add many edges; returns how many were actually new."""
        added = 0
        for u, v in edges:
            if self.add_edge(u, v):
                added += 1
        return added

    def set_labels(self, node: Node, labels: Iterable[Label]) -> None:
        """Replace the label set of *node*."""
        self._require_mutable()
        if node not in self._adj:
            raise NodeNotFoundError(node)
        self._labels[node] = set(labels)
        self._version += 1

    def add_label(self, node: Node, label: Label) -> None:
        """Attach a single *label* to *node*."""
        self._require_mutable()
        if node not in self._adj:
            raise NodeNotFoundError(node)
        self._labels[node].add(label)
        self._version += 1

    def remove_node(self, node: Node) -> None:
        """Remove *node* and all its incident edges."""
        self._require_mutable()
        if node not in self._adj:
            raise NodeNotFoundError(node)
        for neighbor in self._adj[node]:
            self._adj[neighbor].discard(node)
            self._num_edges -= 1
        del self._adj[node]
        del self._labels[node]
        self._version += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes, ``|V|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges, ``|E|``."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def nodes(self) -> Iterator[Node]:
        """Iterate over node identifiers."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once."""
        seen: Set[Node] = set()
        for u, neighbors in self._adj.items():
            for v in neighbors:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def has_node(self, node: Node) -> bool:
        """Return whether *node* is present."""
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return whether the undirected edge ``(u, v)`` is present."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, node: Node) -> List[Node]:
        """Return the list of neighbors of *node* (a fresh list)."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return list(self._adj[node])

    def neighbor_set(self, node: Node) -> FrozenSet[Node]:
        """Return the neighbors of *node* as a frozen set (no copy of members)."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return frozenset(self._adj[node])

    def degree(self, node: Node) -> int:
        """Return the degree of *node*."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return len(self._adj[node])

    def labels_of(self, node: Node) -> FrozenSet[Label]:
        """Return the label set of *node*."""
        if node not in self._labels:
            raise NodeNotFoundError(node)
        return frozenset(self._labels[node])

    def has_label(self, node: Node, label: Label) -> bool:
        """Return whether *node* carries *label*."""
        if node not in self._labels:
            raise NodeNotFoundError(node)
        return label in self._labels[node]

    def nodes_with_label(self, label: Label) -> List[Node]:
        """Return all nodes carrying *label* (linear scan)."""
        return [node for node, labels in self._labels.items() if label in labels]

    def all_labels(self) -> Set[Label]:
        """Return the union of every node's label set."""
        result: Set[Label] = set()
        for labels in self._labels.values():
            result.update(labels)
        return result

    def is_target_edge(self, u: Node, v: Node, t1: Label, t2: Label) -> bool:
        """Paper §3: edge ``(u, v)`` is a *target edge* for ``(t1, t2)``.

        True when one endpoint has ``t1`` and the other has ``t2``
        (either orientation).  Raises if the edge does not exist.
        """
        if not self.has_edge(u, v):
            from repro.exceptions import EdgeNotFoundError

            raise EdgeNotFoundError(u, v)
        lu = self._labels[u]
        lv = self._labels[v]
        return (t1 in lu and t2 in lv) or (t2 in lu and t1 in lv)

    def target_edges_incident_to(self, node: Node, t1: Label, t2: Label) -> int:
        """Paper §4.2: ``T(u)``, the number of target edges incident to *node*.

        This is what NeighborExploration records after exploring all the
        neighbors of a sampled node that carries a target label.
        """
        if node not in self._adj:
            raise NodeNotFoundError(node)
        node_labels = self._labels[node]
        has_t1 = t1 in node_labels
        has_t2 = t2 in node_labels
        if not (has_t1 or has_t2):
            return 0
        count = 0
        for neighbor in self._adj[node]:
            neighbor_labels = self._labels[neighbor]
            if has_t1 and t2 in neighbor_labels:
                count += 1
            elif has_t2 and t1 in neighbor_labels:
                count += 1
        return count

    # ------------------------------------------------------------------
    # degree aggregates
    # ------------------------------------------------------------------
    def total_degree(self) -> int:
        """Return ``sum(d(u)) = 2 |E|``."""
        return 2 * self._num_edges

    def max_degree(self) -> int:
        """Return the maximum degree, 0 for an empty graph."""
        if not self._adj:
            return 0
        return max(len(neighbors) for neighbors in self._adj.values())

    def min_degree(self) -> int:
        """Return the minimum degree, 0 for an empty graph."""
        if not self._adj:
            return 0
        return min(len(neighbors) for neighbors in self._adj.values())

    def average_degree(self) -> float:
        """Return the average degree ``2|E| / |V|``."""
        if not self._adj:
            raise EmptyGraphError("average degree of an empty graph is undefined")
        return self.total_degree() / self.num_nodes

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.Graph:
        """Export to a :class:`networkx.Graph` with a ``labels`` node attribute."""
        graph = nx.Graph()
        for node in self._adj:
            graph.add_node(node, labels=frozenset(self._labels[node]))
        graph.add_edges_from(self.edges())
        return graph

    @classmethod
    def from_networkx(cls, graph: nx.Graph, label_attr: str = "labels") -> "LabeledGraph":
        """Build from a :class:`networkx.Graph`.

        Node labels are read from the *label_attr* node attribute, which
        may hold a single label or an iterable of labels.  Directed
        graphs are symmetrised; self-loops are dropped.
        """
        result = cls()
        undirected = graph.to_undirected() if graph.is_directed() else graph
        for node, data in undirected.nodes(data=True):
            raw = data.get(label_attr)
            if raw is None:
                labels: Iterable[Label] = ()
            elif isinstance(raw, (str, bytes)) or not isinstance(raw, Iterable):
                labels = (raw,)
            else:
                labels = raw
            result.add_node(node, labels)
        for u, v in undirected.edges():
            if u != v:
                result.add_edge(u, v)
        return result

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        labels: Optional[Dict[Node, Iterable[Label]]] = None,
    ) -> "LabeledGraph":
        """Build from an edge list plus an optional ``node -> labels`` mapping."""
        result = cls()
        for u, v in edges:
            if u == v:
                continue
            result.add_edge(u, v)
        if labels:
            for node, node_labels in labels.items():
                if node not in result:
                    result.add_node(node)
                result.set_labels(node, node_labels)
        return result

    def copy(self) -> "LabeledGraph":
        """Return a deep-enough copy (adjacency and label sets are copied)."""
        clone = LabeledGraph()
        clone._adj = {node: set(neighbors) for node, neighbors in self._adj.items()}
        clone._labels = {node: set(labels) for node, labels in self._labels.items()}
        clone._num_edges = self._num_edges
        return clone

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"LabeledGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
            f"num_distinct_labels={len(self.all_labels())})"
        )


def validate_target_labels(graph: LabeledGraph, t1: Label, t2: Label) -> None:
    """Raise :class:`LabelError` when neither target label appears in *graph*.

    The estimators work fine when a label is absent (the true count is
    zero), but asking for labels that appear nowhere is almost always a
    caller mistake, so the high-level pipeline validates eagerly.
    """
    all_labels = graph.all_labels()
    missing = [label for label in (t1, t2) if label not in all_labels]
    if len(missing) == 2:
        raise LabelError(
            f"neither target label {t1!r} nor {t2!r} appears on any node in the graph"
        )


__all__ = ["LabeledGraph", "Node", "Label", "Edge", "validate_target_labels"]
