"""Compressed-sparse-row (CSR) graph substrate.

Historically :class:`CSRGraph` was only a frozen *view* of a
:class:`~repro.graph.labeled_graph.LabeledGraph`; since the
million-node scale path it is a first-class data plane of its own:
synthetic generators and the numpy edge-list loader assemble it
directly from edge arrays (:meth:`CSRGraph.from_edge_array`) without
ever materialising the dict-of-sets graph, and the experiment layer can
run fleets straight on it.  The dict graph remains the reference
substrate for the restricted-API simulation; :meth:`to_labeled_graph`
is the (lazy, Python-loop) escape hatch back to it.

Representation notes:

* ``indptr`` is always ``int64``; ``indices`` is stored as ``int32``
  whenever ``num_nodes < 2**31`` — half the adjacency footprint at
  LiveJournal scale.  The dtype is invisible to the walk engines (node
  positions are upcast to ``int64`` on the fly) and does not change any
  random draw, so exact-RNG replay equivalence is preserved.
* ``node_ids=None`` declares the identity mapping (node ``i`` *is*
  index ``i``), which is what the CSR-native generators produce; no
  per-node Python objects are allocated in that case.
* labels can be per-node *sets* (the dict-graph view) or one integer
  per node in a numpy ``label_array`` (the vectorized labelers), with
  the same mask/query API on top of either.

Two properties are load-bearing for backend equivalence with a dict
graph the view was frozen from:

* node index ``i`` corresponds to the ``i``-th node of the graph's
  iteration order, which is also the order
  :meth:`RestrictedGraphAPI.random_node` draws from, and
* each adjacency row preserves the exact order of
  :meth:`LabeledGraph.neighbors`, which is the order
  ``random.Random.choice`` indexes into on the reference path.

Together they let the exact-RNG walk mode reproduce the dict engine
step for step from the same seed (see
:func:`repro.walks.batched.csr_walk`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union
from weakref import WeakKeyDictionary

import numpy as np

from repro.exceptions import ArtifactCorruptError, GraphError, NodeNotFoundError
from repro.graph.labeled_graph import Label, LabeledGraph, Node

#: Nodes beyond which ``indices`` must fall back to int64.
_INT32_LIMIT = 2**31

#: Largest node count whose directed pair codes (``u·n + v``) fit int64:
#: ``floor(sqrt(2**63)) - 1``.
_PAIR_CODE_NODE_LIMIT = 3_037_000_498

#: Window (in ``indices`` entries) of the chunked whole-array passes
#: used on memory-mapped graphs: 4M int32 entries is a 16 MB read.
_MMAP_CHUNK = 1 << 22


def sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted distinct values of an integer array.

    ``np.sort`` plus an adjacent-inequality pass — semantically
    ``np.unique`` without its (surprisingly expensive) extra machinery;
    on the multi-million-element code arrays of the CSR builders this is
    an order of magnitude faster.
    """
    if values.size == 0:
        return values
    ordered = np.sort(values)
    flags = np.empty(ordered.size, dtype=bool)
    flags[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=flags[1:])
    return ordered[flags]


def indices_dtype(num_nodes: int) -> np.dtype:
    """Smallest integer dtype that can index *num_nodes* nodes.

    ``int32`` halves the adjacency footprint for every real-world OSN
    (LiveJournal: 4.8M nodes, 85.6M directed entries); graphs beyond
    ``2**31`` nodes keep ``int64``.
    """
    return np.dtype(np.int32 if num_nodes < _INT32_LIMIT else np.int64)


class CSRGraph:
    """Immutable numpy CSR adjacency plus per-node labels.

    Parameters
    ----------
    node_ids:
        Original node identifiers; index ``i`` in every array refers to
        ``node_ids[i]``.  ``None`` declares the identity mapping
        (node ``i`` is its own identifier) without allocating anything.
    indptr:
        ``int64`` array of length ``n + 1``; the neighbors of node ``i``
        are ``indices[indptr[i]:indptr[i + 1]]``.
    indices:
        Array of neighbor indices (length ``2|E|``); stored as ``int32``
        when the node count allows it.
    label_sets:
        One label set per node, aligned with the node indices.  Mutually
        exclusive with *label_array*; omit both for an unlabeled graph.
    label_array:
        One integer label per node as a numpy array (the vectorized
        labelers' output) — far cheaper than a million frozensets.
    validate:
        When false, skip the O(|E|) range scan of ``indices``.  The
        attach paths of :mod:`repro.graph.store` pass this: re-opening
        a trusted shared-memory segment or sidecar must not page the
        whole (possibly larger-than-RAM) adjacency through memory just
        to re-check bounds the publisher already checked.

    The arrays need not be process-private RAM: :attr:`store` names the
    backing buffer store (``"ram"`` by default; ``"shm"`` / ``"mmap"``
    when :mod:`repro.graph.store` attached them), and an
    externally-backed graph pickles as its O(1) :class:`CSRHandle`
    instead of by value (see :meth:`__reduce_ex__`).
    """

    def __init__(
        self,
        node_ids: Optional[Sequence[Node]],
        indptr: np.ndarray,
        indices: np.ndarray,
        label_sets: Optional[Sequence[Iterable[Label]]] = None,
        *,
        label_array: Optional[np.ndarray] = None,
        validate: bool = True,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indptr.size == 0:
            raise GraphError("indptr must be a non-empty 1-d array")
        n = int(self.indptr.size - 1)
        if node_ids is None:
            self._node_ids: Optional[Union[np.ndarray, List[Node]]] = None
        elif isinstance(node_ids, np.ndarray):
            self._node_ids = np.ascontiguousarray(node_ids)
        else:
            self._node_ids = list(node_ids)
        if self._node_ids is not None and len(self._node_ids) != n:
            raise GraphError(
                f"indptr must have length num_nodes + 1 = {len(self._node_ids) + 1}, "
                f"got {self.indptr.shape}"
            )
        self._num_nodes = n
        self.indices = np.ascontiguousarray(indices, dtype=indices_dtype(n))
        if label_sets is not None and label_array is not None:
            raise GraphError("pass label_sets or label_array, not both")
        self._label_sets: Optional[List[FrozenSet[Label]]] = (
            None if label_sets is None else [frozenset(s) for s in label_sets]
        )
        self._label_array: Optional[np.ndarray] = (
            None if label_array is None else np.ascontiguousarray(label_array)
        )
        if self._label_sets is not None and len(self._label_sets) != n:
            raise GraphError("label_sets must provide one entry per node")
        if self._label_array is not None and self._label_array.shape != (n,):
            raise GraphError("label_array must provide one entry per node")
        if n and (self.indptr[0] != 0 or self.indptr[-1] != self.indices.size):
            raise GraphError("indptr must start at 0 and end at len(indices)")
        if validate and self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= n
        ):
            raise GraphError("indices contains out-of-range node indices")
        self.degrees = np.diff(self.indptr)
        #: Which buffer store backs the arrays ("ram" | "shm" | "mmap");
        #: repro.graph.store sets the non-default values on attach.
        self.store: str = "ram"
        # Keeps an attached shared-memory segment mapped while any view
        # into it is alive; None for ram/mmap-backed graphs.
        self._buffer_owner: Optional[object] = None
        # O(1)-picklable reattach descriptor for externally-backed graphs.
        self._handle: Optional[object] = None
        self._index_of: Optional[Dict[Node, int]] = None
        self._mask_cache: Dict[Label, np.ndarray] = {}
        self._incident_cache: Dict[Tuple[Label, Label], np.ndarray] = {}
        self._target_count_cache: Dict[Tuple[Label, Label], int] = {}
        self._indptr_list: Optional[List[int]] = None
        self._indices_list: Optional[List[int]] = None
        self._degrees_list: Optional[List[int]] = None
        self._rows: Optional[List[List[int]]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_labeled_graph(cls, graph: LabeledGraph) -> "CSRGraph":
        """Freeze *graph* into CSR arrays (order-preserving, see module doc)."""
        node_ids = list(graph.nodes())
        index_of = {nid: i for i, nid in enumerate(node_ids)}
        indptr = np.zeros(len(node_ids) + 1, dtype=np.int64)
        flat: List[int] = []
        for i, nid in enumerate(node_ids):
            neighbors = graph.neighbors(nid)
            indptr[i + 1] = indptr[i] + len(neighbors)
            flat.extend(index_of[v] for v in neighbors)
        indices = np.fromiter(flat, dtype=np.int64, count=len(flat))
        label_sets = [graph.labels_of(nid) for nid in node_ids]
        return cls(node_ids, indptr, indices, label_sets)

    @classmethod
    def from_edge_array(
        cls,
        edges: np.ndarray,
        num_nodes: Optional[int] = None,
        node_ids: Optional[Sequence[Node]] = None,
        label_array: Optional[np.ndarray] = None,
    ) -> "CSRGraph":
        """Assemble a simple undirected CSR graph from a raw edge array.

        The paper's preprocessing (§5.1) in pure array arithmetic:
        *edges* is an ``(m, 2)`` integer array of endpoint indices in
        ``[0, num_nodes)``; self-loops are dropped, parallel edges (in
        either direction) are collapsed, and the adjacency is
        symmetrised.  Rows come out sorted by neighbor index — a
        deterministic order that becomes the graph's reference order.
        Isolated indices keep empty rows (run the component cleaner to
        drop them).  ``O(|E| log |E|)`` in numpy, no Python loop.
        """
        edges = np.ascontiguousarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise GraphError(f"edges must have shape (m, 2), got {edges.shape}")
        if num_nodes is None:
            num_nodes = int(edges.max()) + 1 if edges.size else 0
        if num_nodes > _PAIR_CODE_NODE_LIMIT:
            raise GraphError(
                f"from_edge_array supports up to {_PAIR_CODE_NODE_LIMIT} nodes "
                "(directed pair codes must fit int64)"
            )
        if edges.size:
            if int(edges.min()) < 0 or int(edges.max()) >= num_nodes:
                raise GraphError("edge endpoints out of range [0, num_nodes)")
        u, v = edges[:, 0], edges[:, 1]
        keep = u != v
        u, v = u[keep], v[keep]
        # One int64 code per *directed* pair (n < 2**31 keeps n² < 2**62):
        # symmetrise first, then a single sort both deduplicates parallel
        # edges (in either direction) and lands every row in neighbor
        # order.  src/dst fall back out of the codes by divmod, so no
        # argsort/gather is needed.
        codes = np.concatenate([u * np.int64(num_nodes) + v, v * np.int64(num_nodes) + u])
        codes = sorted_unique(codes)
        src, dst = codes // num_nodes, codes % num_nodes
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=num_nodes), out=indptr[1:])
        return cls(node_ids, indptr, dst, label_array=label_array)

    def with_labels(
        self,
        label_array: Optional[np.ndarray] = None,
        label_sets: Optional[Sequence[Iterable[Label]]] = None,
    ) -> "CSRGraph":
        """Return a graph sharing this adjacency but carrying new labels.

        CSR graphs are immutable, so labeling is re-wrapping: the
        ``indptr`` / ``indices`` buffers are shared (no copy), only the
        label storage and the derived caches are fresh.  The buffer
        store carries over (labels over a memory-mapped adjacency keep
        the chunked whole-array fallbacks), but the reattach handle
        does not — the new labels live in this process only, so the
        re-wrapped graph pickles by value.
        """
        relabeled = CSRGraph(
            self._node_ids,
            self.indptr,
            self.indices,
            label_sets,
            label_array=label_array,
            validate=False,
        )
        relabeled.store = self.store
        relabeled._buffer_owner = self._buffer_owner
        return relabeled

    def __reduce_ex__(self, protocol):
        """Pickle externally-backed graphs as their O(1) reattach handle.

        A shm/mmap-backed graph serialises to its
        :class:`~repro.graph.store.CSRHandle` — a few hundred bytes —
        and unpickles by reattaching the same segment/file zero-copy in
        the receiving process.  This is what makes ``n_jobs`` fleets
        cheap at million-node scale: submitting work never re-ships the
        adjacency.  RAM-backed graphs keep the default by-value pickle.
        """
        if self._handle is not None:
            from repro.graph.store import attach_csr

            return (attach_csr, (self._handle,))
        return super().__reduce_ex__(protocol)

    def __getstate__(self):
        """By-value pickles must not drag a segment mapping along.

        ``_buffer_owner`` (a ``SharedMemory`` attachment) is
        process-local: its own pickle protocol *re-attaches by name* in
        the receiver — registering with the resource tracker on
        Python < 3.13, whose exit would then unlink the segment out
        from under every other process.  A graph that pickles by value
        (e.g. a :meth:`with_labels` re-wrap of an attached graph)
        serialises its array *data* instead, so the owner is dropped.
        """
        state = dict(self.__dict__)
        state["_buffer_owner"] = None
        return state

    def to_labeled_graph(self) -> LabeledGraph:
        """Materialise the dict-of-sets reference graph (escape hatch).

        Node insertion order follows the CSR index order and labels are
        carried over, so ``csr_view(csr.to_labeled_graph())`` indexes
        nodes identically to this graph (adjacency-row *order* may
        differ — the dict substrate stores neighbor sets).  This is a
        Python-level ``O(|V| + |E|)`` loop by design: it exists so the
        ``backend="python"`` equivalence suites can audit a CSR-native
        dataset, not as a hot path.
        """
        graph = LabeledGraph()
        ids = self.node_id_list()
        for i, nid in enumerate(ids):
            graph.add_node(nid, self.labels_of(i))
        indptr, indices, _ = self.adjacency_lists()
        for i, nid in enumerate(ids):
            for j in indices[indptr[i] : indptr[i + 1]]:
                if i < j:
                    graph.add_edge(nid, ids[j])
        return graph

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> Sequence[Node]:
        """Original node identifiers, indexable by dense node index.

        The identity mapping is represented as a :class:`range` — O(1)
        memory, supports indexing/len/iteration like the explicit list.
        """
        if self._node_ids is None:
            return range(self._num_nodes)
        return self._node_ids

    def node_id_list(self) -> List[Node]:
        """Node identifiers as a plain Python list (ints, not numpy scalars)."""
        if self._node_ids is None:
            return list(range(self._num_nodes))
        if isinstance(self._node_ids, np.ndarray):
            return self._node_ids.tolist()
        return list(self._node_ids)

    @property
    def num_nodes(self) -> int:
        """Number of nodes, ``|V|``."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges, ``|E|``."""
        return int(self.indices.size // 2)

    def __len__(self) -> int:
        return self._num_nodes

    def index_of(self, node: Node) -> int:
        """Dense index of an original node identifier."""
        if self._node_ids is None:
            index = int(node) if isinstance(node, (int, np.integer)) else -1
            if not 0 <= index < self._num_nodes or index != node:
                raise NodeNotFoundError(node)
            return index
        if self._index_of is None:
            self._index_of = {nid: i for i, nid in enumerate(self.node_ids)}
        try:
            return self._index_of[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def neighbors(self, index: int) -> np.ndarray:
        """Neighbor indices of node *index* (a view, do not mutate)."""
        return self.indices[self.indptr[index] : self.indptr[index + 1]]

    def degree(self, index: int) -> int:
        """Degree of node *index*."""
        return int(self.degrees[index])

    def labels_of(self, index: int) -> FrozenSet[Label]:
        """Label set of node *index*."""
        if self._label_sets is not None:
            return self._label_sets[index]
        if self._label_array is not None:
            return frozenset((self._label_array[index].item(),))
        return frozenset()

    def label_array(self) -> Optional[np.ndarray]:
        """The one-label-per-node array, or ``None`` for set-labeled graphs."""
        return self._label_array

    def all_labels(self) -> set:
        """Union of every node's labels (Table 1 reporting)."""
        if self._label_array is not None:
            return set(np.unique(self._label_array).tolist())
        if self._label_sets is not None:
            result: set = set()
            for labels in self._label_sets:
                result.update(labels)
            return result
        return set()

    def label_mask(self, label: Label) -> np.ndarray:
        """Boolean array: ``mask[i]`` iff node ``i`` carries *label* (cached)."""
        mask = self._mask_cache.get(label)
        if mask is None:
            if self._label_array is not None:
                mask = np.asarray(self._label_array == label)
                if mask.shape != (self._num_nodes,):
                    # Incomparable label type: nothing matches.
                    mask = np.zeros(self._num_nodes, dtype=bool)
                mask = mask.astype(bool, copy=False)
            elif self._label_sets is not None:
                mask = np.fromiter(
                    (label in labels for labels in self._label_sets),
                    dtype=bool,
                    count=len(self._label_sets),
                )
            else:
                mask = np.zeros(self._num_nodes, dtype=bool)
            mask.setflags(write=False)
            self._mask_cache[label] = mask
        return mask

    def adjacency_lists(self) -> Tuple[List[int], List[int], List[int]]:
        """``(indptr, indices, degrees)`` as plain Python lists (cached).

        The scalar single-walker loops index these a few million times a
        second; list indexing beats numpy scalar indexing there.  Note
        this **densifies** the adjacency into Python lists — it belongs
        to the scalar reference paths only; the fleet engines gather
        straight from the (possibly shm/mmap-backed) numpy arrays and
        never call it.
        """
        if self._indptr_list is None:
            self._indptr_list = self.indptr.tolist()
            self._indices_list = self.indices.tolist()
            self._degrees_list = self.degrees.tolist()
        return self._indptr_list, self._indices_list, self._degrees_list

    def neighbor_rows(self) -> List[List[int]]:
        """Per-node neighbor lists as plain Python lists (cached).

        One list index replaces the ``indptr``/``indices`` pair in the
        innermost walk loop — worth ~10% there at the cost of one extra
        materialisation of the adjacency.
        """
        if self._rows is None:
            indptr, indices, _ = self.adjacency_lists()
            self._rows = [
                indices[indptr[i] : indptr[i + 1]] for i in range(self.num_nodes)
            ]
        return self._rows

    def gather_neighbors(self, node_indices: np.ndarray) -> np.ndarray:
        """Concatenated neighbor indices of many nodes, in one gather.

        Equivalent to ``np.concatenate([self.neighbors(i) for i in
        node_indices])`` but without the per-node array creation — the
        multi-range gather is built from ``repeat`` / ``cumsum``
        arithmetic, so exploring thousands of neighborhoods (the fleet
        NeighborExploration accounting) stays vectorized.
        """
        node_indices = np.atleast_1d(np.asarray(node_indices, dtype=np.int64))
        lengths = self.degrees[node_indices]
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=self.indices.dtype)
        starts = self.indptr[node_indices]
        # positions[j] = starts[row of j] + offset of j within its row
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lengths) - lengths, lengths
        )
        return self.indices[np.repeat(starts, lengths) + offsets]

    # ------------------------------------------------------------------
    # vectorized label statistics
    # ------------------------------------------------------------------
    def neighbor_mask_counts(self, mask: np.ndarray) -> np.ndarray:
        """Per-node count of neighbors for which *mask* is true.

        Implemented with a cumulative sum over the flat neighbor array so
        empty adjacency rows are handled correctly (``np.add.reduceat``
        is not safe there).  This is one of the few whole-adjacency
        passes in the data plane (the walk engines only *gather*), so on
        a memory-mapped graph it dispatches to the chunked variant
        instead of materialising an |E|-sized accumulator next to a
        larger-than-RAM adjacency.
        """
        if self.store == "mmap":
            return self._neighbor_mask_counts_chunked(mask)
        acc = np.concatenate(
            ([0], np.cumsum(mask[self.indices], dtype=np.int64))
        )
        return acc[self.indptr[1:]] - acc[self.indptr[:-1]]

    def _neighbor_mask_counts_chunked(
        self, mask: np.ndarray, chunk_size: int = _MMAP_CHUNK
    ) -> np.ndarray:
        """Chunked-gather fallback of :meth:`neighbor_mask_counts`.

        Streams ``indices`` through fixed-size windows and records the
        running mask-hit total at every ``indptr`` boundary falling in
        the window, so peak extra memory is O(|V| + chunk) instead of
        O(|E|) — the documented pattern for whole-array operations over
        an out-of-core CSR graph.  Bit-identical to the dense pass.
        """
        boundary = np.zeros(self.indptr.size, dtype=np.int64)
        indptr = self.indptr
        total = int(self.indices.size)
        running = 0
        for lo in range(0, total, chunk_size):
            hi = min(lo + chunk_size, total)
            part = np.cumsum(mask[self.indices[lo:hi]], dtype=np.int64)
            # Boundaries p with lo < p <= hi close inside this window
            # (p == 0 rows keep the zero initialisation).
            first = int(np.searchsorted(indptr, lo, side="right"))
            last = int(np.searchsorted(indptr, hi, side="right"))
            if first < last:
                boundary[first:last] = running + part[
                    np.asarray(indptr[first:last], dtype=np.int64) - lo - 1
                ]
            running += int(part[-1])
        return boundary[1:] - boundary[:-1]

    def target_incident_counts(self, t1: Label, t2: Label) -> np.ndarray:
        """``T(u)`` for every node: incident target edges for ``(t1, t2)``.

        Matches :meth:`LabeledGraph.target_edges_incident_to`: a neighbor
        is counted once even when both branch conditions hold, hence the
        inclusion–exclusion term for nodes carrying both labels.
        """
        key = (t1, t2)
        counts = self._incident_cache.get(key)
        if counts is None:
            m1 = self.label_mask(t1)
            m2 = self.label_mask(t2)
            c2 = self.neighbor_mask_counts(m2)
            if t1 == t2:
                counts = np.where(m1, c2, 0)
            else:
                c1 = self.neighbor_mask_counts(m1)
                cboth = self.neighbor_mask_counts(m1 & m2)
                counts = m1 * c2 + m2 * c1 - (m1 & m2) * cboth
            counts = counts.astype(np.int64)
            counts.setflags(write=False)
            self._incident_cache[key] = counts
        return counts

    def seal_buffers(self, reason: str = "buffers are sealed") -> None:
        """Make the CSR arrays read-only in place (idempotent).

        Published buffers are shared: workers that attached the
        shared-memory segment (and the serving layer's answer caches,
        which stamp answers with the graph version) all assume the
        arrays never change after publication.  Sealing clears the
        numpy ``WRITEABLE`` flag on every buffer this graph owns, so a
        stray in-place write raises ``ValueError: assignment destination
        is read-only`` at the write site instead of silently corrupting
        every attached view.  Attached graphs are already read-only
        (shm views and ``mmap(mode="r")`` maps are sealed on attach);
        :func:`repro.graph.store.publish_csr` seals the publisher's
        copy too, closing the mutate-after-publish gap.  *reason* is
        recorded for diagnostics (:attr:`sealed`).
        """
        for array in (self.indptr, self.indices, self._label_array):
            if array is not None and isinstance(array, np.ndarray):
                try:
                    array.setflags(write=False)
                except ValueError:  # pragma: no cover - non-owning view
                    pass
        if isinstance(self._node_ids, np.ndarray):
            try:
                self._node_ids.setflags(write=False)
            except ValueError:  # pragma: no cover - non-owning view
                pass
        if getattr(self, "_sealed", None) is None:
            self._sealed = str(reason)

    @property
    def sealed(self) -> Optional[str]:
        """Why the buffers are read-only, or ``None`` when still writable."""
        return getattr(self, "_sealed", None)

    def export_label_caches(self) -> Dict[str, Dict]:
        """Picklable snapshot of the derived label caches.

        Masks and incident-count arrays are O(|V|) to store but O(|E|)
        to derive, so a parent that has already classified can hand
        them to workers instead of letting each one re-stream the
        adjacency.  Used by the ``n_jobs`` plane when a graph is
        re-published through a pre-existing handle that cannot carry
        caches computed since it was written (see
        :func:`repro.graph.store.publish_csr`, which bakes the caches
        into *fresh* publications zero-copy).
        """
        return {
            "masks": dict(self._mask_cache),
            "incident": dict(self._incident_cache),
            "counts": dict(self._target_count_cache),
        }

    def adopt_label_caches(self, payload: Dict[str, Dict]) -> None:
        """Merge caches exported from another instance of the same graph.

        Entries already present locally win (they are views over this
        graph's own store); only missing keys are filled in.  The
        caller is responsible for the payload describing the *same*
        topology and labels — it is only ever built from a handle of
        this very graph.
        """
        for label, mask in payload.get("masks", {}).items():
            self._mask_cache.setdefault(label, mask)
        for pair, counts in payload.get("incident", {}).items():
            self._incident_cache.setdefault(pair, counts)
        for pair, count in payload.get("counts", {}).items():
            self._target_count_cache.setdefault(pair, int(count))

    def count_target_edges(self, t1: Label, t2: Label) -> int:
        """Exact ground-truth count ``F`` for ``(t1, t2)`` via label masks.

        ``Σ_u T(u) = 2F`` (every target edge is incident to exactly two
        nodes), so the count falls out of the cached vectorized
        incident-target-edge array — no Python edge loop.  The integer
        itself is cached per pair; a CSR view is immutable, so the cache
        can never go stale.
        """
        key = (t1, t2)
        count = self._target_count_cache.get(key)
        if count is None:
            count = int(self.target_incident_counts(t1, t2).sum()) // 2
            self._target_count_cache[key] = count
        return count

    def validate_invariants(
        self,
        *,
        check_sorted_rows: bool = True,
        symmetry_samples: int = 1024,
        seed: int = 0,
        chunk_size: int = _MMAP_CHUNK,
    ) -> Dict[str, object]:
        """Structural fsck of the CSR arrays; raise on any inconsistency.

        The deep check behind ``repro-osn fsck``, complementing the
        byte-level manifest verification in :mod:`repro.durability`:
        a file whose checksums match can still describe an impossible
        graph if it was written by a buggy or hostile producer.  Checks

        * ``indptr`` starts at 0, ends at ``len(indices)``, and is
          monotone non-decreasing;
        * every entry of ``indices`` lies in ``[0, num_nodes)``
          (streamed in :data:`_MMAP_CHUNK` windows so a memory-mapped
          graph is never materialised);
        * rows are strictly increasing (*check_sorted_rows*; the
          invariant of every artifact writer —
          :meth:`from_edge_array` sorts and dedupes — but not of dict
          :func:`csr_view` freezes, which preserve reference neighbor
          order: pass ``False`` for those);
        * symmetry, spot-checked on *symmetry_samples* seeded random
          adjacency slots: ``v ∈ row(u)`` must imply ``u ∈ row(v)``.

        Returns a small report dict on success and raises
        :class:`~repro.exceptions.ArtifactCorruptError` (typed,
        retryable — see the class docstring) on the first violation.
        """

        def corrupt(detail: str) -> None:
            raise ArtifactCorruptError(
                f"CSR invariant violated: {detail} "
                f"(num_nodes={self.num_nodes}, store={self.store!r})"
            )

        indptr, indices = self.indptr, self.indices
        total = int(indices.size)
        if int(indptr[0]) != 0:
            corrupt(f"indptr[0] == {int(indptr[0])}, expected 0")
        if int(indptr[-1]) != total:
            corrupt(
                f"indptr[-1] == {int(indptr[-1])}, expected len(indices) "
                f"== {total}"
            )
        if np.any(np.diff(indptr) < 0):
            position = int(np.argmax(np.diff(indptr) < 0))
            corrupt(f"indptr decreases at node {position}")
        for lo in range(0, total, chunk_size):
            hi = min(lo + chunk_size, total)
            window = np.asarray(indices[lo:hi], dtype=np.int64)
            if window.size == 0:
                continue
            low, high = int(window.min()), int(window.max())
            if low < 0 or high >= self._num_nodes:
                corrupt(
                    f"indices[{lo}:{hi}] contains {low if low < 0 else high}, "
                    f"outside [0, {self._num_nodes})"
                )
            if check_sorted_rows:
                # Include the last entry of the previous window so pairs
                # spanning a chunk boundary are checked too.
                prev = (
                    np.asarray(indices[lo - 1 : lo], dtype=np.int64)
                    if lo
                    else window[:0]
                )
                joined = np.concatenate([prev, window]) if lo else window
                drops = np.flatnonzero(joined[1:] <= joined[:-1]) + (lo - 1 if lo else 0) + 1
                if drops.size:
                    # A non-increase is legal exactly at a row start.
                    starts = np.searchsorted(indptr, drops, side="right")
                    is_row_start = indptr[starts - 1] == drops
                    bad = drops[~np.asarray(is_row_start)]
                    if bad.size:
                        position = int(bad[0])
                        corrupt(
                            f"row containing indices[{position}] is not "
                            "strictly increasing (unsorted or duplicate "
                            "neighbors)"
                        )
        symmetry_checked = 0
        if symmetry_samples > 0 and total:
            rng = np.random.default_rng(seed)
            slots = rng.integers(0, total, size=min(symmetry_samples, total))
            rows = np.searchsorted(indptr, slots, side="right") - 1
            for slot, u in zip(slots.tolist(), rows.tolist()):
                v = int(indices[slot])
                row_v = indices[indptr[v] : indptr[v + 1]]
                if not np.any(np.asarray(row_v) == u):
                    corrupt(
                        f"edge ({u}, {v}) has no reverse entry — the "
                        "adjacency is not symmetric"
                    )
                symmetry_checked += 1
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "checked_sorted_rows": bool(check_sorted_rows),
            "symmetry_samples": symmetry_checked,
            "store": self.store,
        }

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"CSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"


def ensure_same_graph(csr: CSRGraph, graph: LabeledGraph) -> CSRGraph:
    """Cheap shape check that *csr* was frozen from *graph*.

    Guards every place that accepts an externally-supplied CSR view for
    a given graph (wrapper adoption, fleet cells): a view of a different
    graph would silently sample the wrong arrays.  Returns *csr*.
    """
    if isinstance(graph, CSRGraph):
        if csr is graph:
            return csr
        matches = (
            csr.num_nodes == graph.num_nodes and csr.num_edges == graph.num_edges
        )
    else:
        matches = (
            csr.num_nodes == graph.num_nodes
            and csr.num_edges == graph.num_edges
            and (csr.num_nodes == 0 or csr.node_ids[0] in graph)
        )
    if not matches:
        from repro.exceptions import ConfigurationError

        raise ConfigurationError(
            f"CSRGraph was not frozen from this graph ({csr!r} vs {graph!r})"
        )
    return csr


#: One frozen CSR view per live LabeledGraph (version-checked, weakly keyed).
_CSR_VIEWS: "WeakKeyDictionary[LabeledGraph, Tuple[int, CSRGraph]]" = WeakKeyDictionary()


def csr_view(graph: Union[LabeledGraph, CSRGraph]) -> CSRGraph:
    """Return a frozen CSR view of *graph*, cached across callers.

    Freezing is O(|V| + |E|) Python-level work, so the ground-truth
    counters, the experiment harness and the restricted-API wrappers all
    share one view per graph instead of re-freezing.  The cache is keyed
    weakly (graphs are collectable) and validated against
    :attr:`LabeledGraph.version`, so mutating the graph after a freeze
    transparently produces a fresh view.  A :class:`CSRGraph` is its own
    view and passes through untouched.
    """
    if isinstance(graph, CSRGraph):
        return graph
    version = getattr(graph, "version", None)
    if version is None:
        # Graph-likes without mutation tracking cannot be cached safely.
        return CSRGraph.from_labeled_graph(graph)
    entry = _CSR_VIEWS.get(graph)
    if entry is not None and entry[0] == version:
        return entry[1]
    csr = CSRGraph.from_labeled_graph(graph)
    _CSR_VIEWS[graph] = (version, csr)
    return csr


__all__ = ["CSRGraph", "csr_view", "ensure_same_graph", "indices_dtype", "sorted_unique"]
