"""Compressed-sparse-row (CSR) view of a :class:`LabeledGraph`.

The dict-of-sets substrate in :mod:`repro.graph.labeled_graph` is ideal
for incremental construction and honest restricted-API simulation, but
every walk step pays a Python-level set lookup plus a neighbor-list
copy.  :class:`CSRGraph` freezes the adjacency into two numpy integer
arrays (``indptr`` / ``indices``) and the node labels into boolean masks
so the vectorized walk backend (:mod:`repro.walks.batched`) and the CSR
samplers (:mod:`repro.core.samplers.csr_backend`) can advance walkers
and classify samples with array arithmetic.

Two properties are load-bearing for backend equivalence:

* node index ``i`` corresponds to the ``i``-th node of the graph's
  iteration order, which is also the order
  :meth:`RestrictedGraphAPI.random_node` draws from, and
* each adjacency row preserves the exact order of
  :meth:`LabeledGraph.neighbors`, which is the order
  ``random.Random.choice`` indexes into on the reference path.

Together they let the exact-RNG walk mode reproduce the dict engine
step for step from the same seed (see
:func:`repro.walks.batched.csr_walk`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from repro.exceptions import GraphError, NodeNotFoundError
from repro.graph.labeled_graph import Label, LabeledGraph, Node


class CSRGraph:
    """Immutable numpy CSR adjacency plus per-label boolean masks.

    Parameters
    ----------
    node_ids:
        Original node identifiers; index ``i`` in every array refers to
        ``node_ids[i]``.
    indptr:
        ``int64`` array of length ``n + 1``; the neighbors of node ``i``
        are ``indices[indptr[i]:indptr[i + 1]]``.
    indices:
        ``int64`` array of neighbor indices (length ``2|E|``).
    label_sets:
        One label set per node, aligned with *node_ids*.
    """

    def __init__(
        self,
        node_ids: Sequence[Node],
        indptr: np.ndarray,
        indices: np.ndarray,
        label_sets: Sequence[Iterable[Label]],
    ) -> None:
        self.node_ids: List[Node] = list(node_ids)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self._label_sets: List[FrozenSet[Label]] = [frozenset(s) for s in label_sets]
        n = len(self.node_ids)
        if self.indptr.shape != (n + 1,):
            raise GraphError(
                f"indptr must have length num_nodes + 1 = {n + 1}, got {self.indptr.shape}"
            )
        if len(self._label_sets) != n:
            raise GraphError("label_sets must provide one entry per node")
        if n and (self.indptr[0] != 0 or self.indptr[-1] != self.indices.size):
            raise GraphError("indptr must start at 0 and end at len(indices)")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= n
        ):
            raise GraphError("indices contains out-of-range node indices")
        self.degrees = np.diff(self.indptr)
        self._index_of: Dict[Node, int] = {nid: i for i, nid in enumerate(self.node_ids)}
        self._mask_cache: Dict[Label, np.ndarray] = {}
        self._incident_cache: Dict[Tuple[Label, Label], np.ndarray] = {}
        self._target_count_cache: Dict[Tuple[Label, Label], int] = {}
        self._indptr_list: Optional[List[int]] = None
        self._indices_list: Optional[List[int]] = None
        self._degrees_list: Optional[List[int]] = None
        self._rows: Optional[List[List[int]]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_labeled_graph(cls, graph: LabeledGraph) -> "CSRGraph":
        """Freeze *graph* into CSR arrays (order-preserving, see module doc)."""
        node_ids = list(graph.nodes())
        index_of = {nid: i for i, nid in enumerate(node_ids)}
        indptr = np.zeros(len(node_ids) + 1, dtype=np.int64)
        flat: List[int] = []
        for i, nid in enumerate(node_ids):
            neighbors = graph.neighbors(nid)
            indptr[i + 1] = indptr[i] + len(neighbors)
            flat.extend(index_of[v] for v in neighbors)
        indices = np.fromiter(flat, dtype=np.int64, count=len(flat))
        label_sets = [graph.labels_of(nid) for nid in node_ids]
        return cls(node_ids, indptr, indices, label_sets)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes, ``|V|``."""
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges, ``|E|``."""
        return int(self.indices.size // 2)

    def __len__(self) -> int:
        return len(self.node_ids)

    def index_of(self, node: Node) -> int:
        """Dense index of an original node identifier."""
        try:
            return self._index_of[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def neighbors(self, index: int) -> np.ndarray:
        """Neighbor indices of node *index* (a view, do not mutate)."""
        return self.indices[self.indptr[index] : self.indptr[index + 1]]

    def degree(self, index: int) -> int:
        """Degree of node *index*."""
        return int(self.degrees[index])

    def labels_of(self, index: int) -> FrozenSet[Label]:
        """Label set of node *index*."""
        return self._label_sets[index]

    def label_mask(self, label: Label) -> np.ndarray:
        """Boolean array: ``mask[i]`` iff node ``i`` carries *label* (cached)."""
        mask = self._mask_cache.get(label)
        if mask is None:
            mask = np.fromiter(
                (label in labels for labels in self._label_sets),
                dtype=bool,
                count=len(self._label_sets),
            )
            mask.setflags(write=False)
            self._mask_cache[label] = mask
        return mask

    def adjacency_lists(self) -> Tuple[List[int], List[int], List[int]]:
        """``(indptr, indices, degrees)`` as plain Python lists (cached).

        The scalar single-walker loops index these a few million times a
        second; list indexing beats numpy scalar indexing there.
        """
        if self._indptr_list is None:
            self._indptr_list = self.indptr.tolist()
            self._indices_list = self.indices.tolist()
            self._degrees_list = self.degrees.tolist()
        return self._indptr_list, self._indices_list, self._degrees_list

    def neighbor_rows(self) -> List[List[int]]:
        """Per-node neighbor lists as plain Python lists (cached).

        One list index replaces the ``indptr``/``indices`` pair in the
        innermost walk loop — worth ~10% there at the cost of one extra
        materialisation of the adjacency.
        """
        if self._rows is None:
            indptr, indices, _ = self.adjacency_lists()
            self._rows = [
                indices[indptr[i] : indptr[i + 1]] for i in range(self.num_nodes)
            ]
        return self._rows

    def gather_neighbors(self, node_indices: np.ndarray) -> np.ndarray:
        """Concatenated neighbor indices of many nodes, in one gather.

        Equivalent to ``np.concatenate([self.neighbors(i) for i in
        node_indices])`` but without the per-node array creation — the
        multi-range gather is built from ``repeat`` / ``cumsum``
        arithmetic, so exploring thousands of neighborhoods (the fleet
        NeighborExploration accounting) stays vectorized.
        """
        node_indices = np.atleast_1d(np.asarray(node_indices, dtype=np.int64))
        lengths = self.degrees[node_indices]
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        starts = self.indptr[node_indices]
        # positions[j] = starts[row of j] + offset of j within its row
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lengths) - lengths, lengths
        )
        return self.indices[np.repeat(starts, lengths) + offsets]

    # ------------------------------------------------------------------
    # vectorized label statistics
    # ------------------------------------------------------------------
    def neighbor_mask_counts(self, mask: np.ndarray) -> np.ndarray:
        """Per-node count of neighbors for which *mask* is true.

        Implemented with a cumulative sum over the flat neighbor array so
        empty adjacency rows are handled correctly (``np.add.reduceat``
        is not safe there).
        """
        acc = np.concatenate(
            ([0], np.cumsum(mask[self.indices], dtype=np.int64))
        )
        return acc[self.indptr[1:]] - acc[self.indptr[:-1]]

    def target_incident_counts(self, t1: Label, t2: Label) -> np.ndarray:
        """``T(u)`` for every node: incident target edges for ``(t1, t2)``.

        Matches :meth:`LabeledGraph.target_edges_incident_to`: a neighbor
        is counted once even when both branch conditions hold, hence the
        inclusion–exclusion term for nodes carrying both labels.
        """
        key = (t1, t2)
        counts = self._incident_cache.get(key)
        if counts is None:
            m1 = self.label_mask(t1)
            m2 = self.label_mask(t2)
            c2 = self.neighbor_mask_counts(m2)
            if t1 == t2:
                counts = np.where(m1, c2, 0)
            else:
                c1 = self.neighbor_mask_counts(m1)
                cboth = self.neighbor_mask_counts(m1 & m2)
                counts = m1 * c2 + m2 * c1 - (m1 & m2) * cboth
            counts = counts.astype(np.int64)
            counts.setflags(write=False)
            self._incident_cache[key] = counts
        return counts

    def count_target_edges(self, t1: Label, t2: Label) -> int:
        """Exact ground-truth count ``F`` for ``(t1, t2)`` via label masks.

        ``Σ_u T(u) = 2F`` (every target edge is incident to exactly two
        nodes), so the count falls out of the cached vectorized
        incident-target-edge array — no Python edge loop.  The integer
        itself is cached per pair; a CSR view is immutable, so the cache
        can never go stale.
        """
        key = (t1, t2)
        count = self._target_count_cache.get(key)
        if count is None:
            count = int(self.target_incident_counts(t1, t2).sum()) // 2
            self._target_count_cache[key] = count
        return count

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"CSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"


def ensure_same_graph(csr: CSRGraph, graph: LabeledGraph) -> CSRGraph:
    """Cheap shape check that *csr* was frozen from *graph*.

    Guards every place that accepts an externally-supplied CSR view for
    a given graph (wrapper adoption, fleet cells): a view of a different
    graph would silently sample the wrong arrays.  Returns *csr*.
    """
    if (
        csr.num_nodes != graph.num_nodes
        or csr.num_edges != graph.num_edges
        or (csr.num_nodes and csr.node_ids[0] not in graph)
    ):
        from repro.exceptions import ConfigurationError

        raise ConfigurationError(
            f"CSRGraph was not frozen from this graph ({csr!r} vs {graph!r})"
        )
    return csr


#: One frozen CSR view per live LabeledGraph (version-checked, weakly keyed).
_CSR_VIEWS: "WeakKeyDictionary[LabeledGraph, Tuple[int, CSRGraph]]" = WeakKeyDictionary()


def csr_view(graph: LabeledGraph) -> CSRGraph:
    """Return a frozen CSR view of *graph*, cached across callers.

    Freezing is O(|V| + |E|) Python-level work, so the ground-truth
    counters, the experiment harness and the restricted-API wrappers all
    share one view per graph instead of re-freezing.  The cache is keyed
    weakly (graphs are collectable) and validated against
    :attr:`LabeledGraph.version`, so mutating the graph after a freeze
    transparently produces a fresh view.
    """
    if isinstance(graph, CSRGraph):
        return graph
    version = getattr(graph, "version", None)
    if version is None:
        # Graph-likes without mutation tracking cannot be cached safely.
        return CSRGraph.from_labeled_graph(graph)
    entry = _CSR_VIEWS.get(graph)
    if entry is not None and entry[0] == version:
        return entry[1]
    csr = CSRGraph.from_labeled_graph(graph)
    _CSR_VIEWS[graph] = (version, csr)
    return csr


__all__ = ["CSRGraph", "csr_view", "ensure_same_graph"]
