"""Loaders and writers for on-disk graph formats.

The paper uses SNAP and KONECT datasets (edge lists) together with label
information scraped from user profiles.  This module parses

* SNAP-style edge lists (whitespace separated ``u v`` pairs, ``#``
  comments) via :func:`load_edge_list`,
* node-label files (``node label1 label2 ...`` per line) via
  :func:`load_node_labels`,
* a simple combined TSV format written by :func:`save_labeled_graph` /
  read by :func:`load_labeled_graph`, used by the dataset cache.

All loaders funnel through
:func:`repro.graph.cleaning.simplify_osn_graph`, so anything loaded from
disk arrives as the paper prepares it: undirected, simple, largest
connected component.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.exceptions import DatasetError
from repro.graph.cleaning import simplify_osn_graph
from repro.graph.labeled_graph import Edge, Label, LabeledGraph, Node

PathLike = Union[str, Path]


def _open_text(path: PathLike) -> io.TextIOBase:
    """Open a possibly gzip-compressed text file for reading."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"file not found: {path}")
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def iter_edge_list(path: PathLike, comment: str = "#") -> Iterator[Edge]:
    """Yield ``(u, v)`` integer pairs from a SNAP-style edge-list file."""
    with _open_text(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comment):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise DatasetError(
                    f"{path}:{line_number}: expected at least two columns, got {stripped!r}"
                )
            try:
                yield (int(parts[0]), int(parts[1]))
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{line_number}: node ids must be integers, got {stripped!r}"
                ) from exc


def load_edge_list(
    path: PathLike,
    labels: Optional[Dict[Node, Iterable[Label]]] = None,
    keep_largest_component: bool = True,
) -> LabeledGraph:
    """Load a SNAP-style edge list into a cleaned :class:`LabeledGraph`."""
    return simplify_osn_graph(
        iter_edge_list(path), labels=labels, keep_largest_component=keep_largest_component
    )


def load_node_labels(path: PathLike, comment: str = "#") -> Dict[Node, List[Label]]:
    """Load node labels from a ``node label [label ...]`` text file.

    Labels are parsed as integers when possible (the paper encodes all
    labels as integers), otherwise kept as strings.
    """
    result: Dict[Node, List[Label]] = {}
    with _open_text(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comment):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise DatasetError(
                    f"{path}:{line_number}: expected 'node label...', got {stripped!r}"
                )
            try:
                node: Node = int(parts[0])
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{line_number}: node id must be an integer"
                ) from exc
            labels: List[Label] = []
            for token in parts[1:]:
                try:
                    labels.append(int(token))
                except ValueError:
                    labels.append(token)
            result[node] = labels
    return result


def load_snap_dataset(
    edge_path: PathLike,
    label_path: Optional[PathLike] = None,
    keep_largest_component: bool = True,
) -> LabeledGraph:
    """Load a SNAP dataset: an edge list plus an optional label file."""
    labels = load_node_labels(label_path) if label_path is not None else None
    return load_edge_list(
        edge_path, labels=labels, keep_largest_component=keep_largest_component
    )


def save_labeled_graph(graph: LabeledGraph, path: PathLike) -> None:
    """Write *graph* to a single TSV file (edges then labels).

    Format::

        # repro labeled graph v1
        E <u> <v>
        L <node> <label> [<label> ...]
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# repro labeled graph v1\n")
        for u, v in graph.edges():
            handle.write(f"E\t{u}\t{v}\n")
        for node in graph.nodes():
            labels = sorted(graph.labels_of(node), key=repr)
            if labels:
                rendered = "\t".join(str(label) for label in labels)
                handle.write(f"L\t{node}\t{rendered}\n")


def load_labeled_graph(path: PathLike) -> LabeledGraph:
    """Read a graph written by :func:`save_labeled_graph`."""
    edges: List[Edge] = []
    labels: Dict[Node, List[Label]] = {}
    with _open_text(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split("\t")
            kind = parts[0]
            if kind == "E":
                if len(parts) != 3:
                    raise DatasetError(f"{path}:{line_number}: malformed edge line")
                edges.append((int(parts[1]), int(parts[2])))
            elif kind == "L":
                if len(parts) < 3:
                    raise DatasetError(f"{path}:{line_number}: malformed label line")
                node = int(parts[1])
                parsed: List[Label] = []
                for token in parts[2:]:
                    try:
                        parsed.append(int(token))
                    except ValueError:
                        parsed.append(token)
                labels[node] = parsed
            else:
                raise DatasetError(
                    f"{path}:{line_number}: unknown record type {kind!r}"
                )
    graph = LabeledGraph.from_edges(edges, labels)
    return graph


__all__ = [
    "iter_edge_list",
    "load_edge_list",
    "load_node_labels",
    "load_snap_dataset",
    "save_labeled_graph",
    "load_labeled_graph",
]
