"""Loaders and writers for on-disk graph formats.

The paper uses SNAP and KONECT datasets (edge lists) together with label
information scraped from user profiles.  This module parses

* SNAP-style edge lists (whitespace separated ``u v`` pairs, ``#``
  comments) via :func:`load_edge_list`,
* node-label files (``node label1 label2 ...`` per line) via
  :func:`load_node_labels`,
* a simple combined TSV format written by :func:`save_labeled_graph` /
  read by :func:`load_labeled_graph`, used by the dataset cache.

All loaders funnel through
:func:`repro.graph.cleaning.simplify_osn_graph`, so anything loaded from
disk arrives as the paper prepares it: undirected, simple, largest
connected component.

For paper-scale crawls the line-by-line parser is the bottleneck, so
there is a numpy fast path: :func:`load_edge_array` slurps a whole edge
list with ``np.loadtxt`` (or ``np.fromfile`` for raw binary pairs) and
:func:`load_edge_list_csr` assembles it straight into a cleaned
:class:`~repro.graph.csr.CSRGraph` — optionally memoised in a ``.npz``
sidecar so the parse cost is paid once per file, not once per run.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.durability import verify_artifact, write_npz
from repro.exceptions import DatasetError
from repro.graph.cleaning import largest_connected_component_csr, simplify_osn_graph
from repro.graph.csr import CSRGraph
from repro.graph.labeled_graph import Edge, Label, LabeledGraph, Node

PathLike = Union[str, Path]


def _open_text(path: PathLike) -> io.TextIOBase:
    """Open a possibly gzip-compressed text file for reading."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"file not found: {path}")
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def iter_edge_list(path: PathLike, comment: str = "#") -> Iterator[Edge]:
    """Yield ``(u, v)`` integer pairs from a SNAP-style edge-list file."""
    with _open_text(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comment):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise DatasetError(
                    f"{path}:{line_number}: expected at least two columns, got {stripped!r}"
                )
            try:
                yield (int(parts[0]), int(parts[1]))
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{line_number}: node ids must be integers, got {stripped!r}"
                ) from exc


def load_edge_list(
    path: PathLike,
    labels: Optional[Dict[Node, Iterable[Label]]] = None,
    keep_largest_component: bool = True,
) -> LabeledGraph:
    """Load a SNAP-style edge list into a cleaned :class:`LabeledGraph`."""
    return simplify_osn_graph(
        iter_edge_list(path), labels=labels, keep_largest_component=keep_largest_component
    )


def load_node_labels(path: PathLike, comment: str = "#") -> Dict[Node, List[Label]]:
    """Load node labels from a ``node label [label ...]`` text file.

    Labels are parsed as integers when possible (the paper encodes all
    labels as integers), otherwise kept as strings.
    """
    result: Dict[Node, List[Label]] = {}
    with _open_text(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comment):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise DatasetError(
                    f"{path}:{line_number}: expected 'node label...', got {stripped!r}"
                )
            try:
                node: Node = int(parts[0])
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{line_number}: node id must be an integer"
                ) from exc
            labels: List[Label] = []
            for token in parts[1:]:
                try:
                    labels.append(int(token))
                except ValueError:
                    labels.append(token)
            result[node] = labels
    return result


def load_snap_dataset(
    edge_path: PathLike,
    label_path: Optional[PathLike] = None,
    keep_largest_component: bool = True,
) -> LabeledGraph:
    """Load a SNAP dataset: an edge list plus an optional label file."""
    labels = load_node_labels(label_path) if label_path is not None else None
    return load_edge_list(
        edge_path, labels=labels, keep_largest_component=keep_largest_component
    )


def load_edge_array(path: PathLike, comment: str = "#") -> np.ndarray:
    """Whole-file numpy parse of an edge list into an ``(m, 2)`` array.

    Text files (optionally ``.gz``) go through ``np.loadtxt`` — C-level
    tokenising, no Python per-line loop; a ``.bin`` suffix is read with
    ``np.fromfile`` as raw little-endian ``int64`` pairs (the fastest
    interchange format for repeated large loads).  Only the first two
    columns are read, matching :func:`iter_edge_list`.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"file not found: {path}")
    if path.suffix == ".bin":
        flat = np.fromfile(path, dtype=np.int64)
        if flat.size % 2:
            raise DatasetError(f"{path}: raw binary edge file has an odd entry count")
        return flat.reshape(-1, 2)
    try:
        edges = np.loadtxt(
            path, dtype=np.int64, comments=comment, usecols=(0, 1), ndmin=2
        )
    except ValueError as exc:
        raise DatasetError(f"{path}: not a parseable integer edge list ({exc})") from exc
    return edges


def save_edge_array(edges: np.ndarray, path: PathLike) -> None:
    """Write an ``(m, 2)`` edge array as raw ``int64`` pairs (``.bin``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.ascontiguousarray(edges, dtype=np.int64).tofile(path)


def _npz_cache_path(path: Path, cache: Union[bool, PathLike]) -> Optional[Path]:
    if cache is False or cache is None:
        return None
    if cache is True:
        return path.with_name(path.name + ".npz")
    return Path(cache)


def _source_fingerprint(path: Path) -> Tuple[int, int]:
    """Identity of the source file's current contents: (mtime_ns, size).

    Nanosecond mtime alone is not enough everywhere — coarse filesystem
    timestamp granularity (FAT, some network mounts, container overlay
    quirks) can stamp two rewrites within one tick identically — so the
    size rides along as a second discriminator.  A sidecar is reusable
    only when **both** match what they were at write time; comparing
    recorded-vs-current beats the old "sidecar newer than source" test,
    which used second-resolution ``st_mtime`` and served stale caches
    for sources rewritten within the same second.
    """
    stat = path.stat()
    return int(stat.st_mtime_ns), int(stat.st_size)


def _sidecar_matches_source(payload, path: Path) -> bool:
    """Whether a loaded sidecar was written from *path*'s current bytes."""
    if not path.exists():
        # Source gone: the sidecar is all there is; serve it.
        return True
    if "source_mtime_ns" not in payload or "source_size" not in payload:
        # Legacy sidecar without a fingerprint: cannot prove freshness,
        # rebuild (costs one parse, never serves stale data).
        return False
    mtime_ns, size = _source_fingerprint(path)
    return (
        int(payload["source_mtime_ns"]) == mtime_ns
        and int(payload["source_size"]) == size
    )


def _attach_sidecar_mmap(cache_path: Path) -> CSRGraph:
    """Open an edge-list sidecar memmap-native (zero-copy, read-only).

    The sidecar is the uncompressed ``np.savez`` archive this module
    writes, so each member's raw bytes can be handed straight to
    :class:`numpy.memmap` (see :func:`repro.graph.store.npz_array_specs`)
    — the graph's adjacency never has to fit in RAM.
    """
    from repro.graph.store import ArraySpec, CSRHandle, attach_csr, npz_array_specs

    specs = tuple(
        spec
        for spec in npz_array_specs(cache_path)
        if spec.key in ("node_ids", "indptr", "indices", "label_array")
    )
    return attach_csr(CSRHandle("mmap", str(cache_path), specs))


def load_edge_list_csr(
    path: PathLike,
    keep_largest_component: bool = True,
    cache: Union[bool, PathLike] = False,
    comment: str = "#",
    mmap: bool = False,
) -> CSRGraph:
    """Load an edge list straight into a cleaned :class:`CSRGraph`.

    The CSR-native twin of :func:`load_edge_list`: numpy parse
    (:func:`load_edge_array`), dense re-indexing of the raw node
    identifiers, array-level symmetrise/dedupe, and the CSR BFS
    component cleaner — the dict graph is never materialised, which is
    what makes the paper's million-node crawls loadable.  ``cache=True``
    memoises the final arrays in a ``.npz`` sidecar next to the file
    (or at an explicit path) and reuses it while the source's recorded
    fingerprint (``st_mtime_ns`` **and** file size) still matches — so
    rewriting the edge list always invalidates the sidecar, even twice
    within one second.  With ``mmap=True`` (requires a sidecar cache)
    the graph is returned **memory-mapped**: its arrays are read-only
    :class:`numpy.memmap` views over the sidecar, pages fault in on
    demand, and the graph pickles as an O(1) handle — the out-of-core
    path for crawls larger than RAM.  A stale sidecar (fingerprint
    mismatch, or written under the other cleaning setting) is rebuilt
    either way.  Node labels are not handled here; attach them
    afterwards with :meth:`CSRGraph.with_labels` (e.g. from
    :func:`load_node_labels` or a vectorized labeler).
    """
    path = Path(path)
    cache_path = _npz_cache_path(path, cache)
    if mmap and cache_path is None:
        raise DatasetError(
            "mmap=True opens the .npz sidecar memory-mapped; pass cache=True "
            "(or an explicit cache path) so there is a sidecar to map"
        )
    if cache_path is not None and cache_path.exists():
        # Integrity before freshness: a torn or bit-flipped sidecar
        # raises a typed ArtifactCorruptError here (see the corrupt-
        # artifact runbook in docs/operations.md) instead of being
        # np.load-ed — or worse, memory-mapped — as garbage.
        verify_artifact(cache_path)
        with np.load(cache_path) as payload:
            # The sidecar records whether the component cleaner ran and
            # a fingerprint of the source bytes it was built from; a
            # cache written under the other cleaning setting or from
            # different source contents is rebuilt.
            fresh = bool(
                payload.get("cleaned", True)
            ) == keep_largest_component and _sidecar_matches_source(payload, path)
            if fresh and not mmap:
                return CSRGraph(
                    payload["node_ids"],
                    payload["indptr"],
                    payload["indices"],
                )
        if fresh:
            return _attach_sidecar_mmap(cache_path)
    edges = load_edge_array(path, comment=comment)
    # Dense indices from arbitrary node identifiers; unique_ids is the
    # sorted identifier vocabulary, inverse the per-endpoint index.
    unique_ids, inverse = np.unique(edges, return_inverse=True)
    csr = CSRGraph.from_edge_array(
        inverse.reshape(-1, 2), num_nodes=int(unique_ids.size), node_ids=unique_ids
    )
    if keep_largest_component and csr.num_nodes:
        csr = largest_connected_component_csr(csr)
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        mtime_ns, size = _source_fingerprint(path)
        # Atomic, checksummed sidecar write (scratch + fsync + rename):
        # a writer killed mid-write leaves any existing sidecar intact
        # instead of a torn archive the mmap path would try to attach.
        write_npz(
            cache_path,
            dict(
                node_ids=np.asarray(csr.node_ids),
                indptr=csr.indptr,
                indices=csr.indices,
                cleaned=np.bool_(keep_largest_component),
                source_mtime_ns=np.int64(mtime_ns),
                source_size=np.int64(size),
            ),
        )
    if mmap:
        return _attach_sidecar_mmap(cache_path)
    return csr


def save_labeled_graph(graph: LabeledGraph, path: PathLike) -> None:
    """Write *graph* to a single TSV file (edges then labels).

    Format::

        # repro labeled graph v1
        E <u> <v>
        L <node> <label> [<label> ...]
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# repro labeled graph v1\n")
        for u, v in graph.edges():
            handle.write(f"E\t{u}\t{v}\n")
        for node in graph.nodes():
            labels = sorted(graph.labels_of(node), key=repr)
            if labels:
                rendered = "\t".join(str(label) for label in labels)
                handle.write(f"L\t{node}\t{rendered}\n")


def load_labeled_graph(path: PathLike) -> LabeledGraph:
    """Read a graph written by :func:`save_labeled_graph`."""
    edges: List[Edge] = []
    labels: Dict[Node, List[Label]] = {}
    with _open_text(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split("\t")
            kind = parts[0]
            if kind == "E":
                if len(parts) != 3:
                    raise DatasetError(f"{path}:{line_number}: malformed edge line")
                edges.append((int(parts[1]), int(parts[2])))
            elif kind == "L":
                if len(parts) < 3:
                    raise DatasetError(f"{path}:{line_number}: malformed label line")
                node = int(parts[1])
                parsed: List[Label] = []
                for token in parts[2:]:
                    try:
                        parsed.append(int(token))
                    except ValueError:
                        parsed.append(token)
                labels[node] = parsed
            else:
                raise DatasetError(
                    f"{path}:{line_number}: unknown record type {kind!r}"
                )
    graph = LabeledGraph.from_edges(edges, labels)
    return graph


__all__ = [
    "iter_edge_list",
    "load_edge_list",
    "load_edge_array",
    "save_edge_array",
    "load_edge_list_csr",
    "load_node_labels",
    "load_snap_dataset",
    "save_labeled_graph",
    "load_labeled_graph",
]
