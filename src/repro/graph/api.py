"""Restricted OSN access: the API model the paper assumes.

The paper (§3) assumes the estimation algorithms *cannot* see the whole
graph; they can only

* retrieve the list of friends/neighbors of a given user (one API call),
* read that user's profile labels (bundled with the same call — profile
  pages ship with the friend list in real OSN crawls),
* and know ``|V|`` and ``|E|`` as prior knowledge.

:class:`RestrictedGraphAPI` enforces exactly that.  Every sampler and
estimator in :mod:`repro.core` and :mod:`repro.baselines` works through
this wrapper, so the number of API calls an algorithm issues is measured
the same way the paper measures it (the x-axis of every table is a
budget expressed as a percentage of ``|V|`` API calls).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.exceptions import APIBudgetExceededError
from repro.graph.labeled_graph import Label, LabeledGraph, Node
from repro.utils.rng import RandomSource, ensure_rng


@dataclass
class APICallCounter:
    """Mutable record of how many API calls a client has issued.

    Attributes
    ----------
    calls:
        Total number of *charged* neighbor-list retrievals.
    cache_hits:
        Retrievals answered from the local cache (not charged — a crawler
        keeps pages it has already downloaded).
    budget:
        Optional hard limit; exceeding it raises
        :class:`~repro.exceptions.APIBudgetExceededError`.
    """

    calls: int = 0
    cache_hits: int = 0
    budget: Optional[int] = None
    per_node: Dict[Node, int] = field(default_factory=dict)

    def charge(self, node: Node) -> None:
        """Record one charged API call for *node*."""
        self.calls += 1
        self.per_node[node] = self.per_node.get(node, 0) + 1
        if self.budget is not None and self.calls > self.budget:
            raise APIBudgetExceededError(self.budget, self.calls)

    def record_cache_hit(self) -> None:
        """Record a retrieval served from cache (free)."""
        self.cache_hits += 1

    @property
    def total_requests(self) -> int:
        """Charged calls plus cache hits."""
        return self.calls + self.cache_hits

    def reset(self) -> None:
        """Zero all counters (the budget is kept)."""
        self.calls = 0
        self.cache_hits = 0
        self.per_node.clear()


class RestrictedGraphAPI:
    """Neighbor-list API over a :class:`LabeledGraph`.

    Parameters
    ----------
    graph:
        The underlying graph (never exposed to callers).
    budget:
        Optional maximum number of charged API calls.
    cache:
        When ``True`` (default) repeated lookups of the same node are
        free, mirroring a crawler that stores downloaded pages.  The
        paper's budget semantics ("x% of |V| API calls") count *distinct*
        page downloads, which is exactly what caching models.
    known_num_nodes / known_num_edges:
        Override the prior knowledge the paper assumes.  By default the
        true values of the underlying graph are used; passing estimates
        lets you study the effect of imperfect priors.
    """

    def __init__(
        self,
        graph: LabeledGraph,
        budget: Optional[int] = None,
        cache: bool = True,
        known_num_nodes: Optional[int] = None,
        known_num_edges: Optional[int] = None,
    ) -> None:
        self._graph = graph
        self._cache_enabled = cache
        self._neighbor_cache: Dict[Node, List[Node]] = {}
        self._label_cache: Dict[Node, FrozenSet[Label]] = {}
        self.counter = APICallCounter(budget=budget)
        self._known_num_nodes = known_num_nodes
        self._known_num_edges = known_num_edges

    # ------------------------------------------------------------------
    # prior knowledge (paper assumption 2)
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """``|V|`` as prior knowledge."""
        if self._known_num_nodes is not None:
            return self._known_num_nodes
        return self._graph.num_nodes

    @property
    def num_edges(self) -> int:
        """``|E|`` as prior knowledge."""
        if self._known_num_edges is not None:
            return self._known_num_edges
        return self._graph.num_edges

    # ------------------------------------------------------------------
    # the one API the paper allows
    # ------------------------------------------------------------------
    def neighbors(self, node: Node) -> List[Node]:
        """Retrieve the friend list of *node* — one charged API call.

        Cached retrievals are free when caching is enabled.
        """
        if self._cache_enabled and node in self._neighbor_cache:
            self.counter.record_cache_hit()
            return list(self._neighbor_cache[node])
        neighbors = self._graph.neighbors(node)
        labels = self._graph.labels_of(node)
        self.counter.charge(node)
        if self._cache_enabled:
            self._neighbor_cache[node] = neighbors
            self._label_cache[node] = labels
        return list(neighbors)

    def degree(self, node: Node) -> int:
        """Degree of *node*; comes with the same page as the friend list."""
        return len(self.neighbors(node))

    def labels_of(self, node: Node) -> FrozenSet[Label]:
        """Profile labels of *node*; bundled with the neighbor-list page."""
        if self._cache_enabled and node in self._label_cache:
            self.counter.record_cache_hit()
            return self._label_cache[node]
        labels = self._graph.labels_of(node)
        self.counter.charge(node)
        if self._cache_enabled:
            self._label_cache[node] = labels
            self._neighbor_cache[node] = self._graph.neighbors(node)
        return labels

    def has_label(self, node: Node, label: Label) -> bool:
        """Whether *node*'s profile carries *label*."""
        return label in self.labels_of(node)

    def random_node(self, rng: RandomSource = None) -> Node:
        """Return an arbitrary seed node to start a walk from.

        Real crawls start from some known account; here we draw one
        uniformly.  This is *not* used for estimation (that would require
        uniform node sampling, which OSN APIs do not offer) — only as the
        walk's starting point, whose effect is washed out by the burn-in.
        """
        generator = ensure_rng(rng)
        # Reservoir-free: materialising the node list once is fine because
        # this happens a handful of times per experiment.
        nodes = list(self._graph.nodes())
        return generator.choice(nodes)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def api_calls(self) -> int:
        """Number of charged API calls so far."""
        return self.counter.calls

    def reset_counter(self) -> None:
        """Zero the call counter and drop the cache (fresh crawl)."""
        self.counter.reset()
        self._neighbor_cache.clear()
        self._label_cache.clear()


__all__ = ["RestrictedGraphAPI", "APICallCounter"]
