"""Restricted OSN access: the API model the paper assumes.

The paper (§3) assumes the estimation algorithms *cannot* see the whole
graph; they can only

* retrieve the list of friends/neighbors of a given user (one API call),
* read that user's profile labels (bundled with the same call — profile
  pages ship with the friend list in real OSN crawls),
* and know ``|V|`` and ``|E|`` as prior knowledge.

:class:`RestrictedGraphAPI` enforces exactly that.  Every sampler and
estimator in :mod:`repro.core` and :mod:`repro.baselines` works through
this wrapper, so the number of API calls an algorithm issues is measured
the same way the paper measures it (the x-axis of every table is a
budget expressed as a percentage of ``|V|`` API calls).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from itertools import islice
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import APIBudgetExceededError
from repro.graph.labeled_graph import Label, LabeledGraph, Node
from repro.utils.rng import RandomSource, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.csr import CSRGraph


@dataclass
class APICallCounter:
    """Mutable record of how many API calls a client has issued.

    Attributes
    ----------
    calls:
        Total number of *charged* neighbor-list retrievals.
    cache_hits:
        Retrievals answered from the local cache (not charged — a crawler
        keeps pages it has already downloaded).
    budget:
        Optional hard limit; exceeding it raises
        :class:`~repro.exceptions.APIBudgetExceededError`.
    """

    calls: int = 0
    cache_hits: int = 0
    budget: Optional[int] = None
    per_node: Dict[Node, int] = field(default_factory=dict)

    def charge(self, node: Node) -> None:
        """Record one charged API call for *node*."""
        self.calls += 1
        self.per_node[node] = self.per_node.get(node, 0) + 1
        if self.budget is not None and self.calls > self.budget:
            raise APIBudgetExceededError(self.budget, self.calls)

    def record_cache_hit(self) -> None:
        """Record a retrieval served from cache (free)."""
        self.cache_hits += 1

    @property
    def total_requests(self) -> int:
        """Charged calls plus cache hits."""
        return self.calls + self.cache_hits

    def reset(self) -> None:
        """Zero all counters (the budget is kept)."""
        self.calls = 0
        self.cache_hits = 0
        self.per_node.clear()


class RestrictedGraphAPI:
    """Neighbor-list API over a :class:`LabeledGraph`.

    Parameters
    ----------
    graph:
        The underlying graph (never exposed to callers).
    budget:
        Optional maximum number of charged API calls.
    cache:
        When ``True`` (default) repeated lookups of the same node are
        free, mirroring a crawler that stores downloaded pages.  The
        paper's budget semantics ("x% of |V| API calls") count *distinct*
        page downloads, which is exactly what caching models.
    known_num_nodes / known_num_edges:
        Override the prior knowledge the paper assumes.  By default the
        true values of the underlying graph are used; passing estimates
        lets you study the effect of imperfect priors.
    """

    def __init__(
        self,
        graph: LabeledGraph,
        budget: Optional[int] = None,
        cache: bool = True,
        known_num_nodes: Optional[int] = None,
        known_num_edges: Optional[int] = None,
    ) -> None:
        self._graph = graph
        self._cache_enabled = cache
        self._neighbor_cache: Dict[Node, List[Node]] = {}
        self._label_cache: Dict[Node, FrozenSet[Label]] = {}
        self.counter = APICallCounter(budget=budget)
        self._known_num_nodes = known_num_nodes
        self._known_num_edges = known_num_edges
        self._csr: Optional["CSRGraph"] = None
        self._csr_pages: Optional[np.ndarray] = None
        self._csr_pages_folded = 0  # cache entries already folded into the mask

    # ------------------------------------------------------------------
    # prior knowledge (paper assumption 2)
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """``|V|`` as prior knowledge."""
        if self._known_num_nodes is not None:
            return self._known_num_nodes
        return self._graph.num_nodes

    @property
    def num_edges(self) -> int:
        """``|E|`` as prior knowledge."""
        if self._known_num_edges is not None:
            return self._known_num_edges
        return self._graph.num_edges

    # ------------------------------------------------------------------
    # the one API the paper allows
    # ------------------------------------------------------------------
    def neighbors(self, node: Node) -> List[Node]:
        """Retrieve the friend list of *node* — one charged API call.

        Cached retrievals are free when caching is enabled; pages the
        CSR backend downloaded through this wrapper count as cached too.
        """
        if self._cache_enabled and node in self._neighbor_cache:
            self.counter.record_cache_hit()
            return list(self._neighbor_cache[node])
        neighbors = self._graph.neighbors(node)
        labels = self._graph.labels_of(node)
        if self._csr_page_downloaded(node):
            self.counter.record_cache_hit()
        else:
            self.counter.charge(node)
        if self._cache_enabled:
            self._neighbor_cache[node] = neighbors
            self._label_cache[node] = labels
        return list(neighbors)

    def degree(self, node: Node) -> int:
        """Degree of *node*; comes with the same page as the friend list."""
        return len(self.neighbors(node))

    def labels_of(self, node: Node) -> FrozenSet[Label]:
        """Profile labels of *node*; bundled with the neighbor-list page."""
        if self._cache_enabled and node in self._label_cache:
            self.counter.record_cache_hit()
            return self._label_cache[node]
        labels = self._graph.labels_of(node)
        if self._csr_page_downloaded(node):
            self.counter.record_cache_hit()
        else:
            self.counter.charge(node)
        if self._cache_enabled:
            self._label_cache[node] = labels
            self._neighbor_cache[node] = self._graph.neighbors(node)
        return labels

    def has_label(self, node: Node, label: Label) -> bool:
        """Whether *node*'s profile carries *label*."""
        return label in self.labels_of(node)

    def random_node(self, rng: RandomSource = None) -> Node:
        """Return an arbitrary seed node to start a walk from.

        Real crawls start from some known account; here we draw one
        uniformly.  This is *not* used for estimation (that would require
        uniform node sampling, which OSN APIs do not offer) — only as the
        walk's starting point, whose effect is washed out by the burn-in.
        """
        generator = ensure_rng(rng)
        # Reservoir-free: materialising the node list once is fine because
        # this happens a handful of times per experiment.
        nodes = list(self._graph.nodes())
        return generator.choice(nodes)

    # ------------------------------------------------------------------
    # vectorized-backend export
    # ------------------------------------------------------------------
    def to_csr(self) -> "CSRGraph":
        """Frozen CSR view of the underlying graph (cached on this wrapper).

        This is a *simulation accelerator*, not an API capability: the
        CSR backend walks the full arrays but reproduces the same
        charged-call accounting this wrapper would have recorded
        (distinct page downloads; see
        :mod:`repro.core.samplers.csr_backend`).  Construction itself is
        never charged — it plays the role of the experiment harness, not
        of the crawler.
        """
        if self._csr is None:
            from repro.graph.csr import csr_view

            # Shared (version-checked) view: many wrappers over one
            # graph — e.g. one per experiment repetition — freeze once.
            self._csr = csr_view(self._graph)
        return self._csr

    def adopt_csr(self, csr: "CSRGraph") -> None:
        """Reuse a CSR view frozen from the same underlying graph.

        The experiment harness wraps the same graph in a fresh API per
        repetition; adopting a shared read-only CSR avoids re-freezing
        the adjacency every time.  A cheap shape check guards against
        adopting a view of a different graph, which would silently
        sample the wrong arrays.
        """
        from repro.graph.csr import ensure_same_graph

        self._csr = ensure_same_graph(csr, self._graph)

    @property
    def cache_enabled(self) -> bool:
        """Whether repeated page retrievals are free (crawler keeps pages)."""
        return self._cache_enabled

    def downloaded_page_mask(self) -> np.ndarray:
        """Per-CSR-index mask of pages this wrapper has already downloaded.

        Used by the CSR samplers so revisits stay free across repeated
        ``sample()`` calls on one wrapper, matching the dict path's
        cache.  Pages fetched through the dict path are folded in;
        pages the CSR path downloads are recorded in the mask only —
        the dict caches are not eagerly back-filled, but the dict path
        consults this mask so those pages stay free there too.
        """
        csr = self.to_csr()
        if self._csr_pages is None:
            self._csr_pages = np.zeros(csr.num_nodes, dtype=bool)
        # The dict cache only grows (dropping it resets the mask too), so
        # fold just the entries added since the last call — dict order is
        # insertion order.
        cache = self._neighbor_cache
        if len(cache) > self._csr_pages_folded:
            for node in islice(cache, self._csr_pages_folded, None):
                self._csr_pages[csr.index_of(node)] = True
            self._csr_pages_folded = len(cache)
        return self._csr_pages

    def _csr_page_downloaded(self, node: Node) -> bool:
        """Whether the CSR backend already downloaded *node*'s page.

        Pages fetched by the CSR samplers are tracked in the page mask
        only (the dict caches are not eagerly back-filled); this check
        keeps them free when the dict path touches them later, so the
        two backends share one accounting regardless of interleaving.
        """
        if self._csr_pages is None or self._csr is None:
            return False
        index = self._csr._index_of.get(node)
        return index is not None and bool(self._csr_pages[index])

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def api_calls(self) -> int:
        """Number of charged API calls so far."""
        return self.counter.calls

    def reset_counter(self) -> None:
        """Zero the call counter and drop the cache (fresh crawl)."""
        self.counter.reset()
        self._neighbor_cache.clear()
        self._label_cache.clear()
        self._csr_pages = None
        self._csr_pages_folded = 0


__all__ = ["RestrictedGraphAPI", "APICallCounter"]
