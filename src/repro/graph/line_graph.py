"""Line-graph transform ``G -> G'`` used by the baseline adaptations.

The paper's baselines (§5.1, "Adaptations of Existing Algorithms") run
node-counting random-walk estimators of Li et al. [16] on a transformed
graph ``G'`` in which

* every edge of ``G`` becomes a node of ``G'``, and
* two ``G'`` nodes are adjacent iff the corresponding edges of ``G``
  share an endpoint.

A node of ``G'`` is a *target node* exactly when the corresponding edge
of ``G`` is a target edge, so counting target nodes in ``G'`` counts
target edges in ``G``.

Two access paths are provided:

* :func:`build_line_graph` materialises ``G'`` as a
  :class:`~repro.graph.labeled_graph.LabeledGraph` (fine for the scaled
  datasets used in tests and benches), and
* :class:`LineGraphAPI` exposes ``G'`` *lazily* through the same
  restricted neighbor-list interface as
  :class:`~repro.graph.api.RestrictedGraphAPI`, charging API calls of
  the *original* graph.  Walking from one edge of ``G`` to an adjacent
  edge only requires the friend lists of the shared endpoint's two
  endpoints, which is how a real crawler would implement it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Tuple

from repro.graph.api import RestrictedGraphAPI
from repro.graph.labeled_graph import Label, LabeledGraph, Node


@dataclass(frozen=True, order=True)
class LineGraphNode:
    """A node of ``G'``: an (unordered, canonicalised) edge of ``G``."""

    u: Node
    v: Node

    @classmethod
    def from_edge(cls, u: Node, v: Node) -> "LineGraphNode":
        """Canonicalise the endpoint order so each edge maps to one node."""
        try:
            first, second = (u, v) if u <= v else (v, u)  # type: ignore[operator]
        except TypeError:
            first, second = (u, v) if repr(u) <= repr(v) else (v, u)
        return cls(first, second)

    def endpoints(self) -> Tuple[Node, Node]:
        """Return the two endpoints of the underlying edge of ``G``."""
        return (self.u, self.v)

    def shares_endpoint(self, other: "LineGraphNode") -> bool:
        """Whether this edge and *other* are adjacent in ``G'``."""
        return len({self.u, self.v} & {other.u, other.v}) > 0


def edge_is_target(
    labels_u: FrozenSet[Label], labels_v: FrozenSet[Label], t1: Label, t2: Label
) -> bool:
    """Target-edge predicate over two endpoint label sets (paper §3)."""
    return (t1 in labels_u and t2 in labels_v) or (t2 in labels_u and t1 in labels_v)


def build_line_graph(graph: LabeledGraph, t1: Label, t2: Label) -> LabeledGraph:
    """Materialise ``G'`` with a boolean ``"target"`` label on target nodes.

    The returned :class:`LabeledGraph` uses :class:`LineGraphNode`
    instances as node ids.  Nodes of ``G'`` that correspond to target
    edges of ``G`` carry the label ``"target"``; the rest carry no label.

    Notes
    -----
    ``G'`` can be much denser than ``G`` (a node of degree ``d``
    contributes ``d·(d−1)/2`` line-graph edges), so this is intended for
    the scaled datasets used in experiments, not web-scale graphs — the
    baselines use :class:`LineGraphAPI` for walk-time access instead.
    """
    line = LabeledGraph()
    for u, v in graph.edges():
        node = LineGraphNode.from_edge(u, v)
        labels: Iterable[Label]
        if edge_is_target(graph.labels_of(u), graph.labels_of(v), t1, t2):
            labels = ("target",)
        else:
            labels = ()
        line.add_node(node, labels)
    for center in graph.nodes():
        incident = [LineGraphNode.from_edge(center, n) for n in graph.neighbors(center)]
        for i, first in enumerate(incident):
            for second in incident[i + 1 :]:
                line.add_edge(first, second)
    return line


class LineGraphAPI:
    """Lazy restricted-access view of ``G'`` on top of the OSN API.

    The baselines' random walks run on ``G'`` but every neighbor lookup
    is translated into (cached) friend-list lookups on the original
    restricted API, so the API-call accounting stays comparable with the
    paper's algorithms.
    """

    def __init__(self, api: RestrictedGraphAPI, t1: Label, t2: Label) -> None:
        self._api = api
        self._t1 = t1
        self._t2 = t2

    @property
    def original_api(self) -> RestrictedGraphAPI:
        """The wrapped restricted API of the original graph ``G``."""
        return self._api

    @property
    def num_nodes(self) -> int:
        """``|H| = |E|`` — prior knowledge carried over from ``G``."""
        return self._api.num_edges

    def degree(self, node: LineGraphNode) -> int:
        """Degree of *node* in ``G'``: ``d(u) + d(v) − 2``."""
        u, v = node.endpoints()
        return self._api.degree(u) + self._api.degree(v) - 2

    def neighbors(self, node: LineGraphNode) -> List[LineGraphNode]:
        """All ``G'`` neighbors of *node* (edges of ``G`` sharing an endpoint)."""
        u, v = node.endpoints()
        result: List[LineGraphNode] = []
        for w in self._api.neighbors(u):
            if w != v:
                result.append(LineGraphNode.from_edge(u, w))
        for w in self._api.neighbors(v):
            if w != u:
                result.append(LineGraphNode.from_edge(v, w))
        return result

    def is_target(self, node: LineGraphNode) -> bool:
        """Whether the ``G`` edge behind *node* is a target edge."""
        u, v = node.endpoints()
        return edge_is_target(
            self._api.labels_of(u), self._api.labels_of(v), self._t1, self._t2
        )

    def random_node(self, rng=None) -> LineGraphNode:
        """A seed node of ``G'``: a random edge incident to a random node of ``G``."""
        from repro.utils.rng import ensure_rng

        generator = ensure_rng(rng)
        seed = self._api.random_node(generator)
        neighbors = self._api.neighbors(seed)
        while not neighbors:  # pragma: no cover - LCC graphs have no isolated nodes
            seed = self._api.random_node(generator)
            neighbors = self._api.neighbors(seed)
        return LineGraphNode.from_edge(seed, generator.choice(neighbors))


__all__ = ["LineGraphNode", "build_line_graph", "LineGraphAPI", "edge_is_target"]
