"""Exact (full-access) graph statistics and ground-truth counts.

The estimators never use these — they only exist to

* provide the ground truth ``F`` against which NRMSE is computed,
* compute the oracle sample-size bounds of Theorems 4.1–4.5,
* summarise datasets for Table 1 of the paper.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Hashable, List, Set, Tuple

import numpy as np

from repro.exceptions import EmptyGraphError
from repro.graph.csr import CSRGraph, csr_view
from repro.graph.labeled_graph import Label, LabeledGraph, Node


@dataclass(frozen=True)
class GraphSummary:
    """Dataset summary in the spirit of the paper's Table 1."""

    name: str
    num_nodes: int
    num_edges: int
    max_degree: int
    average_degree: float
    num_distinct_labels: int

    def as_row(self) -> Tuple[str, int, int, int, float, int]:
        """Return the summary as a plain tuple, handy for table rendering."""
        return (
            self.name,
            self.num_nodes,
            self.num_edges,
            self.max_degree,
            round(self.average_degree, 2),
            self.num_distinct_labels,
        )


def summarize_graph(graph: LabeledGraph, name: str = "graph") -> GraphSummary:
    """Produce a :class:`GraphSummary` (Table 1 row) for *graph*.

    Works on both substrates: the dict :class:`LabeledGraph` and the
    array-native :class:`CSRGraph` (degree aggregates come straight off
    the ``degrees`` array there).
    """
    if graph.num_nodes == 0:
        raise EmptyGraphError("cannot summarise an empty graph")
    if isinstance(graph, CSRGraph):
        max_degree = int(graph.degrees.max()) if graph.num_nodes else 0
        average_degree = 2 * graph.num_edges / graph.num_nodes
    else:
        max_degree = graph.max_degree()
        average_degree = graph.average_degree()
    return GraphSummary(
        name=name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        max_degree=max_degree,
        average_degree=average_degree,
        num_distinct_labels=len(graph.all_labels()),
    )


def count_target_edges(graph: LabeledGraph, t1: Label, t2: Label) -> int:
    """Exact ground-truth count ``F`` of target edges for ``(t1, t2)``.

    An edge ``(u, v)`` is a target edge when one endpoint carries ``t1``
    and the other carries ``t2`` (paper §3).  When ``t1 == t2`` this
    degenerates to "both endpoints carry the label", which the definition
    also covers.

    Counting goes through the graph's frozen CSR view (label masks, no
    Python edge loop) and is cached per ``(graph, pair)``: the view is
    shared via :func:`repro.graph.csr.csr_view` and the per-pair
    incident-count arrays are cached on it, so a table/sweep harness
    re-asking for the same ground truth pays nothing.  Graph-likes that
    are not :class:`LabeledGraph` / :class:`CSRGraph` instances fall
    back to the dict edge loop.
    """
    if isinstance(graph, CSRGraph):
        return graph.count_target_edges(t1, t2)
    if isinstance(graph, LabeledGraph):
        return csr_view(graph).count_target_edges(t1, t2)
    return _count_target_edges_dict(graph, t1, t2)


def _count_target_edges_dict(graph, t1: Label, t2: Label) -> int:
    """Reference edge-loop counter for dict-backed graph-likes."""
    count = 0
    for u, v in graph.edges():
        lu = graph.labels_of(u)
        lv = graph.labels_of(v)
        if (t1 in lu and t2 in lv) or (t2 in lu and t1 in lv):
            count += 1
    return count


def target_edge_fraction(graph: LabeledGraph, t1: Label, t2: Label) -> float:
    """Relative target-edge count ``F / |E|`` (the x-axis of Figures 1–2)."""
    if graph.num_edges == 0:
        raise EmptyGraphError("target edge fraction of an edgeless graph is undefined")
    return count_target_edges(graph, t1, t2) / graph.num_edges


def target_incident_count(graph: LabeledGraph, node: Node, t1: Label, t2: Label) -> int:
    """Exact ``T(u)`` — number of target edges incident to *node* (paper §4.2)."""
    return graph.target_edges_incident_to(node, t1, t2)


def target_incident_counts(graph: LabeledGraph, t1: Label, t2: Label) -> Dict[Node, int]:
    """``T(u)`` for every node; the sum over all nodes equals ``2 F``."""
    return {
        node: graph.target_edges_incident_to(node, t1, t2) for node in graph.nodes()
    }


def nodes_covering_target_edges(graph: LabeledGraph, t1: Label, t2: Label) -> Set[Node]:
    """The node set ``Q`` from §5.3: nodes incident to at least one target edge."""
    return {
        node
        for node in graph.nodes()
        if graph.target_edges_incident_to(node, t1, t2) > 0
    }


def degree_histogram(graph: LabeledGraph) -> Dict[int, int]:
    """Map degree value -> number of nodes with that degree."""
    histogram: Counter = Counter()
    for node in graph.nodes():
        histogram[graph.degree(node)] += 1
    return dict(histogram)


def label_histogram(graph: LabeledGraph) -> Dict[Label, int]:
    """Map label -> number of nodes carrying that label."""
    histogram: Counter = Counter()
    for node in graph.nodes():
        for label in graph.labels_of(node):
            histogram[label] += 1
    return dict(histogram)


def edge_label_histogram(graph: LabeledGraph) -> Dict[Tuple[Label, Label], int]:
    """Count edges per unordered label pair.

    For an edge ``(u, v)`` every pair ``(a, b)`` with ``a`` a label of
    ``u`` and ``b`` a label of ``v`` contributes one count to the
    canonicalised (sorted) pair.  This is how the experiment section
    enumerates the "thousands of edge labels we can choose" in Pokec,
    Orkut and LiveJournal, from which target labels are drawn per
    frequency quartile.

    A :class:`CSRGraph` carrying a one-label-per-node array is counted
    fully vectorized (pair codes + one sort); other CSR graphs fall
    back to a per-edge loop over the arrays, dict graphs to the
    reference loop.
    """
    if isinstance(graph, CSRGraph):
        label_array = graph.label_array()
        if label_array is not None:
            return _edge_label_histogram_array(graph, label_array)
        return _edge_label_histogram_csr_sets(graph)
    histogram: Counter = Counter()
    for u, v in graph.edges():
        lu = graph.labels_of(u)
        lv = graph.labels_of(v)
        pairs: Set[Tuple[Label, Label]] = set()
        for a in lu:
            for b in lv:
                pairs.add(_canonical_pair(a, b))
        for pair in pairs:
            histogram[pair] += 1
    return dict(histogram)


def _edge_label_histogram_array(
    csr: CSRGraph, label_array: np.ndarray
) -> Dict[Tuple[Label, Label], int]:
    """Vectorized histogram for integer-array-labeled CSR graphs.

    Each undirected edge appears once (source index < neighbor index in
    the flat adjacency); its canonical label pair becomes one integer
    code and the counts are adjacent run lengths after a single sort.
    """
    sources = np.repeat(
        np.arange(csr.num_nodes, dtype=np.int64), np.asarray(csr.degrees)
    )
    once = sources < csr.indices
    a = label_array[sources[once]].astype(np.int64)
    b = label_array[csr.indices[once]].astype(np.int64)
    if a.size == 0:
        return {}
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    base = int(lo.min())
    span = int(hi.max()) - base + 1
    codes = np.sort((lo - base) * span + (hi - base))
    boundaries = np.flatnonzero(
        np.concatenate(([True], codes[1:] != codes[:-1]))
    )
    counts = np.diff(np.concatenate((boundaries, [codes.size])))
    distinct = codes[boundaries]
    return {
        (int(code // span + base), int(code % span + base)): int(count)
        for code, count in zip(distinct, counts)
    }


def _edge_label_histogram_csr_sets(csr: CSRGraph) -> Dict[Tuple[Label, Label], int]:
    """Reference per-edge loop over CSR arrays (set-labeled graphs)."""
    histogram: Counter = Counter()
    indptr, indices, _ = csr.adjacency_lists()
    for i in range(csr.num_nodes):
        li = csr.labels_of(i)
        for j in indices[indptr[i] : indptr[i + 1]]:
            if i < j:
                pairs: Set[Tuple[Label, Label]] = set()
                for a in li:
                    for b in csr.labels_of(j):
                        pairs.add(_canonical_pair(a, b))
                for pair in pairs:
                    histogram[pair] += 1
    return dict(histogram)


def _canonical_pair(a: Label, b: Label) -> Tuple[Label, Label]:
    """Order a label pair deterministically so (a,b) and (b,a) collapse."""
    try:
        return (a, b) if a <= b else (b, a)  # type: ignore[operator]
    except TypeError:
        return (a, b) if repr(a) <= repr(b) else (b, a)


def label_pair_by_frequency_quartile(
    graph: LabeledGraph, quartiles: int = 4
) -> List[List[Tuple[Tuple[Label, Label], int]]]:
    """Split all edge-label pairs into frequency quartiles (paper §5.2).

    The paper orders edge labels by target-edge count ascending, splits
    them into four equal parts and samples one label pair per part.  The
    returned list has *quartiles* buckets, each a list of
    ``((t1, t2), count)`` entries sorted ascending by count.
    """
    if quartiles <= 0:
        raise ValueError(f"quartiles must be positive, got {quartiles}")
    histogram = sorted(edge_label_histogram(graph).items(), key=lambda item: item[1])
    if not histogram:
        return [[] for _ in range(quartiles)]
    buckets: List[List[Tuple[Tuple[Label, Label], int]]] = []
    size = max(1, len(histogram) // quartiles)
    for index in range(quartiles):
        start = index * size
        end = (index + 1) * size if index < quartiles - 1 else len(histogram)
        buckets.append(histogram[start:end])
    return buckets


__all__ = [
    "GraphSummary",
    "summarize_graph",
    "count_target_edges",
    "target_edge_fraction",
    "target_incident_count",
    "target_incident_counts",
    "nodes_covering_target_edges",
    "degree_histogram",
    "label_histogram",
    "edge_label_histogram",
    "label_pair_by_frequency_quartile",
]
