"""Allow ``python -m repro`` to behave like the ``repro-osn`` script."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
