"""Table 1 — statistics of the datasets.

The paper's Table 1 lists |V| and |E| of the five crawls.  This bench
regenerates the equivalent table for the synthetic stand-ins (original
sizes are shown alongside for reference) and times dataset generation.
"""

from bench_support import write_result

from repro.datasets.registry import DATASET_SPECS, dataset_names, load_dataset


def _build_table(settings) -> str:
    lines = [
        "Table 1 reproduction: statistics of datasets (synthetic stand-ins)",
        f"{'Network':<14}{'|V|':>10}{'|E|':>12}{'paper |V|':>14}{'paper |E|':>16}{'labels':>9}",
    ]
    for name in dataset_names():
        dataset = load_dataset(name, seed=settings["seed"], scale=settings["scale"])
        summary = dataset.summary()
        spec = DATASET_SPECS[name]
        lines.append(
            f"{spec.paper_name:<14}{summary.num_nodes:>10}{summary.num_edges:>12}"
            f"{spec.paper_num_nodes:>14}{spec.paper_num_edges:>16}"
            f"{summary.num_distinct_labels:>9}"
        )
        for pair in dataset.target_pairs:
            lines.append(
                f"    target pair {pair}: F={dataset.target_counts[pair]}"
                f" ({100 * dataset.fraction(pair):.4f}% of |E|)"
            )
    return "\n".join(lines)


def test_table01_dataset_statistics(benchmark, settings):
    table = benchmark.pedantic(_build_table, args=(settings,), rounds=1, iterations=1)
    path = write_result("table01_datasets.txt", table)
    assert path.exists()
    assert "Facebook" in table and "Livejournal" in table
