"""Figure 1 — NRMSE vs relative count of target edges in Orkut (5%|V| calls).

The paper plots, for the five proposed algorithms, the NRMSE at a fixed
5%|V| budget against F/|E| over many Orkut label pairs, and observes
that (1) the error shrinks as the relative count grows and (2)
NeighborExploration dominates at the rare end.  This bench regenerates
the data series on the Orkut stand-in.
"""

from bench_support import table_config, write_result

from repro.experiments.figures import run_paper_figure
from repro.experiments.reporting import format_frequency_series


def _build_series(settings):
    config = table_config(settings).with_overrides(dataset="orkut")
    return run_paper_figure(1, config, repetitions=settings["repetitions"])


def test_figure1_orkut_frequency_sweep(benchmark, settings):
    result = benchmark.pedantic(_build_series, args=(settings,), rounds=1, iterations=1)
    series_text = format_frequency_series(
        result.points,
        caption="Figure 1 reproduction: NRMSE vs number of target edges in Orkut "
        "(5%|V| API calls)",
    )
    trend = result.monotone_trend("NeighborExploration-HH")
    artifact = series_text + f"\n\nNRMSE-vs-frequency trend (NeighborExploration-HH): {trend:+.2f}"
    write_result("figure1_orkut_sweep.txt", artifact)
    assert len(result.points) >= 3
    # Paper finding (1): the error tends to decrease with the relative count.
    assert trend <= 0
