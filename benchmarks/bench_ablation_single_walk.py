"""Ablation — single-walk vs independent-walk NeighborSample (paper §4.1.2).

The paper's implementation note replaces Algorithm 1's "one random walk
per sampled edge" with a single long walk, arguing the estimator stays
valid while the API cost collapses.  This ablation measures both the
accuracy and the API cost of the two implementations.
"""

import statistics

from bench_support import write_result

from repro.core.estimators import EdgeHansenHurwitzEstimator
from repro.core.samplers import NeighborSampleSampler
from repro.datasets.registry import load_dataset
from repro.graph.api import RestrictedGraphAPI
from repro.graph.statistics import count_target_edges
from repro.experiments.metrics import nrmse
from repro.utils.rng import spawn_rngs

SAMPLES = 60
BURN_IN = 100


def _run_variant(graph, single_walk, repetitions, seed):
    estimates = []
    api_calls = []
    truth = count_target_edges(graph, 1, 2)
    for rng in spawn_rngs(seed, repetitions):
        api = RestrictedGraphAPI(graph, cache=False)
        sampler = NeighborSampleSampler(api, 1, 2, burn_in=BURN_IN, rng=rng)
        samples = sampler.sample(SAMPLES, single_walk=single_walk)
        estimates.append(EdgeHansenHurwitzEstimator().estimate(samples).estimate)
        api_calls.append(api.api_calls)
    return {
        "nrmse": nrmse(estimates, truth),
        "mean_api_calls": statistics.mean(api_calls),
    }


def _build_report(settings):
    graph = load_dataset("facebook", seed=settings["seed"], scale=min(settings["scale"], 0.25)).graph
    repetitions = max(3, settings["repetitions"])
    single = _run_variant(graph, True, repetitions, seed=11)
    independent = _run_variant(graph, False, repetitions, seed=11)
    lines = [
        "Ablation: single-walk vs independent-walk NeighborSample (HH estimator)",
        f"samples per run k={SAMPLES}, burn-in={BURN_IN}, repetitions={repetitions}",
        f"{'variant':<22}{'NRMSE':>10}{'mean API calls':>18}",
        f"{'single walk':<22}{single['nrmse']:>10.3f}{single['mean_api_calls']:>18.0f}",
        f"{'independent walks':<22}{independent['nrmse']:>10.3f}{independent['mean_api_calls']:>18.0f}",
    ]
    return single, independent, "\n".join(lines)


def test_ablation_single_walk_vs_independent(benchmark, settings):
    single, independent, report = benchmark.pedantic(
        _build_report, args=(settings,), rounds=1, iterations=1
    )
    write_result("ablation_single_walk.txt", report)
    # The whole point of the optimisation: an order of magnitude fewer API calls.
    assert single["mean_api_calls"] < independent["mean_api_calls"] / 5
