"""Tables 23-26 — best algorithm per label pair using 5%|V| API calls.

The paper's summary tables list, for every evaluated (dataset, label)
setting, which algorithm achieved the lowest NRMSE at the largest budget
and what that NRMSE was.  This bench reruns every NRMSE table at the
largest budget only and assembles the same summary, next to the paper's
reported winners.
"""

from bench_support import table_config, write_result

from repro.experiments.reporting import format_summary_table
from repro.experiments.tables import TABLE_DEFINITIONS, run_paper_table

SUMMARY_GROUPS = {
    23: [4, 5],            # Facebook and Google+
    24: [6, 7, 8, 9],      # Pokec
    25: [10, 11, 12, 13],  # Orkut
    26: [14, 15, 16, 17],  # LiveJournal
}


def _build_summary(settings) -> str:
    config = table_config(settings).with_overrides(
        sample_fractions=(settings["fractions"][-1],)
    )
    sections = []
    for summary_table, nrmse_tables in SUMMARY_GROUPS.items():
        entries = []
        paper_lines = []
        for number in nrmse_tables:
            result = run_paper_table(number, config)
            definition = TABLE_DEFINITIONS[number]
            best_name, best_value = result.reproduced_best()
            entries.append(
                (result.table.dataset, result.table.target_pair, best_name, best_value)
            )
            paper_lines.append(
                f"    paper Table {number}: {definition.paper_best_algorithm} "
                f"(NRMSE {definition.paper_best_nrmse}) on label {definition.paper_target_label}"
            )
        sections.append(
            format_summary_table(
                entries,
                caption=(
                    f"Table {summary_table} reproduction: best algorithm using "
                    f"{settings['fractions'][-1] * 100:.1f}%|V| API calls"
                ),
            )
        )
        sections.append("  paper reference:")
        sections.extend(paper_lines)
        sections.append("")
    return "\n".join(sections)


def test_tables_23_26_best_algorithm_summary(benchmark, settings):
    summary = benchmark.pedantic(_build_summary, args=(settings,), rounds=1, iterations=1)
    path = write_result("table23_26_best_algorithms.txt", summary)
    assert path.exists()
    assert "Table 23 reproduction" in summary
    assert "Table 26 reproduction" in summary
