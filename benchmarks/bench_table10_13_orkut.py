"""Tables 10-13 — Orkut, four degree-label pairs of increasing frequency.

Degree-bucket labels; the paper's target-edge shares range from 0.001%
to 0.657% of |E|.  NeighborExploration wins the rare-label tables and
NeighborSample catches up as the share grows.
"""

import pytest

from bench_support import run_and_record_table


@pytest.mark.parametrize("table_number", [10, 11, 12, 13])
def test_tables_10_13_orkut_degree_labels(benchmark, settings, table_number):
    result = benchmark.pedantic(
        run_and_record_table, args=(table_number, settings), rounds=1, iterations=1
    )
    assert len(result.table.cells) == 10
