"""Table 4 — Facebook, target label (1, 2), NRMSE vs sample size.

The paper reports all ten algorithms at budgets 0.5%-5% of |V| on the
Facebook crawl (gender labels, 42.4% of edges are target edges); its
winner at 5%|V| is NeighborSample-HT with NRMSE 0.104.  This bench
regenerates the table on the Facebook stand-in and records whether a
proposed algorithm still beats every EX-* baseline.
"""

from bench_support import run_and_record_table


def test_table04_facebook_gender(benchmark, settings):
    result = benchmark.pedantic(
        run_and_record_table, args=(4, settings), rounds=1, iterations=1
    )
    best, best_value = result.reproduced_best()
    assert best_value >= 0
    assert len(result.table.cells) == 10
