"""Table 5 — Google+, target label (1, 2), NRMSE vs sample size.

Gender labels on the (much larger, denser) Google+ crawl with 26.9% of
edges being target edges; the paper's winner at 5%|V| is
NeighborSample-HH with NRMSE 0.029.
"""

from bench_support import run_and_record_table


def test_table05_googleplus_gender(benchmark, settings):
    result = benchmark.pedantic(
        run_and_record_table, args=(5, settings), rounds=1, iterations=1
    )
    assert len(result.table.cells) == 10
