"""Scale ladder: the CSR-native data plane from 10⁴ to 10⁶ nodes.

One test climbs the rungs (``REPRO_SCALE_RUNGS``, default
``10000,100000,1000000``) and, per rung, times the whole paper
preprocessing pipeline on the array-native path — Chung–Lu edge draws,
CSR assembly, largest-connected-component cleaning, Zipf labeling and a
fleet walk — plus the networkx/dict reference path on the rungs where
it is still affordable (``REPRO_SCALE_NX_LIMIT``, default ``100000``),
so the generation speedup is tracked in the perf trajectory.

A second test times a Figure-1-shaped frequency sweep with
``reuse="none"`` (fresh fleet per point) against ``reuse="prefix"``
(one fleet per algorithm, classified per pair) and records both NRMSE
series side by side; the statistical KS equivalence of the two modes is
enforced by ``tests/integration/test_prefix_equivalence.py``.

A third test (``bench_baselines``) times every EX-* baseline's scalar
reference path (sequential Python line-graph walks) against the
vectorized line-graph fleet, asserting the ≥5× acceptance floor, and —
when the ladder includes a ≥10⁵ rung — runs a full **ten-algorithm**
``compare_algorithms`` table CSR-natively with ``execution="fleet"``,
recording its wall-clock and NRMSE rows (the statistical equivalence of
the fleet baselines is enforced by
``tests/integration/test_baseline_fleet_equivalence.py``).

A fourth test (``bench_compiled_kernels``) times the numba-compiled
fleet kernels against the vectorized numpy tier — the SRW node fleet
and the EX-MHRW implicit line-graph fleet at the ≥10⁵ rung — asserting
bit-identical trajectories/ledgers always, and the ≥5× acceptance floor
when numba is importable (without numba the compiled engine falls back
to numpy and the entry records that honestly).

A fifth test (``graph_store``) benches the buffer-backend plane: the
same multi-process fleet table run with ``graph_store="ram"`` (the
graph pickled into every worker) versus ``"shm"`` (one shared-memory
segment, workers reattach O(1) handles), recording worker-spawn
overhead per store and asserting — at the ≥10⁶ rung — that shm beats
the pickling path; plus a subprocess peak-RSS comparison of a
memory-mapped graph against a fully-loaded twin, asserting the mmap
run's RSS delta stays under the graph's in-RAM footprint (the
out-of-core claim).

Everything lands in ``benchmarks/results/BENCH_scale.json``.  CI runs
the 10⁴ rung (see ``.github/workflows/ci.yml``) with
``-W error::ResourceWarning`` — a leaked shared-memory publication
fails the build — and uploads the JSON as an artifact; the committed
file is a full-ladder run including the ≥10⁶-node rung.
"""

import json
import os
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

import bench_support
from repro.datasets.labeling import zipf_label_array
from repro.datasets.registry import select_target_pairs
from repro.datasets.synthetic import (
    chung_lu_edges,
    chung_lu_osn,
    powerlaw_degree_sequence,
)
from repro.experiments.sweeps import frequency_sweep
from repro.graph.cleaning import largest_connected_component_csr
from repro.graph.csr import CSRGraph
from repro.walks.batched import BatchedWalkEngine

#: Node counts to climb, comma-separated (env-overridable for CI).
RUNGS = tuple(
    int(value)
    for value in os.environ.get("REPRO_SCALE_RUNGS", "10000,100000,1000000").split(",")
)

#: Largest rung on which the networkx/dict reference path is also timed.
NX_LIMIT = int(os.environ.get("REPRO_SCALE_NX_LIMIT", "100000"))

AVERAGE_DEGREE = 14.0
FLEET_WALKERS = 256
FLEET_STEPS = 1000

_RESULTS: dict = {}


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _peak_rss_mb() -> float:
    """This process's lifetime-peak resident set (Linux: ru_maxrss is KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def test_scale_ladder_rungs():
    """Generate → clean → label → fleet-walk each rung; record wall-clocks."""
    rungs = {}
    for num_nodes in RUNGS:
        weights = powerlaw_degree_sequence(num_nodes, AVERAGE_DEGREE)
        rung_started = time.perf_counter()
        edges, generate_seconds = _timed(lambda: chung_lu_edges(weights, rng=1))
        raw, assemble_seconds = _timed(
            lambda: CSRGraph.from_edge_array(edges, num_nodes=num_nodes)
        )
        graph, lcc_seconds = _timed(lambda: largest_connected_component_csr(raw))
        labeled, label_seconds = _timed(
            lambda: graph.with_labels(
                label_array=zipf_label_array(
                    graph.num_nodes, num_labels=150, exponent=1.1, rng=2
                )
            )
        )
        engine = BatchedWalkEngine(labeled, rng=3)
        fleet, walk_seconds = _timed(
            lambda: engine.run_fleet(FLEET_WALKERS, FLEET_STEPS)
        )
        end_to_end = time.perf_counter() - rung_started
        assert fleet.num_walkers == FLEET_WALKERS
        assert labeled.count_target_edges(1, 2) > 0  # labeled and walkable

        entry = {
            "requested_nodes": num_nodes,
            "num_nodes": labeled.num_nodes,
            "num_edges": labeled.num_edges,
            "indices_dtype": str(labeled.indices.dtype),
            "adjacency_bytes": int(
                labeled.indices.nbytes + labeled.indptr.nbytes
            ),
            "generate_seconds": round(generate_seconds, 4),
            "assemble_seconds": round(assemble_seconds, 4),
            "lcc_seconds": round(lcc_seconds, 4),
            "label_seconds": round(label_seconds, 4),
            "fleet_walk": {
                "walkers": FLEET_WALKERS,
                "steps_per_walker": FLEET_STEPS,
                "seconds": round(walk_seconds, 4),
                "steps_per_second": round(FLEET_WALKERS * FLEET_STEPS / walk_seconds),
            },
            "end_to_end_seconds": round(end_to_end, 4),
            # Lifetime-peak RSS after this rung (cumulative across rungs
            # by getrusage semantics; the per-store deltas live in the
            # graph_store bench).
            "peak_rss_mb_cumulative": round(_peak_rss_mb(), 1),
        }

        if num_nodes <= NX_LIMIT:
            # The dict path the CSR plane replaces: networkx Chung–Lu +
            # per-node conversion + dict flood-fill cleaning.
            reference, nx_seconds = _timed(
                lambda: chung_lu_osn([float(w) for w in weights], rng=1)
            )
            csr_seconds = generate_seconds + assemble_seconds + lcc_seconds
            entry["networkx_path_seconds"] = round(nx_seconds, 4)
            entry["generation_speedup_vs_networkx"] = round(nx_seconds / csr_seconds, 1)
            assert reference.num_nodes > 0
            if num_nodes >= 100_000:
                # Acceptance floor: ≥20× at the 10⁵ rung.
                assert entry["generation_speedup_vs_networkx"] >= 20, entry
        rungs[str(num_nodes)] = entry
    _RESULTS["rungs"] = rungs


def test_prefix_reuse_sweep_speedup():
    """Figure-1-shaped sweep: reuse='prefix' vs reuse='none' (fleet)."""
    num_nodes = min(RUNGS)
    weights = powerlaw_degree_sequence(num_nodes, AVERAGE_DEGREE)
    graph = largest_connected_component_csr(
        CSRGraph.from_edge_array(chung_lu_edges(weights, rng=4), num_nodes=num_nodes)
    )
    graph = graph.with_labels(
        label_array=zipf_label_array(graph.num_nodes, num_labels=60, exponent=1.0, rng=5)
    )
    pairs = select_target_pairs(graph, count=6)
    repetitions = max(20, bench_support.DEFAULT_REPETITIONS)
    burn_in = 100

    def run(reuse, execution, seed):
        started = time.perf_counter()
        points = frequency_sweep(
            graph,
            pairs,
            budget_fraction=0.05,
            repetitions=repetitions,
            burn_in=burn_in,
            seed=seed,
            execution=execution,
            reuse=reuse,
        )
        return points, time.perf_counter() - started

    # Warm the shared caches (masks, incident counts) before timing.
    frequency_sweep(
        graph, pairs[:1], budget_fraction=0.01, repetitions=2,
        burn_in=5, seed=0, reuse="prefix",
    )
    fresh_points, fresh_seconds = min(
        (run("none", "fleet", seed) for seed in (6, 7)), key=lambda pair: pair[1]
    )
    prefix_points, prefix_seconds = min(
        (run("prefix", "sequential", seed) for seed in (8, 9)), key=lambda pair: pair[1]
    )
    speedup = fresh_seconds / prefix_seconds

    series = []
    for fresh_point, prefix_point in zip(fresh_points, prefix_points):
        assert fresh_point.target_pair == prefix_point.target_pair
        series.append(
            {
                "pair": [str(label) for label in fresh_point.target_pair],
                "relative_count": round(fresh_point.relative_count, 6),
                "nrmse_reuse_none": {
                    name: round(value, 4)
                    for name, value in fresh_point.nrmse_by_algorithm.items()
                },
                "nrmse_reuse_prefix": {
                    name: round(value, 4)
                    for name, value in prefix_point.nrmse_by_algorithm.items()
                },
            }
        )
    _RESULTS["prefix_reuse_sweep"] = {
        "num_nodes": graph.num_nodes,
        "num_pairs": len(pairs),
        "repetitions": repetitions,
        "budget_fraction": 0.05,
        "reuse_none_fleet_seconds": round(fresh_seconds, 4),
        "reuse_prefix_seconds": round(prefix_seconds, 4),
        "speedup": round(speedup, 2),
        "points": series,
        "equivalence": "KS-tested in tests/integration/test_prefix_equivalence.py",
    }
    # Acceptance floor: ≥3× vs the strongest fresh-walk baseline (fleet).
    assert speedup >= 3, f"prefix-reuse sweep speedup {speedup:.2f}x below 3x"


def _ladder_graph(num_nodes, seed):
    """One labeled LCC Chung–Lu rung, shared by the baseline benches."""
    weights = powerlaw_degree_sequence(num_nodes, AVERAGE_DEGREE)
    graph = largest_connected_component_csr(
        CSRGraph.from_edge_array(chung_lu_edges(weights, rng=seed), num_nodes=num_nodes)
    )
    return graph.with_labels(
        label_array=zipf_label_array(
            graph.num_nodes, num_labels=40, exponent=1.0, rng=seed + 1
        )
    )


def test_baseline_fleet_speedup():
    """bench_baselines: vectorized EX-* line fleets vs the scalar kernels."""
    from repro.experiments.algorithms import build_algorithm_suite
    from repro.experiments.runner import run_trials

    graph = _ladder_graph(min(RUNGS), seed=10)
    dict_graph = graph.to_labeled_graph()  # scalar reference substrate
    suite = build_algorithm_suite(dict_graph)
    repetitions, k, burn_in = 6, 400, 50

    baselines = {}
    floor = []
    for name in ("EX-MHRW", "EX-MDRW", "EX-RCMH", "EX-GMD", "EX-RW"):
        args = dict(sample_size=k, repetitions=repetitions, burn_in=burn_in)
        scalar, scalar_seconds = _timed(
            lambda: run_trials(
                dict_graph, 1, 2, suite[name], name, **args, seed=20,
                execution="sequential",
            )
        )
        fleet, fleet_seconds = _timed(
            lambda: run_trials(
                graph, 1, 2, suite[name], name, **args, seed=21,
                execution="fleet",
            )
        )
        assert len(fleet.estimates) == len(scalar.estimates) == repetitions
        speedup = scalar_seconds / fleet_seconds
        steps = repetitions * (burn_in + k)
        baselines[name] = {
            "scalar_seconds": round(scalar_seconds, 4),
            "fleet_seconds": round(fleet_seconds, 4),
            "speedup": round(speedup, 1),
            "scalar_steps_per_second": round(steps / scalar_seconds),
            "fleet_steps_per_second": round(steps / fleet_seconds),
        }
        if name != "EX-RW":  # the acceptance floor names the four EX-* kernels
            floor.append(speedup)

    _RESULTS["bench_baselines"] = {
        "num_nodes": graph.num_nodes,
        "repetitions": repetitions,
        "sample_size": k,
        "burn_in": burn_in,
        "baselines": baselines,
        "equivalence": (
            "KS-tested in tests/integration/test_baseline_fleet_equivalence.py"
        ),
    }
    # Acceptance floor: every vectorized EX-* kernel >= 5x its scalar twin.
    assert min(floor) >= 5, f"EX-* fleet speedups below 5x: {baselines}"


def test_compiled_kernels_speedup():
    """bench_compiled_kernels: numba-njit fleets vs the vectorized numpy tier.

    Times the SRW node fleet and the EX-MHRW implicit line-graph fleet
    on the compiled engine against the numpy engine at the >=10^5 rung
    (falling back to the smallest rung on a 10^4-only ladder), asserts
    bit-identical trajectories and ledgers between the tiers, and — only
    when numba is actually importable — asserts the >=5x acceptance
    floor.  Without numba the compiled engine resolves to numpy with a
    typed ``CompiledFallbackWarning`` and the entry records the fallback
    (speedup ~1x, still bit-identical) instead of a fake floor.
    """
    import warnings

    from repro.walks.compiled import CompiledFallbackWarning, numba_available
    from repro.walks.line_batched import BatchedLineWalkEngine

    big_rungs = [rung for rung in RUNGS if rung >= 100_000]
    graph = _ladder_graph(min(big_rungs) if big_rungs else min(RUNGS), seed=50)
    have_numba = numba_available()

    def fleet_pair(factory, steps_per_run):
        """Time numpy vs compiled twins of one fleet; check bit-parity."""
        numpy_result, numpy_seconds = _timed(lambda: factory("numpy"))
        with warnings.catch_warnings():
            # On a numba-less host the engine falls back to numpy with a
            # typed warning; the bench records the fallback, not noise.
            warnings.simplefilter("ignore", CompiledFallbackWarning)
            compiled_result, compiled_seconds = _timed(lambda: factory("compiled"))
        # Warm run (JIT compile on first call) distorts the cold timing;
        # re-time the compiled side now that the dispatcher is hot.
        if have_numba:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", CompiledFallbackWarning)
                compiled_result, compiled_seconds = _timed(
                    lambda: factory("compiled")
                )
        return {
            "numpy_seconds": round(numpy_seconds, 4),
            "compiled_seconds": round(compiled_seconds, 4),
            "speedup": round(numpy_seconds / compiled_seconds, 1),
            "numpy_steps_per_second": round(steps_per_run / numpy_seconds),
            "compiled_steps_per_second": round(steps_per_run / compiled_seconds),
        }, numpy_result, compiled_result

    kernels = {}
    srw_entry, srw_numpy, srw_compiled = fleet_pair(
        lambda engine: BatchedWalkEngine(
            graph, kernel="simple", rng=51, engine=engine
        ).run_fleet(FLEET_WALKERS, FLEET_STEPS),
        FLEET_WALKERS * FLEET_STEPS,
    )
    # The replay contract: same seed, same draws, same bits — whichever
    # tier actually ran.
    assert np.array_equal(srw_numpy.trajectories, srw_compiled.trajectories)
    assert np.array_equal(srw_numpy.charged_calls(), srw_compiled.charged_calls())
    kernels["SRW-node-fleet"] = srw_entry

    line_walkers, line_steps = 64, 400
    line_entry, line_numpy, line_compiled = fleet_pair(
        lambda engine: BatchedLineWalkEngine(
            graph, kernel="mhrw", rng=52, engine=engine
        ).run_fleet(line_walkers, line_steps),
        line_walkers * line_steps,
    )
    assert np.array_equal(line_numpy.src, line_compiled.src)
    assert np.array_equal(line_numpy.dst, line_compiled.dst)
    assert np.array_equal(
        line_numpy.charged_calls(), line_compiled.charged_calls()
    )
    kernels["EX-MHRW-line-fleet"] = line_entry

    _RESULTS["bench_compiled_kernels"] = {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "numba_available": have_numba,
        "fleet_walkers": FLEET_WALKERS,
        "fleet_steps": FLEET_STEPS,
        "line_walkers": line_walkers,
        "line_steps": line_steps,
        "bit_identical_to_numpy": True,
        "kernels": kernels,
        "equivalence": (
            "bit-parity in tests/unit/test_compiled_backend.py, KS legs in "
            "tests/integration/test_backend_equivalence.py"
        ),
    }
    if have_numba:
        # Acceptance floor: >=5x over the vectorized numpy tier on both
        # the node and the implicit line-graph fleets.
        floors = [entry["speedup"] for entry in kernels.values()]
        assert min(floors) >= 5, _RESULTS["bench_compiled_kernels"]


def test_ten_algorithm_table_at_scale():
    """Full ten-algorithm CSR-native fleet table at the >=10^5 rung."""
    from repro.experiments.algorithms import build_algorithm_suite
    from repro.experiments.runner import compare_algorithms

    rungs = [rung for rung in RUNGS if rung >= 100_000]
    if not rungs:
        pytest.skip("ladder has no >=10^5 rung (CI runs 10^4 only)")
    graph = _ladder_graph(min(rungs), seed=30)
    suite, suite_seconds = _timed(lambda: build_algorithm_suite(graph))
    assert len(suite) == 10
    table, table_seconds = _timed(
        lambda: compare_algorithms(
            graph, 1, 2,
            sample_fractions=(0.01, 0.05),
            repetitions=bench_support.DEFAULT_REPETITIONS,
            algorithms=suite,
            burn_in=200,
            seed=31,
            execution="fleet",
        )
    )
    best_name, best_nrmse = table.best_algorithm()
    _RESULTS["ten_algorithm_table"] = {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "representation": "csr",
        "execution": "fleet",
        "repetitions": bench_support.DEFAULT_REPETITIONS,
        "sample_fractions": [0.01, 0.05],
        "suite_build_seconds": round(suite_seconds, 4),
        "table_seconds": round(table_seconds, 4),
        "best_algorithm_at_5pct": best_name,
        "best_nrmse_at_5pct": round(best_nrmse, 4),
        "nrmse_rows": {
            name: [round(value, 4) for value in table.nrmse_row(name)]
            for name in table.algorithms()
        },
    }
    # The paper's headline claim should survive the CSR-native rerun.
    assert not best_name.startswith("EX-"), _RESULTS["ten_algorithm_table"]


#: Subprocess probe for the out-of-core RSS comparison: open the spilled
#: sidecar either memory-mapped or fully loaded, run a modest fleet, and
#: report this process's peak RSS.  A fresh interpreter per mode keeps
#: the measurement honest (the parent's RSS peak is already polluted by
#: graph synthesis).  VmHWM is read from /proc/self/status because
#: getrusage's ru_maxrss survives execve on Linux — a forked-and-exec'd
#: child would report the *parent's* gigabyte peak.
_RSS_PROBE = """
import json, sys
from repro.graph.store import load_csr_npz
from repro.walks.batched import BatchedWalkEngine
payload = {"mode": sys.argv[2]}
if sys.argv[2] != "baseline":  # baseline: imports only, so the deltas
    graph = load_csr_npz(sys.argv[1], mmap=(sys.argv[2] == "mmap"))
    fleet = BatchedWalkEngine(graph, rng=1).run_fleet(32, 150)
    assert fleet.num_walkers == 32
    payload["store"] = graph.store
with open("/proc/self/status") as status:
    for line in status:
        if line.startswith("VmHWM:"):
            payload["maxrss_bytes"] = int(line.split()[1]) * 1024
print(json.dumps(payload))
"""


def _drop_page_cache(path: Path) -> None:
    """Evict *path* from the page cache (models the true out-of-core regime).

    Freshly written sidecars are fully cached, and the kernel's
    fault-around maps every cached page it finds near a fault — a
    hot-cache mmap probe would report the whole file resident no matter
    how little the walk touches.  A graph genuinely past RAM is never
    fully cached, so the probe measures that regime: sync (dirty pages
    survive DONTNEED) and advise the cache away.
    """
    os.sync()
    descriptor = os.open(str(path), os.O_RDONLY)
    try:
        os.posix_fadvise(descriptor, 0, 0, os.POSIX_FADV_DONTNEED)
    finally:
        os.close(descriptor)


def _probe_rss(sidecar: Path, mode: str) -> int:
    if mode != "baseline":
        _drop_page_cache(sidecar)
    env = dict(os.environ)
    src = Path(__file__).resolve().parent.parent / "src"
    env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
    completed = subprocess.run(
        [sys.executable, "-c", _RSS_PROBE, str(sidecar), mode],
        capture_output=True, text=True, check=True, env=env,
    )
    return int(json.loads(completed.stdout)["maxrss_bytes"])


def test_graph_store_fleets():
    """Buffer backends at the top rung: shm vs pickled workers, mmap RSS."""
    import multiprocessing
    import pickle

    from repro.experiments import runner as runner_module
    from repro.experiments.algorithms import build_algorithm_suite
    from repro.experiments.runner import CellTask
    from repro.graph.store import publish_csr, save_csr_npz
    from repro.utils.rng import derive_seed

    num_nodes = max(RUNGS)
    graph = _ladder_graph(num_nodes, seed=40)
    inram_bytes = int(
        graph.indptr.nbytes + graph.indices.nbytes + graph.label_array().nbytes
    )
    # Warm the derived caches like compare_algorithms would (the ground
    # truth); the ram path ships them pickled, shm publishes them.
    true_count = graph.count_target_edges(1, 2)
    full_suite = build_algorithm_suite(include_baselines=False)
    suite = {
        name: full_suite[name]
        for name in ("NeighborSample-HH", "NeighborExploration-HH")
    }
    suite_blob = pickle.dumps(suite)
    graph_blob_mb = round(len(pickle.dumps(graph)) / 2**20, 1)

    def make_cells(fractions, repetitions):
        return [
            CellTask(
                algorithm=name,
                column=column,
                sample_size=max(1, int(fraction * graph.num_nodes)),
                seed=derive_seed(42, name, column),
                t1=1, t2=2,
                repetitions=repetitions,
                burn_in=50,
                true_count=true_count,
                backend="python",
                execution="fleet",
            )
            for name in suite
            for column, fraction in enumerate(fractions)
        ]

    # The comparison runs under the *spawn* start method — the default
    # everywhere but today's Linux, and the only one where worker state
    # is genuinely serialized (under fork, "ram" ships zero bytes: the
    # workers inherit the parent heap copy-on-write, an accident of one
    # platform that hides exactly the cost this bench measures).  An
    # *eager* pool (multiprocessing.Pool) stands all four workers up on
    # both sides; the lazy executor would let the pickling path quietly
    # skip spawning workers it is too slow to feed.
    ctx = multiprocessing.get_context("spawn")

    def run_pool(store, cells):
        publication = None
        graph_ref = graph
        started = time.perf_counter()
        if store == "shm":
            publication = publish_csr(graph, "shm")
            graph_ref = publication.handle
        try:
            with ctx.Pool(
                4,
                initializer=runner_module._init_cell_worker,
                initargs=(graph_ref, suite_blob, True),
            ) as pool:
                outcomes = pool.map(runner_module._run_cell_in_worker, cells)
        finally:
            if publication is not None:
                publication.close()
                publication.unlink()
        return outcomes, time.perf_counter() - started

    # Worker-spawn overhead: near-empty cells, so four worker start-ups
    # plus the per-store graph transfer is essentially all that is
    # measured (ram: 4 × the adjacency through a pipe; shm: one publish
    # plus 4 O(1) handles).
    spawn = {}
    for store in ("ram", "shm"):
        _, spawn_seconds = run_pool(store, make_cells((0.0002,), 2)[:1] * 4)
        spawn[store] = round(spawn_seconds, 4)

    cells = make_cells((0.002, 0.005), 8)
    ram_outcomes, ram_seconds = run_pool("ram", cells)
    shm_outcomes, shm_seconds = run_pool("shm", cells)
    for ours, theirs in zip(shm_outcomes, ram_outcomes):
        # The store moves bytes, never random draws.
        assert ours.estimates == theirs.estimates

    # Out-of-core: peak RSS of a memory-mapped run vs a fully-loaded twin,
    # each in its own interpreter.
    with tempfile.TemporaryDirectory(prefix="repro-mmap-bench-") as scratch:
        sidecar = save_csr_npz(graph, Path(scratch) / "rung.npz")
        baseline_rss = _probe_rss(sidecar, "baseline")
        mmap_rss = _probe_rss(sidecar, "mmap")
        inram_rss = _probe_rss(sidecar, "ram")

    _RESULTS["graph_store"] = {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "graph_inram_mb": round(inram_bytes / 2**20, 1),
        "graph_pickle_mb": graph_blob_mb,
        "n_jobs": 4,
        "start_method": "spawn",
        "worker_spawn_overhead_seconds": spawn,
        "fleet_table": {
            "repetitions": 8,
            "sample_fractions": [0.002, 0.005],
            "ram_pickled_seconds": round(ram_seconds, 4),
            "shm_handles_seconds": round(shm_seconds, 4),
            "shm_speedup": round(ram_seconds / shm_seconds, 2),
            "bit_identical_tables": True,
        },
        "mmap_peak_rss": {
            "walkers": 32,
            "steps_per_walker": 150,
            "interpreter_baseline_mb": round(baseline_rss / 2**20, 1),
            "mmap_mb": round(mmap_rss / 2**20, 1),
            "fully_loaded_mb": round(inram_rss / 2**20, 1),
            "mmap_delta_mb": round((mmap_rss - baseline_rss) / 2**20, 1),
            "fully_loaded_delta_mb": round((inram_rss - baseline_rss) / 2**20, 1),
        },
    }
    if num_nodes >= 1_000_000:
        # Acceptance floors (10⁶ rung): shm multi-process beats the
        # pickling path, and the mmap run's working set stays under the
        # graph's in-RAM footprint.
        assert shm_seconds < ram_seconds, _RESULTS["graph_store"]
        assert mmap_rss < inram_rss, _RESULTS["graph_store"]
        assert mmap_rss - baseline_rss < inram_bytes, _RESULTS["graph_store"]


def test_write_scale_json():
    """Persist the ladder (runs last: pytest executes in file order)."""
    assert "rungs" in _RESULTS, "rung test did not run"
    payload = {
        "average_degree": AVERAGE_DEGREE,
        "generator": "chung_lu_csr (power-law expected degrees, exponent 2.5)",
        "rungs": _RESULTS["rungs"],
    }
    for key in (
        "prefix_reuse_sweep",
        "bench_baselines",
        "bench_compiled_kernels",
        "ten_algorithm_table",
        "graph_store",
    ):
        if key in _RESULTS:
            payload[key] = _RESULTS[key]
    bench_support.write_json("BENCH_scale.json", payload)
