"""Extension benchmark — labeled wedge / triangle estimation accuracy.

Not a table of the paper: it exercises the future-work direction the
paper names in its conclusion (label-refined wedge and triangle counts)
and records the NRMSE of the extension estimators at a 5%|V| budget.
"""

from bench_support import write_result

from repro.datasets.registry import load_dataset
from repro.experiments.metrics import nrmse
from repro.extensions import (
    LabeledTriangleEstimator,
    LabeledWedgeEstimator,
    count_target_triangles,
    count_target_wedges,
)
from repro.graph.api import RestrictedGraphAPI
from repro.utils.rng import spawn_rngs
from repro.walks.mixing import recommended_burn_in


def _run(settings):
    dataset = load_dataset("facebook", seed=settings["seed"], scale=min(settings["scale"], 0.25))
    graph = dataset.graph
    burn_in = recommended_burn_in(graph, rng=settings["seed"])
    budget = max(1, int(0.05 * graph.num_nodes))
    repetitions = max(3, settings["repetitions"])

    wedge_truth = count_target_wedges(graph, 1, 2, 1)
    triangle_truth = count_target_triangles(graph, 1, 1, 2)

    wedge_estimates = []
    triangle_estimates = []
    for rng in spawn_rngs(91, repetitions):
        wedge_estimates.append(
            LabeledWedgeEstimator(RestrictedGraphAPI(graph), 1, 2, 1, burn_in=burn_in, rng=rng)
            .estimate(budget)
            .estimate
        )
        triangle_estimates.append(
            LabeledTriangleEstimator(
                RestrictedGraphAPI(graph), 1, 1, 2, burn_in=burn_in, rng=rng
            )
            .estimate(budget)
            .estimate
        )
    return {
        "wedge_truth": wedge_truth,
        "triangle_truth": triangle_truth,
        "wedge_nrmse": nrmse(wedge_estimates, wedge_truth),
        "triangle_nrmse": nrmse(triangle_estimates, triangle_truth),
        "budget": budget,
    }


def test_extension_labeled_motifs(benchmark, settings):
    outcome = benchmark.pedantic(_run, args=(settings,), rounds=1, iterations=1)
    write_result(
        "extension_labeled_motifs.txt",
        "\n".join(
            [
                "Extension: label-refined wedge and triangle estimation (5%|V| budget)",
                f"true (1,2,1) wedges        : {outcome['wedge_truth']}",
                f"wedge estimator NRMSE      : {outcome['wedge_nrmse']:.3f}",
                f"true (1,1,2) triangles     : {outcome['triangle_truth']}",
                f"triangle estimator NRMSE   : {outcome['triangle_nrmse']:.3f}",
                f"walk samples per run (k)   : {outcome['budget']}",
            ]
        ),
    )
    assert outcome["wedge_nrmse"] >= 0
    assert outcome["triangle_nrmse"] >= 0
