"""Ablation — the thinning interval of the Horvitz-Thompson estimators.

The paper adopts Hardiman & Katzir's strategy of using samples at least
r = 2.5%·k steps apart to approximate independence.  This ablation
sweeps the thinning fraction and reports the NRMSE of both HT
estimators, showing the trade-off: no thinning keeps more samples but
they are dependent; aggressive thinning wastes budget.
"""

from bench_support import write_result

from repro.core.estimators import EdgeHorvitzThompsonEstimator, NodeHorvitzThompsonEstimator
from repro.core.samplers import NeighborExplorationSampler, NeighborSampleSampler
from repro.datasets.registry import load_dataset
from repro.experiments.metrics import nrmse
from repro.graph.api import RestrictedGraphAPI
from repro.graph.statistics import count_target_edges
from repro.utils.rng import spawn_rngs

FRACTIONS = [None, 0.01, 0.025, 0.1, 0.25]
SAMPLES = 200
BURN_IN = 100


def _sweep(settings):
    graph = load_dataset("facebook", seed=settings["seed"], scale=min(settings["scale"], 0.25)).graph
    truth = count_target_edges(graph, 1, 2)
    repetitions = max(3, settings["repetitions"])

    edge_rows = {}
    node_rows = {}
    for fraction in FRACTIONS:
        edge_estimates = []
        node_estimates = []
        for rng in spawn_rngs(33, repetitions):
            api = RestrictedGraphAPI(graph)
            edge_samples = NeighborSampleSampler(api, 1, 2, burn_in=BURN_IN, rng=rng).sample(SAMPLES)
            edge_estimates.append(
                EdgeHorvitzThompsonEstimator(thinning_fraction=fraction)
                .estimate(edge_samples)
                .estimate
            )
            node_samples = NeighborExplorationSampler(
                RestrictedGraphAPI(graph), 1, 2, burn_in=BURN_IN, rng=rng
            ).sample(SAMPLES)
            node_estimates.append(
                NodeHorvitzThompsonEstimator(thinning_fraction=fraction)
                .estimate(node_samples)
                .estimate
            )
        edge_rows[fraction] = nrmse(edge_estimates, truth)
        node_rows[fraction] = nrmse(node_estimates, truth)
    return edge_rows, node_rows


def test_ablation_thinning_fraction(benchmark, settings):
    edge_rows, node_rows = benchmark.pedantic(_sweep, args=(settings,), rounds=1, iterations=1)
    lines = [
        "Ablation: thinning fraction r/k for the Horvitz-Thompson estimators",
        f"{'fraction':<12}{'NeighborSample-HT':>20}{'NeighborExploration-HT':>26}",
    ]
    for fraction in FRACTIONS:
        label = "none" if fraction is None else f"{fraction:.3f}"
        lines.append(f"{label:<12}{edge_rows[fraction]:>20.3f}{node_rows[fraction]:>26.3f}")
    lines.append("")
    lines.append("paper setting: fraction = 0.025 (r = 2.5% of k)")
    write_result("ablation_thinning.txt", "\n".join(lines))
    assert all(value >= 0 for value in edge_rows.values())
    assert all(value >= 0 for value in node_rows.values())
