"""Tables 6-9 — Pokec, four location-label pairs of increasing frequency.

The paper evaluates four pairs of Slovak locations whose target-edge
share ranges from 0.001% to 0.03% of |E|; NeighborExploration variants
win every table.  The stand-in evaluates four location pairs selected
from the same frequency quartiles of the synthetic Pokec graph.
"""

import pytest

from bench_support import run_and_record_table


@pytest.mark.parametrize("table_number", [6, 7, 8, 9])
def test_tables_06_09_pokec_locations(benchmark, settings, table_number):
    result = benchmark.pedantic(
        run_and_record_table, args=(table_number, settings), rounds=1, iterations=1
    )
    assert len(result.table.cells) == 10
    # The paper's headline claim on rare labels: a proposed algorithm wins.
    assert result.agreement()["proposed_wins"]
