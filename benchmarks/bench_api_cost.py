"""API-cost profile — what the paper's budget axis hides.

The paper expresses budgets as "x% of |V| API calls" and equates one
walk sample with one call.  That is exact for NeighborSample; for
NeighborExploration the exploration of labeled nodes downloads extra
profile pages, and the line-graph baselines read two friend lists per
``G'`` step.  This bench measures the *charged* page downloads of every
algorithm at the same sample budget on two regimes (abundant gender
labels, rare location labels) and records the calls-per-sample ratios.
"""

from bench_support import write_result

from repro.datasets.registry import load_dataset
from repro.experiments.cost import format_cost_table, profile_api_costs


def _profile(settings):
    sections = []
    for dataset_name, pair_index, regime in (
        ("facebook", 0, "abundant labels (gender)"),
        ("pokec", 0, "rare labels (locations)"),
    ):
        dataset = load_dataset(dataset_name, seed=settings["seed"], scale=settings["scale"])
        t1, t2 = dataset.target_pairs[pair_index]
        sample_size = max(1, int(0.05 * dataset.graph.num_nodes))
        profiles = profile_api_costs(
            dataset.graph,
            t1,
            t2,
            sample_size=sample_size,
            repetitions=max(2, settings["repetitions"] // 2),
            seed=settings["seed"],
        )
        sections.append(
            f"{dataset.spec.paper_name} — {regime}, target pair {(t1, t2)}, k={sample_size}"
        )
        sections.append(format_cost_table(profiles))
        sections.append("")
    return "\n".join(sections)


def test_api_cost_per_algorithm(benchmark, settings):
    report = benchmark.pedantic(_profile, args=(settings,), rounds=1, iterations=1)
    path = write_result("api_cost_profile.txt", report)
    assert path.exists()
    assert "calls per sample" in report
