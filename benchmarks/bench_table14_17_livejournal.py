"""Tables 14-17 — LiveJournal, four degree-label pairs of increasing frequency.

Degree-bucket labels; shares range from 0.001% to 4.1% of |E| in the
paper.  As in Orkut, NeighborExploration dominates for the rare pairs
and the two proposed families converge for the frequent ones.
"""

import pytest

from bench_support import run_and_record_table


@pytest.mark.parametrize("table_number", [14, 15, 16, 17])
def test_tables_14_17_livejournal_degree_labels(benchmark, settings, table_number):
    result = benchmark.pedantic(
        run_and_record_table, args=(table_number, settings), rounds=1, iterations=1
    )
    assert len(result.table.cells) == 10
