"""Figure 2 — NRMSE vs relative count of target edges in LiveJournal (5%|V| calls).

Same setting as Figure 1, on the LiveJournal stand-in.
"""

from bench_support import table_config, write_result

from repro.experiments.figures import run_paper_figure
from repro.experiments.reporting import format_frequency_series


def _build_series(settings):
    config = table_config(settings).with_overrides(dataset="livejournal")
    return run_paper_figure(2, config, repetitions=settings["repetitions"])


def test_figure2_livejournal_frequency_sweep(benchmark, settings):
    result = benchmark.pedantic(_build_series, args=(settings,), rounds=1, iterations=1)
    series_text = format_frequency_series(
        result.points,
        caption="Figure 2 reproduction: NRMSE vs number of target edges in Livejournal "
        "(5%|V| API calls)",
    )
    trend = result.monotone_trend("NeighborExploration-HH")
    artifact = series_text + f"\n\nNRMSE-vs-frequency trend (NeighborExploration-HH): {trend:+.2f}"
    write_result("figure2_livejournal_sweep.txt", artifact)
    assert len(result.points) >= 3
    assert trend <= 0
