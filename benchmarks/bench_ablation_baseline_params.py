"""Ablation — the EX-RCMH α and EX-GMD δ tuning knobs.

The paper adopts the ranges suggested by Li et al. (α ∈ [0, 0.3],
δ ∈ [0.3, 0.7]) and reports the best setting.  This ablation sweeps both
knobs on the Facebook stand-in so the sensitivity is visible.
"""

from bench_support import write_result

from repro.baselines import line_graph_max_degree, make_baseline
from repro.datasets.registry import load_dataset
from repro.experiments.metrics import nrmse
from repro.graph.api import RestrictedGraphAPI
from repro.graph.statistics import count_target_edges
from repro.utils.rng import spawn_rngs

ALPHAS = [0.0, 0.1, 0.2, 0.3]
DELTAS = [0.3, 0.5, 0.7]
SAMPLES = 150
BURN_IN = 100


def _run(baseline, graph, truth, repetitions, seed):
    estimates = []
    for rng in spawn_rngs(seed, repetitions):
        api = RestrictedGraphAPI(graph)
        estimates.append(baseline.estimate(api, 1, 2, SAMPLES, burn_in=BURN_IN, rng=rng).estimate)
    return nrmse(estimates, truth)


def _sweep(settings):
    graph = load_dataset("facebook", seed=settings["seed"], scale=min(settings["scale"], 0.25)).graph
    truth = count_target_edges(graph, 1, 2)
    max_degree = line_graph_max_degree(graph)
    repetitions = max(3, settings["repetitions"])

    alpha_rows = {
        alpha: _run(make_baseline("EX-RCMH", rcmh_alpha=alpha), graph, truth, repetitions, 71)
        for alpha in ALPHAS
    }
    delta_rows = {
        delta: _run(
            make_baseline("EX-GMD", line_max_degree=max_degree, gmd_delta=delta),
            graph,
            truth,
            repetitions,
            72,
        )
        for delta in DELTAS
    }
    return alpha_rows, delta_rows


def test_ablation_baseline_parameters(benchmark, settings):
    alpha_rows, delta_rows = benchmark.pedantic(
        _sweep, args=(settings,), rounds=1, iterations=1
    )
    lines = ["Ablation: EX-RCMH alpha and EX-GMD delta sensitivity", ""]
    lines.append(f"{'alpha':<8}{'EX-RCMH NRMSE':>16}")
    for alpha in ALPHAS:
        lines.append(f"{alpha:<8}{alpha_rows[alpha]:>16.3f}")
    lines.append("")
    lines.append(f"{'delta':<8}{'EX-GMD NRMSE':>16}")
    for delta in DELTAS:
        lines.append(f"{delta:<8}{delta_rows[delta]:>16.3f}")
    write_result("ablation_baseline_params.txt", "\n".join(lines))
    assert all(value >= 0 for value in alpha_rows.values())
    assert all(value >= 0 for value in delta_rows.values())
