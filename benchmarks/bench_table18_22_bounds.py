"""Tables 18-22 — Theorem 4.1-4.5 sample-size bounds per dataset and label pair.

The paper reports, for every evaluated (dataset, label pair), the number
of samples each theorem requires for a (0.1, 0.1)-approximation, and
notes that the experiments need far fewer samples in practice.  This
bench computes the same five bounds on the stand-ins.
"""

import pytest

from bench_support import write_result

from repro.core.bounds import compute_all_bounds
from repro.datasets.registry import dataset_names, load_dataset

TABLE_BY_DATASET = {
    "facebook": 18,
    "googleplus": 19,
    "pokec": 20,
    "orkut": 21,
    "livejournal": 22,
}

COLUMNS = [
    "NeighborSample-HH",
    "NeighborSample-HT",
    "NeighborExploration-HH",
    "NeighborExploration-HT",
    "NeighborExploration-RW",
]


def _build_table(dataset_name, settings) -> str:
    dataset = load_dataset(dataset_name, seed=settings["seed"], scale=settings["scale"])
    table_number = TABLE_BY_DATASET[dataset_name]
    header = f"{'pair':<14}" + "".join(f"{name:>26}" for name in COLUMNS)
    lines = [
        f"Table {table_number} reproduction: (0.1, 0.1)-approximation sample-size "
        f"bounds in {dataset.spec.paper_name}",
        header,
    ]
    for pair in dataset.target_pairs:
        bounds = compute_all_bounds(dataset.graph, pair[0], pair[1], epsilon=0.1, delta=0.1)
        as_dict = bounds.as_dict()
        lines.append(
            f"{str(pair):<14}" + "".join(f"{as_dict[name]:>26.3e}" for name in COLUMNS)
        )
    return "\n".join(lines)


@pytest.mark.parametrize("dataset_name", dataset_names())
def test_tables_18_22_sample_size_bounds(benchmark, settings, dataset_name):
    table = benchmark.pedantic(
        _build_table, args=(dataset_name, settings), rounds=1, iterations=1
    )
    table_number = TABLE_BY_DATASET[dataset_name]
    write_result(f"table{table_number}_bounds_{dataset_name}.txt", table)
    assert "NeighborExploration-RW" in table


def test_bounds_exceed_practical_budgets(settings):
    """§5.2's observation: the theoretical bounds dwarf the budgets that
    already give good estimates (5% of |V|)."""
    dataset = load_dataset("pokec", seed=settings["seed"], scale=settings["scale"])
    pair = dataset.target_pairs[0]
    bounds = compute_all_bounds(dataset.graph, pair[0], pair[1])
    practical_budget = 0.05 * dataset.graph.num_nodes
    assert bounds.neighbor_sample_hh > practical_budget
