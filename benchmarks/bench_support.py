"""Shared helpers for the benchmark harness (see conftest.py for the knobs).

Default settings are scaled down so the full harness finishes on a
laptop; set the environment variables to approach the paper's setting::

    REPRO_REPETITIONS=200 REPRO_DATASET_SCALE=1.0 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Where regenerated tables and figure series are written.
RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmark-default experiment size (overridable via the environment).
DEFAULT_REPETITIONS = int(os.environ.get("REPRO_REPETITIONS", "5"))
DEFAULT_SCALE = float(os.environ.get("REPRO_DATASET_SCALE", "0.25"))
DEFAULT_FRACTIONS = (0.01, 0.03, 0.05)
DEFAULT_SEED = 2018


def write_result(name: str, content: str) -> Path:
    """Persist one regenerated artifact under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content + "\n", encoding="utf-8")
    return path


def write_json(name: str, payload: dict) -> Path:
    """Persist one machine-readable artifact under ``benchmarks/results/``.

    Used for the perf-trajectory files (e.g. ``BENCH_core.json``) that
    later PRs diff against, so keys should stay stable.
    """
    return write_result(name, json.dumps(payload, indent=2, sort_keys=True))


def bench_settings() -> dict:
    """The shared (repetitions, scale, fractions, seed) mapping."""
    return {
        "repetitions": DEFAULT_REPETITIONS,
        "scale": DEFAULT_SCALE,
        "fractions": DEFAULT_FRACTIONS,
        "seed": DEFAULT_SEED,
    }


def table_config(settings):
    """Build the ExperimentConfig used by the table benchmarks."""
    from repro.experiments.config import ExperimentConfig

    return ExperimentConfig(
        dataset="facebook",  # replaced per-table by run_paper_table
        sample_fractions=settings["fractions"],
        repetitions=settings["repetitions"],
        scale=settings["scale"],
        seed=settings["seed"],
    )


def run_and_record_table(table_number: int, settings) -> "PaperTableResult":
    """Reproduce one NRMSE table (4-17), write the artifact, return the result."""
    from repro.experiments.reporting import format_nrmse_table
    from repro.experiments.tables import run_paper_table

    result = run_paper_table(table_number, table_config(settings))
    definition = result.definition
    reproduced_name, reproduced_value = result.reproduced_best()
    agreement = result.agreement()

    lines = [
        format_nrmse_table(
            result.table,
            caption=(
                f"Reproduction of paper Table {table_number} "
                f"({definition.dataset}, paper label {definition.paper_target_label}, "
                f"reproduced pair {result.table.target_pair}, "
                f"F={result.table.true_count}, "
                f"{result.config.repetitions} repetitions, scale {result.config.scale})"
            ),
        ),
        "",
        f"paper best at 5%|V|          : {definition.paper_best_algorithm} "
        f"(NRMSE {definition.paper_best_nrmse})",
        f"reproduced best (largest col): {reproduced_name} (NRMSE {reproduced_value:.3f})",
        f"winner family matches paper  : {agreement['family_match']}",
        f"proposed beats EX baselines  : {agreement['proposed_wins']}",
    ]
    write_result(f"table{table_number:02d}_{definition.dataset}.txt", "\n".join(lines))
    return result
