"""Pytest fixtures for the benchmark harness.

The heavy lifting lives in :mod:`bench_support`; this conftest only
exposes the shared settings as a fixture and makes sure the results
directory exists.
"""

from __future__ import annotations

import pytest

import bench_support


@pytest.fixture(scope="session")
def settings():
    """Benchmark-wide experiment settings (env-var overridable)."""
    return bench_support.bench_settings()


@pytest.fixture(scope="session", autouse=True)
def results_dir():
    """Create benchmarks/results/ once per session."""
    bench_support.RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return bench_support.RESULTS_DIR
