"""Ablation — burn-in length vs estimation error.

The paper discards the nodes and edges encountered before the mixing
time.  This ablation varies the burn-in from 0 to well beyond the
measured mixing time and reports the NRMSE of NeighborSample-HH,
starting every walk from the single highest-degree node (the worst case
for a short burn-in: without mixing, samples are biased towards the
dense core).
"""

from bench_support import write_result

from repro.core.estimators import EdgeHansenHurwitzEstimator
from repro.core.samplers import NeighborSampleSampler
from repro.datasets.registry import load_dataset
from repro.experiments.metrics import nrmse
from repro.graph.api import RestrictedGraphAPI
from repro.graph.statistics import count_target_edges
from repro.utils.rng import spawn_rngs
from repro.walks.mixing import recommended_burn_in

BURN_INS = [0, 5, 25, 100, 400]
SAMPLES = 120


def _sweep(settings):
    dataset = load_dataset("facebook", seed=settings["seed"], scale=min(settings["scale"], 0.25))
    graph = dataset.graph
    truth = count_target_edges(graph, 1, 2)
    repetitions = max(3, settings["repetitions"])
    hub = max(graph.nodes(), key=graph.degree)

    rows = {}
    for burn_in in BURN_INS:
        estimates = []
        for rng in spawn_rngs(55, repetitions):
            api = RestrictedGraphAPI(graph)
            sampler = NeighborSampleSampler(api, 1, 2, burn_in=burn_in, rng=rng)
            samples = sampler.sample(SAMPLES, start_node=hub)
            estimates.append(EdgeHansenHurwitzEstimator().estimate(samples).estimate)
        rows[burn_in] = nrmse(estimates, truth)
    measured = recommended_burn_in(graph, rng=settings["seed"])
    return rows, measured


def test_ablation_burn_in_length(benchmark, settings):
    rows, measured = benchmark.pedantic(_sweep, args=(settings,), rounds=1, iterations=1)
    lines = [
        "Ablation: burn-in length vs NRMSE (NeighborSample-HH, hub start node)",
        f"{'burn-in':<10}{'NRMSE':>10}",
    ]
    for burn_in in BURN_INS:
        lines.append(f"{burn_in:<10}{rows[burn_in]:>10.3f}")
    lines.append("")
    lines.append(f"burn-in recommended from the mixing time: {measured}")
    write_result("ablation_burnin.txt", "\n".join(lines))
    assert all(value >= 0 for value in rows.values())
