"""Micro-benchmarks of the core pipeline components.

Unlike the table/figure benches (one-shot experiment regenerations),
these use pytest-benchmark conventionally: many rounds of the same
operation, so regressions in the samplers, the walk engine or the
estimators show up as timing changes.

Every python-backend bench has a ``_csr`` twin doing the same work on
the vectorized backend, so the speedup of the CSR walk path is tracked
in the perf trajectory alongside the reference engine.

``test_fleet_cell_speedup`` additionally times one representative NRMSE
table cell on the sequential CSR path and on the fleet path and writes
the machine-readable ``benchmarks/results/BENCH_core.json`` (fleet
steps/s, per-path cell wall-clock, speedup), so the perf trajectory of
the experiment engine is diffable across PRs.
"""

import math
import time

import numpy as np
import pytest

import bench_support
from repro.core.estimators import (
    EdgeHansenHurwitzEstimator,
    NodeHansenHurwitzEstimator,
    NodeReweightedEstimator,
)
from repro.core.samplers import NeighborExplorationSampler, NeighborSampleSampler
from repro.datasets.registry import load_dataset
from repro.experiments.algorithms import build_algorithm_suite
from repro.experiments.runner import run_trials
from repro.graph.api import RestrictedGraphAPI
from repro.graph.csr import CSRGraph
from repro.walks.batched import BatchedWalkEngine, csr_walk
from repro.walks.engine import RandomWalk
from repro.walks.kernels import SimpleRandomWalkKernel


@pytest.fixture(scope="module")
def facebook_graph(settings):
    return load_dataset("facebook", seed=settings["seed"], scale=min(settings["scale"], 0.25)).graph


@pytest.fixture(scope="module")
def facebook_csr(facebook_graph):
    return CSRGraph.from_labeled_graph(facebook_graph)


def test_throughput_simple_walk(benchmark, facebook_graph):
    api = RestrictedGraphAPI(facebook_graph)

    def run():
        return RandomWalk(api, SimpleRandomWalkKernel(), burn_in=0, rng=1).run(500)

    result = benchmark(run)
    assert len(result) == 500


def test_throughput_simple_walk_csr(benchmark, facebook_csr):
    # reuse one generator across rounds, like the engine and samplers do
    generator = np.random.default_rng(1)

    def run():
        return csr_walk(facebook_csr, 500, rng=generator)

    result = benchmark(run)
    assert len(result) == 500


def test_throughput_batched_walks_csr(benchmark, facebook_csr):
    # 512 walkers amortise the per-step numpy dispatch; this bench tracks
    # fleet throughput (steps/second), not single-walk latency.
    engine = BatchedWalkEngine(facebook_csr, rng=1)

    def run():
        return engine.run(512, 500)

    result = benchmark(run)
    assert result.nodes.shape == (512, 500)


def test_throughput_neighbor_sample(benchmark, facebook_graph):
    api = RestrictedGraphAPI(facebook_graph)

    def run():
        sampler = NeighborSampleSampler(api, 1, 2, burn_in=10, rng=2)
        return sampler.sample(200)

    samples = benchmark(run)
    assert samples.k == 200


def test_throughput_neighbor_sample_csr(benchmark, facebook_graph, facebook_csr):
    api = RestrictedGraphAPI(facebook_graph)
    api.adopt_csr(facebook_csr)

    def run():
        sampler = NeighborSampleSampler(api, 1, 2, burn_in=10, rng=2, backend="csr")
        return sampler.sample(200)

    samples = benchmark(run)
    assert samples.k == 200


def test_throughput_neighbor_exploration(benchmark, facebook_graph):
    api = RestrictedGraphAPI(facebook_graph)

    def run():
        sampler = NeighborExplorationSampler(api, 1, 2, burn_in=10, rng=3)
        return sampler.sample(200)

    samples = benchmark(run)
    assert samples.k == 200


def test_throughput_neighbor_exploration_csr(benchmark, facebook_graph, facebook_csr):
    api = RestrictedGraphAPI(facebook_graph)
    api.adopt_csr(facebook_csr)

    def run():
        sampler = NeighborExplorationSampler(api, 1, 2, burn_in=10, rng=3, backend="csr")
        return sampler.sample(200)

    samples = benchmark(run)
    assert samples.k == 200


def test_fleet_cell_speedup(facebook_graph, facebook_csr, settings):
    """Time representative NRMSE cells: sequential CSR vs fleet.

    Two cells mirroring the paper's setting — NeighborSample-HH and
    NeighborExploration-HH at a 5%·|V| budget with 200 repetitions
    (env-overridable via ``REPRO_REPETITIONS``) — each timed best-of-3
    per path; the wall-clocks land in ``BENCH_core.json`` together with
    the raw fleet walker throughput, so the perf trajectory of the
    experiment engine is diffable across PRs.
    """
    repetitions = max(50, settings["repetitions"])
    sample_size = max(1, math.ceil(0.05 * facebook_graph.num_nodes))
    burn_in = 100
    suite = build_algorithm_suite(facebook_graph, include_baselines=False)

    def run_cell(algorithm, execution):
        started = time.perf_counter()
        outcome = run_trials(
            facebook_graph,
            1,
            2,
            suite[algorithm],
            algorithm,
            sample_size=sample_size,
            repetitions=repetitions,
            burn_in=burn_in,
            seed=settings["seed"],
            backend="csr",
            csr=facebook_csr,
            execution=execution,
        )
        assert outcome.repetitions == repetitions
        return time.perf_counter() - started

    cells = {}
    for algorithm in ("NeighborSample-HH", "NeighborExploration-HH"):
        # Warm the shared caches (label masks, incident counts, list
        # views) so both paths are measured steady-state.
        run_trials(
            facebook_graph, 1, 2, suite[algorithm], algorithm,
            sample_size=sample_size, repetitions=2, burn_in=10,
            seed=0, backend="csr", csr=facebook_csr, execution="fleet",
        )
        sequential_seconds = min(run_cell(algorithm, "sequential") for _ in range(3))
        fleet_seconds = min(run_cell(algorithm, "fleet") for _ in range(3))
        cells[algorithm] = {
            "sample_size": sample_size,
            "burn_in": burn_in,
            "repetitions": repetitions,
            "sequential_csr_seconds": round(sequential_seconds, 4),
            "fleet_seconds": round(fleet_seconds, 4),
            "fleet_speedup": round(sequential_seconds / fleet_seconds, 2),
        }

    # Raw fleet walker throughput (steps/second) on the same graph.
    engine = BatchedWalkEngine(facebook_csr, rng=1)
    started = time.perf_counter()
    engine.run(512, 500)
    engine_seconds = time.perf_counter() - started

    bench_support.write_json(
        "BENCH_core.json",
        {
            "dataset": "facebook",
            "scale": min(settings["scale"], 0.25),
            "num_nodes": facebook_graph.num_nodes,
            "num_edges": facebook_graph.num_edges,
            "cells": cells,
            "batched_walk": {
                "walkers": 512,
                "steps_per_walker": 500,
                "steps_per_second": round(512 * 500 / engine_seconds),
            },
        },
    )
    # Acceptance floor: the fleet path must reproduce a representative
    # table cell at least 5x faster than the sequential CSR path (the
    # NeighborSample cell typically lands >20x, NeighborExploration >5x;
    # the latter gets a softer regression floor to absorb timer noise).
    speedup_ns = cells["NeighborSample-HH"]["fleet_speedup"]
    speedup_ne = cells["NeighborExploration-HH"]["fleet_speedup"]
    assert speedup_ns >= 5, f"fleet speedup {speedup_ns:.1f}x below the 5x floor"
    assert speedup_ne >= 3.5, f"exploration fleet speedup regressed: {speedup_ne:.1f}x"


def test_throughput_edge_hh_estimator(benchmark, facebook_graph):
    api = RestrictedGraphAPI(facebook_graph)
    samples = NeighborSampleSampler(api, 1, 2, burn_in=10, rng=4).sample(500)
    result = benchmark(EdgeHansenHurwitzEstimator().estimate, samples)
    assert result.estimate >= 0


def test_throughput_node_estimators(benchmark, facebook_graph):
    api = RestrictedGraphAPI(facebook_graph)
    samples = NeighborExplorationSampler(api, 1, 2, burn_in=10, rng=5).sample(500)

    def run():
        hh = NodeHansenHurwitzEstimator().estimate(samples).estimate
        rw = NodeReweightedEstimator().estimate(samples).estimate
        return hh, rw

    hh, rw = benchmark(run)
    assert hh >= 0 and rw >= 0
