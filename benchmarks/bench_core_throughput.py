"""Micro-benchmarks of the core pipeline components.

Unlike the table/figure benches (one-shot experiment regenerations),
these use pytest-benchmark conventionally: many rounds of the same
operation, so regressions in the samplers, the walk engine or the
estimators show up as timing changes.

Every python-backend bench has a ``_csr`` twin doing the same work on
the vectorized backend, so the speedup of the CSR walk path is tracked
in the perf trajectory alongside the reference engine.
"""

import numpy as np
import pytest

from repro.core.estimators import (
    EdgeHansenHurwitzEstimator,
    NodeHansenHurwitzEstimator,
    NodeReweightedEstimator,
)
from repro.core.samplers import NeighborExplorationSampler, NeighborSampleSampler
from repro.datasets.registry import load_dataset
from repro.graph.api import RestrictedGraphAPI
from repro.graph.csr import CSRGraph
from repro.walks.batched import BatchedWalkEngine, csr_walk
from repro.walks.engine import RandomWalk
from repro.walks.kernels import SimpleRandomWalkKernel


@pytest.fixture(scope="module")
def facebook_graph(settings):
    return load_dataset("facebook", seed=settings["seed"], scale=min(settings["scale"], 0.25)).graph


@pytest.fixture(scope="module")
def facebook_csr(facebook_graph):
    return CSRGraph.from_labeled_graph(facebook_graph)


def test_throughput_simple_walk(benchmark, facebook_graph):
    api = RestrictedGraphAPI(facebook_graph)

    def run():
        return RandomWalk(api, SimpleRandomWalkKernel(), burn_in=0, rng=1).run(500)

    result = benchmark(run)
    assert len(result) == 500


def test_throughput_simple_walk_csr(benchmark, facebook_csr):
    # reuse one generator across rounds, like the engine and samplers do
    generator = np.random.default_rng(1)

    def run():
        return csr_walk(facebook_csr, 500, rng=generator)

    result = benchmark(run)
    assert len(result) == 500


def test_throughput_batched_walks_csr(benchmark, facebook_csr):
    # 512 walkers amortise the per-step numpy dispatch; this bench tracks
    # fleet throughput (steps/second), not single-walk latency.
    engine = BatchedWalkEngine(facebook_csr, rng=1)

    def run():
        return engine.run(512, 500)

    result = benchmark(run)
    assert result.nodes.shape == (512, 500)


def test_throughput_neighbor_sample(benchmark, facebook_graph):
    api = RestrictedGraphAPI(facebook_graph)

    def run():
        sampler = NeighborSampleSampler(api, 1, 2, burn_in=10, rng=2)
        return sampler.sample(200)

    samples = benchmark(run)
    assert samples.k == 200


def test_throughput_neighbor_sample_csr(benchmark, facebook_graph, facebook_csr):
    api = RestrictedGraphAPI(facebook_graph)
    api.adopt_csr(facebook_csr)

    def run():
        sampler = NeighborSampleSampler(api, 1, 2, burn_in=10, rng=2, backend="csr")
        return sampler.sample(200)

    samples = benchmark(run)
    assert samples.k == 200


def test_throughput_neighbor_exploration(benchmark, facebook_graph):
    api = RestrictedGraphAPI(facebook_graph)

    def run():
        sampler = NeighborExplorationSampler(api, 1, 2, burn_in=10, rng=3)
        return sampler.sample(200)

    samples = benchmark(run)
    assert samples.k == 200


def test_throughput_neighbor_exploration_csr(benchmark, facebook_graph, facebook_csr):
    api = RestrictedGraphAPI(facebook_graph)
    api.adopt_csr(facebook_csr)

    def run():
        sampler = NeighborExplorationSampler(api, 1, 2, burn_in=10, rng=3, backend="csr")
        return sampler.sample(200)

    samples = benchmark(run)
    assert samples.k == 200


def test_throughput_edge_hh_estimator(benchmark, facebook_graph):
    api = RestrictedGraphAPI(facebook_graph)
    samples = NeighborSampleSampler(api, 1, 2, burn_in=10, rng=4).sample(500)
    result = benchmark(EdgeHansenHurwitzEstimator().estimate, samples)
    assert result.estimate >= 0


def test_throughput_node_estimators(benchmark, facebook_graph):
    api = RestrictedGraphAPI(facebook_graph)
    samples = NeighborExplorationSampler(api, 1, 2, burn_in=10, rng=5).sample(500)

    def run():
        hh = NodeHansenHurwitzEstimator().estimate(samples).estimate
        rw = NodeReweightedEstimator().estimate(samples).estimate
        return hh, rw

    hh, rw = benchmark(run)
    assert hh >= 0 and rw >= 0
