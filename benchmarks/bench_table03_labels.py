"""Table 3 — the location labels used for Pokec.

The paper's Table 3 maps the integer labels of the four evaluated Pokec
pairs to their Slovak locations.  The synthetic stand-in reproduces the
structure: each evaluated label id, its synthetic location name, and how
many nodes carry it.
"""

from bench_support import write_result

from repro.datasets.labeling import location_name
from repro.datasets.registry import load_dataset
from repro.graph.statistics import label_histogram


def _build_table(settings) -> str:
    dataset = load_dataset("pokec", seed=settings["seed"], scale=settings["scale"])
    histogram = label_histogram(dataset.graph)
    lines = [
        "Table 3 reproduction: labels and their corresponding locations in Pokec",
        f"{'Label':>7}  {'Location':<45}{'nodes':>8}",
    ]
    evaluated = sorted({label for pair in dataset.target_pairs for label in pair})
    for label in evaluated:
        lines.append(
            f"{label:>7}  {location_name(label):<45}{histogram.get(label, 0):>8}"
        )
    return "\n".join(lines)


def test_table03_pokec_locations(benchmark, settings):
    table = benchmark.pedantic(_build_table, args=(settings,), rounds=1, iterations=1)
    path = write_result("table03_pokec_labels.txt", table)
    assert path.exists()
    assert "Location" in table
