"""§5.1 "Mixing Time" — measured mixing time per dataset.

The paper measures T(1e-3) = 3200 / 200 / 100 / 800 / 900 steps for
Facebook / Google+ / Pokec / Orkut / LiveJournal and concludes that the
stationary distribution is cheap to reach.  This bench measures the
burn-in recommended for every stand-in (exact TV-distance mixing time
for small graphs, spectral bound for large ones) and records it next to
the paper's figure.
"""

import pytest

from bench_support import write_result

from repro.datasets.registry import DATASET_SPECS, dataset_names, load_dataset
from repro.walks.mixing import recommended_burn_in

EPSILON = 1e-3


def _measure(dataset_name, settings):
    dataset = load_dataset(dataset_name, seed=settings["seed"], scale=settings["scale"])
    burn_in = recommended_burn_in(dataset.graph, epsilon=EPSILON, rng=settings["seed"])
    return dataset, burn_in


@pytest.mark.parametrize("dataset_name", dataset_names())
def test_mixing_time_per_dataset(benchmark, settings, dataset_name):
    dataset, burn_in = benchmark.pedantic(
        _measure, args=(dataset_name, settings), rounds=1, iterations=1
    )
    spec = DATASET_SPECS[dataset_name]
    write_result(
        f"mixing_time_{dataset_name}.txt",
        "\n".join(
            [
                f"Mixing time reproduction for {spec.paper_name} (epsilon={EPSILON})",
                f"reproduced graph: |V|={dataset.graph.num_nodes}, |E|={dataset.graph.num_edges}",
                f"measured burn-in (this repo)      : {burn_in}",
                f"paper-reported mixing time (crawl): {spec.paper_mixing_time}",
            ]
        ),
    )
    # The paper's point: mixing is fast relative to the graph size.
    assert burn_in < dataset.graph.num_nodes
