#!/usr/bin/env python
"""CI smoke test for the estimation service: boot, query, verify, exit.

Boots the dependency-free HTTP transport over a ~10^4-node shm-published
graph (the ``pokec`` registry entry at half scale), then speaks real
HTTP from this (client) thread:

1. ``GET /healthz`` answers ``{"status": "ok"}``;
2. ``POST /estimate`` returns a well-formed answer with walked
   estimates;
3. the same query repeated is served from the answer cache
   (``cached: true``) and ``GET /stats`` reports a positive cache hit
   rate without a second fleet being built;
4. the served estimates are bit-identical to the batch harness
   (``run_trials_prefix``) at the same user seed — the acceptance
   property of the serving layer.

Exit code 0 on success.  Runs in a few seconds; CI wires it as the
``service-smoke`` job (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets.registry import load_dataset  # noqa: E402
from repro.experiments.runner import run_trials_prefix  # noqa: E402
from repro.service import EstimationService, ServiceHTTPServer  # noqa: E402
from repro.utils.rng import derive_seed  # noqa: E402

DATASET = "pokec"
SCALE = 0.5  # ~10^4 nodes
SEED = 7
ALGORITHM = "NeighborSample-HH"
BUDGET = 40
REPETITIONS = 6
BURN_IN = 10


def _get(port: int, path: str) -> dict:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=30) as fh:
        return json.loads(fh.read().decode("utf-8"))


def _post(port: int, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=120) as fh:
        return json.loads(fh.read().decode("utf-8"))


def main() -> int:
    print(f"loading {DATASET} at scale {SCALE} ...", flush=True)
    dataset = load_dataset(DATASET, seed=SEED, scale=SCALE)
    graph = dataset.graph
    # The frequent pair: a budget-bounded crawl actually sees targets.
    t1, t2 = max(dataset.target_pairs, key=dataset.target_counts.get)
    print(
        f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
        f"target pair ({t1}, {t2})",
        flush=True,
    )
    assert graph.num_nodes >= 10_000, "smoke graph must be ~10^4 nodes"

    service = EstimationService(
        graph,
        graph_store="shm",
        default_repetitions=REPETITIONS,
        default_burn_in=BURN_IN,
        name=f"{DATASET}-smoke",
    )

    loop = asyncio.new_event_loop()
    server = ServiceHTTPServer(service, port=0, window_seconds=0.005)
    started = threading.Event()
    boot_task: dict = {}

    async def boot():
        await server.start()
        started.set()
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    def serve() -> None:
        asyncio.set_event_loop(loop)
        task = loop.create_task(boot())
        boot_task["task"] = task
        try:
            loop.run_until_complete(task)
        except asyncio.CancelledError:
            pass
        finally:
            loop.close()

    thread = threading.Thread(target=serve, name="service-smoke", daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        print("FAIL: server did not start", file=sys.stderr)
        return 1
    port = server.port
    print(f"serving on http://127.0.0.1:{port} (shm store)", flush=True)

    try:
        health = _get(port, "/healthz")
        assert health["status"] == "ok", health
        print(f"healthz ok (graph version {health['graph_version']})", flush=True)

        query = {
            "algorithm": ALGORITHM,
            "t1": t1,
            "t2": t2,
            "budget": BUDGET,
            "seed": SEED,
            "repetitions": REPETITIONS,
            "burn_in": BURN_IN,
        }
        first = _post(port, "/estimate", query)
        assert len(first["estimates"]) == REPETITIONS, first
        assert first["true_count"] > 0 and not first["cached"], first
        print(
            f"estimate ok: mean {first['mean_estimate']:.1f} "
            f"(true {first['true_count']}, nrmse {first['nrmse']:.3f})",
            flush=True,
        )

        second = _post(port, "/estimate", query)
        assert second["cached"], "repeat query must be served from cache"
        assert second["estimates"] == first["estimates"]

        stats = _get(port, "/stats")
        assert stats["cache"]["hit_rate"] > 0, stats["cache"]
        assert stats["fleets"]["built"] == 1, stats["fleets"]
        print(
            f"stats ok: cache hit rate {stats['cache']['hit_rate']:.2f}, "
            f"{stats['fleets']['built']} fleet(s), "
            f"{stats['fleets']['steps_per_second']:.0f} steps/s",
            flush=True,
        )

        # Bit-identity with the batch harness at the same user seed.
        [outcome] = run_trials_prefix(
            graph,
            t1,
            t2,
            service._suite[ALGORITHM],
            ALGORITHM,
            [BUDGET],
            REPETITIONS,
            BURN_IN,
            seed=derive_seed(SEED, ALGORITHM, "prefix"),
        )
        assert first["estimates"] == outcome.estimates, (
            "served estimates must be bit-identical to the batch harness"
        )
        print("bit-identity with run_trials_prefix ok", flush=True)
    finally:
        loop.call_soon_threadsafe(boot_task["task"].cancel)
        thread.join(timeout=10)
        service.close()

    print("service smoke: PASS", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
