#!/usr/bin/env python
"""CI smoke tests for the estimation service: boot, query, verify, exit.

Two modes, both speaking real HTTP from this (client) thread against
the dependency-free asyncio transport:

**Default** — the serving-layer acceptance path over a ~10^4-node
shm-published graph (the ``pokec`` registry entry at half scale):

1. ``GET /healthz`` answers ``{"status": "ok"}``;
2. ``POST /estimate`` returns a well-formed answer with walked
   estimates;
3. the same query repeated is served from the answer cache
   (``cached: true``) and ``GET /stats`` reports a positive cache hit
   rate without a second fleet being built;
4. the served estimates are bit-identical to the batch harness
   (``run_trials_prefix``) at the same user seed.

**Chaos** (``--faults``) — the resilience-layer acceptance path, with a
deterministic fault plan installed at the production ``fire`` sites
(see ``docs/operations.md``):

1. a transient injected ``store.attach`` failure is absorbed by the
   attach retry at boot;
2. repeated injected fleet failures trip the algorithm's circuit
   breaker: ``/healthz`` reports ``degraded`` and a query for the
   warmed pair is served from stale cache flagged ``degraded: true``;
3. after the cooldown the half-open probe succeeds and ``/healthz``
   returns to ``ok``;
4. an injected fleet delay longer than the request's ``deadline_ms``
   answers 504;
5. a pool worker SIGKILLed mid-table (``REPRO_FAULTS`` env plan) is
   respawned and the finished table is bit-identical to a clean run.

**Durability** (``--restart``) — the crash-consistency acceptance path
(see "Durability & recovery" in ``docs/operations.md``):

1. a real ``repro-osn serve --snapshot`` child is SIGTERMed: it drains,
   snapshots, prints ``shutdown complete`` and exits 0; a restarted
   server answers the first repeated query from the loaded snapshot,
   bit-identical to the pre-restart answer;
2. ``repro-osn fsck`` flags a deliberately bit-flipped sidecar and the
   open path refuses it with a typed ``ArtifactCorruptError``;
3. a ``--jobs 2`` journaled sweep is SIGKILLed mid-run and
   ``--resume`` completes it bit-identically to an uninterrupted run.

Exit code 0 on success.  CI wires the default mode as the
``service-smoke`` job, the chaos mode as ``chaos-smoke`` and the
durability mode as ``durability-smoke`` (see
``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets.registry import load_dataset  # noqa: E402
from repro.experiments.runner import run_trials_prefix  # noqa: E402
from repro.service import EstimationService, ServiceHTTPServer  # noqa: E402
from repro.utils.rng import derive_seed  # noqa: E402

DATASET = "pokec"
SCALE = 0.5  # ~10^4 nodes
SEED = 7
ALGORITHM = "NeighborSample-HH"
BUDGET = 40
REPETITIONS = 6
BURN_IN = 10

#: The chaos plan: one transient attach failure at boot, three fleet
#: failures to trip the breaker (threshold 3), then one slow fleet to
#: blow a request deadline.  Invocation arithmetic: fleet.run 0 is the
#: cache-warming success, 1-3 are the breaker-tripping failures, 4 is
#: the half-open probe (budget spent: success), 5 is the delayed walk.
CHAOS_PLAN = (
    "store.attach=error,count=1;"
    "fleet.run=error,after=1,count=3;"
    "fleet.run=delay,after=5,count=1,seconds=0.6"
)


def _get(port: int, path: str) -> dict:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=30) as fh:
        return json.loads(fh.read().decode("utf-8"))


def _post(port: int, path: str, payload: dict) -> dict:
    status, body = _post_status(port, path, payload)
    assert status == 200, (status, body)
    return body


def _post_status(port: int, path: str, payload: dict) -> tuple:
    """POST returning (status, decoded body) — non-2xx is data, not an error."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as fh:
            return fh.status, json.loads(fh.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


class ServerThread:
    """The transport on a background thread; the smoke stays a plain client."""

    def __init__(self, service: EstimationService, **server_kwargs) -> None:
        self._loop = asyncio.new_event_loop()
        self.server = ServiceHTTPServer(service, port=0, **server_kwargs)
        self._started = threading.Event()
        self._boot_task: dict = {}
        self._thread = threading.Thread(
            target=self._serve, name="service-smoke", daemon=True
        )

    async def _boot(self) -> None:
        await self.server.start()
        self._started.set()
        try:
            await self.server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.server.stop()

    def _serve(self) -> None:
        asyncio.set_event_loop(self._loop)
        task = self._loop.create_task(self._boot())
        self._boot_task["task"] = task
        try:
            self._loop.run_until_complete(task)
        except asyncio.CancelledError:
            pass
        finally:
            self._loop.close()

    def start(self) -> int:
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server did not start")
        return self.server.port

    def stop(self) -> None:
        self._loop.call_soon_threadsafe(self._boot_task["task"].cancel)
        self._thread.join(timeout=10)


def _load_graph():
    print(f"loading {DATASET} at scale {SCALE} ...", flush=True)
    dataset = load_dataset(DATASET, seed=SEED, scale=SCALE)
    graph = dataset.graph
    # The frequent pair: a budget-bounded crawl actually sees targets.
    t1, t2 = max(dataset.target_pairs, key=dataset.target_counts.get)
    print(
        f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
        f"target pair ({t1}, {t2})",
        flush=True,
    )
    assert graph.num_nodes >= 10_000, "smoke graph must be ~10^4 nodes"
    return graph, t1, t2


def main() -> int:
    graph, t1, t2 = _load_graph()
    service = EstimationService(
        graph,
        graph_store="shm",
        default_repetitions=REPETITIONS,
        default_burn_in=BURN_IN,
        name=f"{DATASET}-smoke",
    )
    harness = ServerThread(service, window_seconds=0.005)
    port = harness.start()
    print(f"serving on http://127.0.0.1:{port} (shm store)", flush=True)

    try:
        health = _get(port, "/healthz")
        assert health["status"] == "ok", health
        print(f"healthz ok (graph version {health['graph_version']})", flush=True)

        query = {
            "algorithm": ALGORITHM,
            "t1": t1,
            "t2": t2,
            "budget": BUDGET,
            "seed": SEED,
            "repetitions": REPETITIONS,
            "burn_in": BURN_IN,
        }
        first = _post(port, "/estimate", query)
        assert len(first["estimates"]) == REPETITIONS, first
        assert first["true_count"] > 0 and not first["cached"], first
        print(
            f"estimate ok: mean {first['mean_estimate']:.1f} "
            f"(true {first['true_count']}, nrmse {first['nrmse']:.3f})",
            flush=True,
        )

        second = _post(port, "/estimate", query)
        assert second["cached"], "repeat query must be served from cache"
        assert second["estimates"] == first["estimates"]

        stats = _get(port, "/stats")
        assert stats["cache"]["hit_rate"] > 0, stats["cache"]
        assert stats["fleets"]["built"] == 1, stats["fleets"]
        print(
            f"stats ok: cache hit rate {stats['cache']['hit_rate']:.2f}, "
            f"{stats['fleets']['built']} fleet(s), "
            f"{stats['fleets']['steps_per_second']:.0f} steps/s",
            flush=True,
        )

        # Bit-identity with the batch harness at the same user seed.
        [outcome] = run_trials_prefix(
            graph,
            t1,
            t2,
            service._suite[ALGORITHM],
            ALGORITHM,
            [BUDGET],
            REPETITIONS,
            BURN_IN,
            seed=derive_seed(SEED, ALGORITHM, "prefix"),
        )
        assert first["estimates"] == outcome.estimates, (
            "served estimates must be bit-identical to the batch harness"
        )
        print("bit-identity with run_trials_prefix ok", flush=True)
    finally:
        harness.stop()
        service.close()

    print("service smoke: PASS", flush=True)
    return 0


def chaos_main() -> int:
    from repro.resilience import FaultInjector, FaultPlan, install_injector

    graph, t1, t2 = _load_graph()
    injector = FaultInjector(FaultPlan.parse(CHAOS_PLAN))
    install_injector(injector)
    print(f"fault plan installed: {injector.plan.describe()}", flush=True)
    try:
        # Boot absorbs the injected attach failure through the retry.
        service = EstimationService(
            graph,
            graph_store="shm",
            default_repetitions=REPETITIONS,
            default_burn_in=BURN_IN,
            name=f"{DATASET}-chaos",
            breaker_threshold=3,
            breaker_cooldown_seconds=1.0,
        )
        attach_faults = [e for e in injector.trace if e.site == "store.attach"]
        assert len(attach_faults) == 1, injector.trace
        print("boot survived one injected store.attach failure (retried)", flush=True)

        harness = ServerThread(service, window_seconds=0.005)
        port = harness.start()
        print(f"serving on http://127.0.0.1:{port} (chaos mode)", flush=True)
        try:
            def query(**overrides) -> dict:
                payload = {
                    "algorithm": ALGORITHM, "t1": t1, "t2": t2,
                    "budget": BUDGET, "seed": SEED,
                    "repetitions": REPETITIONS, "burn_in": BURN_IN,
                }
                payload.update(overrides)
                return payload

            # 1. Warm the stale-fallback entry for the pair.
            warm = _post(port, "/estimate", query())
            assert not warm["degraded"], warm

            # 2. Three injected fleet failures trip the breaker (500s).
            for seed in (101, 102, 103):
                status, body = _post_status(
                    port, "/estimate", query(budget=30, seed=seed)
                )
                assert status == 500 and "injected fault" in body["error"], (
                    status, body,
                )
            health = _get(port, "/healthz")
            assert health["status"] == "degraded", health
            assert health["open_breakers"] == [ALGORITHM], health
            print("breaker tripped: healthz degraded", flush=True)

            # 3. The breaker-open window: served stale, flagged degraded.
            degraded = _post(port, "/estimate", query(budget=10, seed=104))
            assert degraded["degraded"] and degraded["cached"], degraded
            assert degraded["budget"] == BUDGET, degraded  # the fallback's
            assert degraded["estimates"] == warm["estimates"], degraded
            print("degraded answer served from stale cache", flush=True)

            # 4. Cooldown, then the half-open probe heals the breaker.
            time.sleep(1.1)
            probed = _post(port, "/estimate", query(budget=35, seed=105))
            assert not probed["degraded"], probed
            health = _get(port, "/healthz")
            assert health["status"] == "ok", health
            assert health["open_breakers"] == [], health
            print("half-open probe succeeded: healthz ok", flush=True)

            # 5. An injected 0.6 s fleet delay blows a 150 ms deadline.
            status, body = _post_status(
                port, "/estimate", dict(query(budget=25, seed=106), deadline_ms=150)
            )
            assert status == 504 and "deadline" in body["error"], (status, body)
            print("slow fleet answered 504 at the deadline", flush=True)

            stats = _get(port, "/stats")
            resilience = stats["resilience"]
            assert resilience["breakers"][ALGORITHM]["trips"] == 1, resilience
            assert resilience["degraded_served"] == 1, resilience
            assert stats["batcher"]["deadline_timeouts"] == 1, stats["batcher"]
            assert resilience["faults"] != "no faults", resilience
        finally:
            harness.stop()
            service.close()
    finally:
        install_injector(None)

    _chaos_worker_kill()
    print("chaos smoke: PASS", flush=True)
    return 0


def _chaos_worker_kill() -> None:
    """Phase B: SIGKILL a pool worker mid-table; recovery is bit-identical."""
    import numpy as np

    from repro.experiments.algorithms import build_algorithm_suite
    from repro.experiments.runner import compare_algorithms
    from repro.graph.csr import CSRGraph
    from repro.resilience.faults import FAULTS_ENV, FAULTS_STATE_ENV

    rng = np.random.default_rng(3)
    hub = np.column_stack([np.zeros(299, dtype=np.int64), np.arange(1, 300)])
    edges = np.concatenate([hub, rng.integers(0, 300, size=(1500, 2))])
    csr = CSRGraph.from_edge_array(
        edges, num_nodes=300, label_array=rng.integers(1, 3, size=300)
    )
    full = build_algorithm_suite(include_baselines=False)
    suite = {ALGORITHM: full[ALGORITHM]}

    def table():
        return compare_algorithms(
            csr, 1, 2,
            sample_fractions=(0.02, 0.05), repetitions=3, algorithms=suite,
            burn_in=5, seed=42, execution="fleet", n_jobs=2, graph_store="shm",
        )

    print("worker-kill recovery: clean reference table ...", flush=True)
    reference = table()
    state_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    os.environ[FAULTS_ENV] = "worker.cell=kill,count=1"
    os.environ[FAULTS_STATE_ENV] = state_dir
    try:
        print("worker-kill recovery: SIGKILL one pool worker mid-table ...", flush=True)
        recovered = table()
    finally:
        del os.environ[FAULTS_ENV]
        del os.environ[FAULTS_STATE_ENV]
    claimed = sorted(os.listdir(state_dir))
    assert claimed == ["fault-0-0.token"], claimed  # the kill really happened
    for name in reference.algorithms():
        for ours, theirs in zip(recovered.cells[name], reference.cells[name]):
            assert ours.estimates == theirs.estimates, (name, ours, theirs)
            assert ours.api_calls == theirs.api_calls, (name, ours, theirs)
    print("worker-kill recovery: table bit-identical after respawn", flush=True)


class ServeProcess:
    """A real ``repro-osn serve`` child: boot, parse the port, signal it."""

    def __init__(self, snapshot: Path, scale: float = 0.1) -> None:
        import subprocess

        env = dict(os.environ, PYTHONPATH="src")
        self.child = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--dataset", DATASET, "--scale", str(scale),
                "--seed", str(SEED), "--graph-store", "ram",
                "--port", "0", "--transport", "stdlib",
                "--batch-window-ms", "2",
                "--repetitions", str(REPETITIONS),
                "--burn-in", str(BURN_IN),
                "--snapshot", str(snapshot),
                "--snapshot-interval-ms", "60000",
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        self.port = self._await_listening()

    def _await_listening(self) -> int:
        for line in self.child.stdout:
            print(f"  serve> {line.rstrip()}", flush=True)
            if "listening on http://" in line:
                return int(line.split("listening on http://")[1].split()[0].rsplit(":", 1)[1])
        raise RuntimeError("server exited before listening")

    def terminate_and_collect(self) -> str:
        """SIGTERM, wait for a clean exit, return the remaining stdout."""
        self.child.terminate()
        tail = self.child.stdout.read()
        self.child.stdout.close()
        self.child.wait(timeout=60)
        for line in tail.splitlines():
            print(f"  serve> {line}", flush=True)
        assert self.child.returncode == 0, self.child.returncode
        return tail


def restart_main() -> int:
    """The durability acceptance path: three crash scenarios end to end."""
    snap_dir = Path(tempfile.mkdtemp(prefix="repro-durability-"))
    _restart_serve_phase(snap_dir / "cache.snap")
    _fsck_phase(snap_dir)
    _journal_resume_phase(snap_dir / "sweep.journal.jsonl")
    print("durability smoke: PASS", flush=True)
    return 0


def _restart_serve_phase(snapshot: Path) -> None:
    """SIGTERM drain + snapshot, then a warm restart serves from cache."""
    print("restart phase: booting repro-osn serve with --snapshot ...", flush=True)
    # The server synthesises this same dataset; pick its frequent pair.
    dataset = load_dataset(DATASET, seed=SEED, scale=0.1)
    t1, t2 = max(dataset.target_pairs, key=dataset.target_counts.get)
    first = ServeProcess(snapshot)
    query = {
        "algorithm": ALGORITHM, "t1": t1, "t2": t2, "budget": BUDGET,
        "seed": SEED, "repetitions": REPETITIONS, "burn_in": BURN_IN,
    }
    warm = _post(first.port, "/estimate", query)
    assert not warm["cached"], warm
    health = _get(first.port, "/healthz")
    assert "last_snapshot_age_seconds" in health, health
    print("restart phase: cache warmed; sending SIGTERM ...", flush=True)

    tail = first.terminate_and_collect()
    assert "draining in-flight queries" in tail, tail
    assert "snapshot written to" in tail, tail
    assert "shutdown complete" in tail, tail
    assert snapshot.exists(), "graceful shutdown must leave a snapshot"
    print("restart phase: graceful shutdown drained and snapshotted", flush=True)

    second = ServeProcess(snapshot)
    try:
        stats = _get(second.port, "/stats")
        assert stats["durability"]["snapshot_loaded_entries"] >= 1, stats["durability"]
        again = _post(second.port, "/estimate", query)
        assert again["cached"], "first repeated query after restart must hit"
        assert again["estimates"] == warm["estimates"], (
            "warm-restart answer must be bit-identical to the pre-restart one"
        )
    finally:
        second.terminate_and_collect()
    print("restart phase: warm restart served a bit-identical cache hit", flush=True)


def _fsck_phase(directory: Path) -> None:
    """A bit-flipped sidecar is refused, typed, and flagged by fsck."""
    import numpy as np

    from repro.cli import main as cli_main
    from repro.durability import write_npz
    from repro.exceptions import ArtifactCorruptError
    from repro.graph.csr import CSRGraph

    n = 512
    edges = np.column_stack([np.arange(n), (np.arange(n) + 1) % n])
    csr = CSRGraph.from_edge_array(edges, num_nodes=n)
    artifact = directory / "spill.npz"
    write_npz(artifact, {"indptr": csr.indptr, "indices": csr.indices})
    assert cli_main(["fsck", str(artifact)]) == 0, "intact artifact must pass"

    raw = bytearray(artifact.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    artifact.write_bytes(bytes(raw))
    assert cli_main(["fsck", str(artifact)]) == 1, "bit flip must fail fsck"
    from repro.durability import verify_artifact

    try:
        verify_artifact(artifact, mode="full")
    except ArtifactCorruptError as exc:
        assert exc.retryable and str(artifact) in str(exc)
    else:
        raise AssertionError("verify_artifact must refuse a bit-flipped file")
    print("fsck phase: bit-flipped artifact refused with ArtifactCorruptError", flush=True)


_SWEEP_DRIVER = """
import sys
import numpy as np
from repro.experiments.algorithms import build_algorithm_suite
from repro.experiments.runner import compare_algorithms
from repro.graph.csr import CSRGraph

rng = np.random.default_rng(3)
hub = np.column_stack([np.zeros(299, dtype=np.int64), np.arange(1, 300)])
edges = np.concatenate([hub, rng.integers(0, 300, size=(1500, 2))])
graph = CSRGraph.from_edge_array(
    edges, num_nodes=300, label_array=rng.integers(1, 3, size=300)
)
full = build_algorithm_suite(include_baselines=False)
suite = {"%(algo)s": full["%(algo)s"]}
compare_algorithms(
    graph, 1, 2,
    sample_fractions=(0.02, 0.04, 0.06),
    repetitions=3, algorithms=suite, burn_in=5, seed=42,
    execution="fleet", n_jobs=2, graph_store="ram",
    journal=sys.argv[1],
)
""" % {"algo": ALGORITHM}


def _journal_resume_phase(journal: Path) -> None:
    """SIGKILL a --jobs 2 sweep mid-journal; --resume is bit-identical."""
    import signal
    import subprocess

    import numpy as np

    from repro.durability import journal_is_committed, read_records
    from repro.experiments.algorithms import build_algorithm_suite
    from repro.experiments.runner import compare_algorithms
    from repro.graph.csr import CSRGraph

    rng = np.random.default_rng(3)
    hub = np.column_stack([np.zeros(299, dtype=np.int64), np.arange(1, 300)])
    edges = np.concatenate([hub, rng.integers(0, 300, size=(1500, 2))])
    csr = CSRGraph.from_edge_array(
        edges, num_nodes=300, label_array=rng.integers(1, 3, size=300)
    )
    full = build_algorithm_suite(include_baselines=False)
    suite = {ALGORITHM: full[ALGORITHM]}

    def table(**overrides):
        settings = dict(
            sample_fractions=(0.02, 0.04, 0.06), repetitions=3,
            algorithms=suite, burn_in=5, seed=42,
            execution="fleet", n_jobs=2, graph_store="ram",
        )
        settings.update(overrides)
        return compare_algorithms(csr, 1, 2, **settings)

    print("journal phase: clean reference table ...", flush=True)
    reference = table()

    print("journal phase: SIGKILL a --jobs 2 sweep mid-journal ...", flush=True)
    child = subprocess.Popen(
        [sys.executable, "-c", _SWEEP_DRIVER, str(journal)],
        env=dict(
            os.environ,
            PYTHONPATH="src",
            REPRO_FAULTS="worker.cell=delay,seconds=0.5",
        ),
        start_new_session=True,
    )
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if any(r["type"] == "cell" for r in read_records(journal)):
            break
        assert child.poll() is None, "sweep finished before it could be killed"
        time.sleep(0.01)
    else:
        raise AssertionError("no journaled cell appeared within the deadline")
    os.killpg(child.pid, signal.SIGKILL)
    child.wait(timeout=30)
    assert not journal_is_committed(journal)
    done = sum(1 for r in read_records(journal) if r["type"] == "cell")
    print(f"journal phase: crashed with {done}/3 cells journaled; resuming ...", flush=True)

    resumed = table(journal=journal, resume=True)
    for name in reference.algorithms():
        for ours, theirs in zip(resumed.cells[name], reference.cells[name]):
            assert ours.estimates == theirs.estimates, (name, ours, theirs)
            assert ours.api_calls == theirs.api_calls, (name, ours, theirs)
    assert journal_is_committed(journal)
    print("journal phase: resumed table bit-identical; journal committed", flush=True)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--faults",
        action="store_true",
        help="run the chaos mode (injected faults + worker-kill recovery)",
    )
    parser.add_argument(
        "--restart",
        action="store_true",
        help="run the durability mode (SIGTERM restart, fsck, journal resume)",
    )
    args = parser.parse_args()
    if args.restart:
        sys.exit(restart_main())
    sys.exit(chaos_main() if args.faults else main())
