#!/usr/bin/env bash
# Test-tier runner.
#
#   scripts/run_tests.sh fast   - tier 1: everything except @pytest.mark.slow
#   scripts/run_tests.sh slow   - tier 2: the statistical / multi-seed suite
#   scripts/run_tests.sh all    - both tiers in one run (default)
#
# The slow tier holds the Kolmogorov-Smirnov backend-equivalence checks
# and the estimator-unbiasedness checks, which walk many seeds and are
# not needed on every edit-compile loop.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

tier="${1:-all}"
shift || true
case "$tier" in
  fast) exec python -m pytest -q -m "not slow" "$@" ;;
  slow) exec python -m pytest -q -m slow "$@" ;;
  all)  exec python -m pytest -q "$@" ;;
  *)    echo "usage: $0 [fast|slow|all] [pytest args...]" >&2; exit 2 ;;
esac
