#!/usr/bin/env python
"""Documentation checks: internal links resolve, ``>>>`` snippets run.

Two passes over ``README.md`` and ``docs/*.md``:

1. **Links** — every relative markdown link target (``[text](path)``)
   must exist on disk, and every intra-repo path mentioned in backticks
   that looks like a file (``src/...``, ``tests/...``, ``docs/...``,
   ``examples/...``, ``benchmarks/...``, ``scripts/...``) must exist,
   so renames cannot silently strand the prose.
2. **Doctests** — ``python -m doctest`` semantics over each file: any
   ``>>>`` examples embedded in the markdown are executed and their
   outputs compared.

Exit code 0 on success; prints every failure otherwise.  Run directly
(``python scripts/check_docs.py``) or through the fast test tier
(``tests/unit/test_docs.py``) — CI wires both.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown link: [text](target), excluding http(s)/mailto and anchors.
_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)\s]*)?\)")

#: Backticked intra-repo file mentions, e.g. `src/repro/walks/batched.py`.
_CODE_PATH = re.compile(
    r"`((?:src|tests|docs|examples|benchmarks|scripts)/[A-Za-z0-9_./-]+"
    r"\.(?:py|md|json|sh|yml))`"
)


def doc_files() -> List[Path]:
    """README plus every markdown file under docs/."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return files


def check_links(path: Path) -> List[str]:
    """Unresolvable relative links / stranded repo paths in *path*."""
    failures: List[str] = []
    text = path.read_text(encoding="utf-8")
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            failures.append(f"{path.name}: broken link -> {target}")
    for match in _CODE_PATH.finditer(text):
        target = match.group(1)
        if not (REPO_ROOT / target).exists():
            failures.append(f"{path.name}: stranded path reference -> {target}")
    return failures


def check_doctests(path: Path) -> List[str]:
    """Failing ``>>>`` examples embedded in *path* (doctest semantics)."""
    results = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        verbose=False,
    )
    if results.failed:
        return [f"{path.name}: {results.failed}/{results.attempted} doctests failed"]
    return []


def main() -> int:
    failures: List[str] = []
    for path in doc_files():
        if not path.exists():
            failures.append(f"missing documentation file: {path}")
            continue
        failures.extend(check_links(path))
        failures.extend(check_doctests(path))
    if failures:
        print("documentation checks FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"documentation checks passed ({len(doc_files())} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
