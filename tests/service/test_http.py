"""ServiceHTTPServer: the dependency-free asyncio transport.

Each test boots the server on an ephemeral port inside its own event
loop and speaks raw HTTP/1.1 over ``asyncio.open_connection`` — the
same wire path the CI smoke job exercises from a separate process.
"""

import asyncio
import json

import pytest

from repro.exceptions import ConfigurationError
from repro.service import ServiceHTTPServer, create_fastapi_app

BURN_IN = 5  # matches the conftest fixtures


async def _request(port, method, path, payload=None):
    """One HTTP round trip; returns (status_code, decoded JSON body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: 127.0.0.1\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    writer.write(head.encode("ascii") + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split()[1])
    return status, json.loads(body_blob.decode("utf-8"))


def _run(service, scenario):
    """Boot the server, run *scenario(port)*, always stop the server."""

    async def harness():
        server = ServiceHTTPServer(service, port=0, window_seconds=0.005)
        await server.start()
        try:
            return await scenario(server.port)
        finally:
            await server.stop()

    return asyncio.run(harness())


def _estimate_payload(**overrides):
    payload = dict(
        algorithm="NeighborSample-HH", t1=1, t2=2, budget=15,
        seed=7, repetitions=6, burn_in=BURN_IN,
    )
    payload.update(overrides)
    return payload


class TestEndpoints:
    def test_healthz(self, ram_service):
        async def scenario(port):
            return await _request(port, "GET", "/healthz")

        status, body = _run(ram_service, scenario)
        assert status == 200
        assert body["status"] == "ok"
        assert body["graph_version"] == 1
        assert body["open_breakers"] == []
        assert body["queue_depth"] == 0

    def test_estimate_round_trip(self, ram_service):
        async def scenario(port):
            return await _request(
                port, "POST", "/estimate", _estimate_payload()
            )

        status, body = _run(ram_service, scenario)
        assert status == 200
        assert body["algorithm"] == "NeighborSample-HH"
        assert body["budget"] == 15
        assert len(body["estimates"]) == 6
        assert body["true_count"] > 0
        assert body["cached"] is False
        assert body["mean_estimate"] == pytest.approx(
            sum(body["estimates"]) / len(body["estimates"])
        )

    def test_repeat_query_is_served_from_cache(self, ram_service):
        async def scenario(port):
            first = await _request(port, "POST", "/estimate", _estimate_payload())
            second = await _request(port, "POST", "/estimate", _estimate_payload())
            stats = await _request(port, "GET", "/stats")
            return first, second, stats

        (_, first), (_, second), (_, stats) = _run(ram_service, scenario)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["estimates"] == first["estimates"]
        assert stats["cache"]["hit_rate"] > 0

    def test_stats_shape(self, ram_service):
        async def scenario(port):
            await _request(port, "POST", "/estimate", _estimate_payload())
            return await _request(port, "GET", "/stats")

        status, stats = _run(ram_service, scenario)
        assert status == 200
        assert stats["graph"]["store"] == "ram"
        assert stats["graph"]["num_nodes"] == 250
        assert stats["fleets"]["built"] == 1
        assert stats["fleets"]["steps_walked"] > 0
        assert stats["queries"]["served"] == 1
        assert stats["batcher"]["queries_submitted"] == 1
        assert "NeighborSample-HH" in stats["algorithms"]


class TestConcurrentClients:
    def test_wire_clients_in_one_window_share_a_fleet(self, ram_service):
        before = ram_service.fleets_built

        async def scenario(port):
            return await asyncio.gather(
                _request(port, "POST", "/estimate", _estimate_payload(budget=10)),
                _request(port, "POST", "/estimate", _estimate_payload(budget=40)),
                _request(port, "POST", "/estimate", _estimate_payload(budget=25)),
            )

        responses = _run(ram_service, scenario)
        assert all(status == 200 for status, _ in responses)
        assert sorted(body["budget"] for _, body in responses) == [10, 25, 40]
        assert ram_service.fleets_built - before == 1


class TestErrorContract:
    def test_unknown_route_is_404(self, ram_service):
        async def scenario(port):
            return await _request(port, "GET", "/nope")

        status, body = _run(ram_service, scenario)
        assert status == 404
        assert "error" in body

    def test_malformed_json_is_400(self, ram_service):
        async def scenario(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            body = b"{not json"
            head = (
                f"POST /estimate HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
            )
            writer.write(head.encode("ascii") + body)
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return int(raw.split()[1])

        assert _run(ram_service, scenario) == 400

    def test_non_object_body_is_400(self, ram_service):
        async def scenario(port):
            return await _request(port, "POST", "/estimate", [1, 2, 3])

        status, body = _run(ram_service, scenario)
        assert status == 400
        assert "JSON object" in body["error"]

    def test_unknown_algorithm_is_400_with_reason(self, ram_service):
        async def scenario(port):
            return await _request(
                port, "POST", "/estimate",
                _estimate_payload(algorithm="NoSuchAlgorithm"),
            )

        status, body = _run(ram_service, scenario)
        assert status == 400
        assert "NoSuchAlgorithm" in body["error"]

    def test_zero_target_pair_is_400(self, ram_service):
        async def scenario(port):
            return await _request(
                port, "POST", "/estimate",
                _estimate_payload(t1="ghost", t2="ghost"),
            )

        status, body = _run(ram_service, scenario)
        assert status == 400
        assert "no target edges" in body["error"]

    def test_missing_required_fields_is_400(self, ram_service):
        async def scenario(port):
            return await _request(port, "POST", "/estimate", {"budget": 10})

        status, body = _run(ram_service, scenario)
        assert status == 400
        assert "t1" in body["error"]


class TestFastAPIGate:
    def test_factory_raises_actionably_without_fastapi(self, ram_service):
        try:
            import fastapi  # noqa: F401
        except ImportError:
            with pytest.raises(ConfigurationError, match="stdlib"):
                create_fastapi_app(ram_service)
        else:  # pragma: no cover - containers without the extra skip this
            app = create_fastapi_app(ram_service)
            assert app is not None
