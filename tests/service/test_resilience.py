"""Resilience policies threaded through the serving layer.

Breaker trips, degraded stale-cache serving, deadline propagation and
admission control — exercised against the real engine with faults
injected at the production ``fire`` sites, plus the HTTP status/header
contract (503/504/429 + ``Retry-After``) over the wire.

No pytest-asyncio in the container — each test drives its own event
loop with ``asyncio.run``.
"""

import asyncio
import json
import threading

import pytest

from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    ServiceOverloadedError,
)
from repro.resilience import (
    Deadline,
    FaultInjector,
    FaultPlan,
    InjectedFaultError,
    install_injector,
)
from repro.service import EstimationService, MicroBatcher, ServiceHTTPServer
from repro.service.cache import AnswerCache

BURN_IN = 5  # matches the conftest fixtures
ALGO = "NeighborSample-HH"


@pytest.fixture(autouse=True)
def clean_ambient():
    previous = install_injector(None)
    yield
    install_injector(previous)


@pytest.fixture
def breaker_service(serving_graph):
    """A service with a fast breaker (2 failures trip, 50 ms cooldown)."""
    with EstimationService(
        serving_graph,
        graph_store="ram",
        default_repetitions=6,
        default_burn_in=BURN_IN,
        name="test-resilience",
        breaker_threshold=2,
        breaker_cooldown_seconds=0.05,
    ) as service:
        yield service


def _query(**overrides) -> dict:
    fields = dict(
        algorithm=ALGO, t1=1, t2=2, budget=20,
        seed=7, repetitions=6, burn_in=BURN_IN,
    )
    fields.update(overrides)
    return fields


def _inject(plan_text: str) -> FaultInjector:
    injector = FaultInjector(FaultPlan.parse(plan_text))
    install_injector(injector)
    return injector


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBreakerAndDegradedServing:
    def test_trip_degrade_probe_recover(self, breaker_service):
        service = breaker_service
        warm = service.estimate(_query(budget=30))  # the stale fallback
        assert not warm.degraded

        _inject("fleet.run=error,count=2")
        for seed in (1, 2):
            with pytest.raises(InjectedFaultError):
                service.estimate(_query(budget=10, seed=seed))

        # Two consecutive fleet failures: the breaker is open, the
        # service degraded, and the pair is served from stale cache
        # without walking.
        assert service.health() == {
            "status": "degraded", "graph_version": 1, "open_breakers": [ALGO],
        }
        fleets_before = service.fleets_built
        degraded = service.estimate(_query(budget=10, seed=3))
        assert degraded.degraded and degraded.cached
        assert degraded.budget == 30  # the fallback's own budget, echoed
        assert service.fleets_built == fleets_before  # never walked
        assert service.degraded_served == 1
        assert service.stats()["resilience"]["breakers"][ALGO]["trips"] == 1

        # A pair with no cached answer cannot degrade: typed 503.
        with pytest.raises(CircuitOpenError) as excinfo:
            service.estimate(_query(t1=2, t2=2, budget=10))
        assert excinfo.value.algorithm == ALGO
        assert excinfo.value.retry_after >= 0.0

        # Cooldown elapses; the injector's budget is spent, so the
        # half-open probe succeeds and closes the breaker.
        import time

        time.sleep(0.06)
        probed = service.estimate(_query(budget=10, seed=3))
        assert not probed.degraded
        assert service.health()["status"] == "ok"

    def test_degraded_answer_requires_a_version_matched_pair(self, breaker_service):
        assert breaker_service.degraded_answer(_query()) is None  # cold cache
        breaker_service.estimate(_query(budget=30))
        assert breaker_service.degraded_answer(_query(t1=2, t2=2)) is None
        assert breaker_service.degraded_answer({"nonsense": True}) is None


class TestFindStale:
    KEY = (1, ALGO, 1, 2)

    def _cache(self):
        cache = AnswerCache(8)
        cache.put(self.KEY + (10, 7, 6, 5), "budget-10")
        cache.put(self.KEY + (40, 9, 6, 5), "budget-40")
        cache.put(self.KEY + (25, 7, 6, 5), "budget-25")
        return cache

    def test_returns_the_largest_budget_match(self):
        cache = self._cache()
        assert cache.find_stale(1, ALGO, 1, 2) == "budget-40"
        assert cache.stats()["stale_hits"] == 1

    def test_version_and_pair_must_match_exactly(self):
        cache = self._cache()
        assert cache.find_stale(2, ALGO, 1, 2) is None  # old graph: unusable
        assert cache.find_stale(1, ALGO, 1, 3) is None
        assert cache.find_stale(1, "Other", 1, 2) is None

    def test_short_foreign_keys_are_ignored(self):
        cache = self._cache()
        cache.put(("weird",), "not an answer")
        assert cache.find_stale(1, ALGO, 1, 2) == "budget-40"


class TestDeadlinePropagation:
    def test_expired_query_is_answered_504_without_walking(self, ram_service):
        clock = FakeClock()
        deadline = Deadline(0.05, clock=clock)
        clock.advance(1.0)
        fleets_before = ram_service.fleets_built
        (result,) = ram_service.estimate_many([_query()], deadlines=[deadline])
        assert isinstance(result, DeadlineExceededError)
        assert ram_service.fleets_built == fleets_before
        assert ram_service.deadline_misses == 1

    def test_expired_member_does_not_starve_its_batch_mates(self, ram_service):
        clock = FakeClock()
        expired = Deadline(0.05, clock=clock)
        clock.advance(1.0)
        late, patient = ram_service.estimate_many(
            [_query(budget=10), _query(budget=40)], deadlines=[expired, None]
        )
        assert isinstance(late, DeadlineExceededError)
        assert patient.budget == 40 and len(patient.estimates) == 6

    def test_batcher_answers_504_at_the_deadline(self, ram_service):
        # A fleet held up by an injected delay: the event loop gives up
        # at the deadline instead of riding out the walk.
        _inject("fleet.run=delay,seconds=0.4,count=1")
        batcher = MicroBatcher(ram_service, 0.005)

        async def scenario():
            with pytest.raises(DeadlineExceededError):
                await batcher.submit(_query(), deadline_seconds=0.08)

        asyncio.run(scenario())
        assert batcher.deadline_timeouts == 1


class _GatedService:
    """Holds estimate_many open until the test releases it."""

    def __init__(self, service):
        self.service = service
        self.started = threading.Event()
        self.release = threading.Event()

    def install(self, monkeypatch):
        real = self.service.estimate_many

        def gated(queries, deadlines=None):
            self.started.set()
            assert self.release.wait(10), "gate never released"
            if deadlines is not None:
                return real(queries, deadlines=deadlines)
            return real(queries)

        monkeypatch.setattr(self.service, "estimate_many", gated)

    async def wait_started(self):
        while not self.started.is_set():
            await asyncio.sleep(0.001)


class TestAdmissionControl:
    def test_overflow_without_a_fallback_is_a_fast_429(
        self, ram_service, monkeypatch
    ):
        gate = _GatedService(ram_service)
        gate.install(monkeypatch)
        batcher = MicroBatcher(ram_service, 0.005, max_in_flight=1)

        async def scenario():
            first = asyncio.ensure_future(batcher.submit(_query(budget=10)))
            await gate.wait_started()  # slot held, engine mid-"walk"
            with pytest.raises(ServiceOverloadedError) as excinfo:
                await batcher.submit(_query(budget=25))
            assert excinfo.value.limit == 1
            assert excinfo.value.retry_after > 0
            gate.release.set()
            return await first

        answer = asyncio.run(scenario())
        assert answer.budget == 10
        assert batcher.stats()["admission"]["rejections"] == 1

    def test_overflow_with_a_stale_match_is_shed_to_degraded(
        self, ram_service, monkeypatch
    ):
        warm = ram_service.estimate(_query(budget=30))
        assert not warm.degraded
        gate = _GatedService(ram_service)
        gate.install(monkeypatch)
        batcher = MicroBatcher(ram_service, 0.005, max_in_flight=1)

        async def scenario():
            first = asyncio.ensure_future(batcher.submit(_query(budget=10, seed=5)))
            await gate.wait_started()
            shed = await batcher.submit(_query(budget=10, seed=6))
            gate.release.set()
            return shed, await first

        shed, served = asyncio.run(scenario())
        assert shed.degraded and shed.cached and shed.budget == 30
        assert not served.degraded
        assert batcher.queries_shed == 1


# ----------------------------------------------------------------------
# the wire contract: statuses and Retry-After headers
# ----------------------------------------------------------------------
async def _raw_request(port, method, path, payload=None):
    """One HTTP round trip; returns (status, headers dict, decoded body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: 127.0.0.1\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    writer.write(head.encode("ascii") + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, headers, json.loads(body_blob.decode("utf-8"))


def _run_server(service, scenario, **server_kwargs):
    async def harness():
        server = ServiceHTTPServer(
            service, port=0, window_seconds=0.005, **server_kwargs
        )
        await server.start()
        try:
            return await scenario(server.port)
        finally:
            await server.stop()

    return asyncio.run(harness())


class TestResilienceOverHTTP:
    def test_deadline_ms_in_the_body_maps_to_504(self, ram_service):
        _inject("fleet.run=delay,seconds=0.4,count=1")

        async def scenario(port):
            return await _raw_request(
                port, "POST", "/estimate", dict(_query(), deadline_ms=60)
            )

        status, _, body = _run_server(ram_service, scenario)
        assert status == 504
        assert "deadline" in body["error"]

    def test_bad_deadline_ms_is_400(self, ram_service):
        async def scenario(port):
            return await _raw_request(
                port, "POST", "/estimate", dict(_query(), deadline_ms=-5)
            )

        status, _, body = _run_server(ram_service, scenario)
        assert status == 400
        assert "deadline_ms" in body["error"]

    def test_open_breaker_is_503_with_retry_after(self, breaker_service):
        _inject("fleet.run=error,count=2")

        async def scenario(port):
            failures = [
                await _raw_request(
                    port, "POST", "/estimate", _query(budget=10, seed=seed)
                )
                for seed in (1, 2)
            ]
            rejected = await _raw_request(
                port, "POST", "/estimate", _query(t1=2, t2=2, budget=10)
            )
            health = await _raw_request(port, "GET", "/healthz")
            return failures, rejected, health

        failures, rejected, health = _run_server(breaker_service, scenario)
        # Injected infrastructure faults travel the 500 path, not 400.
        assert [status for status, _, _ in failures] == [500, 500]
        status, headers, body = rejected
        assert status == 503
        assert int(headers["retry-after"]) >= 1
        assert "circuit breaker" in body["error"]
        status, _, body = health
        assert status == 200
        assert body["status"] == "degraded"
        assert body["open_breakers"] == [ALGO]
