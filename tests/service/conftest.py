"""Fixtures for the serving-layer suite.

The graphs here are local to ``tests/service`` on purpose: the
estimation service *freezes* its source graph at publish time
(irreversibly), so handing it the shared session fixtures from the
top-level conftest would leak read-only state into unrelated suites.
"""

from __future__ import annotations

import pytest

from repro.datasets.labeling import assign_binary_labels
from repro.datasets.synthetic import powerlaw_cluster_osn
from repro.graph.labeled_graph import LabeledGraph
from repro.service import EstimationService

# Small enough that a fleet walks in milliseconds, large enough that
# every (1, 2) pair has target edges and the walkers mix.
NUM_NODES = 250
BURN_IN = 5


def build_serving_graph(rng: int = 7) -> LabeledGraph:
    graph = powerlaw_cluster_osn(NUM_NODES, 5, 0.3, rng=rng)
    assign_binary_labels(graph, 0.5, labels=(1, 2), rng=rng + 1)
    return graph


@pytest.fixture(scope="session")
def serving_graph() -> LabeledGraph:
    """One shared source graph; the services freeze it, nothing mutates it."""
    return build_serving_graph()


@pytest.fixture
def ram_service(serving_graph):
    """A no-publication service for logic tests (batching, planning, cache)."""
    with EstimationService(
        serving_graph,
        graph_store="ram",
        default_repetitions=6,
        default_burn_in=BURN_IN,
        name="test-ram",
    ) as service:
        yield service


@pytest.fixture
def shm_service(serving_graph):
    """The production-shaped path: publish into shm, serve the attachment."""
    with EstimationService(
        serving_graph,
        graph_store="shm",
        default_repetitions=6,
        default_burn_in=BURN_IN,
        name="test-shm",
    ) as service:
        yield service
